"""Programmatic regeneration of every paper experiment.

The benchmark modules under ``benchmarks/`` print the paper's tables
during timed runs; this module exposes the same data as plain
functions returning structured rows, so users (and the test-suite) can
regenerate any figure or worked example without pytest:

>>> from repro.experiments import experiment_e3_matmul
>>> rows = experiment_e3_matmul(sweep=(2, 4))
>>> rows[1]["t_ours"]
25

``run_all()`` executes every experiment and
``write_markdown_report(path)`` renders them into a single markdown
document (the machine-generated companion to EXPERIMENTS.md).  The CLI
exposes this as ``python -m repro report``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from .core import (
    MappingMatrix,
    certify_optimality,
    conflict_vector_corank1,
    is_conflict_free_kernel_box,
    is_feasible_conflict_vector,
    matmul_baseline_ref23,
    optimal_free_schedule,
    procedure_5_1,
    solve_corank1_optimal,
    solve_space_optimal,
    transitive_closure_baseline_ref22,
    verify_certificate,
)
from .intlin import hnf
from .model import (
    ConstantBoundedIndexSet,
    bit_level_matrix_multiplication,
    matrix_multiplication,
    transitive_closure,
)
from .systolic import plan_interconnection, simulate_mapping

__all__ = [
    "experiment_e1_conflict_vectors",
    "experiment_e2_hnf_4d",
    "experiment_e3_matmul",
    "experiment_e4_transitive_closure",
    "experiment_e5_array_structure",
    "experiment_e6_execution",
    "experiment_e8_bitlevel",
    "experiment_e11_space_design",
    "experiment_e12_conflict_penalty",
    "run_all",
    "write_markdown_report",
]


def experiment_e1_conflict_vectors(mu: tuple[int, int] = (4, 4)) -> dict[str, Any]:
    """Figure 1: classify the paper's two exemplar vectors."""
    j = ConstantBoundedIndexSet(mu)
    return {
        "mu": mu,
        "gamma_1_1_feasible": is_feasible_conflict_vector((1, 1), j.mu),
        "gamma_3_5_feasible": is_feasible_conflict_vector((3, 5), j.mu),
    }


def experiment_e2_hnf_4d() -> dict[str, Any]:
    """Examples 2.1/4.2: the Hermite data of Equation 2.8's mapping."""
    rows = [[1, 7, 1, 1], [1, 7, 1, 0]]
    res = hnf(rows)
    t = MappingMatrix.from_rows(rows)
    mu = (6, 6, 6, 6)
    return {
        "h": res.h,
        "generators": res.kernel_columns(),
        "conflict_free": is_conflict_free_kernel_box(t, mu),
        "gamma3_feasible": is_feasible_conflict_vector([1, 0, -1, 0], mu),
    }


def experiment_e3_matmul(sweep: Sequence[int] = (2, 3, 4, 6)) -> list[dict[str, Any]]:
    """Example 5.1: the optimal-vs-[23] comparison rows."""
    rows = []
    for mu in sweep:
        algo = matrix_multiplication(mu)
        res = solve_corank1_optimal(algo, [[1, 1, -1]])
        baseline = matmul_baseline_ref23(mu)
        rows.append(
            {
                "mu": mu,
                "pi_ours": list(res.schedule.pi),
                "t_ours": res.total_time,
                "pi_ref23": list(baseline.mapping.schedule),
                "t_ref23": baseline.total_time,
                "used_search_fallback": res.used_search_fallback,
            }
        )
    return rows


def experiment_e4_transitive_closure(
    sweep: Sequence[int] = (2, 3, 4, 6),
) -> list[dict[str, Any]]:
    """Example 5.2: the optimal-vs-[22] comparison rows."""
    rows = []
    for mu in sweep:
        algo = transitive_closure(mu)
        res = solve_corank1_optimal(algo, [[0, 0, 1]])
        baseline = transitive_closure_baseline_ref22(mu)
        rows.append(
            {
                "mu": mu,
                "pi_ours": list(res.schedule.pi),
                "t_ours": res.total_time,
                "t_formula": mu * (mu + 3) + 1,
                "t_ref22": baseline.total_time,
                "gamma": conflict_vector_corank1(res.mapping),
            }
        )
    return rows


def experiment_e5_array_structure(mu: int = 4) -> dict[str, Any]:
    """Figure 2: the link plan of the optimal matmul mapping."""
    algo = matrix_multiplication(mu)
    t = MappingMatrix(space=((1, 1, -1),), schedule=(1, mu, 1))
    plan = plan_interconnection(algo, t)
    return {
        "buffers": list(plan.buffers),
        "total_buffers": plan.total_buffers,
        "hops": [plan.hops(i) for i in range(3)],
        "statically_collision_free": plan.statically_collision_free(),
    }


def experiment_e6_execution(mu: int = 4) -> dict[str, Any]:
    """Figure 3: the simulated execution audit."""
    import numpy as np

    rng = np.random.default_rng(0)
    a = rng.integers(0, 10, (mu + 1, mu + 1))
    b = rng.integers(0, 10, (mu + 1, mu + 1))
    algo = matrix_multiplication(mu, a=a, b=b)
    t = MappingMatrix(space=((1, 1, -1),), schedule=(1, mu, 1))
    report = simulate_mapping(algo, t)
    from .systolic import verify_matmul

    ok, _sim, _ref = verify_matmul(report.values, a, b)
    return {
        "makespan": report.makespan,
        "expected_makespan": mu * (mu + 2) + 1,
        "conflicts": len(report.conflicts),
        "link_collisions": len(report.link_collisions),
        "processors": report.num_processors,
        "result_exact": ok,
    }


def experiment_e8_bitlevel(
    sweep: Sequence[tuple[int, int]] = ((1, 1), (2, 1)),
) -> list[dict[str, Any]]:
    """The 5-D bit-level matmul onto a 2-D array."""
    space = [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]]
    rows = []
    for mu, word in sweep:
        algo = bit_level_matrix_multiplication(mu, word)
        res = procedure_5_1(algo, space)
        report = simulate_mapping(algo, res.mapping)
        rows.append(
            {
                "mu": mu,
                "word_bits": word,
                "pi": list(res.schedule.pi),
                "t": res.total_time,
                "processors": report.num_processors,
                "clean": report.ok,
            }
        )
    return rows


def experiment_e11_space_design(mu: int = 2) -> dict[str, Any]:
    """Problem 6.1: the design-space exploration headline."""
    algo = matrix_multiplication(mu)
    pi = procedure_5_1(algo, [[1, 1, -1]]).schedule.pi
    res = solve_space_optimal(algo, pi)
    paper = next(
        (d for d in res.ranking if d.mapping.space == ((1, 1, -1),)), None
    )
    return {
        "pi": list(pi),
        "best_space": [list(r) for r in res.best.mapping.space],
        "best_processors": res.best.cost.processors,
        "paper_processors": paper.cost.processors if paper else None,
    }


def experiment_e12_conflict_penalty(
    sweep: Sequence[int] = (2, 4, 6),
) -> list[dict[str, Any]]:
    """The conflict-penalty ablation plus optimality certificates."""
    rows = []
    for mu in sweep:
        algo = matrix_multiplication(mu)
        free_t = optimal_free_schedule(algo).total_time
        res = solve_corank1_optimal(algo, [[1, 1, -1]])
        cert = certify_optimality(algo, [[1, 1, -1]], res.schedule.pi)
        rows.append(
            {
                "mu": mu,
                "t_free": free_t,
                "t_array": res.total_time,
                "penalty": res.total_time - free_t,
                "certificate_refutations": len(cert.refutations),
                "certificate_valid": verify_certificate(algo, cert),
            }
        )
    return rows


def run_all(*, quick: bool = True) -> dict[str, Any]:
    """Execute every experiment; ``quick`` trims the sweeps."""
    sweep3 = (2, 3, 4) if quick else (2, 3, 4, 5, 6, 8)
    bit_sweep = ((1, 1),) if quick else ((1, 1), (2, 1), (1, 2), (2, 2))
    return {
        "E1": experiment_e1_conflict_vectors(),
        "E2": experiment_e2_hnf_4d(),
        "E3": experiment_e3_matmul(sweep3),
        "E4": experiment_e4_transitive_closure(sweep3),
        "E5": experiment_e5_array_structure(),
        "E6": experiment_e6_execution(),
        "E8": experiment_e8_bitlevel(bit_sweep),
        "E11": experiment_e11_space_design(),
        "E12": experiment_e12_conflict_penalty(sweep3[:2] + sweep3[-1:]),
    }


def write_markdown_report(path: str, *, quick: bool = True) -> dict[str, Any]:
    """Run everything and render a markdown report to ``path``."""
    data = run_all(quick=quick)
    lines = ["# Regenerated experiment report", ""]
    for key in sorted(data):
        lines.append(f"## {key}")
        lines.append("")
        value = data[key]
        if isinstance(value, list):
            if value:
                headers = list(value[0].keys())
                lines.append("| " + " | ".join(headers) + " |")
                lines.append("|" + "---|" * len(headers))
                for row in value:
                    lines.append(
                        "| " + " | ".join(str(row[h]) for h in headers) + " |"
                    )
        else:
            for k, v in value.items():
                lines.append(f"- **{k}**: {v}")
        lines.append("")
    text = "\n".join(lines)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return data
