"""Symbolic solution records: piecewise-polynomial optimal designs.

A :class:`SymbolicSolution` is the output of one compiler run: the
problem-size axis ``[mu_lo, mu_hi]`` cut into :class:`ValidityInterval`
pieces, each carrying the exact polynomial expressions (in ``mu``) for
the enumerative optimum on that piece — the winning schedule vector, the
total execution time and, for space/joint tasks, the space mapping rows
and the cost sheet.  Evaluating the record at a concrete ``mu`` inside a
certified interval is O(1) polynomial arithmetic and reproduces the
enumerative search bit-for-bit (winner, time, tie-break order), because
the compiler only certifies an interval after the fitted polynomials
matched real search runs at its endpoints and sampled interior points.

Outside the certified range — or at any point where a polynomial fails
to evaluate to an integer — :meth:`SymbolicSolution.eval` returns
``None`` and the caller falls back to plain enumeration.  The record
never guesses.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from .poly import RationalPoly

__all__ = ["SymbolicAnswer", "SymbolicSolution", "ValidityInterval"]

#: Cost-sheet metric names, in serialization order.
COST_FIELDS = ("processors", "wire_length", "buffers", "total_time")


def _polys_to_json(polys: Sequence[RationalPoly]) -> list[list[list[int]]]:
    return [p.to_list() for p in polys]


def _polys_from_json(data: Sequence) -> tuple[RationalPoly, ...]:
    return tuple(RationalPoly.from_list(entry) for entry in data)


@dataclass(frozen=True)
class ValidityInterval:
    """One certified piece ``mu in [lo, hi]`` of a symbolic solution.

    ``found=False`` intervals record that the search provably finds no
    design there (e.g. degenerate sizes); their expression fields are
    all ``None``.  ``verified`` lists the concrete ``mu`` values at
    which the expressions were checked against a real enumerative run —
    always including both endpoints.
    """

    lo: int
    hi: int
    found: bool
    pi: tuple[RationalPoly, ...] | None = None
    total_time: RationalPoly | None = None
    space: tuple[tuple[RationalPoly, ...], ...] | None = None
    cost: tuple[RationalPoly, ...] | None = None  # COST_FIELDS order
    verified: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")
        if self.found and self.total_time is None and self.cost is None:
            raise ValueError("a found interval needs expressions")

    def contains(self, mu: int) -> bool:
        return self.lo <= mu <= self.hi

    def to_dict(self) -> dict:
        data: dict = {"lo": self.lo, "hi": self.hi, "found": self.found,
                      "verified": list(self.verified)}
        if self.pi is not None:
            data["pi"] = _polys_to_json(self.pi)
        if self.total_time is not None:
            data["total_time"] = self.total_time.to_list()
        if self.space is not None:
            data["space"] = [_polys_to_json(row) for row in self.space]
        if self.cost is not None:
            data["cost"] = _polys_to_json(self.cost)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ValidityInterval":
        return cls(
            lo=int(data["lo"]),
            hi=int(data["hi"]),
            found=bool(data["found"]),
            pi=(_polys_from_json(data["pi"]) if "pi" in data else None),
            total_time=(
                RationalPoly.from_list(data["total_time"])
                if "total_time" in data
                else None
            ),
            space=(
                tuple(_polys_from_json(row) for row in data["space"])
                if "space" in data
                else None
            ),
            cost=(_polys_from_json(data["cost"]) if "cost" in data else None),
            verified=tuple(int(v) for v in data.get("verified", ())),
        )


@dataclass(frozen=True)
class SymbolicAnswer:
    """A concrete design obtained by evaluating a symbolic solution.

    The same facts an enumerative run would report, minus the search:
    ``pi``/``total_time`` for schedule answers, plus ``space``/``cost``/
    ``objective`` for space and joint answers.  ``interval`` names the
    certified piece that produced the answer.
    """

    task: str
    mu: int
    interval: tuple[int, int]
    found: bool
    pi: tuple[int, ...] | None = None
    total_time: int | None = None
    space: tuple[tuple[int, ...], ...] | None = None
    cost: dict[str, int] | None = None
    objective: float | None = None

    def to_dict(self) -> dict:
        data: dict = {
            "task": self.task,
            "mu": self.mu,
            "interval": list(self.interval),
            "found": self.found,
        }
        if self.pi is not None:
            data["pi"] = list(self.pi)
        if self.total_time is not None:
            data["total_time"] = self.total_time
        if self.space is not None:
            data["space"] = [list(row) for row in self.space]
        if self.cost is not None:
            data["cost"] = dict(self.cost)
        if self.objective is not None:
            data["objective"] = self.objective
        return data


@dataclass(frozen=True)
class SymbolicSolution:
    """A compiled, certified parametric design: solve once, serve any size.

    ``task`` is ``"schedule"``, ``"space"`` or ``"joint"``; ``family``
    names the algorithm family; ``params`` is the JSON-able compile
    input (dependence matrix, space rows or search weights, method) —
    the same dict whose canonical digest keys the solution cache.
    ``samples`` counts the enumerative searches the compiler ran, the
    honest price of the certificate.
    """

    task: str
    family: str
    mu_lo: int
    mu_hi: int
    params: dict = field(compare=False)
    intervals: tuple[ValidityInterval, ...] = ()
    samples: int = 0
    compile_seconds: float = 0.0

    def interval_for(self, mu: int) -> ValidityInterval | None:
        for interval in self.intervals:
            if interval.contains(mu):
                return interval
        return None

    def eval(self, mu: int) -> SymbolicAnswer | None:
        """O(1) answer at ``mu``, or ``None`` when not certified there.

        ``None`` means "fall back to enumeration": ``mu`` is outside
        ``[mu_lo, mu_hi]``, in a gap between intervals, or a fitted
        expression failed to evaluate to an integer (which would
        contradict the certificate, so the record refuses to answer).
        """
        if not isinstance(mu, int) or mu < self.mu_lo or mu > self.mu_hi:
            return None
        interval = self.interval_for(mu)
        if interval is None:
            return None
        span = (interval.lo, interval.hi)
        if not interval.found:
            return SymbolicAnswer(task=self.task, mu=mu, interval=span,
                                  found=False)
        try:
            pi = (
                tuple(p.eval_int(mu) for p in interval.pi)
                if interval.pi is not None
                else None
            )
            total_time = (
                interval.total_time.eval_int(mu)
                if interval.total_time is not None
                else None
            )
            space = (
                tuple(
                    tuple(p.eval_int(mu) for p in row)
                    for row in interval.space
                )
                if interval.space is not None
                else None
            )
            cost = (
                dict(zip(
                    COST_FIELDS,
                    (p.eval_int(mu) for p in interval.cost),
                ))
                if interval.cost is not None
                else None
            )
        except ValueError:
            return None
        objective = self._objective(cost)
        return SymbolicAnswer(
            task=self.task,
            mu=mu,
            interval=span,
            found=True,
            pi=pi,
            total_time=total_time,
            space=space,
            cost=cost,
            objective=objective,
        )

    def _objective(self, cost: dict[str, int] | None) -> float | None:
        """Recompute the search's ranking objective from the cost sheet.

        Stored weights, not stored objectives: the objective is a pure
        function of the cost metrics, so evaluating it at answer time
        keeps it consistent with the cost polynomials by construction.
        """
        if cost is None:
            return None
        if self.task == "joint":
            tw = float(self.params.get("time_weight", 1.0))
            sw = float(self.params.get("space_weight", 1.0))
            return tw * cost["total_time"] + sw * (
                cost["processors"] + cost["wire_length"]
            )
        # Space task: Problem 6.1's default criterion (PEs + wire).
        return float(cost["processors"] + cost["wire_length"])

    @property
    def coverage(self) -> int:
        """How many integer sizes in ``[mu_lo, mu_hi]`` are certified."""
        return sum(iv.hi - iv.lo + 1 for iv in self.intervals)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "task": self.task,
            "family": self.family,
            "mu_lo": self.mu_lo,
            "mu_hi": self.mu_hi,
            "params": dict(self.params),
            "intervals": [iv.to_dict() for iv in self.intervals],
            "samples": self.samples,
            "compile_seconds": self.compile_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SymbolicSolution":
        return cls(
            task=str(data["task"]),
            family=str(data["family"]),
            mu_lo=int(data["mu_lo"]),
            mu_hi=int(data["mu_hi"]),
            params=dict(data["params"]),
            intervals=tuple(
                ValidityInterval.from_dict(entry)
                for entry in data["intervals"]
            ),
            samples=int(data.get("samples", 0)),
            compile_seconds=float(data.get("compile_seconds", 0.0)),
        )
