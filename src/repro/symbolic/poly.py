"""Exact rational polynomials in the size parameter ``mu``.

The symbolic compiler represents every optimal-design quantity (schedule
components, total time, cost metrics) as a polynomial in ``mu`` with
``fractions.Fraction`` coefficients.  Everything here is exact: fitting
is Newton interpolation over rationals, evaluation is Horner over
rationals, and integer results are demanded to *be* integers — there is
no floating point anywhere, so a fitted expression can be verified
bit-for-bit against the enumerative search.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from fractions import Fraction

__all__ = ["RationalPoly", "fit_polynomial", "poly_from_samples"]


def _trim(coeffs: Sequence[Fraction]) -> tuple[Fraction, ...]:
    out = list(coeffs)
    while out and out[-1] == 0:
        out.pop()
    return tuple(out)


@dataclass(frozen=True)
class RationalPoly:
    """A polynomial ``c0 + c1*mu + c2*mu^2 + ...`` over the rationals.

    ``coeffs`` is low-degree-first with no trailing zeros; the zero
    polynomial has an empty tuple.  Instances are immutable and
    hashable, and compare by exact coefficient equality.
    """

    coeffs: tuple[Fraction, ...]

    @classmethod
    def from_coeffs(cls, coeffs: Sequence) -> "RationalPoly":
        return cls(_trim([Fraction(c) for c in coeffs]))

    @classmethod
    def constant(cls, value) -> "RationalPoly":
        return cls.from_coeffs([value])

    @property
    def degree(self) -> int:
        """Degree of the polynomial (``-1`` for the zero polynomial)."""
        return len(self.coeffs) - 1

    @property
    def is_constant(self) -> bool:
        return len(self.coeffs) <= 1

    def __call__(self, mu) -> Fraction:
        acc = Fraction(0)
        for c in reversed(self.coeffs):
            acc = acc * mu + c
        return acc

    def eval_int(self, mu: int) -> int:
        """Evaluate at an integer ``mu``, demanding an integer result.

        Raises :class:`ValueError` on a fractional value — the caller
        (the solution evaluator) treats that as "not certified here"
        rather than rounding.
        """
        value = self(mu)
        if value.denominator != 1:
            raise ValueError(
                f"{self} is not integral at mu={mu} (value {value})"
            )
        return int(value)

    # -- serialization ---------------------------------------------------

    def to_list(self) -> list[list[int]]:
        """JSON form: ``[[numerator, denominator], ...]`` low-degree first."""
        return [[c.numerator, c.denominator] for c in self.coeffs]

    @classmethod
    def from_list(cls, data: Sequence[Sequence[int]]) -> "RationalPoly":
        return cls.from_coeffs([Fraction(int(n), int(d)) for n, d in data])

    def __str__(self) -> str:
        if not self.coeffs:
            return "0"
        terms = []
        for power in range(len(self.coeffs) - 1, -1, -1):
            c = self.coeffs[power]
            if c == 0:
                continue
            mag = abs(c)
            if power == 0:
                body = str(mag)
            else:
                var = "mu" if power == 1 else f"mu^{power}"
                body = var if mag == 1 else f"{mag}*{var}"
            if not terms:
                terms.append(body if c > 0 else f"-{body}")
            else:
                terms.append(f"+ {body}" if c > 0 else f"- {body}")
        return " ".join(terms)


def _interpolate(points: Sequence[tuple[int, Fraction]]) -> RationalPoly:
    """Exact Newton interpolation through all ``points``."""
    xs = [Fraction(x) for x, _ in points]
    ys = [Fraction(y) for _, y in points]
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must have distinct mu values")
    coef = ys[:]
    n = len(points)
    for j in range(1, n):
        for i in range(n - 1, j - 1, -1):
            coef[i] = (coef[i] - coef[i - 1]) / (xs[i] - xs[i - j])
    # Expand the Newton form into monomial coefficients.
    poly = [Fraction(0)] * n
    basis = [Fraction(1)]  # (x - x0)(x - x1)... accumulated
    for j in range(n):
        for k, c in enumerate(basis):
            poly[k] += coef[j] * c
        grown = [Fraction(0)] * (len(basis) + 1)
        for k, c in enumerate(basis):
            grown[k] -= c * xs[j]
            grown[k + 1] += c
        basis = grown
    return RationalPoly.from_coeffs(poly)


def fit_polynomial(
    points: Sequence[tuple[int, int]], max_degree: int
) -> RationalPoly | None:
    """Fit an exact polynomial of degree <= ``max_degree``, or ``None``.

    Interpolates through the first ``max_degree + 1`` points and demands
    the result reproduce every remaining point exactly; any mismatch
    means the data is not polynomial of that degree and ``None`` is
    returned (the interval compiler then splits the range instead).
    """
    if max_degree < 0:
        raise ValueError(f"max_degree must be >= 0, got {max_degree}")
    if not points:
        raise ValueError("at least one sample point is required")
    window = list(points[: max_degree + 1])
    poly = _interpolate([(x, Fraction(y)) for x, y in window])
    for x, y in points[max_degree + 1 :]:
        if poly(x) != y:
            return None
    return poly


def poly_from_samples(fn, max_degree: int, *, probe_at: int = 1) -> RationalPoly:
    """Recover the polynomial a black-box integer function computes.

    Samples ``fn`` at ``max_degree + 2`` consecutive integers starting
    at ``probe_at`` and fits; the extra point cross-checks that ``fn``
    really is polynomial of degree <= ``max_degree`` over the probes.
    Used by the CLI to turn ``--pi "mu+1"`` expressions into exact
    :class:`RationalPoly` objects.
    """
    xs = list(range(probe_at, probe_at + max_degree + 2))
    points = [(x, int(fn(x))) for x in xs]
    poly = fit_polynomial(points, max_degree)
    if poly is None:
        raise ValueError(
            f"expression is not a polynomial of degree <= {max_degree} "
            f"on mu in [{xs[0]}, {xs[-1]}]"
        )
    return poly
