"""Symbolic design compiler: solve once in ``mu``, serve any size.

Public surface:

* :class:`RationalPoly` — exact rational polynomials in ``mu``.
* :class:`AlgorithmFamily` / :func:`family_from_algorithm` — algorithms
  parameterized by one uniform size.
* :func:`compile_schedule` / :func:`compile_space` /
  :func:`compile_joint` — run the enumerative engine at sample sizes
  and certify piecewise-polynomial optima over a range.
* :class:`SymbolicSolution` — the compiled artifact; ``eval(mu)``
  answers a concrete size in O(1), or ``None`` outside the certificate.
* :func:`load_or_compile` — cache-backed compile keyed by the canonical
  digest of the compile parameters.
"""

from .compiler import (
    DEFAULT_INTERIOR_SAMPLES,
    DEFAULT_MAX_DEGREE,
    DEFAULT_MU_RANGE,
    AlgorithmFamily,
    CompileError,
    compile_joint,
    compile_schedule,
    compile_space,
    family_from_algorithm,
    joint_compile_params,
    load_or_compile,
    schedule_compile_params,
    solution_cache_key,
    space_compile_params,
)
from .poly import RationalPoly, fit_polynomial, poly_from_samples
from .solution import SymbolicAnswer, SymbolicSolution, ValidityInterval

__all__ = [
    "DEFAULT_INTERIOR_SAMPLES",
    "DEFAULT_MAX_DEGREE",
    "DEFAULT_MU_RANGE",
    "AlgorithmFamily",
    "CompileError",
    "RationalPoly",
    "SymbolicAnswer",
    "SymbolicSolution",
    "ValidityInterval",
    "compile_joint",
    "compile_schedule",
    "compile_space",
    "family_from_algorithm",
    "fit_polynomial",
    "joint_compile_params",
    "load_or_compile",
    "poly_from_samples",
    "schedule_compile_params",
    "solution_cache_key",
    "space_compile_params",
]
