"""The parametric design compiler: enumerate at a few sizes, prove a range.

The enumerative engine (:func:`repro.core.optimize.procedure_5_1`,
:func:`repro.core.space_optimize.solve_space_optimal` /
:func:`solve_joint_optimal`) answers one problem size per run.  For the
paper's uniform-dependence algorithms the *answers* are strikingly
regular: the winning schedule vector, total time, space mapping and
cost sheet are piecewise polynomial in the (uniform) size parameter
``mu``.  This module exploits that: it runs the enumerative search at a
small number of sample sizes, fits exact rational polynomials, and
certifies maximal validity intervals by re-running the search at
interval endpoints and sampled interior points.  The result — a
:class:`~repro.symbolic.solution.SymbolicSolution` — answers any ``mu``
inside a certified interval in O(1), bit-identical to what enumeration
would return (including tie-break order, because the certified winner
*is* the search's tie-break selection at every verified size).

The interval-discovery loop per piece:

1. **Window.** Sample consecutive sizes until ``max_degree + 1`` points
   share a structural shape (found/not-found, dimensions), then
   interpolate exact polynomials through the window.
2. **Extend.** Probe forward with exponentially growing steps while the
   polynomials keep reproducing real search results; bisect the first
   failing step to locate the boundary.
3. **Verify.** Re-check the interval at its endpoints, ``interior``
   evenly spaced inner points, and every size already sampled inside
   it; shrink past any failure and repeat until clean.

Every sample is a genuine enumerative run — the certificate's cost is
``SymbolicSolution.samples`` searches at compile time, paid once and
cached (keyed by the canonical digest of the compile parameters, same
content-digest scheme as :mod:`repro.dse.cache`).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import NamedTuple

from ..core.optimize import procedure_5_1
from ..core.space_optimize import solve_joint_optimal, solve_space_optimal
from ..dse.cache import ResultCache, canonical_key
from ..model import ConstantBoundedIndexSet, UniformDependenceAlgorithm
from ..obs import get_tracer
from .poly import RationalPoly, fit_polynomial
from .solution import SymbolicSolution, ValidityInterval

__all__ = [
    "DEFAULT_INTERIOR_SAMPLES",
    "DEFAULT_MAX_DEGREE",
    "DEFAULT_MU_RANGE",
    "AlgorithmFamily",
    "CompileError",
    "compile_joint",
    "compile_schedule",
    "compile_space",
    "family_from_algorithm",
    "joint_compile_params",
    "load_or_compile",
    "schedule_compile_params",
    "solution_cache_key",
    "space_compile_params",
]

#: Default certified size range for compiles that do not specify one.
DEFAULT_MU_RANGE = (1, 16)

#: The paper's closed-form optima are at most quadratic in ``mu`` (total
#: time ``mu*(mu+2)+1`` on Example 5.1); degree 2 is the observed ceiling.
DEFAULT_MAX_DEGREE = 2

#: Evenly spaced interior verification points per certified interval.
DEFAULT_INTERIOR_SAMPLES = 2


class CompileError(ValueError):
    """The family or parameters cannot be compiled symbolically."""


@dataclass(frozen=True)
class AlgorithmFamily:
    """An algorithm parameterized by one uniform size ``mu``.

    ``build(mu)`` must return the family member whose index set is the
    cube ``[0, mu]^n`` — same dependence matrix at every size (that is
    what makes the dependence structure, and hence the optimum,
    size-regular).
    """

    name: str
    build: Callable[[int], UniformDependenceAlgorithm] = field(compare=False)

    def algorithm(self, mu: int) -> UniformDependenceAlgorithm:
        if mu < 1:
            raise CompileError(f"mu must be >= 1, got {mu}")
        algo = self.build(mu)
        if set(algo.index_set.mu) != {mu}:
            raise CompileError(
                f"family {self.name!r} built non-uniform bounds "
                f"{algo.index_set.mu} for mu={mu}"
            )
        return algo


def family_from_algorithm(
    algorithm: UniformDependenceAlgorithm,
) -> AlgorithmFamily:
    """Lift a concrete algorithm instance into its size family.

    The instance's (uniform) ``mu`` is discarded; its dependence matrix
    and name are kept and re-instantiated at any requested size.  Raises
    :class:`CompileError` for non-uniform index-set bounds — those have
    more than one size axis and no single ``mu`` to parameterize.
    """
    bounds = algorithm.index_set.mu
    if len(set(bounds)) != 1:
        raise CompileError(
            f"algorithm {algorithm.name!r} has non-uniform bounds {bounds}; "
            "symbolic compilation needs a single size parameter"
        )
    n = len(bounds)
    dep = algorithm.dependence_matrix
    name = algorithm.name

    def build(mu: int) -> UniformDependenceAlgorithm:
        return UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((mu,) * n),
            dependence_matrix=dep,
            name=name,
        )

    return AlgorithmFamily(name=name, build=build)


# -- the interval engine -------------------------------------------------

#: Structural shape of a not-found sample.
_NONE_SHAPE = ("none",)


class _Sample(NamedTuple):
    """One enumerative run: a structural ``shape`` plus integer values.

    Samples with different shapes can never share an interval; values
    are only compared between same-shape samples, coordinate-wise.
    """

    shape: tuple
    values: tuple[int, ...]


class _RawInterval(NamedTuple):
    lo: int
    hi: int
    shape: tuple
    polys: tuple[RationalPoly, ...]
    verified: tuple[int, ...]


def _spread(lo: int, hi: int, count: int) -> list[int]:
    """``count`` evenly spaced integers strictly inside ``[lo, hi]``."""
    if hi - lo < 2 or count < 1:
        return []
    return sorted({lo + round(i * (hi - lo) / (count + 1))
                   for i in range(1, count + 1)} - {lo, hi})


def _compile_intervals(
    lo: int,
    hi: int,
    sample_fn: Callable[[int], _Sample],
    max_degree: int,
    interior: int,
) -> tuple[list[_RawInterval], int]:
    """Cut ``[lo, hi]`` into certified pieces.  Returns (pieces, samples)."""
    memo: dict[int, _Sample] = {}

    def get(mu: int) -> _Sample:
        if mu not in memo:
            memo[mu] = sample_fn(mu)
        return memo[mu]

    def matches(shape: tuple, polys: Sequence[RationalPoly], mu: int) -> bool:
        s = get(mu)
        if s.shape != shape:
            return False
        return all(p(mu) == v for p, v in zip(polys, s.values))

    pieces: list[_RawInterval] = []
    start = lo
    while start <= hi:
        shape = get(start).shape
        width = len(get(start).values)
        window = [start]
        while (
            len(window) < max_degree + 1
            and window[-1] < hi
            and get(window[-1] + 1).shape == shape
        ):
            window.append(window[-1] + 1)
        polys = tuple(
            fit_polynomial(
                [(m, get(m).values[k]) for m in window], max_degree
            )
            for k in range(width)
        )
        end = window[-1]
        # Extend with exponentially growing probes, bisect the boundary.
        step = 1
        while end < hi:
            probe = min(end + step, hi)
            if matches(shape, polys, probe):
                end = probe
                step *= 2
            elif probe == end + 1:
                break
            else:
                good, bad = end, probe
                while bad - good > 1:
                    mid = (good + bad) // 2
                    if matches(shape, polys, mid):
                        good = mid
                    else:
                        bad = mid
                end = good
                break
        # Verify (and shrink past failures) until the piece is clean.
        while True:
            checks = sorted(
                set(_spread(start, end, interior))
                | {m for m in memo if start <= m <= end}
            )
            failed = next(
                (m for m in checks if not matches(shape, polys, m)), None
            )
            if failed is None:
                break
            end = max(
                m for m in checks
                if m < failed and matches(shape, polys, m)
            )
        verified = tuple(sorted(m for m in memo if start <= m <= end))
        pieces.append(_RawInterval(start, end, shape, polys, verified))
        start = end + 1
    return pieces, len(memo)


# -- task samplers and unpackers ----------------------------------------


def _flatten_design(design, *, with_pi: bool) -> _Sample:
    mapping = design.mapping
    rows = tuple(tuple(int(x) for x in row) for row in mapping.space)
    shape = ("ok", len(rows), len(rows[0]) if rows else 0)
    values: list[int] = [x for row in rows for x in row]
    if with_pi:
        values.extend(int(x) for x in mapping.schedule)
    cost = design.cost
    values.extend(
        (cost.processors, cost.wire_length, cost.buffers, cost.total_time)
    )
    return _Sample(shape, tuple(values))


def _unpack_schedule(raw: _RawInterval) -> ValidityInterval:
    if raw.shape == _NONE_SHAPE:
        return ValidityInterval(raw.lo, raw.hi, False, verified=raw.verified)
    (_, n) = raw.shape
    return ValidityInterval(
        raw.lo, raw.hi, True,
        pi=raw.polys[:n],
        total_time=raw.polys[n],
        verified=raw.verified,
    )


def _unpack_design(raw: _RawInterval, *, with_pi: bool) -> ValidityInterval:
    if raw.shape == _NONE_SHAPE:
        return ValidityInterval(raw.lo, raw.hi, False, verified=raw.verified)
    (_, array_dim, n) = raw.shape
    polys = raw.polys
    space = tuple(
        polys[r * n : (r + 1) * n] for r in range(array_dim)
    )
    at = array_dim * n
    pi = None
    if with_pi:
        pi = polys[at : at + n]
        at += n
    cost = polys[at : at + 4]
    return ValidityInterval(
        raw.lo, raw.hi, True,
        pi=pi,
        space=space,
        cost=cost,
        total_time=cost[3],
        verified=raw.verified,
    )


def _check_range(mu_range: Sequence[int]) -> tuple[int, int]:
    lo, hi = (int(x) for x in mu_range)
    if not 1 <= lo <= hi:
        raise CompileError(f"need 1 <= mu_lo <= mu_hi, got ({lo}, {hi})")
    return lo, hi


def _family_dependence(family: AlgorithmFamily, lo: int, hi: int) -> list:
    dep_lo = family.algorithm(lo).dependence_matrix.tolist()
    if family.algorithm(hi).dependence_matrix.tolist() != dep_lo:
        raise CompileError(
            f"family {family.name!r} changes its dependence matrix with mu; "
            "the optimum cannot be size-regular"
        )
    return dep_lo


def _finish(task, family, lo, hi, params, intervals, samples, t0):
    return SymbolicSolution(
        task=task,
        family=family.name,
        mu_lo=lo,
        mu_hi=hi,
        params=params,
        intervals=tuple(intervals),
        samples=samples,
        compile_seconds=time.perf_counter() - t0,
    )


def schedule_compile_params(
    dependence: Sequence[Sequence[int]],
    space: Sequence[Sequence[int]],
    *,
    method: str = "auto",
    mu_range: Sequence[int] = DEFAULT_MU_RANGE,
    max_degree: int = DEFAULT_MAX_DEGREE,
    interior_samples: int = DEFAULT_INTERIOR_SAMPLES,
) -> dict:
    """The canonical (JSON-able) identity of one schedule compile.

    Everything that influences the compiled artifact and nothing that
    does not — :func:`solution_cache_key` digests exactly this dict, so
    the serve layer can locate a compiled solution without rebuilding
    the family object.
    """
    lo, hi = _check_range(mu_range)
    return {
        "task": "symbolic-schedule",
        "dependence": [list(map(int, row)) for row in dependence],
        "space": [list(map(int, row)) for row in space],
        "method": method,
        "mu_lo": lo,
        "mu_hi": hi,
        "max_degree": int(max_degree),
        "interior_samples": int(interior_samples),
    }


def space_compile_params(
    dependence: Sequence[Sequence[int]],
    pi: Sequence[RationalPoly],
    *,
    array_dim: int = 1,
    magnitude: int = 1,
    mu_range: Sequence[int] = DEFAULT_MU_RANGE,
    max_degree: int = DEFAULT_MAX_DEGREE,
    interior_samples: int = DEFAULT_INTERIOR_SAMPLES,
) -> dict:
    """Canonical identity of one space-task compile (see schedule twin)."""
    lo, hi = _check_range(mu_range)
    return {
        "task": "symbolic-space",
        "dependence": [list(map(int, row)) for row in dependence],
        "pi": [p.to_list() for p in pi],
        "array_dim": int(array_dim),
        "magnitude": int(magnitude),
        "mu_lo": lo,
        "mu_hi": hi,
        "max_degree": int(max_degree),
        "interior_samples": int(interior_samples),
    }


def joint_compile_params(
    dependence: Sequence[Sequence[int]],
    *,
    array_dim: int = 1,
    magnitude: int = 1,
    time_weight: float = 1.0,
    space_weight: float = 1.0,
    mu_range: Sequence[int] = DEFAULT_MU_RANGE,
    max_degree: int = DEFAULT_MAX_DEGREE,
    interior_samples: int = DEFAULT_INTERIOR_SAMPLES,
) -> dict:
    """Canonical identity of one joint-task compile (see schedule twin)."""
    lo, hi = _check_range(mu_range)
    return {
        "task": "symbolic-joint",
        "dependence": [list(map(int, row)) for row in dependence],
        "array_dim": int(array_dim),
        "magnitude": int(magnitude),
        "time_weight": float(time_weight),
        "space_weight": float(space_weight),
        "mu_lo": lo,
        "mu_hi": hi,
        "max_degree": int(max_degree),
        "interior_samples": int(interior_samples),
    }


def solution_cache_key(params: dict) -> str:
    """Cache key for a compile — canonical digest of its params dict."""
    return canonical_key(params)


def compile_schedule(
    family: AlgorithmFamily,
    space: Sequence[Sequence[int]],
    *,
    method: str = "auto",
    mu_range: Sequence[int] = DEFAULT_MU_RANGE,
    max_degree: int = DEFAULT_MAX_DEGREE,
    interior_samples: int = DEFAULT_INTERIOR_SAMPLES,
) -> SymbolicSolution:
    """Certify Procedure 5.1's optimum over ``mu in mu_range``.

    Each sample runs Procedure 5.1 with its default pruning (orbit
    collapsing + the LP ring bound) enabled: both are proven
    result-preserving, so the sampled optima — and therefore the
    compiled polynomial pieces and their certificates — are identical
    to what an unpruned sampling pass would produce, just cheaper.
    The compile-params digest is unaffected for the same reason.
    """
    t0 = time.perf_counter()
    lo, hi = _check_range(mu_range)
    dep = _family_dependence(family, lo, hi)
    space_rows = [list(map(int, row)) for row in space]

    def sample(mu: int) -> _Sample:
        result = procedure_5_1(family.algorithm(mu), space_rows, method=method)
        if not result.found:
            return _Sample(_NONE_SHAPE, ())
        pi = tuple(int(x) for x in result.schedule.pi)
        return _Sample(("ok", len(pi)), (*pi, int(result.total_time)))

    with get_tracer().span(
        "symbolic.compile", task="schedule", family=family.name,
        mu_lo=lo, mu_hi=hi,
    ) as span:
        raw, samples = _compile_intervals(
            lo, hi, sample, max_degree, interior_samples
        )
        span.set(samples=samples, intervals=len(raw))
    params = schedule_compile_params(
        dep, space_rows, method=method, mu_range=(lo, hi),
        max_degree=max_degree, interior_samples=interior_samples,
    )
    return _finish(
        "schedule", family, lo, hi, params,
        [_unpack_schedule(r) for r in raw], samples, t0,
    )


def compile_space(
    family: AlgorithmFamily,
    pi: Sequence[RationalPoly | int],
    *,
    array_dim: int = 1,
    magnitude: int = 1,
    mu_range: Sequence[int] = DEFAULT_MU_RANGE,
    max_degree: int = DEFAULT_MAX_DEGREE,
    interior_samples: int = DEFAULT_INTERIOR_SAMPLES,
) -> SymbolicSolution:
    """Certify Problem 6.1's optimal space mapping for a schedule family.

    ``pi`` entries may be integers or :class:`RationalPoly` expressions
    in ``mu`` (e.g. the matmul optimum's ``mu - 1`` component), so one
    compile covers schedules that themselves scale with the size.
    """
    t0 = time.perf_counter()
    lo, hi = _check_range(mu_range)
    dep = _family_dependence(family, lo, hi)
    pi_polys = tuple(
        p if isinstance(p, RationalPoly) else RationalPoly.constant(int(p))
        for p in pi
    )

    def sample(mu: int) -> _Sample:
        pi_mu = [p.eval_int(mu) for p in pi_polys]
        try:
            result = solve_space_optimal(
                family.algorithm(mu), pi_mu,
                array_dim=array_dim, magnitude=magnitude,
            )
        except ValueError:
            # Pi violates Pi D > 0 at this size: provably no design.
            return _Sample(_NONE_SHAPE, ())
        if not result.found:
            return _Sample(_NONE_SHAPE, ())
        return _flatten_design(result.best, with_pi=False)

    with get_tracer().span(
        "symbolic.compile", task="space", family=family.name,
        mu_lo=lo, mu_hi=hi,
    ) as span:
        raw, samples = _compile_intervals(
            lo, hi, sample, max_degree, interior_samples
        )
        span.set(samples=samples, intervals=len(raw))
    params = space_compile_params(
        dep, pi_polys, array_dim=array_dim, magnitude=magnitude,
        mu_range=(lo, hi), max_degree=max_degree,
        interior_samples=interior_samples,
    )
    return _finish(
        "space", family, lo, hi, params,
        [_unpack_design(r, with_pi=False) for r in raw], samples, t0,
    )


def compile_joint(
    family: AlgorithmFamily,
    *,
    array_dim: int = 1,
    magnitude: int = 1,
    time_weight: float = 1.0,
    space_weight: float = 1.0,
    mu_range: Sequence[int] = DEFAULT_MU_RANGE,
    max_degree: int = DEFAULT_MAX_DEGREE,
    interior_samples: int = DEFAULT_INTERIOR_SAMPLES,
) -> SymbolicSolution:
    """Certify Problem 6.2's joint schedule+space optimum over a range."""
    t0 = time.perf_counter()
    lo, hi = _check_range(mu_range)
    dep = _family_dependence(family, lo, hi)

    def sample(mu: int) -> _Sample:
        result = solve_joint_optimal(
            family.algorithm(mu),
            array_dim=array_dim, magnitude=magnitude,
            time_weight=time_weight, space_weight=space_weight,
        )
        if not result.found:
            return _Sample(_NONE_SHAPE, ())
        return _flatten_design(result.best, with_pi=True)

    with get_tracer().span(
        "symbolic.compile", task="joint", family=family.name,
        mu_lo=lo, mu_hi=hi,
    ) as span:
        raw, samples = _compile_intervals(
            lo, hi, sample, max_degree, interior_samples
        )
        span.set(samples=samples, intervals=len(raw))
    params = joint_compile_params(
        dep, array_dim=array_dim, magnitude=magnitude,
        time_weight=time_weight, space_weight=space_weight,
        mu_range=(lo, hi), max_degree=max_degree,
        interior_samples=interior_samples,
    )
    return _finish(
        "joint", family, lo, hi, params,
        [_unpack_design(r, with_pi=True) for r in raw], samples, t0,
    )


def load_or_compile(
    compile_fn: Callable[[], SymbolicSolution],
    params: dict,
    cache: ResultCache | None = None,
) -> tuple[SymbolicSolution, bool]:
    """Fetch a compiled solution from ``cache`` or compile and store it.

    Returns ``(solution, compiled)`` where ``compiled`` is ``True`` when
    the compiler actually ran (a cache miss).  The key is the canonical
    digest of ``params`` — the same dict the compile functions embed in
    ``SymbolicSolution.params`` — so any client that can name the
    compile inputs can locate the artifact.
    """
    key = solution_cache_key(params)
    if cache is not None:
        entry = cache.get(key)
        if entry is not None:
            try:
                return SymbolicSolution.from_dict(entry), False
            except (KeyError, TypeError, ValueError):
                pass  # malformed payload: recompile and overwrite
    solution = compile_fn()
    if cache is not None:
        cache.put(key, solution.to_dict())
    return solution, True
