"""Processor array model: PE coordinates, links, occupancy geometry.

The array realized by a mapping is the image ``S(J)`` of the index set
under the space mapping — for the paper's linear-array examples a
contiguous segment of integers, for 2-D bit-level targets a set of
lattice points.  This module materializes that geometry (PE set, per-
dependence channel links, array extents) for the simulator and the
visualizer; it contains no timing logic.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from ..model import UniformDependenceAlgorithm
from ..core.mapping import MappingMatrix
from .interconnect import InterconnectionPlan

__all__ = ["ProcessorArray", "Link", "build_array"]


@dataclass(frozen=True)
class Link:
    """A directed channel segment used by one dependence's data stream.

    Attributes
    ----------
    channel:
        Dependence index (the paper draws one physical link per data
        stream: the ``A``, ``B`` and ``C`` links of Figure 2).
    source, target:
        PE coordinates.
    """

    channel: int
    source: tuple[int, ...]
    target: tuple[int, ...]


@dataclass(frozen=True)
class ProcessorArray:
    """The physical array induced by a mapping.

    Attributes
    ----------
    processors:
        All PE coordinates ``{S j : j in J}``, sorted.
    dimension:
        Array dimension ``k - 1``.
    links:
        Every channel link any token traverses (deduplicated).
    plan:
        The interconnection plan the links were expanded from.
    """

    processors: tuple[tuple[int, ...], ...]
    dimension: int
    links: tuple[Link, ...]
    plan: InterconnectionPlan

    @property
    def num_processors(self) -> int:
        return len(self.processors)

    def extent(self) -> tuple[tuple[int, int], ...]:
        """Per-axis (min, max) PE coordinates; empty for a 0-D array."""
        if self.dimension == 0 or not self.processors:
            return ()
        return tuple(
            (min(p[a] for p in self.processors), max(p[a] for p in self.processors))
            for a in range(self.dimension)
        )

    def links_by_channel(self, channel: int) -> Iterator[Link]:
        return (link for link in self.links if link.channel == channel)


def _walk_route(
    start: tuple[int, ...],
    route: tuple[int, ...],
    primitives: tuple[tuple[int, ...], ...],
) -> list[tuple[int, ...]]:
    """PE coordinates visited along a hop route, including endpoints."""
    path = [start]
    pos = list(start)
    for prim_col in route:
        step = [primitives[row][prim_col] for row in range(len(primitives))]
        pos = [a + b for a, b in zip(pos, step)]
        path.append(tuple(pos))
    return path


def build_array(
    algorithm: UniformDependenceAlgorithm,
    mapping: MappingMatrix,
    plan: InterconnectionPlan,
) -> ProcessorArray:
    """Materialize the PE set and all channel links for a mapped algorithm.

    Enumerates the index set once; for each dependence edge whose source
    lies inside ``J``, walks the planned hop route from the source PE
    and records every directed link segment on its channel.
    """
    dim = mapping.array_dimension
    smat = mapping.space_matrix
    processors: set[tuple[int, ...]] = set()
    links: set[Link] = set()
    deps = algorithm.dependence_vectors()

    pe_of: dict[tuple[int, ...], tuple[int, ...]] = {}
    for j in algorithm.index_set:
        pe = tuple(smat.matvec(j)) if smat.nrows else ()
        processors.add(pe)
        pe_of[tuple(j)] = pe

    # Only links some token actually traverses: walk the planned route
    # from the producer PE of every in-set dependence edge.  (Walking
    # from every PE would fabricate phantom links past the array edge.)
    for j, pe in pe_of.items():
        for i, d in enumerate(deps):
            route = plan.routes[i]
            if not route:
                continue
            src = tuple(a - b for a, b in zip(j, d))
            if src not in pe_of:
                continue
            path = _walk_route(pe_of[src], route, plan.primitives)
            for a, b in zip(path, path[1:]):
                links.add(Link(channel=i, source=a, target=b))

    return ProcessorArray(
        processors=tuple(sorted(processors)),
        dimension=dim,
        links=tuple(sorted(links, key=lambda l: (l.channel, l.source, l.target))),
        plan=plan,
    )
