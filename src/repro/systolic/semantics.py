"""Functional verification helpers: simulated results vs direct NumPy.

The simulator executes an algorithm's attached semantics in schedule
order; these helpers extract the mathematical result from the per-point
values and compare it with a straightforward NumPy computation, closing
the loop from "the mapping is conflict-free in theory" to "the mapped
array computes the right matrix".
"""

from __future__ import annotations

import numpy as np

from ..model import UniformDependenceAlgorithm

__all__ = [
    "extract_matmul_result",
    "verify_matmul",
    "extract_convolution_result",
    "verify_convolution",
    "reference_transitive_closure",
]


def extract_matmul_result(values: dict, mu: int) -> np.ndarray:
    """Read ``C`` off the matmul value lattice.

    The accumulation runs along ``j3``; the finished ``c[j1, j2]`` is
    the third component of the value at ``(j1, j2, mu)``.
    """
    size = mu + 1
    c = np.empty((size, size), dtype=np.asarray(values[(0, 0, mu)][2]).dtype)
    for j1 in range(size):
        for j2 in range(size):
            c[j1, j2] = values[(j1, j2, mu)][2]
    return c


def verify_matmul(
    values: dict, a: np.ndarray, b: np.ndarray
) -> tuple[bool, np.ndarray, np.ndarray]:
    """Compare the simulated product with ``a @ b``.

    Returns ``(matches, simulated, reference)``.
    """
    mu = a.shape[0] - 1
    simulated = extract_matmul_result(values, mu)
    reference = a @ b
    return bool(np.array_equal(simulated, reference)), simulated, reference


def extract_convolution_result(values: dict, taps: int, samples: int) -> np.ndarray:
    """Read ``y`` off the convolution value lattice (accumulation along k)."""
    y = np.empty(samples + 1, dtype=np.asarray(values[(0, taps)][0]).dtype)
    for i in range(samples + 1):
        y[i] = values[(i, taps)][0]
    return y


def verify_convolution(
    values: dict,
    weights: np.ndarray,
    signal: np.ndarray,
    taps: int,
    samples: int,
) -> tuple[bool, np.ndarray, np.ndarray]:
    """Compare the simulated convolution against a direct evaluation.

    The algorithm computes ``y[i] = sum_{k=0..taps} w[k] * x[i - k]``
    with the signal pre-shifted by ``taps`` (see
    :func:`repro.model.library.convolution_1d`).
    """
    w = np.asarray(weights)
    x = np.asarray(signal)
    simulated = extract_convolution_result(values, taps, samples)
    reference = np.array(
        [
            sum(w[k] * x[i - k + taps] for k in range(taps + 1))
            for i in range(samples + 1)
        ]
    )
    return bool(np.array_equal(simulated, reference)), simulated, reference


def extract_lu_result(values: dict, mu: int) -> tuple[list[list], list[list]]:
    """Read ``(L, U)`` off the LU value lattice (exact Fractions).

    The final elimination step is ``k = mu``; the combined matrix at
    ``(mu, i, j)`` holds ``U`` on/above the diagonal and the unit-lower
    ``L`` multipliers strictly below it.
    """
    from fractions import Fraction

    size = mu + 1
    combined = [[values[(mu, i, j)][0] for j in range(size)] for i in range(size)]
    l_mat = [
        [
            combined[i][j] if j < i else (Fraction(1) if i == j else Fraction(0))
            for j in range(size)
        ]
        for i in range(size)
    ]
    u_mat = [
        [combined[i][j] if j >= i else Fraction(0) for j in range(size)]
        for i in range(size)
    ]
    return l_mat, u_mat


def verify_lu(values: dict, a: np.ndarray) -> tuple[bool, list[list], list[list]]:
    """Exact check ``L @ U == A`` over rationals.

    Returns ``(matches, L, U)``; no tolerance is involved — the
    simulated factorization is correct or it is not.
    """
    from fractions import Fraction

    mu = a.shape[0] - 1
    l_mat, u_mat = extract_lu_result(values, mu)
    size = mu + 1
    ok = True
    for i in range(size):
        for j in range(size):
            acc = sum(l_mat[i][p] * u_mat[p][j] for p in range(size))
            if acc != Fraction(int(a[i, j])):
                ok = False
    return ok, l_mat, u_mat


def reference_transitive_closure(adjacency: np.ndarray) -> np.ndarray:
    """Boolean transitive closure by Warshall's algorithm (NumPy).

    The reindexed systolic algorithm of Example 5.2 computes this
    relation; the uniformized dataflow itself carries no attached
    semantics in this reproduction (the mapping theory needs only
    ``(J, D)``), so this reference is used by the examples to show what
    the mapped array would compute.
    """
    a = np.asarray(adjacency, dtype=bool).copy()
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("adjacency must be square")
    for k in range(n):
        a |= np.outer(a[:, k], a[k, :])
    return a


def functional_fidelity_report(
    algorithm: UniformDependenceAlgorithm, values: dict
) -> dict:
    """Small summary of a functional run: points computed, value types."""
    return {
        "algorithm": algorithm.name,
        "points": len(values),
        "complete": len(values) == len(algorithm.index_set),
    }
