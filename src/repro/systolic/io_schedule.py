"""Array boundary I/O schedules: when and where data enter and leave.

Figure 3's execution only works if the input streams arrive at the
array boundary *skewed* exactly right — ``b[j3, j2]`` must be injected
at the PE and cycle of its first consumer, and results must be drained
where their accumulation chain ends.  The paper treats this implicitly
(the figure shows the skew); production array designs need it explicit.

For every dependence ``d_i`` this module derives:

* the **injection schedule** — for each index point ``j`` whose
  predecessor ``j - d_i`` falls outside ``J`` (a boundary consumer),
  the PE ``S j`` and cycle ``Pi j`` at which the external datum must be
  present; with one hop per primitive (Equation 2.3's timing) the datum
  must enter the array ``hops_i`` cycles earlier at PE
  ``S j - S d_i``;
* the **drain schedule** — for each ``j`` with no in-set successor
  along ``d_i`` (the end of a chain), where and when the final value is
  available.

Consistency properties (asserted in the tests, reported by the
benchmark): at most one injection per (channel, PE, cycle) for a
conflict-free mapping, and the injection count equals the number of
boundary consumers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..core.mapping import MappingMatrix
from ..model import UniformDependenceAlgorithm
from .interconnect import InterconnectionPlan, plan_interconnection

__all__ = ["IOEvent", "IOSchedule", "derive_io_schedule"]


@dataclass(frozen=True)
class IOEvent:
    """One boundary transfer.

    ``port`` is the PE where the datum crosses the array boundary,
    ``time`` the cycle it must be present there, ``consumer``/
    ``producer`` the index point that consumes (injection) or produced
    (drain) the value.
    """

    channel: int
    port: tuple[int, ...]
    time: int
    point: tuple[int, ...]


@dataclass(frozen=True)
class IOSchedule:
    """Injection and drain schedules for every dependence channel."""

    injections: tuple[IOEvent, ...]
    drains: tuple[IOEvent, ...]

    def injections_by_channel(self, channel: int) -> list[IOEvent]:
        return [e for e in self.injections if e.channel == channel]

    def drains_by_channel(self, channel: int) -> list[IOEvent]:
        return [e for e in self.drains if e.channel == channel]

    def port_conflicts(self) -> list[tuple[IOEvent, IOEvent]]:
        """Pairs of injections contending for one (channel, port, cycle).

        Empty for conflict-free mappings: two boundary consumers with
        the same channel, port, and time would themselves collide.
        """
        seen: dict[tuple, IOEvent] = {}
        clashes: list[tuple[IOEvent, IOEvent]] = []
        for e in self.injections:
            key = (e.channel, e.port, e.time)
            if key in seen:
                clashes.append((seen[key], e))
            else:
                seen[key] = e
        return clashes


def derive_io_schedule(
    algorithm: UniformDependenceAlgorithm,
    mapping: MappingMatrix,
    *,
    plan: InterconnectionPlan | None = None,
) -> IOSchedule:
    """Compute boundary injection and drain events for a mapped algorithm.

    Injection timing backs the datum off by its hop count: with
    ``h_i`` primitive hops planned for channel ``i``, an operand
    consumed at cycle ``Pi j`` on PE ``S j`` must enter at the channel's
    upstream port ``S j - S d_i`` at cycle ``Pi j - h_i`` (it then
    pipelines through the same links in-set data use).
    """
    if plan is None:
        plan = plan_interconnection(algorithm, mapping)
    smat = mapping.space_matrix
    deps = algorithm.dependence_vectors()
    in_set = algorithm.index_set

    injections: list[IOEvent] = []
    drains: list[IOEvent] = []
    for j in in_set:
        pe = tuple(smat.matvec(j)) if smat.nrows else ()
        t = mapping.time(j)
        for i, d in enumerate(deps):
            pred = tuple(a - b for a, b in zip(j, d))
            if pred not in in_set:
                hops = plan.hops(i)
                displacement = (
                    smat.matvec(d) if smat.nrows else []
                )
                port = tuple(p - s for p, s in zip(pe, displacement))
                injections.append(
                    IOEvent(channel=i, port=port, time=t - hops, point=j)
                )
            succ = tuple(a + b for a, b in zip(j, d))
            if succ not in in_set:
                drains.append(IOEvent(channel=i, port=pe, time=t, point=j))

    injections.sort(key=lambda e: (e.channel, e.time, e.port))
    drains.sort(key=lambda e: (e.channel, e.time, e.port))
    return IOSchedule(injections=tuple(injections), drains=tuple(drains))


def render_injection_profile(schedule: IOSchedule, channel: int) -> str:
    """Small ASCII profile: injections per cycle for one channel."""
    per_cycle: dict[int, int] = defaultdict(int)
    for e in schedule.injections_by_channel(channel):
        per_cycle[e.time] += 1
    if not per_cycle:
        return f"channel {channel}: no boundary injections"
    lines = [f"channel {channel} injections per cycle:"]
    for t in range(min(per_cycle), max(per_cycle) + 1):
        count = per_cycle.get(t, 0)
        lines.append(f"  t={t:>4d} {'#' * count}{' ' if count else '(idle)'}")
    return "\n".join(lines)
