"""ASCII renderings of the paper's figures.

* :func:`render_index_set_2d` — Figure 1: a 2-D index set with conflict
  vectors drawn from the origin, marking which lattice points they hit;
* :func:`render_array_diagram` — Figure 2: the linear-array block
  diagram with per-channel directions and buffer counts;
* :func:`render_space_time` — Figure 3: the space-time execution table
  (rows = processors, columns = cycles, cells = index points).

All functions return plain strings so examples and benchmarks can print
them and tests can assert on their structure.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..model import ConstantBoundedIndexSet, UniformDependenceAlgorithm
from ..core.mapping import MappingMatrix
from .interconnect import InterconnectionPlan

__all__ = [
    "render_index_set_2d",
    "render_array_diagram",
    "render_space_time",
    "render_array_2d",
]


def render_index_set_2d(
    index_set: ConstantBoundedIndexSet,
    gammas: Sequence[Sequence[int]] = (),
) -> str:
    """Figure 1: the lattice with conflict-vector rays from the origin.

    Lattice points are ``.``; points hit by the ``g``-th conflict
    vector's integer multiples are labeled with the digit ``g+1``
    (showing *which* computations would share a processor-time slot).
    A feasible conflict vector marks no point other than the origin.
    """
    if index_set.dimension != 2:
        raise ValueError("Figure-1 rendering is for 2-D index sets")
    mu1, mu2 = index_set.mu
    label: dict[tuple[int, int], str] = {}
    for g_idx, gamma in enumerate(gammas):
        g1, g2 = int(gamma[0]), int(gamma[1])
        mult = 1
        while True:
            p = (mult * g1, mult * g2)
            if p not in index_set:
                break
            label[p] = str(g_idx + 1)
            mult += 1
    lines = []
    header = "   " + " ".join(f"{j1:>2d}" for j1 in range(mu1 + 1))
    lines.append(header)
    for j2 in range(mu2, -1, -1):
        row = [f"{j2:>2d} "]
        for j1 in range(mu1 + 1):
            row.append(f" {label.get((j1, j2), '.')}" + " ")
        lines.append("".join(row).rstrip())
    legend = [
        f"gamma_{g + 1} = {tuple(int(x) for x in gamma)}"
        + (" (non-feasible: hits lattice points)" if any(
            (m * int(gamma[0]), m * int(gamma[1])) in index_set for m in (1,)
        ) else " (feasible)")
        for g, gamma in enumerate(gammas)
    ]
    return "\n".join(lines + [""] + legend)


def render_array_diagram(
    mapping: MappingMatrix,
    plan: InterconnectionPlan,
    *,
    channel_names: Sequence[str] | None = None,
    num_processors: int | None = None,
) -> str:
    """Figure 2: block diagram of a linear array with channels and buffers.

    Only 1-D arrays are drawn (the paper's figure); each dependence
    channel gets one line showing travel direction (``-->`` / ``<--`` /
    ``(local)``) and its planned FIFO depth.
    """
    if mapping.array_dimension != 1:
        raise ValueError("block-diagram rendering is for linear arrays")
    names = list(channel_names) if channel_names else [
        f"d{i + 1}" for i in range(len(plan.routes))
    ]
    pes = num_processors if num_processors is not None else 5
    box_row = "  ".join("[PE]" for _ in range(pes))
    lines = [box_row]
    for i, route in enumerate(plan.routes):
        displacement = 0
        for prim_col in route:
            displacement += plan.primitives[0][prim_col]
        if displacement > 0:
            arrow = "-->"
        elif displacement < 0:
            arrow = "<--"
        else:
            arrow = "(local)"
        lines.append(
            f"  {names[i]:<8s} {arrow:>7s}   hops={len(route)}  "
            f"buffers={plan.buffers[i]}"
        )
    return "\n".join(lines)


def render_space_time(
    algorithm: UniformDependenceAlgorithm,
    mapping: MappingMatrix,
    *,
    max_width: int = 2000,
) -> str:
    """Figure 3: the space-time table of a linear-array execution.

    Rows are processors (``S j``), columns are cycles (``Pi j``), each
    cell shows the index point computed there (or ``.`` when idle).
    Raises when the mapping has computational conflicts — the table
    would need two labels in one cell, which is exactly the defect the
    paper's theory rules out.
    """
    if mapping.array_dimension != 1:
        raise ValueError("space-time rendering is for linear arrays")
    smat = mapping.space_matrix
    cells: dict[tuple[int, int], tuple[int, ...]] = {}
    pes: set[int] = set()
    ts: set[int] = set()
    for j in algorithm.index_set:
        pe = smat.matvec(j)[0]
        t = mapping.time(j)
        if (pe, t) in cells:
            raise ValueError(
                f"computational conflict at PE {pe}, cycle {t}: "
                f"{cells[(pe, t)]} and {tuple(j)}"
            )
        cells[(pe, t)] = tuple(j)
        pes.add(pe)
        ts.add(t)

    t_lo, t_hi = min(ts), max(ts)
    cell_w = max(len(_fmt_point(p)) for p in cells.values()) + 1
    if (t_hi - t_lo + 1) * cell_w > max_width:
        raise ValueError(
            f"table would be {(t_hi - t_lo + 1) * cell_w} columns wide; "
            f"raise max_width to render"
        )
    lines = [
        "PE\\t " + "".join(f"{t:>{cell_w}d}" for t in range(t_lo, t_hi + 1))
    ]
    for pe in sorted(pes):
        row = [f"{pe:>4d} "]
        for t in range(t_lo, t_hi + 1):
            row.append(f"{_fmt_point(cells.get((pe, t))):>{cell_w}s}")
        lines.append("".join(row))
    return "\n".join(lines)


def render_array_2d(array) -> str:
    """A 2-D array floor plan: PE grid with per-cell channel degrees.

    Each cell shows how many distinct channel links leave that PE —
    a quick visual check of interconnect density for the bit-level
    targets (GAPP/DAP-class machines are uniform: every interior cell
    shows the same degree).
    """
    if array.dimension != 2:
        raise ValueError("floor-plan rendering is for 2-D arrays")
    (x_lo, x_hi), (y_lo, y_hi) = array.extent()
    degree: dict[tuple[int, int], int] = {}
    for link in array.links:
        degree[link.source] = degree.get(link.source, 0) + 1
    pes = set(array.processors)
    lines = []
    for y in range(y_hi, y_lo - 1, -1):
        row = []
        for x in range(x_lo, x_hi + 1):
            if (x, y) in pes:
                row.append(f"[{degree.get((x, y), 0):>2d}]")
            else:
                row.append("  . ")
        lines.append(" ".join(row))
    lines.append(
        f"({array.num_processors} PEs, {len(array.links)} channel links; "
        "cell = outgoing link count)"
    )
    return "\n".join(lines)


def _fmt_point(p: tuple[int, ...] | None) -> str:
    if p is None:
        return "."
    return "".join(str(x) for x in p)
