"""VLSI cost model for mapped arrays (Section 6's optimization criteria).

The paper's future-work problems (6.1, 6.2) optimize "the number of
processors plus the wire length of the array", possibly combined with
execution time.  This module supplies that cost model:

* **processor count** — ``|S(J)|``, the PEs actually used;
* **wire length** — total Manhattan length of all channel links, each
  physical link counted once (the paper's per-stream links of Figure 2);
* **buffer registers** — the Equation-2.3 slack summed over links;
* a combined :class:`ArrayCost` with a pluggable weighting.

Everything is computed from the same interconnection plan the
simulator executes, so cost numbers and behavior can never drift
apart.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.mapping import MappingMatrix
from ..model import UniformDependenceAlgorithm
from .interconnect import InterconnectionPlan, plan_interconnection

__all__ = ["ArrayCost", "evaluate_cost", "processor_count", "wire_length"]


@dataclass(frozen=True)
class ArrayCost:
    """Cost sheet of one mapped design (Problem 6.1's objective pieces).

    Attributes
    ----------
    processors:
        Number of distinct PE coordinates used.
    wire_length:
        Total Manhattan length of physical channel links (each link
        counted once per channel, as in Figure 2's dedicated streams).
    buffers:
        Total FIFO registers across all data links.
    total_time:
        The schedule's total execution time (Equation 2.7).
    """

    processors: int
    wire_length: int
    buffers: int
    total_time: int

    def combined(
        self,
        *,
        processor_weight: float = 1.0,
        wire_weight: float = 1.0,
        buffer_weight: float = 0.0,
        time_weight: float = 0.0,
    ) -> float:
        """The weighted objective; the paper's default is PEs + wire."""
        return (
            processor_weight * self.processors
            + wire_weight * self.wire_length
            + buffer_weight * self.buffers
            + time_weight * self.total_time
        )


def processor_count(
    algorithm: UniformDependenceAlgorithm, mapping: MappingMatrix
) -> int:
    """``|S(J)|``: distinct processor coordinates over the index set.

    For the common case of an interval/box image this is closed-form,
    but arbitrary ``S`` images need not be dense, so we enumerate
    exactly.
    """
    smat = mapping.space_matrix
    if not smat.nrows:
        return 1
    return len(
        {smat.matvec(j) for j in algorithm.index_set}
    )


def wire_length(
    algorithm: UniformDependenceAlgorithm,
    mapping: MappingMatrix,
    plan: InterconnectionPlan | None = None,
) -> int:
    """Total Manhattan wire length across all per-dependence channels.

    Each dependence stream owns physical links between every PE pair it
    connects (Figure 2); a link's length is the Manhattan norm of its
    primitive step (1 for nearest-neighbor machines, more for
    long-range primitives).
    """
    if plan is None:
        plan = plan_interconnection(algorithm, mapping)
    from .array import build_array

    array = build_array(algorithm, mapping, plan)
    total = 0
    for link in array.links:
        total += sum(abs(a - b) for a, b in zip(link.source, link.target))
    return total


def evaluate_cost(
    algorithm: UniformDependenceAlgorithm,
    mapping: MappingMatrix,
    *,
    primitives: Sequence[Sequence[int]] | None = None,
) -> ArrayCost:
    """The full cost sheet for one mapping (plans the interconnect)."""
    plan = plan_interconnection(algorithm, mapping, primitives)
    from ..core.schedule import total_execution_time

    return ArrayCost(
        processors=processor_count(algorithm, mapping),
        wire_length=wire_length(algorithm, mapping, plan),
        buffers=plan.total_buffers,
        total_time=total_execution_time(mapping.schedule, algorithm.mu),
    )
