"""Interconnection primitives and the ``S D = P K`` condition (Def 2.2, cond 2).

A fixed processor array exposes a matrix ``P`` of interconnection
primitives (one column per directed link type); a mapping is
implementable on it when the space displacement of every dependence,
``S d_i``, decomposes into primitive hops ``K`` with

    ``S D = P K``  and  ``sum_j k_ji <= Pi d_i``   (Equation 2.3)

— the datum must reach its destination no later than its use.  The
slack ``Pi d_i - sum_j k_ji`` is realized as FIFO buffers on the
dependence's data link (the "three buffers" of Figure 2).

Routing solves, per dependence, the minimum-hop integer program
``min 1.K_i`` s.t. ``P K_i = S d_i``, ``K_i >= 0`` with our
branch-and-bound solver — exactly the quantity Equation 2.3 bounds.

The appendix's link-collision criterion is also provided: when every
column of ``K`` uses each primitive at most once in total (the paper's
"data use the data link just once"), no static link collision is
possible; the cycle-accurate simulator re-checks this dynamically.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..ilp import LinearProgram, solve_ilp
from ..model import UniformDependenceAlgorithm
from ..core.mapping import MappingMatrix

__all__ = [
    "nearest_neighbor_primitives",
    "InterconnectionPlan",
    "plan_interconnection",
    "RoutingError",
]


class RoutingError(ValueError):
    """Raised when a dependence cannot be routed within its time budget."""


def nearest_neighbor_primitives(dim: int) -> list[list[int]]:
    """The ``2 * dim`` unit primitives of a nearest-neighbor array.

    For ``dim == 2`` this is the paper's example
    ``P = [[0, 0, 1, -1], [1, -1, 0, 0]]`` (east/west/north/south).
    ``dim == 0`` (a single processor) has no primitives.
    """
    if dim < 0:
        raise ValueError("dim must be non-negative")
    cols: list[list[int]] = []
    for axis in range(dim - 1, -1, -1):
        for sign in (1, -1):
            col = [0] * dim
            col[axis] = sign
            cols.append(col)
    if not cols:
        return [[] for _ in range(dim)]
    return [[col[r] for col in cols] for r in range(dim)]


@dataclass(frozen=True)
class InterconnectionPlan:
    """A solved condition 2: ``P``, ``K``, per-dependence routes and buffers.

    Attributes
    ----------
    primitives:
        ``P`` as a ``(k-1) x r`` matrix.
    usage:
        ``K`` as an ``r x m`` matrix (``k_ji`` = times dependence ``i``
        uses primitive ``j``).
    routes:
        Per dependence, the expanded hop list: primitive column indices
        in travel order (deterministic: primitive index order).
    buffers:
        Per dependence, ``Pi d_i - sum_j k_ji`` — FIFO depth on that
        data link (0 means the datum arrives just in time).
    """

    primitives: tuple[tuple[int, ...], ...]
    usage: tuple[tuple[int, ...], ...]
    routes: tuple[tuple[int, ...], ...]
    buffers: tuple[int, ...]

    @property
    def total_buffers(self) -> int:
        """Sum of buffer registers across all data links."""
        return sum(self.buffers)

    def hops(self, dep: int) -> int:
        """Number of primitive hops dependence ``dep`` takes."""
        return len(self.routes[dep])

    def statically_collision_free(self) -> bool:
        """The appendix criterion: every dependence uses links at most once.

        "Data link collisions occur only if data use links more than
        once when passing from the source to the destination" — when
        each column of ``K`` has every entry in ``{0, 1}``, a datum
        never revisits a link and the regular systolic flow cannot
        collide on a per-dependence channel.
        """
        return all(all(k <= 1 for k in col) for col in self.usage_columns())

    def usage_columns(self) -> list[list[int]]:
        """Columns of ``K`` (one per dependence)."""
        if not self.usage:
            return []
        r = len(self.usage)
        m = len(self.usage[0])
        return [[self.usage[j][i] for j in range(r)] for i in range(m)]


def _route_one(
    primitives: list[list[int]],
    target: list[int],
    budget: int,
) -> list[int]:
    """Min-hop decomposition of ``target`` into primitive columns.

    Returns the usage vector ``K_i`` (length ``r``); raises
    :class:`RoutingError` when infeasible or over budget.
    """
    dim = len(target)
    r = len(primitives[0]) if primitives and primitives[0] else 0
    if all(x == 0 for x in target):
        return [0] * r
    if r == 0:
        raise RoutingError(
            f"displacement {target} is non-zero but the array has no links"
        )
    a_eq = [[float(primitives[row][col]) for col in range(r)] for row in range(dim)]
    b_eq = [float(x) for x in target]
    names = [f"k_{j}" for j in range(r)]
    # Prefer single-use decompositions (each primitive at most once):
    # the appendix's link-collision-free criterion.  Fall back to the
    # general min-hop problem when single-use is infeasible.
    sol = solve_ilp(
        LinearProgram.build(
            c=[1.0] * r, a_eq=a_eq, b_eq=b_eq,
            bounds=[(0.0, 1.0)] * r, integer=True, names=names,
        )
    )
    if not (sol.ok and sum(sol.x_int()) <= budget):
        sol = solve_ilp(
            LinearProgram.build(
                c=[1.0] * r, a_eq=a_eq, b_eq=b_eq,
                bounds=[(0.0, float(budget))] * r, integer=True, names=names,
            )
        )
    if not sol.ok:
        raise RoutingError(f"no primitive decomposition of displacement {target}")
    k = list(sol.x_int())
    if sum(k) > budget:
        raise RoutingError(
            f"displacement {target} needs {sum(k)} hops but the schedule "
            f"allows only {budget} (Equation 2.3 violated)"
        )
    return k


def plan_interconnection(
    algorithm: UniformDependenceAlgorithm,
    mapping: MappingMatrix,
    primitives: Sequence[Sequence[int]] | None = None,
) -> InterconnectionPlan:
    """Solve ``S D = P K`` under Equation 2.3 for every dependence.

    Parameters
    ----------
    primitives:
        The target machine's ``P``; defaults to the nearest-neighbor
        primitives of the array's dimension (the "design a new array"
        reading of the paper, where condition 2 is satisfiable by
        construction whenever each ``|S d_i|_1 <= Pi d_i``).

    Raises
    ------
    RoutingError
        When some dependence cannot reach its destination in time —
        i.e. condition 2 of Definition 2.2 fails for this machine.
    """
    dim = mapping.array_dimension
    p = (
        [list(map(int, row)) for row in primitives]
        if primitives is not None
        else nearest_neighbor_primitives(dim)
    )
    if len(p) != dim:
        raise ValueError(f"P must have {dim} rows, got {len(p)}")
    r = len(p[0]) if p and p[0] else 0

    deps = algorithm.dependence_vectors()
    usage_cols: list[list[int]] = []
    routes: list[tuple[int, ...]] = []
    buffers: list[int] = []
    smat = mapping.space_matrix
    for d in deps:
        displacement = smat.matvec(d) if smat.nrows else []
        budget = mapping.time(d)
        if budget <= 0:
            raise RoutingError(
                f"dependence {d} has non-positive schedule length {budget}"
            )
        k = _route_one(p, list(displacement), budget)
        usage_cols.append(k)
        hops: list[int] = []
        for col_idx, count in enumerate(k):
            hops.extend([col_idx] * count)
        routes.append(tuple(hops))
        buffers.append(budget - sum(k))

    usage = tuple(
        tuple(usage_cols[i][j] for i in range(len(deps))) for j in range(r)
    )
    return InterconnectionPlan(
        primitives=tuple(tuple(row) for row in p),
        usage=usage,
        routes=tuple(routes),
        buffers=tuple(buffers),
    )
