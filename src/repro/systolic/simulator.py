"""Cycle-accurate simulation of a mapped algorithm.

The simulator is the behavioral referee for the whole theory: it takes
an algorithm ``(J, D)`` and a mapping ``T = [S; Pi]`` and *executes*
the mapping literally —

* every computation ``j`` is placed at processor ``S j`` and cycle
  ``Pi j``; two computations landing on the same (PE, cycle) is a
  **computational conflict**, precisely Definition 2.3's event, detected
  here without any lattice theory;
* every dependence datum travels its planned hop route one link per
  cycle and then waits in the destination FIFO until its consumer
  fires; two tokens crossing the same channel link in the same cycle is
  a **link collision** (the condition from [23] that the appendix
  discusses); an operand that has not arrived by its consumer's cycle
  is a **latency violation** (Equation 2.3 broken);
* when the algorithm carries executable semantics, values are computed
  in schedule order and returned for numerical verification.

The conflict-freedom theorems of Section 4 are thus testable end to
end: a mapping certified conflict-free must simulate with zero
conflicts, and the certified-optimal schedules must finish in exactly
``1 + sum |pi_i| mu_i`` cycles (Equation 2.7).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..model import UniformDependenceAlgorithm
from ..core.mapping import MappingMatrix
from ..obs import get_tracer
from .array import ProcessorArray, build_array
from .interconnect import InterconnectionPlan, plan_interconnection

__all__ = [
    "ComputationalConflict",
    "LinkCollision",
    "LatencyViolation",
    "SimulationReport",
    "simulate_mapping",
]


@dataclass(frozen=True)
class ComputationalConflict:
    """Two or more computations on one PE in one cycle."""

    processor: tuple[int, ...]
    time: int
    points: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class LinkCollision:
    """Two tokens on the same channel link in the same cycle."""

    channel: int
    source: tuple[int, ...]
    target: tuple[int, ...]
    time: int
    tokens: tuple[tuple[int, ...], ...]  # consumer index points


@dataclass(frozen=True)
class LatencyViolation:
    """An operand that would arrive after its consumer executes."""

    channel: int
    consumer: tuple[int, ...]
    needed_at: int
    arrives_at: int


@dataclass(frozen=True)
class SimulationReport:
    """Everything observed during one simulated execution.

    Attributes
    ----------
    start_time, finish_time:
        First and last busy cycles (``Pi j`` extremes over ``J``).
    makespan:
        ``finish_time - start_time + 1`` — the total execution time of
        Equation 2.4 realized behaviorally.
    conflicts, link_collisions, latency_violations:
        Defect lists; all empty for a correct conflict-free mapping.
    max_buffer_occupancy:
        Per dependence channel, the peak number of in-flight-but-
        unconsumed tokens waiting at any single PE — compare against
        the planned FIFO depth.  Under ``hop_policy="eager"`` tokens
        wait at the *destination* FIFO; under ``"lazy"`` they wait at
        the *source*, so the same traffic shows up against different
        PEs.
    fifo_peaks:
        The per-PE breakdown behind ``max_buffer_occupancy``: one
        ``(channel, pe, peak)`` triple for every FIFO that ever held a
        waiting token, sorted by channel then PE.
    values:
        Functional results per index point (``None`` without
        semantics).
    array:
        The materialized processor array.
    plan:
        The interconnection plan used for routing.
    """

    start_time: int
    finish_time: int
    makespan: int
    num_computations: int
    num_processors: int
    conflicts: tuple[ComputationalConflict, ...]
    link_collisions: tuple[LinkCollision, ...]
    latency_violations: tuple[LatencyViolation, ...]
    max_buffer_occupancy: tuple[int, ...]
    fifo_peaks: tuple[tuple[int, tuple[int, ...], int], ...]
    values: dict | None
    array: ProcessorArray
    plan: InterconnectionPlan
    utilization: float

    @property
    def ok(self) -> bool:
        """No conflicts, no collisions, no latency violations."""
        return not (self.conflicts or self.link_collisions or self.latency_violations)


def simulate_mapping(
    algorithm: UniformDependenceAlgorithm,
    mapping: MappingMatrix,
    *,
    primitives: Sequence[Sequence[int]] | None = None,
    functional: bool | None = None,
    plan: InterconnectionPlan | None = None,
    hop_policy: str = "eager",
) -> SimulationReport:
    """Execute a mapped algorithm cycle-accurately and audit it.

    Parameters
    ----------
    functional:
        ``True`` to execute semantics (requires ``algorithm.compute``),
        ``False`` to skip, ``None`` to auto-detect.
    plan:
        Reuse a pre-computed interconnection plan (otherwise planned
        here with the given or default ``primitives``).
    hop_policy:
        When a route has slack (``Pi d_i > hops``), ``"eager"`` moves
        the token immediately after production (waiting at the
        destination FIFO — Figure 2's buffer placement), while
        ``"lazy"`` holds it at the source and moves it just in time
        (waiting at the source PE, where ``max_buffer_occupancy`` then
        accounts for it).  The two policies stress different links at
        different cycles, so a multi-hop design clean under one may
        collide under the other; both satisfy Equation 2.3.

    Notes
    -----
    Token timing model (eager): a datum produced at ``j_src = j - d_i``
    leaves at cycle ``Pi j_src``, crosses hop ``l`` of its route during
    cycle ``Pi j_src + l``, arrives after ``h_i`` hops and waits in the
    destination FIFO until cycle ``Pi j``.  This realizes Equation 2.3
    ("one time unit per interconnection primitive") and reproduces the
    buffer counts of Figure 2.  Lazy timing shifts every hop by the
    slack: hop ``l`` crosses at ``Pi j - h_i + l``.
    """
    if hop_policy not in ("eager", "lazy"):
        raise ValueError(f"unknown hop_policy {hop_policy!r}")
    tracer = get_tracer()
    root = tracer.span(
        "systolic.simulate",
        algorithm=algorithm.name,
        hop_policy=hop_policy,
    )
    with root:
        if plan is None:
            with tracer.span("sim.plan"):
                plan = plan_interconnection(algorithm, mapping, primitives)
        array = build_array(algorithm, mapping, plan)
        if functional is None:
            functional = algorithm.compute is not None
        if functional and algorithm.compute is None:
            raise ValueError("functional simulation requires algorithm.compute")

        smat = mapping.space_matrix
        deps = algorithm.dependence_vectors()
        m = len(deps)

        placement: dict[tuple, list[tuple[int, ...]]] = defaultdict(list)
        times: list[int] = []
        schedule_of: dict[tuple[int, ...], int] = {}
        pe_of: dict[tuple[int, ...], tuple[int, ...]] = {}

        with tracer.span("sim.place"):
            for j in algorithm.index_set:
                t = mapping.time(j)
                pe = tuple(smat.matvec(j)) if smat.nrows else ()
                placement[(pe, t)].append(j)
                times.append(t)
                schedule_of[j] = t
                pe_of[j] = pe

        conflicts = tuple(
            ComputationalConflict(processor=pe, time=t, points=tuple(points))
            for (pe, t), points in sorted(placement.items())
            if len(points) > 1
        )

        # -- token routing -------------------------------------------------
        link_use: dict[tuple, list[tuple[int, ...]]] = defaultdict(list)
        latency: list[LatencyViolation] = []
        # (channel, pe) -> list of (enter, leave) waiting intervals for the
        # FIFO at that PE: under "eager" a token waits at its destination
        # between arrival and consumption; under "lazy" it waits at its
        # source between production and departure.
        fifo_intervals: dict[tuple, list[tuple[int, int]]] = defaultdict(list)

        with tracer.span("sim.route"):
            for j in algorithm.index_set:
                for i, d in enumerate(deps):
                    src = tuple(a - b for a, b in zip(j, d))
                    if src not in schedule_of:
                        continue  # boundary input, injected from outside
                    depart = schedule_of[src]
                    route = plan.routes[i]
                    consume = schedule_of[j]
                    hop_base = (
                        depart if hop_policy == "eager" else consume - len(route)
                    )
                    pos = list(pe_of[src])
                    for l, prim_col in enumerate(route, start=1):
                        step = [
                            plan.primitives[row][prim_col]
                            for row in range(len(plan.primitives))
                        ]
                        nxt = [a + b for a, b in zip(pos, step)]
                        link_use[(i, tuple(pos), tuple(nxt), hop_base + l)].append(j)
                        pos = nxt
                    if tuple(pos) != pe_of[j]:
                        raise RuntimeError(
                            f"route for dependence {i} ends at {tuple(pos)}, "
                            f"consumer is at {pe_of[j]} — interconnection plan "
                            "inconsistent"
                        )
                    # Equation 2.3's audit: eager tokens must not arrive late;
                    # lazy tokens must not need to leave before being produced.
                    if depart + len(route) > consume:
                        latency.append(
                            LatencyViolation(
                                channel=i,
                                consumer=j,
                                needed_at=consume,
                                arrives_at=depart + len(route),
                            )
                        )
                    if hop_policy == "eager":
                        fifo_intervals[(i, pe_of[j])].append(
                            (depart + len(route), consume)
                        )
                    else:
                        fifo_intervals[(i, pe_of[src])].append(
                            (depart, consume - len(route))
                        )

        collisions = tuple(
            LinkCollision(
                channel=key[0], source=key[1], target=key[2], time=key[3],
                tokens=tuple(consumers),
            )
            for key, consumers in sorted(link_use.items())
            if len(consumers) > 1
        )

        # -- peak FIFO occupancy per channel and per PE --------------------
        max_occupancy = [0] * m
        fifo_peaks: list[tuple[int, tuple[int, ...], int]] = []
        with tracer.span("sim.fifo"):
            for (channel, pe), intervals in sorted(fifo_intervals.items()):
                events: dict[int, int] = defaultdict(int)
                for enter, leave in intervals:
                    if leave > enter:  # waits [enter, leave)
                        events[enter] += 1
                        events[leave] -= 1
                depth = 0
                peak = 0
                for t in sorted(events):
                    depth += events[t]
                    peak = max(peak, depth)
                if peak > 0:
                    fifo_peaks.append((channel, pe, peak))
                max_occupancy[channel] = max(max_occupancy[channel], peak)

        if tracer.enabled:
            # Link-utilization histogram: tokens-per-link distribution,
            # aggregated over time (how hot is the hottest wire?).
            per_link: dict[tuple, int] = defaultdict(int)
            for (i, src_pe, dst_pe, _t), consumers in link_use.items():
                per_link[(i, src_pe, dst_pe)] += len(consumers)
            histogram: dict[str, int] = defaultdict(int)
            for tokens in per_link.values():
                histogram[str(tokens)] += 1
            tracer.event(
                "sim.link_utilization",
                links=len(per_link),
                max_tokens_per_link=max(per_link.values(), default=0),
                histogram=dict(histogram),
            )

        # -- functional execution ------------------------------------------
        values: dict | None = None
        if functional:
            with tracer.span("sim.execute"):
                values = {}
                for j in sorted(schedule_of, key=lambda p: (schedule_of[p], p)):
                    operands = []
                    for i, d in enumerate(deps):
                        src = tuple(a - b for a, b in zip(j, d))
                        if src in values:
                            operands.append(values[src])
                        elif algorithm.inputs is not None:
                            operands.append(algorithm.inputs(j, i))
                        else:
                            operands.append(None)
                    values[j] = algorithm.compute(j, operands)

        start = min(times)
        finish = max(times)
        makespan = finish - start + 1
        busy = sum(1 for points in placement.values() if points)
        utilization = busy / (array.num_processors * makespan)
        root.set(
            makespan=makespan,
            processors=array.num_processors,
            ok=not (conflicts or collisions or latency),
        )

    return SimulationReport(
        start_time=start,
        finish_time=finish,
        makespan=makespan,
        num_computations=len(schedule_of),
        num_processors=array.num_processors,
        conflicts=conflicts,
        link_collisions=collisions,
        latency_violations=tuple(latency),
        max_buffer_occupancy=tuple(max_occupancy),
        fifo_peaks=tuple(fifo_peaks),
        values=values,
        array=array,
        plan=plan,
        utilization=utilization,
    )


_ = field  # grouped dataclass import for linters
