"""Structural netlists for designed arrays.

Once a mapping is chosen, an array designer needs the *structure* of
the machine: the PE instances, the per-channel wires between them, and
the FIFO registers Equation 2.3's slack demands.  This module
materializes that as a :class:`Netlist` — cells (PEs and FIFOs), nets
(directed channel wires), and boundary ports (from the I/O schedule) —
with JSON and Graphviz-dot exporters, so a design can leave the
simulator and enter real tooling.

Consistency invariants (tested): every net endpoint is a declared cell
or port; FIFO depth per channel matches the interconnection plan; the
cell count is ``#PEs + #(channel, link)-FIFOs``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core.mapping import MappingMatrix
from ..model import UniformDependenceAlgorithm
from .array import ProcessorArray, build_array
from .interconnect import InterconnectionPlan, plan_interconnection
from .io_schedule import derive_io_schedule

__all__ = ["Cell", "Net", "Netlist", "build_netlist"]


def _pe_name(coord: tuple[int, ...]) -> str:
    inner = "_".join(str(x).replace("-", "m") for x in coord) or "scalar"
    return f"pe_{inner}"


@dataclass(frozen=True)
class Cell:
    """One hardware instance: a PE or a FIFO register bank.

    ``kind`` is ``"pe"`` or ``"fifo"``; ``params`` carries
    kind-specific attributes (PE coordinates, FIFO depth/channel).
    """

    name: str
    kind: str
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Net:
    """A directed wire on one dependence channel."""

    name: str
    channel: int
    source: str
    target: str


@dataclass(frozen=True)
class Netlist:
    """The structural description of a designed array."""

    cells: tuple[Cell, ...]
    nets: tuple[Net, ...]
    boundary_ports: tuple[str, ...]

    def cell_names(self) -> set[str]:
        return {c.name for c in self.cells}

    def cells_of_kind(self, kind: str) -> list[Cell]:
        return [c for c in self.cells if c.kind == kind]

    def validate(self) -> None:
        """Raise :class:`ValueError` on dangling net endpoints."""
        known = self.cell_names() | set(self.boundary_ports)
        for net in self.nets:
            if net.source not in known:
                raise ValueError(f"net {net.name} has unknown source {net.source}")
            if net.target not in known:
                raise ValueError(f"net {net.name} has unknown target {net.target}")
        if len({c.name for c in self.cells}) != len(self.cells):
            raise ValueError("duplicate cell names")

    # -- exporters ---------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a stable JSON document."""
        return json.dumps(
            {
                "cells": [
                    {"name": c.name, "kind": c.kind, "params": c.params}
                    for c in self.cells
                ],
                "nets": [
                    {
                        "name": n.name,
                        "channel": n.channel,
                        "source": n.source,
                        "target": n.target,
                    }
                    for n in self.nets
                ],
                "boundary_ports": list(self.boundary_ports),
            },
            indent=2,
            sort_keys=True,
        )

    def to_dot(self) -> str:
        """Graphviz digraph: PEs as boxes, FIFOs as small ellipses."""
        lines = ["digraph array {", "  rankdir=LR;"]
        for c in self.cells:
            shape = "box" if c.kind == "pe" else "ellipse"
            label = c.name if c.kind == "pe" else f"{c.name}\\n(depth {c.params.get('depth', 0)})"
            lines.append(f'  "{c.name}" [shape={shape}, label="{label}"];')
        for p in self.boundary_ports:
            lines.append(f'  "{p}" [shape=plaintext];')
        for n in self.nets:
            lines.append(
                f'  "{n.source}" -> "{n.target}" [label="ch{n.channel}"];'
            )
        lines.append("}")
        return "\n".join(lines)


def build_netlist(
    algorithm: UniformDependenceAlgorithm,
    mapping: MappingMatrix,
    *,
    plan: InterconnectionPlan | None = None,
    array: ProcessorArray | None = None,
    include_boundary: bool = True,
) -> Netlist:
    """Materialize the structural netlist of a mapped design.

    Each physical channel link becomes either a direct net (zero
    buffers on the channel) or a net into a FIFO cell and a net out of
    it (buffered channel).  Boundary injection ports (one per channel
    and boundary PE, from the I/O schedule) are included when
    ``include_boundary`` is set.
    """
    if plan is None:
        plan = plan_interconnection(algorithm, mapping)
    if array is None:
        array = build_array(algorithm, mapping, plan)

    cells: list[Cell] = [
        Cell(name=_pe_name(pe), kind="pe", params={"coord": list(pe)})
        for pe in array.processors
    ]
    nets: list[Net] = []
    net_id = 0
    for link in array.links:
        depth = plan.buffers[link.channel]
        src = _pe_name(link.source)
        dst = _pe_name(link.target)
        if depth > 0:
            fifo = Cell(
                name=f"fifo_ch{link.channel}_{src}_to_{dst}",
                kind="fifo",
                params={"depth": depth, "channel": link.channel},
            )
            cells.append(fifo)
            nets.append(
                Net(
                    name=f"n{net_id}",
                    channel=link.channel,
                    source=src,
                    target=fifo.name,
                )
            )
            net_id += 1
            nets.append(
                Net(
                    name=f"n{net_id}",
                    channel=link.channel,
                    source=fifo.name,
                    target=dst,
                )
            )
            net_id += 1
        else:
            nets.append(
                Net(name=f"n{net_id}", channel=link.channel, source=src, target=dst)
            )
            net_id += 1

    ports: list[str] = []
    if include_boundary:
        io = derive_io_schedule(algorithm, mapping, plan=plan)
        seen_ports: set[tuple[int, tuple[int, ...]]] = set()
        pe_names = {_pe_name(pe) for pe in array.processors}
        for event in io.injections:
            key = (event.channel, event.port)
            if key in seen_ports:
                continue
            seen_ports.add(key)
            port_name = f"in_ch{event.channel}_{_pe_name(event.port)}"
            ports.append(port_name)
            # Wire the port to the channel entry PE (the consumer-side
            # PE when the port coincides with it, else the port's PE).
            target = (
                _pe_name(event.port)
                if _pe_name(event.port) in pe_names
                else _pe_name(mapping.processor(event.point))
            )
            nets.append(
                Net(
                    name=f"n{net_id}",
                    channel=event.channel,
                    source=port_name,
                    target=target,
                )
            )
            net_id += 1

    netlist = Netlist(
        cells=tuple(cells), nets=tuple(nets), boundary_ports=tuple(ports)
    )
    netlist.validate()
    return netlist
