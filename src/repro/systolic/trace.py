"""Execution trace export: per-cycle activity for external tooling.

The simulator audits a mapping; designers additionally want the raw
activity record — which PE computes what in each cycle, which links
carry tokens — in formats downstream tools ingest.  This module
derives that trace from an algorithm + mapping pair and exports it as

* **CSV** (one row per event: cycle, kind, location, payload) for
  spreadsheets and pandas,
* **VCD-lite** (a value-change-dump-shaped text with one signal per PE,
  value = the index point being computed) for waveform-style viewing.

The trace is re-derived from first principles (placement and route
walks), so tests can cross-check it against the simulator's report.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..core.mapping import MappingMatrix
from ..model import UniformDependenceAlgorithm
from .interconnect import InterconnectionPlan, plan_interconnection

__all__ = ["TraceEvent", "ExecutionTrace", "derive_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One activity record.

    ``kind`` is ``"compute"`` (payload = index point) or ``"transfer"``
    (payload = (channel, consumer index point)); ``location`` is a PE
    coordinate for computes and a ``(source, target)`` PE pair for
    transfers.
    """

    cycle: int
    kind: str
    location: tuple
    payload: tuple


@dataclass(frozen=True)
class ExecutionTrace:
    """A complete, cycle-ordered activity record of one execution."""

    events: tuple[TraceEvent, ...]
    num_processors: int
    first_cycle: int
    last_cycle: int

    def computes(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "compute"]

    def transfers(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "transfer"]

    def busy_processors(self, cycle: int) -> set[tuple]:
        return {
            e.location for e in self.events
            if e.kind == "compute" and e.cycle == cycle
        }

    # -- exporters ---------------------------------------------------------

    def to_csv(self) -> str:
        """``cycle,kind,location,payload`` rows, header included."""
        lines = ["cycle,kind,location,payload"]
        for e in self.events:
            loc = "|".join(map(str, e.location)) if e.location else "-"
            payload = "|".join(map(str, e.payload))
            lines.append(f"{e.cycle},{e.kind},{loc},{payload}")
        return "\n".join(lines)

    def to_vcd(self) -> str:
        """A VCD-shaped dump: one string-valued signal per processor.

        Not a bit-accurate IEEE-1364 VCD (values are index-point labels,
        not bit vectors), but waveform viewers that accept string
        signals — and humans with a pager — can follow the execution.
        """
        pes = sorted({e.location for e in self.computes()})
        ids = {pe: f"s{i}" for i, pe in enumerate(pes)}
        lines = [
            "$timescale 1 cycle $end",
            "$scope module array $end",
        ]
        for pe, sid in ids.items():
            name = "pe_" + "_".join(str(x).replace("-", "m") for x in pe)
            lines.append(f"$var string 1 {sid} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        by_cycle: dict[int, list[TraceEvent]] = defaultdict(list)
        for e in self.computes():
            by_cycle[e.cycle].append(e)
        for cycle in range(self.first_cycle, self.last_cycle + 1):
            lines.append(f"#{cycle - self.first_cycle}")
            for e in sorted(by_cycle.get(cycle, []), key=lambda x: x.location):
                label = "".join(map(str, e.payload))
                lines.append(f"s{label} {ids[e.location]}")
        return "\n".join(lines)


def derive_trace(
    algorithm: UniformDependenceAlgorithm,
    mapping: MappingMatrix,
    *,
    plan: InterconnectionPlan | None = None,
    include_transfers: bool = True,
) -> ExecutionTrace:
    """Build the cycle-ordered activity trace of a mapped execution."""
    if plan is None:
        plan = plan_interconnection(algorithm, mapping)
    smat = mapping.space_matrix
    deps = algorithm.dependence_vectors()

    events: list[TraceEvent] = []
    pe_of: dict[tuple[int, ...], tuple[int, ...]] = {}
    time_of: dict[tuple[int, ...], int] = {}
    for j in algorithm.index_set:
        pe = tuple(smat.matvec(j)) if smat.nrows else ()
        t = mapping.time(j)
        pe_of[tuple(j)] = pe
        time_of[tuple(j)] = t
        events.append(
            TraceEvent(cycle=t, kind="compute", location=pe, payload=tuple(j))
        )

    if include_transfers:
        for j, pe in pe_of.items():
            for i, d in enumerate(deps):
                src = tuple(a - b for a, b in zip(j, d))
                if src not in pe_of:
                    continue
                route = plan.routes[i]
                pos = list(pe_of[src])
                depart = time_of[src]
                for l, prim_col in enumerate(route, start=1):
                    step = [
                        plan.primitives[row][prim_col]
                        for row in range(len(plan.primitives))
                    ]
                    nxt = [a + b for a, b in zip(pos, step)]
                    events.append(
                        TraceEvent(
                            cycle=depart + l,
                            kind="transfer",
                            location=(tuple(pos), tuple(nxt)),
                            payload=(i, j),
                        )
                    )
                    pos = nxt

    events.sort(key=lambda e: (e.cycle, e.kind, str(e.location)))
    cycles = [e.cycle for e in events]
    return ExecutionTrace(
        events=tuple(events),
        num_processors=len(set(pe_of.values())),
        first_cycle=min(cycles),
        last_cycle=max(cycles),
    )
