"""Processor-array substrate: interconnects, simulation, verification.

The paper's target machines (bit-level arrays like GAPP/DAP/MPP and
custom systolic designs) are simulated here: interconnection planning
(``S D = P K`` under Equation 2.3), a cycle-accurate executor that
detects computational conflicts, link collisions and latency
violations behaviorally, functional semantics checking, and ASCII
renderings of Figures 1-3.
"""

from .array import Link, ProcessorArray, build_array
from .cost import ArrayCost, evaluate_cost, processor_count, wire_length
from .netlist import Cell, Net, Netlist, build_netlist
from .trace import ExecutionTrace, TraceEvent, derive_trace
from .io_schedule import IOEvent, IOSchedule, derive_io_schedule, render_injection_profile
from .interconnect import (
    InterconnectionPlan,
    RoutingError,
    nearest_neighbor_primitives,
    plan_interconnection,
)
from .semantics import (
    extract_convolution_result,
    extract_lu_result,
    extract_matmul_result,
    reference_transitive_closure,
    verify_convolution,
    verify_lu,
    verify_matmul,
)
from .simulator import (
    ComputationalConflict,
    LatencyViolation,
    LinkCollision,
    SimulationReport,
    simulate_mapping,
)
from .visualize import (
    render_array_2d,
    render_array_diagram,
    render_index_set_2d,
    render_space_time,
)

__all__ = [
    "ArrayCost",
    "Cell",
    "ExecutionTrace",
    "ComputationalConflict",
    "IOEvent",
    "IOSchedule",
    "InterconnectionPlan",
    "LatencyViolation",
    "Link",
    "LinkCollision",
    "Net",
    "Netlist",
    "ProcessorArray",
    "RoutingError",
    "SimulationReport",
    "TraceEvent",
    "build_array",
    "build_netlist",
    "derive_io_schedule",
    "derive_trace",
    "evaluate_cost",
    "processor_count",
    "wire_length",
    "extract_convolution_result",
    "extract_lu_result",
    "extract_matmul_result",
    "nearest_neighbor_primitives",
    "plan_interconnection",
    "reference_transitive_closure",
    "render_array_2d",
    "render_array_diagram",
    "render_index_set_2d",
    "render_injection_profile",
    "render_space_time",
    "simulate_mapping",
    "verify_convolution",
    "verify_lu",
    "verify_matmul",
]
