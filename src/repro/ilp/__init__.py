"""Integer linear programming substrate.

The paper formulates time-optimal conflict-free mapping as integer
programs (Section 5) and solves the worked examples by the appendix's
extreme-point technique.  This package supplies both solution paths:

* :func:`solve_ilp` — exact branch-and-bound over HiGHS LP relaxations;
* :func:`enumerate_vertices` / :func:`best_integral_vertex` — exact
  rational extreme-point enumeration (the appendix, mechanized).
"""

from .branch_bound import solve_ilp, solve_lp_relaxation
from .problem import LinearProgram, LPSolution
from .vertex_enum import all_vertices_integral, best_integral_vertex, enumerate_vertices

__all__ = [
    "LPSolution",
    "LinearProgram",
    "all_vertices_integral",
    "best_integral_vertex",
    "enumerate_vertices",
    "solve_ilp",
    "solve_lp_relaxation",
]
