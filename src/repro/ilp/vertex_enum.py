"""Extreme-point enumeration for small polyhedra (the appendix technique).

The paper's appendix solves its integer programs by hand: partition the
disjunctive feasible set into convex polyhedra, observe that with all
coefficients in ``{-1, 0, 1}`` every extreme point is integral, and
evaluate the objective at each extreme point.  This module mechanizes
that: enumerate all vertex candidates (solutions of ``n`` linearly
independent active constraints), filter by feasibility, and pick the
best integral one.  Everything runs over exact rationals
(:class:`fractions.Fraction`), so "is this vertex integral" is a real
question with a true answer, not a tolerance.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

import numpy as np

from .problem import LinearProgram

__all__ = ["enumerate_vertices", "best_integral_vertex"]


def _constraint_rows(problem: LinearProgram) -> tuple[list[list[Fraction]], list[Fraction], list[str]]:
    """All constraints as ``row . x (<=|==) rhs`` in exact rationals.

    Bounds are materialized as inequality rows; equalities are returned
    with kind ``"eq"`` so the vertex solver can force them active.
    """
    n = problem.num_vars
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    kinds: list[str] = []
    for i in range(problem.a_eq.shape[0]):
        rows.append([Fraction(x).limit_denominator(10**9) for x in problem.a_eq[i]])
        rhs.append(Fraction(problem.b_eq[i]).limit_denominator(10**9))
        kinds.append("eq")
    for i in range(problem.a_ub.shape[0]):
        rows.append([Fraction(x).limit_denominator(10**9) for x in problem.a_ub[i]])
        rhs.append(Fraction(problem.b_ub[i]).limit_denominator(10**9))
        kinds.append("ub")
    for j, (lo, hi) in enumerate(problem.bounds):
        if lo is not None:
            row = [Fraction(0)] * n
            row[j] = Fraction(-1)
            rows.append(row)
            rhs.append(Fraction(-lo).limit_denominator(10**9))
            kinds.append("ub")
        if hi is not None:
            row = [Fraction(0)] * n
            row[j] = Fraction(1)
            rows.append(row)
            rhs.append(Fraction(hi).limit_denominator(10**9))
            kinds.append("ub")
    return rows, rhs, kinds


def _solve_square(rows: list[list[Fraction]], rhs: list[Fraction]) -> list[Fraction] | None:
    """Exact Gaussian elimination; ``None`` when singular."""
    n = len(rows)
    a = [row[:] + [r] for row, r in zip(rows, rhs)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if a[r][col] != 0), None)
        if pivot is None:
            return None
        a[col], a[pivot] = a[pivot], a[col]
        inv_p = 1 / a[col][col]
        a[col] = [x * inv_p for x in a[col]]
        for r in range(n):
            if r != col and a[r][col] != 0:
                f = a[r][col]
                a[r] = [x - f * y for x, y in zip(a[r], a[col])]
    return [a[i][n] for i in range(n)]


def enumerate_vertices(problem: LinearProgram, *, max_constraints: int = 40) -> list[tuple[Fraction, ...]]:
    """All extreme points of the polyhedron, as exact rational tuples.

    Every vertex is the unique solution of some ``n`` linearly
    independent active constraints (equalities always active).
    Complexity is ``C(m, n)``; guarded by ``max_constraints`` since the
    technique targets the paper's hand-sized systems.
    """
    n = problem.num_vars
    rows, rhs, kinds = _constraint_rows(problem)
    m = len(rows)
    if m > max_constraints:
        raise ValueError(
            f"{m} constraints exceeds the vertex-enumeration guard "
            f"({max_constraints}); use branch-and-bound instead"
        )
    eq_idx = [i for i, kind in enumerate(kinds) if kind == "eq"]
    free_idx = [i for i, kind in enumerate(kinds) if kind != "eq"]
    need = n - len(eq_idx)
    if need < 0:
        return []

    vertices: dict[tuple[Fraction, ...], None] = {}
    for combo in itertools.combinations(free_idx, need):
        active = eq_idx + list(combo)
        sol = _solve_square([rows[i] for i in active], [rhs[i] for i in active])
        if sol is None:
            continue
        feasible = True
        for i in range(m):
            val = sum(rows[i][j] * sol[j] for j in range(n))
            if kinds[i] == "eq":
                if val != rhs[i]:
                    feasible = False
                    break
            elif val > rhs[i]:
                feasible = False
                break
        if feasible:
            vertices[tuple(sol)] = None
    return list(vertices.keys())


def best_integral_vertex(
    problem: LinearProgram,
) -> tuple[tuple[int, ...], Fraction] | None:
    """The integral extreme point minimizing the objective, or ``None``.

    This is exactly the appendix's argument: when all extreme points of
    the (convex) feasible set are integral, one of them solves the
    integer program.  Callers should assert the premise (it holds for
    the paper's matmul and transitive-closure systems, whose constraint
    coefficients are all in ``{-1, 0, 1}``) — when non-integral
    vertices exist they are simply skipped here, so the result is then
    only a bound.
    """
    verts = enumerate_vertices(problem)
    c = [Fraction(x).limit_denominator(10**9) for x in problem.c]
    best: tuple[tuple[int, ...], Fraction] | None = None
    for v in verts:
        if any(x.denominator != 1 for x in v):
            continue
        obj = sum(ci * vi for ci, vi in zip(c, v))
        point = tuple(int(x) for x in v)
        if best is None or obj < best[1] or (obj == best[1] and point < best[0]):
            best = (point, obj)
    return best


def all_vertices_integral(problem: LinearProgram) -> bool:
    """Whether every extreme point of the polyhedron is integral.

    True for the paper's example systems; used by the benchmarks to
    certify the LP-to-ILP reduction before trusting it.
    """
    return all(
        all(x.denominator == 1 for x in v) for v in enumerate_vertices(problem)
    )


def _as_float(v: tuple[Fraction, ...]) -> np.ndarray:  # pragma: no cover
    """Convenience conversion for reporting."""
    return np.array([float(x) for x in v])
