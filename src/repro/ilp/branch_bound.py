"""Branch-and-bound integer linear programming.

The paper assumes a standard integer-programming algorithm is available
(Section 5 cites Schrijver's polynomial-time result for fixed
dimension); this module supplies one: best-first branch-and-bound with
LP relaxations solved by ``scipy.optimize.linprog`` (HiGHS).

Problems arising from the paper are tiny (``n <= 6`` variables,
coefficients in ``{-1, 0, 1, mu}``), so the emphasis is on exactness
and predictability: deterministic branching order (most fractional
variable, lowest index tie-break), incumbent tracking, and explicit
node accounting so the benchmarks can report search effort.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np
from scipy.optimize import linprog

from .problem import LinearProgram, LPSolution

__all__ = ["solve_lp_relaxation", "solve_ilp"]

_INT_TOL = 1e-6


def solve_lp_relaxation(problem: LinearProgram) -> LPSolution:
    """Solve the LP relaxation with HiGHS; translate the status codes."""
    res = linprog(
        c=problem.c,
        A_ub=problem.a_ub if problem.a_ub.shape[0] else None,
        b_ub=problem.b_ub if problem.b_ub.shape[0] else None,
        A_eq=problem.a_eq if problem.a_eq.shape[0] else None,
        b_eq=problem.b_eq if problem.b_eq.shape[0] else None,
        bounds=problem.bounds,
        method="highs",
    )
    if res.status == 0:
        return LPSolution(status="optimal", x=tuple(res.x), objective=float(res.fun))
    if res.status == 2:
        return LPSolution(status="infeasible", x=None, objective=None)
    if res.status == 3:
        return LPSolution(status="unbounded", x=None, objective=None)
    return LPSolution(status="error", x=None, objective=None)


def _most_fractional(x: np.ndarray, mask: np.ndarray) -> int | None:
    """Index of the integral-constrained variable farthest from integrality."""
    best_idx = None
    best_frac = _INT_TOL
    for i in np.flatnonzero(mask):
        frac = abs(x[i] - round(x[i]))
        if frac > best_frac:
            best_frac = frac
            best_idx = int(i)
    return best_idx


def solve_ilp(problem: LinearProgram, *, max_nodes: int = 100_000) -> LPSolution:
    """Exact best-first branch-and-bound over LP relaxations.

    Returns the optimal integral solution, ``"infeasible"`` when none
    exists, or raises :class:`RuntimeError` if the node budget is
    exhausted (which would indicate a mis-posed problem — the paper's
    instances solve in a handful of nodes).

    Unbounded relaxations at the root are reported as ``"unbounded"``;
    deeper in the tree they cannot occur once the root is bounded.
    """
    root = solve_lp_relaxation(problem)
    if root.status in ("infeasible", "unbounded", "error"):
        return LPSolution(status=root.status, x=None, objective=None, nodes=1)

    counter = itertools.count()
    heap: list[tuple[float, int, LinearProgram]] = [
        (root.objective, next(counter), problem)
    ]
    incumbent: tuple[float, tuple[float, ...]] | None = None
    nodes = 0

    while heap:
        bound, _tie, sub = heapq.heappop(heap)
        if incumbent is not None and bound >= incumbent[0] - 1e-9:
            continue
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError(f"branch-and-bound node budget exceeded ({max_nodes})")
        rel = solve_lp_relaxation(sub)
        if not rel.ok:
            continue
        if incumbent is not None and rel.objective >= incumbent[0] - 1e-9:
            continue
        x = np.asarray(rel.x)
        branch_var = _most_fractional(x, problem.integer)
        if branch_var is None:
            # Integral solution; snap and record.
            snapped = tuple(
                float(round(v)) if problem.integer[i] else float(v)
                for i, v in enumerate(x)
            )
            if problem.is_feasible_point(snapped):
                obj = float(problem.c @ np.asarray(snapped))
                if incumbent is None or obj < incumbent[0] - 1e-9:
                    incumbent = (obj, snapped)
            continue
        v = x[branch_var]
        lo_child = sub.with_bounds(branch_var, None, math.floor(v))
        hi_child = sub.with_bounds(branch_var, math.ceil(v), None)
        for child in (lo_child, hi_child):
            child_rel = solve_lp_relaxation(child)
            nodes += 1
            if child_rel.ok and (
                incumbent is None or child_rel.objective < incumbent[0] - 1e-9
            ):
                heapq.heappush(heap, (child_rel.objective, next(counter), child))

    if incumbent is None:
        return LPSolution(status="infeasible", x=None, objective=None, nodes=nodes)
    return LPSolution(
        status="optimal", x=incumbent[1], objective=incumbent[0], nodes=nodes
    )
