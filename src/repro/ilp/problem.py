"""Linear / integer-linear program model.

A tiny, explicit problem container shared by the branch-and-bound
solver and the vertex enumerator.  Conventions follow
``scipy.optimize.linprog``: minimize ``c @ x`` subject to
``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq`` and per-variable bounds.
All data is stored as NumPy float arrays but built from exact integers
by the formulation layer, so integral vertices are representable
exactly in double precision for the problem sizes at hand (the paper's
problems have single-digit dimensions and coefficients in
``{-1, 0, 1}`` plus ``mu``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LinearProgram", "LPSolution"]


@dataclass
class LinearProgram:
    """``min c @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x == b_eq``, bounds.

    Attributes
    ----------
    c:
        Objective coefficients, length ``n``.
    a_ub, b_ub:
        Inequality system (possibly empty).
    a_eq, b_eq:
        Equality system (possibly empty).
    bounds:
        Per-variable ``(lo, hi)`` with ``None`` for unbounded.
    integer:
        Mask of variables required to be integral (all-true for the
        paper's problems).
    names:
        Optional variable names for reporting (e.g. ``pi_1``).
    """

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    bounds: list[tuple[float | None, float | None]]
    integer: np.ndarray
    names: list[str] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        c: Sequence[float],
        *,
        a_ub: Sequence[Sequence[float]] | None = None,
        b_ub: Sequence[float] | None = None,
        a_eq: Sequence[Sequence[float]] | None = None,
        b_eq: Sequence[float] | None = None,
        bounds: Sequence[tuple[float | None, float | None]] | None = None,
        integer: Sequence[bool] | bool = True,
        names: Sequence[str] | None = None,
    ) -> "LinearProgram":
        """Normalize raw sequences into a validated problem."""
        c_arr = np.asarray(c, dtype=float)
        n = c_arr.shape[0]
        a_ub_arr = (
            np.asarray(a_ub, dtype=float).reshape(-1, n)
            if a_ub is not None and len(a_ub)
            else np.zeros((0, n))
        )
        b_ub_arr = (
            np.asarray(b_ub, dtype=float)
            if b_ub is not None and len(np.atleast_1d(b_ub))
            else np.zeros(0)
        )
        a_eq_arr = (
            np.asarray(a_eq, dtype=float).reshape(-1, n)
            if a_eq is not None and len(a_eq)
            else np.zeros((0, n))
        )
        b_eq_arr = (
            np.asarray(b_eq, dtype=float)
            if b_eq is not None and len(np.atleast_1d(b_eq))
            else np.zeros(0)
        )
        if a_ub_arr.shape[0] != b_ub_arr.shape[0]:
            raise ValueError("a_ub and b_ub row counts differ")
        if a_eq_arr.shape[0] != b_eq_arr.shape[0]:
            raise ValueError("a_eq and b_eq row counts differ")
        bounds_list = list(bounds) if bounds is not None else [(None, None)] * n
        if len(bounds_list) != n:
            raise ValueError(f"expected {n} bounds, got {len(bounds_list)}")
        if isinstance(integer, bool):
            int_mask = np.full(n, integer, dtype=bool)
        else:
            int_mask = np.asarray(integer, dtype=bool)
            if int_mask.shape[0] != n:
                raise ValueError("integer mask length mismatch")
        names_list = list(names) if names is not None else [f"x{i}" for i in range(n)]
        return cls(
            c=c_arr,
            a_ub=a_ub_arr,
            b_ub=b_ub_arr,
            a_eq=a_eq_arr,
            b_eq=b_eq_arr,
            bounds=bounds_list,
            integer=int_mask,
            names=names_list,
        )

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]

    def with_extra_ub(self, row: Sequence[float], rhs: float) -> "LinearProgram":
        """A copy with one additional inequality (used for branching cuts)."""
        return LinearProgram(
            c=self.c,
            a_ub=np.vstack([self.a_ub, np.asarray(row, dtype=float)]),
            b_ub=np.append(self.b_ub, float(rhs)),
            a_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=list(self.bounds),
            integer=self.integer,
            names=list(self.names),
        )

    def with_bounds(
        self, idx: int, lo: float | None, hi: float | None
    ) -> "LinearProgram":
        """A copy with variable ``idx``'s bounds tightened to ``(lo, hi)``."""
        new_bounds = list(self.bounds)
        old_lo, old_hi = new_bounds[idx]
        lo = old_lo if lo is None else (lo if old_lo is None else max(lo, old_lo))
        hi = old_hi if hi is None else (hi if old_hi is None else min(hi, old_hi))
        new_bounds[idx] = (lo, hi)
        return LinearProgram(
            c=self.c,
            a_ub=self.a_ub,
            b_ub=self.b_ub,
            a_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=new_bounds,
            integer=self.integer,
            names=list(self.names),
        )

    def is_feasible_point(self, x: Sequence[float], tol: float = 1e-7) -> bool:
        """Check a candidate point against all constraints."""
        xv = np.asarray(x, dtype=float)
        if self.a_ub.shape[0] and np.any(self.a_ub @ xv > self.b_ub + tol):
            return False
        if self.a_eq.shape[0] and np.any(np.abs(self.a_eq @ xv - self.b_eq) > tol):
            return False
        for val, (lo, hi) in zip(xv, self.bounds):
            if lo is not None and val < lo - tol:
                return False
            if hi is not None and val > hi + tol:
                return False
        return True


@dataclass(frozen=True)
class LPSolution:
    """Solver outcome: status, optimal point and value when solved.

    ``status`` is one of ``"optimal"``, ``"infeasible"``, ``"unbounded"``
    or ``"error"``.
    """

    status: str
    x: tuple[float, ...] | None
    objective: float | None
    nodes: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "optimal"

    def x_int(self) -> tuple[int, ...]:
        """The solution rounded to exact integers (raises if far from integral)."""
        if self.x is None:
            raise ValueError(f"no solution (status={self.status})")
        out = []
        for v in self.x:
            r = round(v)
            if abs(v - r) > 1e-6:
                raise ValueError(f"solution component {v} is not integral")
            out.append(int(r))
        return tuple(out)
