"""The paper's primary contribution: conflict-free time-optimal mappings.

Mapping matrices (Definition 2.2), conflict vectors and exact deciders
(Sections 2-3), the Hermite-form conditions of Section 4, Procedure 5.1
and the integer-programming formulations of Section 5, plus the
published baselines and Proposition 8.1.
"""

from .baselines import (
    BaselineMapping,
    matmul_baseline_ref23,
    matmul_optimal_paper,
    transitive_closure_baseline_ref22,
    transitive_closure_optimal_paper,
)
from .certificates import (
    OptimalityCertificate,
    Refutation,
    certify_optimality,
    verify_certificate,
)
from .conditions import (
    ConditionVerdict,
    check_conflict_free,
    sign_pattern_condition,
    subset_sign_pattern_condition,
    theorem_3_1,
    theorem_4_3,
    theorem_4_4,
    theorem_4_5,
    theorem_4_6,
    theorem_4_7,
    theorem_4_8,
)
from .bitlevel import (
    Formulation56Verdict,
    check_formulation_5_6,
    solve_bitlevel_formulation,
)
from .conflict import (
    ConflictAnalysis,
    analyze_conflicts,
    conflict_generators,
    conflict_margin,
    conflict_vector_corank1,
    conflict_vector_via_adjugate,
    distinct_image_count,
    find_conflict_witness,
    is_conflict_free_bruteforce,
    is_conflict_free_bruteforce_vectorized,
    is_conflict_free_kernel_box,
    is_feasible_conflict_vector,
)
from .free_schedule import (
    FreeScheduleResult,
    conflict_penalty,
    optimal_free_schedule,
)
from .ilp_formulation import (
    ILPMappingResult,
    build_corank1_subproblems,
    conflict_functional_rows,
    solve_corank1_optimal,
)
from .mapping import MappingError, MappingMatrix
from .optimize import (
    SearchResult,
    enumerate_schedule_vectors,
    find_all_optima,
    procedure_5_1,
)
from .pipeline import MappingResult, find_time_optimal_mapping
from .prop81 import Prop81Result, prop81_applicable, prop81_columns
from .space_optimize import (
    SpaceDesign,
    SpaceOptimizationResult,
    enumerate_space_mappings,
    enumerate_space_rows,
    joint_objective,
    pareto_frontier,
    solve_joint_optimal,
    solve_space_optimal,
)
from .schedule import (
    LinearSchedule,
    objective_f,
    total_execution_time,
    validate_schedule,
)

__all__ = [
    "BaselineMapping",
    "ConditionVerdict",
    "ConflictAnalysis",
    "Formulation56Verdict",
    "FreeScheduleResult",
    "OptimalityCertificate",
    "Refutation",
    "ILPMappingResult",
    "LinearSchedule",
    "MappingError",
    "MappingMatrix",
    "MappingResult",
    "Prop81Result",
    "SearchResult",
    "SpaceDesign",
    "SpaceOptimizationResult",
    "analyze_conflicts",
    "build_corank1_subproblems",
    "certify_optimality",
    "check_conflict_free",
    "conflict_penalty",
    "check_formulation_5_6",
    "conflict_functional_rows",
    "conflict_generators",
    "conflict_margin",
    "conflict_vector_corank1",
    "conflict_vector_via_adjugate",
    "distinct_image_count",
    "enumerate_schedule_vectors",
    "enumerate_space_mappings",
    "enumerate_space_rows",
    "find_all_optima",
    "find_conflict_witness",
    "find_time_optimal_mapping",
    "is_conflict_free_bruteforce",
    "is_conflict_free_bruteforce_vectorized",
    "is_conflict_free_kernel_box",
    "is_feasible_conflict_vector",
    "joint_objective",
    "matmul_baseline_ref23",
    "matmul_optimal_paper",
    "objective_f",
    "optimal_free_schedule",
    "pareto_frontier",
    "procedure_5_1",
    "prop81_applicable",
    "prop81_columns",
    "sign_pattern_condition",
    "subset_sign_pattern_condition",
    "solve_bitlevel_formulation",
    "solve_corank1_optimal",
    "solve_joint_optimal",
    "solve_space_optimal",
    "theorem_3_1",
    "theorem_4_3",
    "theorem_4_4",
    "theorem_4_5",
    "theorem_4_6",
    "theorem_4_7",
    "theorem_4_8",
    "total_execution_time",
    "transitive_closure_baseline_ref22",
    "transitive_closure_optimal_paper",
    "validate_schedule",
    "verify_certificate",
]
