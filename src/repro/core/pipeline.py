"""High-level one-call API for Problem 2.2.

``find_time_optimal_mapping(algorithm, space)`` runs the whole pipeline
the paper develops: validate the space mapping, search for the
time-optimal conflict-free schedule (Procedure 5.1 by default, the ILP
route for co-rank-1 problems on request), attach the exact conflict
analysis, and optionally verify the result behaviorally on the
cycle-accurate systolic simulator.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..model import UniformDependenceAlgorithm, validate_algorithm, validate_space
from ..obs import get_tracer
from .conflict import ConflictAnalysis, analyze_conflicts
from .ilp_formulation import solve_corank1_optimal
from .mapping import MappingMatrix
from .optimize import procedure_5_1
from .schedule import LinearSchedule

__all__ = ["MappingResult", "find_time_optimal_mapping"]


@dataclass(frozen=True)
class MappingResult:
    """A solved mapping problem: algorithm, mapping, analysis, provenance.

    Attributes
    ----------
    algorithm:
        The input ``(J, D)``.
    mapping:
        The time-optimal conflict-free ``T = [S; Pi]``.
    schedule:
        The winning schedule with its time accounting.
    analysis:
        Exact conflict analysis of the winning mapping.
    solver:
        ``"procedure-5.1"`` or ``"ilp"`` — which route produced it.
    stats:
        Solver-specific effort counters.
    """

    algorithm: UniformDependenceAlgorithm
    mapping: MappingMatrix
    schedule: LinearSchedule
    analysis: ConflictAnalysis
    solver: str
    stats: dict

    @property
    def total_time(self) -> int:
        """Total execution time ``t = 1 + sum |pi_i| mu_i`` (Eq 2.7)."""
        return self.schedule.total_time

    def simulate(self, **kwargs):
        """Run the mapping on the cycle-accurate simulator.

        Convenience hook; equivalent to constructing a
        :class:`repro.systolic.simulator.SystolicSimulator` directly.
        Imported lazily to keep :mod:`repro.core` free of simulator
        dependencies.
        """
        from ..systolic.simulator import simulate_mapping

        return simulate_mapping(self.algorithm, self.mapping, **kwargs)


def find_time_optimal_mapping(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    solver: str = "auto",
    method: str = "auto",
    mu: int | str | None = None,
    mu_range: Sequence[int] | None = None,
    jobs: int | None = None,
    cache=None,
    resilience=None,
    checkpoint=None,
    resume: bool = False,
    budget=None,
    **solver_kwargs,
) -> MappingResult:
    """Solve Problem 2.2 end to end for a given space mapping.

    Parameters
    ----------
    algorithm:
        The uniform dependence algorithm ``(J, D)``.
    space:
        The space mapping matrix ``S`` (``(k-1) x n``).
    mu:
        Problem-size control for algorithms with uniform bounds.  An
        ``int`` re-instantiates the algorithm's family at that size
        before solving.  The string ``"symbolic"`` routes through the
        :mod:`repro.symbolic` design compiler: the schedule search is
        compiled once over ``mu_range`` (cached under ``cache`` when
        one is supplied), then answered for this algorithm's size by
        O(1) polynomial evaluation — falling back to the enumerative
        route whenever the size lies outside the certified range.
        ``None`` (default) solves the algorithm as given.
    mu_range:
        Certified ``(lo, hi)`` size range for the symbolic route;
        defaults to ``(1, mu)`` for the algorithm's own size.  Ignored
        unless ``mu="symbolic"``.
    solver:
        ``"procedure-5.1"`` — the enumerative search (works for any
        co-rank); ``"ilp"`` — the integer-programming route (co-rank 1
        only); ``"auto"`` — ILP when the mapping is co-rank 1, search
        otherwise.
    method:
        Conflict-check mode for the search route (see
        :func:`repro.core.conditions.check_conflict_free`).
    jobs:
        Route the Procedure 5.1 search through the
        :mod:`repro.dse.executor` work-queue engine with this many
        worker processes.  Results (including the stats) are identical
        to the serial search for any value.  Ignored by the ILP route,
        whose closed-form subproblems are already cheap.
    cache:
        Optional :class:`repro.dse.cache.ResultCache`; the search route
        consults it before searching and records its decision after.
    resilience:
        Optional :class:`repro.dse.resilience.ResiliencePolicy` for the
        engine route — per-shard timeouts, bounded retries, and
        degradation behavior.  Supplying one routes the search through
        the engine even without ``jobs``/``cache``.
    checkpoint, resume, budget:
        Crash-safe checkpoint/resume and run-level resource ceilings
        for the search route — see
        :func:`repro.dse.executor.explore_schedule`.  Any of them
        routes the search through the engine; the ILP route, whose
        closed-form subproblems finish in milliseconds, ignores them.
    **solver_kwargs:
        Forwarded to the search route verbatim — this is where the
        result-preserving pruning switches (``symmetry=False``,
        ``ring_bound=False``) land, on both the serial
        :func:`~repro.core.optimize.procedure_5_1` and the engine
        route.  Pruning defaults to on; either setting returns the
        same mapping, time and verdict.

    Raises
    ------
    ValueError
        When no conflict-free schedule exists within the search bound,
        or when ``solver="ilp"`` is requested for co-rank != 1.
    repro.model.SpecError
        When the algorithm or space mapping fails the untrusted-input
        structural validation (:mod:`repro.model.validate`).
    """
    validate_algorithm(algorithm)
    if isinstance(mu, int) and not isinstance(mu, bool):
        # Lazy import: repro.symbolic imports repro.core back.
        from ..symbolic import family_from_algorithm

        algorithm = family_from_algorithm(algorithm).algorithm(mu)
        mu = None
    elif mu is not None and mu != "symbolic":
        raise ValueError(f"mu must be an int, 'symbolic' or None, got {mu!r}")
    n = algorithm.n
    space_rows = tuple(tuple(int(x) for x in row) for row in space)
    validate_space(space_rows, n)
    k = len(space_rows) + 1
    corank = n - k

    if mu == "symbolic":
        result = _symbolic_route(
            algorithm, space_rows, method, mu_range, cache
        )
        if result is not None:
            return result
        # Not certified at this size: fall through to enumeration.

    if solver == "auto":
        solver = "ilp" if corank == 1 else "procedure-5.1"

    with get_tracer().span(
        "core.find_time_optimal_mapping",
        algorithm=algorithm.name,
        solver=solver,
        corank=corank,
    ) as root:
        result = _dispatch_solver(
            algorithm, space_rows, solver, method, jobs, cache, resilience,
            checkpoint, resume, budget, solver_kwargs,
        )
        root.set(total_time=result.total_time)
    return result


def _symbolic_route(
    algorithm, space_rows, method, mu_range, cache
) -> MappingResult | None:
    """Answer via the symbolic design compiler, or ``None`` to fall back.

    ``None`` means "not certified for this size" — the caller then runs
    the ordinary enumerative dispatch, so ``mu="symbolic"`` never
    weakens the result, it only changes how fast it arrives.
    """
    from ..dse.cache import ResultCache
    from ..symbolic import (
        compile_schedule,
        family_from_algorithm,
        load_or_compile,
        schedule_compile_params,
    )

    family = family_from_algorithm(algorithm)
    size = algorithm.index_set.mu[0]
    span_range = tuple(int(x) for x in mu_range) if mu_range else (1, size)
    params = schedule_compile_params(
        algorithm.dependence_matrix.tolist(),
        space_rows,
        method=method,
        mu_range=span_range,
    )
    solution_cache = cache if isinstance(cache, ResultCache) else None
    with get_tracer().span(
        "core.symbolic_route", algorithm=algorithm.name, mu=size,
        mu_lo=span_range[0], mu_hi=span_range[1],
    ) as span:
        solution, compiled = load_or_compile(
            lambda: compile_schedule(
                family, space_rows, method=method, mu_range=span_range
            ),
            params,
            solution_cache,
        )
        answer = solution.eval(size)
        span.set(compiled=compiled, certified=answer is not None)
        if answer is None:
            return None
        if not answer.found:
            raise ValueError(
                "Procedure 5.1 exhausted its bound without a conflict-free "
                f"schedule (symbolic certificate for mu in {list(answer.interval)})"
            )
        mapping = MappingMatrix(space=space_rows, schedule=answer.pi)
        schedule = LinearSchedule(pi=answer.pi, index_set=algorithm.index_set)
        if schedule.total_time != answer.total_time:
            raise RuntimeError(
                "internal error: symbolic total-time expression disagrees "
                "with Equation 2.7 at the evaluated size"
            )
        analysis = analyze_conflicts(mapping, algorithm.index_set)
        if not analysis.conflict_free:
            raise RuntimeError(
                "internal error: symbolic answer fails the exact conflict oracle"
            )
        span.set(total_time=answer.total_time)
    return MappingResult(
        algorithm=algorithm,
        mapping=mapping,
        schedule=schedule,
        analysis=analysis,
        solver="symbolic",
        stats={
            "compiled": compiled,
            "samples": solution.samples,
            "intervals": len(solution.intervals),
            "interval": list(answer.interval),
            "mu": size,
        },
    )


def _dispatch_solver(
    algorithm, space_rows, solver, method, jobs, cache, resilience,
    checkpoint, resume, budget, solver_kwargs,
) -> MappingResult:
    corank = algorithm.n - (len(space_rows) + 1)
    if solver == "ilp":
        if corank != 1:
            raise ValueError(
                f"the ILP route covers co-rank 1; this problem has co-rank {corank}"
            )
        res = solve_corank1_optimal(algorithm, space_rows, **solver_kwargs)
        if not res.found:
            raise ValueError("ILP route found no conflict-free schedule")
        stats = {
            "candidates_checked": res.candidates_checked,
            "subproblems": res.subproblems,
            "rejected_by_gcd": res.rejected_by_gcd,
        }
        mapping = res.mapping
        schedule = res.schedule
    elif solver == "procedure-5.1":
        if (
            jobs is not None or cache is not None or resilience is not None
            or checkpoint is not None or budget is not None
        ):
            # Lazy import: repro.dse.executor imports repro.core back.
            from ..dse.executor import explore_schedule

            res = explore_schedule(
                algorithm,
                space_rows,
                jobs=jobs if jobs is not None else 1,
                method=method,
                cache=cache,
                resilience=resilience,
                checkpoint=checkpoint,
                resume=resume,
                budget=budget,
                **solver_kwargs,
            )
        else:
            res = procedure_5_1(algorithm, space_rows, method=method, **solver_kwargs)
        if not res.found:
            raise ValueError(
                "Procedure 5.1 exhausted its bound without a conflict-free schedule"
            )
        stats = {
            "candidates_examined": res.candidates_examined,
            "rings_expanded": res.rings_expanded,
            **res.stats.counter_dict(),
        }
        mapping = res.mapping
        schedule = res.schedule
    else:
        raise ValueError(f"unknown solver {solver!r}")

    analysis = analyze_conflicts(mapping, algorithm.index_set)
    if not analysis.conflict_free:
        # The theorem checkers are sufficient, so this cannot trigger for
        # method="auto"/"exact"; it guards future checker extensions.
        raise RuntimeError(
            "internal error: solver returned a mapping the exact oracle rejects"
        )
    return MappingResult(
        algorithm=algorithm,
        mapping=mapping,
        schedule=schedule,
        analysis=analysis,
        solver=solver,
        stats=stats,
    )
