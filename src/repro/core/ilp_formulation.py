"""Integer-programming formulations of Problem 2.2 (Section 5).

For co-rank-1 mappings (``T in Z^{(n-1) x n}``) the conflict-freedom
constraint is the disjunction

    ``exists i : |f_i(pi_1, ..., pi_n)| > mu_i``          (5.2 cond. 3)

where the ``f_i`` are the *linear* functionals of Proposition 3.2 (the
entries of the unique conflict vector, Equation 3.2).  Following the
appendix, the disjunctive program is partitioned into ``2n`` convex
integer linear programs (one per conflict-vector entry and sign), each
solvable by exact extreme-point enumeration or branch-and-bound; the
best post-checked solution is the optimum.

The post-check matters: the formulation drops the ``gcd = 1``
normalization (the appendix discusses exactly this), so a vertex can
satisfy ``|f_i| >= mu_i + 1`` while its *normalized* conflict vector is
still non-feasible (the paper's ``Pi_1 = [1, 1, mu]`` for matmul).
Candidates are therefore re-verified with Theorem 3.1 before being
accepted, exactly as the appendix prescribes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from fractions import Fraction

from ..ilp import LinearProgram, enumerate_vertices, solve_ilp
from ..intlin import det_bareiss
from ..model import UniformDependenceAlgorithm
from .conditions import theorem_3_1
from .mapping import MappingMatrix
from .schedule import LinearSchedule

__all__ = [
    "conflict_functional_rows",
    "build_corank1_subproblems",
    "ILPMappingResult",
    "schedule_lower_bound",
    "solve_corank1_optimal",
]


def conflict_functional_rows(
    space: Sequence[Sequence[int]], n: int
) -> list[list[int]]:
    """Coefficient rows of the linear functionals ``f_i`` (Prop 3.2).

    ``f_i(Pi)`` is (up to a global sign convention) the ``i``-th entry
    of the unique conflict vector of ``[S; Pi]``: the signed maximal
    minor of ``T`` obtained by deleting column ``i``.  Each ``f_i`` is
    linear in ``Pi`` (determinant expansion along the last row), so
    ``f_i(Pi) = rows[i] . Pi``; the coefficient of ``pi_j`` is read off
    by evaluating at the unit vectors.

    For the paper's Example 3.1 (``S = [1, 1, -1]``) this returns the
    rows of Equation 3.5: ``gamma = (-pi_2 - pi_3, pi_1 + pi_3,
    pi_1 - pi_2)``.
    """
    space_rows = [list(map(int, row)) for row in space]
    if len(space_rows) != n - 2:
        raise ValueError(
            f"co-rank-1 formulation needs S with n-2={n - 2} rows, "
            f"got {len(space_rows)}"
        )
    rows: list[list[int]] = []
    for i in range(n):
        coeff = []
        for j in range(n):
            if j == i:
                coeff.append(0)
                continue
            pi_unit = [0] * n
            pi_unit[j] = 1
            t_full = space_rows + [pi_unit]
            cols = [c for c in range(n) if c != i]
            minor_mat = [[row[c] for c in cols] for row in t_full]
            sign = -1 if i % 2 else 1
            coeff.append(sign * det_bareiss(minor_mat))
        rows.append(coeff)
    return rows


def build_corank1_subproblems(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    orthant: str = "auto",
) -> list[tuple[LinearProgram, dict]]:
    """The ``2n`` convex ILPs partitioning formulation (5.1)-(5.2).

    Each subproblem fixes one disjunct ``s * f_i(Pi) >= mu_i + 1``
    (``s in {+1, -1}``) alongside the dependence constraints
    ``Pi d >= 1`` (strict integral form of ``Pi D > 0``).

    Parameters
    ----------
    orthant:
        ``"positive"`` restricts to ``pi_j >= 1`` (valid whenever the
        dependence matrix contains all unit vectors, as in matmul —
        Example 5.1's reduction); ``"split"`` uses the general
        ``pi = p - q`` encoding with ``p, q >= 0``; ``"auto"`` picks
        ``"positive"`` exactly when every unit vector appears as a
        dependence column.

    Returns
    -------
    List of ``(program, info)`` where ``info`` records the disjunct
    (``i``, ``sign``) and the encoding, and ``program.names`` describes
    the variables.
    """
    n = algorithm.n
    mu = algorithm.mu
    d = algorithm.dependence_vectors()
    f_rows = conflict_functional_rows(space, n)

    if orthant == "auto":
        units = {tuple(1 if r == c else 0 for r in range(n)) for c in range(n)}
        orthant = "positive" if units <= set(d) else "split"
    if orthant not in ("positive", "split"):
        raise ValueError(f"unknown orthant mode {orthant!r}")

    problems: list[tuple[LinearProgram, dict]] = []
    for i in range(n):
        if all(c == 0 for c in f_rows[i]):
            continue  # f_i identically zero: the disjunct is unsatisfiable
        for sign in (1, -1):
            if orthant == "positive":
                c = [float(m) for m in mu]
                a_ub: list[list[float]] = []
                b_ub: list[float] = []
                for dep in d:
                    a_ub.append([-float(x) for x in dep])
                    b_ub.append(-1.0)
                a_ub.append([-sign * float(x) for x in f_rows[i]])
                b_ub.append(-float(mu[i] + 1))
                bounds = [(1.0, None)] * n
                names = [f"pi_{j + 1}" for j in range(n)]
                prog = LinearProgram.build(
                    c, a_ub=a_ub, b_ub=b_ub, bounds=bounds, integer=True, names=names
                )
            else:
                # pi = p - q with p, q >= 0; objective sum mu_j (p_j + q_j)
                # upper-bounds sum mu_j |pi_j| and agrees at any optimum.
                c = [float(m) for m in mu] * 2
                a_ub = []
                b_ub = []
                for dep in d:
                    row = [-float(x) for x in dep] + [float(x) for x in dep]
                    a_ub.append(row)
                    b_ub.append(-1.0)
                frow = [-sign * float(x) for x in f_rows[i]] + [
                    sign * float(x) for x in f_rows[i]
                ]
                a_ub.append(frow)
                b_ub.append(-float(mu[i] + 1))
                bounds = [(0.0, None)] * (2 * n)
                names = [f"p_{j + 1}" for j in range(n)] + [
                    f"q_{j + 1}" for j in range(n)
                ]
                prog = LinearProgram.build(
                    c, a_ub=a_ub, b_ub=b_ub, bounds=bounds, integer=True, names=names
                )
            problems.append(
                (prog, {"disjunct": i, "sign": sign, "encoding": orthant})
            )
    return problems


def _lower_bound_uncached(
    algorithm: UniformDependenceAlgorithm,
    space: tuple[tuple[int, ...], ...],
) -> tuple[int | None, str | None]:
    import math

    from ..ilp.branch_bound import solve_lp_relaxation

    try:
        subs = build_corank1_subproblems(algorithm, space)
    except ValueError:
        return None, None  # structurally out of scope, not an LP failure
    if not subs:
        return None, "every conflict functional is identically zero"
    best: float | None = None
    try:
        for prog, info in subs:
            sol = solve_lp_relaxation(prog)
            if sol.status == "infeasible":
                # This disjunct admits no schedule at all; the bound is
                # the min over the *satisfiable* disjuncts.
                continue
            if sol.status != "optimal":
                return None, (
                    f"LP relaxation of disjunct {info['disjunct']} "
                    f"(sign {info['sign']:+d}) ended with status {sol.status}"
                )
            if sol.objective is not None and (
                best is None or sol.objective < best
            ):
                best = sol.objective
    except Exception as exc:  # scipy failures degrade, never propagate
        return None, f"LP relaxation raised {type(exc).__name__}: {exc}"
    if best is None:
        return None, "every disjunct's LP relaxation is infeasible"
    return max(0, math.ceil(best - 1e-6)), None


_lower_bound_cache: dict[tuple, tuple[int | None, str | None]] = {}


def schedule_lower_bound(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
) -> tuple[int | None, str | None]:
    """LP-relaxation lower bound on ``f = sum mu_i |pi_i|``, or why not.

    Conflict-freedom of a co-rank-1 mapping requires some raw conflict
    functional to clear its box bound (``|f_i(Pi)| >= mu_i + 1`` — the
    *necessary* half of formulation (5.1)-(5.2); the gcd normalization
    only ever shrinks ``|f_i|``).  The minimum of the LP relaxations of
    the ``2n`` disjunct programs therefore lower-bounds the objective of
    every dependence-respecting conflict-free schedule, so candidates in
    rings below it can skip the conflict screen entirely: the screen's
    verdict for them is already known to be "conflict".

    Returns ``(bound, None)`` on success and ``(None, reason)`` when no
    bound is available.  A ``None`` reason alongside a ``None`` bound
    means the formulation simply does not apply (co-rank != 1); a
    non-``None`` reason is a genuine LP-level failure that callers may
    surface as a ``ring_bound_failed`` trace event.  Failures never
    raise: Procedure 5.1 degrades to the ordinary unbounded scan.
    """
    mu = tuple(int(m) for m in algorithm.mu)
    deps = tuple(
        tuple(int(x) for x in d) for d in algorithm.dependence_vectors()
    )
    space_rows = tuple(tuple(int(x) for x in row) for row in space)
    if len(space_rows) != algorithm.n - 2:
        return None, None  # the disjunctive formulation is co-rank-1 only
    key = (mu, deps, space_rows)
    hit = _lower_bound_cache.get(key)
    if hit is None:
        hit = _lower_bound_uncached(algorithm, space_rows)
        if len(_lower_bound_cache) > 256:
            _lower_bound_cache.clear()
        _lower_bound_cache[key] = hit
    return hit


@dataclass(frozen=True)
class ILPMappingResult:
    """Outcome of the ILP route to Problem 2.2.

    Attributes
    ----------
    schedule:
        The optimal schedule (post-checked conflict-free), or ``None``.
    mapping:
        The corresponding mapping matrix.
    objective:
        The objective value ``f = sum mu_i |pi_i|`` (total time is
        ``objective + 1``).
    candidates_checked:
        Vertices / ILP optima that went through the Theorem 3.1
        post-check.
    subproblems:
        Number of convex subproblems in the partition.
    rejected_by_gcd:
        Candidates whose raw ``f``-vector passed but whose normalized
        conflict vector failed Theorem 2.2 (the appendix's caveat).
    used_search_fallback:
        True when every vertex candidate failed the post-check and the
        optimum was recovered by a bounded Procedure-5.1 search
        (finding F3: at odd ``mu`` the matmul partition has *no*
        surviving integral vertex, and the true optimum is not an
        extreme point of any subproblem).
    """

    schedule: LinearSchedule | None
    mapping: MappingMatrix | None
    objective: int | None
    candidates_checked: int
    subproblems: int
    rejected_by_gcd: int
    used_search_fallback: bool = False

    @property
    def found(self) -> bool:
        return self.schedule is not None

    @property
    def total_time(self) -> int:
        if self.objective is None:
            raise ValueError("no solution found")
        return self.objective + 1


def _decode_pi(x: tuple[int, ...], info: dict, n: int) -> tuple[int, ...]:
    if info["encoding"] == "positive":
        return tuple(x[:n])
    return tuple(x[j] - x[n + j] for j in range(n))


def solve_corank1_optimal(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    orthant: str = "auto",
    solver: str = "vertices",
) -> ILPMappingResult:
    """End-to-end ILP solution of Problem 2.2 for co-rank-1 mappings.

    Collects candidate optima from every convex subproblem (all
    integral vertices with ``solver="vertices"``; the single B&B
    optimum per subproblem with ``solver="branch-bound"``), orders them
    by objective, and returns the first candidate that survives the
    Theorem 3.1 post-check together with the rank and strict
    dependence conditions.

    When *no* candidate survives — which genuinely happens (finding
    F3): for matmul at odd ``mu`` every integral vertex's conflict
    vector normalizes into the box — the optimum is not an extreme
    point of any subproblem and the appendix's technique is
    structurally incomplete.  A bounded Procedure-5.1 search then
    recovers the optimum, flagged via ``used_search_fallback``.
    """
    n = algorithm.n
    mu = algorithm.mu
    subs = build_corank1_subproblems(algorithm, space, orthant=orthant)
    space_rows = tuple(tuple(int(x) for x in row) for row in space)

    candidates: list[tuple[int, tuple[int, ...]]] = []
    seen: set[tuple[int, ...]] = set()
    for prog, info in subs:
        if solver == "vertices":
            for v in enumerate_vertices(prog):
                if any(x.denominator != 1 for x in v):
                    continue
                pi = _decode_pi(tuple(int(x) for x in v), info, n)
                if pi in seen:
                    continue
                seen.add(pi)
                obj = sum(m * abs(p) for m, p in zip(mu, pi))
                candidates.append((obj, pi))
        elif solver == "branch-bound":
            sol = solve_ilp(prog)
            if sol.ok:
                pi = _decode_pi(sol.x_int(), info, n)
                if pi not in seen:
                    seen.add(pi)
                    obj = sum(m * abs(p) for m, p in zip(mu, pi))
                    candidates.append((obj, pi))
        else:
            raise ValueError(f"unknown solver {solver!r}")

    candidates.sort()
    checked = 0
    rejected_gcd = 0
    for obj, pi in candidates:
        checked += 1
        t = MappingMatrix(space=space_rows, schedule=pi)
        if t.rank() != t.k:
            continue
        if not t.respects_dependences(algorithm):
            continue
        verdict = theorem_3_1(t, mu)
        if not verdict.holds:
            rejected_gcd += 1
            continue
        sched = LinearSchedule(pi=pi, index_set=algorithm.index_set)
        return ILPMappingResult(
            schedule=sched,
            mapping=t,
            objective=obj,
            candidates_checked=checked,
            subproblems=len(subs),
            rejected_by_gcd=rejected_gcd,
        )
    # No vertex survived: fall back to the enumerative search, starting
    # at the LP lower bound (the best vertex objective bounds the
    # relaxation, so nothing below it can be conflict-free and valid).
    from .optimize import procedure_5_1

    lower = candidates[0][0] if candidates else None
    search = procedure_5_1(
        algorithm,
        space_rows,
        method="auto",
        initial_bound=lower if lower is not None else sum(mu),
    )
    if search.found:
        return ILPMappingResult(
            schedule=search.schedule,
            mapping=search.mapping,
            objective=search.schedule.f,
            candidates_checked=checked + search.candidates_examined,
            subproblems=len(subs),
            rejected_by_gcd=rejected_gcd,
            used_search_fallback=True,
        )
    return ILPMappingResult(
        schedule=None,
        mapping=None,
        objective=None,
        candidates_checked=checked,
        subproblems=len(subs),
        rejected_by_gcd=rejected_gcd,
    )


def _frac(x: float) -> Fraction:  # pragma: no cover - helper for reports
    return Fraction(x).limit_denominator(10**9)
