"""Formulation (5.5)-(5.6): time-optimal 2-D mappings of 5-D algorithms.

Section 5 closes with the integer program the authors were applying to
bit-level matrix multiplication: for ``T = [S; Pi] in Z^{3x5}`` with
``S`` normalized per Proposition 8.1, minimize ``sum |pi_i| mu_i``
subject to (numbering as in (5.6))

1. ``Pi D > 0``;
2. ``rank(T) = 3`` (linear in ``Pi``);
3. a same-sign row of ``(u_4, u_5)`` with ``|u_{i4} + u_{i5}| > mu_i``;
4. an opposite-sign row with ``|u_{i4} - u_{i5}| > mu_i``;
5. ``|u_{i'4}| > mu_{i'}`` for some row (``u_4`` feasible);
6. ``|u_{j'5}| > mu_{j'}`` for some row (``u_5`` feasible);
7. optionally ``S D = P K`` under Equation 2.3.

with ``u_4(Pi), u_5(Pi)`` the closed forms of Proposition 8.1 — i.e.
Theorem 4.7 phrased directly in ``Pi`` without running a Hermite
reduction per candidate.  The constraints are non-linear in ``Pi``
(they divide by gcds), so — exactly as the paper concedes — this is a
general integer program; we solve it by the same monotone candidate
enumeration as Procedure 5.1, with this constraint system as the
acceptance test.

The clause-by-clause verdicts are exposed so the benchmark harness can
print which row satisfied which clause, the way the paper's examples
justify their designs.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..model import UniformDependenceAlgorithm
from .mapping import MappingMatrix
from .optimize import SearchResult, enumerate_schedule_vectors
from .prop81 import prop81_applicable, prop81_columns
from .schedule import LinearSchedule

__all__ = [
    "Formulation56Verdict",
    "check_formulation_5_6",
    "solve_bitlevel_formulation",
]


@dataclass(frozen=True)
class Formulation56Verdict:
    """Clause-by-clause outcome of the (5.6) constraint system.

    ``rows`` maps clause number (3-6) to the witnessing row index, or
    ``None`` when the clause failed; ``degenerate`` marks candidates
    where Proposition 8.1's gcds vanish (``h_33 = h_34 = 0``) — outside
    the closed form's premise, treated as rejection.
    """

    holds: bool
    rows: dict[int, int | None]
    u4: tuple[int, ...] | None
    u5: tuple[int, ...] | None
    degenerate: bool


def check_formulation_5_6(
    space: Sequence[Sequence[int]],
    pi: Sequence[int],
    mu: Sequence[int],
) -> Formulation56Verdict:
    """Evaluate clauses 3-6 of (5.6) via Proposition 8.1's ``u_4, u_5``.

    Clauses 1-2 and 7 are structural and handled by the caller (they do
    not involve the multiplier columns).
    """
    mu = [int(x) for x in mu]
    try:
        prop = prop81_columns(space, pi)
    except ValueError:
        return Formulation56Verdict(
            holds=False, rows={3: None, 4: None, 5: None, 6: None},
            u4=None, u5=None, degenerate=True,
        )
    u4, u5 = prop.u4, prop.u5
    n = len(u4)

    rows: dict[int, int | None] = {3: None, 4: None, 5: None, 6: None}
    for i in range(n):
        if rows[3] is None and u4[i] * u5[i] >= 0 and abs(u4[i] + u5[i]) > mu[i]:
            rows[3] = i
        if rows[4] is None and u4[i] * u5[i] <= 0 and abs(u4[i] - u5[i]) > mu[i]:
            rows[4] = i
        if rows[5] is None and abs(u4[i]) > mu[i]:
            rows[5] = i
        if rows[6] is None and abs(u5[i]) > mu[i]:
            rows[6] = i
    holds = all(v is not None for v in rows.values())
    return Formulation56Verdict(
        holds=holds, rows=rows, u4=u4, u5=u5, degenerate=False
    )


def solve_bitlevel_formulation(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    alpha: int | None = None,
    initial_bound: int | None = None,
    max_bound: int | None = None,
) -> SearchResult:
    """Solve (5.5)-(5.6) by monotone enumeration with Prop-8.1 checks.

    Same interface and optimality argument as
    :func:`repro.core.optimize.procedure_5_1`, but the conflict test is
    the paper's constraint system (Theorem 4.7 through Proposition 8.1)
    instead of a per-candidate Hermite reduction.  Note the caveat
    inherited from Theorem 4.7's necessity gap (finding F1): a
    candidate rejected by clauses 3-6 may still be conflict-free, so
    the result is optimal *within the formulation* — exactly the
    paper's claim; cross-check against Procedure 5.1 in the tests shows
    agreement on all bit-level instances exercised.
    """
    if not prop81_applicable(space):
        raise ValueError(
            "formulation (5.5)-(5.6) requires the Proposition 8.1 "
            "normalizations (s11 == 1, s22 - s21*s12 == 1)"
        )
    mu = algorithm.mu
    space_rows = tuple(tuple(int(x) for x in row) for row in space)
    k = 3

    if alpha is None:
        alpha = max(1, min(mu))
    if initial_bound is None:
        initial_bound = sum(mu)
    if max_bound is None:
        max_bound = (algorithm.n + 1) * (max(mu) + 1) * max(mu)

    examined = 0
    rings = 0
    x_prev = -1
    x = initial_bound
    while x_prev < max_bound:
        ring = [
            LinearSchedule(pi=pi, index_set=algorithm.index_set)
            for pi in enumerate_schedule_vectors(
                mu, min(x, max_bound), f_min=x_prev + 1
            )
        ]
        ring.sort(key=LinearSchedule.sort_key)
        for cand in ring:
            if not cand.respects(algorithm):  # clause 1
                continue
            t = MappingMatrix(space=space_rows, schedule=cand.pi)
            examined += 1
            if t.rank() != k:  # clause 2
                continue
            verdict = check_formulation_5_6(space_rows, cand.pi, mu)
            if not verdict.holds:  # clauses 3-6
                continue
            from .conditions import ConditionVerdict

            return SearchResult(
                schedule=cand,
                mapping=t,
                verdict=ConditionVerdict(
                    holds=True,
                    theorem="5.6",
                    kind="sufficient",
                    witnesses={"clause_rows": verdict.rows,
                               "u4": verdict.u4, "u5": verdict.u5},
                ),
                candidates_examined=examined,
                rings_expanded=rings,
            )
        rings += 1
        x_prev = min(x, max_bound)
        x += alpha

    return SearchResult(
        schedule=None,
        mapping=None,
        verdict=None,
        candidates_examined=examined,
        rings_expanded=rings,
    )
