"""Problems 6.1 and 6.2: space-optimal and jointly-optimal mappings.

Section 6 poses two open problems this reproduction implements as the
paper's stated future work:

* **Problem 6.1 (space-optimal, conflict-free)** — given the linear
  schedule ``Pi``, find a space mapping ``S`` such that ``T = [S; Pi]``
  is conflict-free and "the number of processors plus the wire length
  of the array is minimized".
* **Problem 6.2 (optimal conflict-free)** — neither ``S`` nor ``Pi``
  given: optimize a combined criterion over both.

Both are solved by exact enumeration over a bounded design space of
candidate space mappings (rows with entries in ``[-magnitude,
magnitude]``, normalized to primitive rows with positive leading
entry, full row rank, deduplicated up to row order) — complete within
the bound, which covers every space mapping appearing in the paper
(all of whose entries are in ``{-1, 0, 1}``).  Conflict-freedom uses
the exact ``auto`` checker, so reported optima are certified.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..dse.progress import SearchStats
from ..intlin import INT64_MAX, as_intmat, normalize_primitive, rank
from ..intlin.batch import batch_point_images, batch_rows
from ..obs import get_tracer
from ..model import UniformDependenceAlgorithm
from ..systolic.cost import ArrayCost, evaluate_cost
from ..systolic.interconnect import RoutingError
from .conditions import check_conflict_free
from .conflict import batch_distinct_image_counts
from .mapping import MappingMatrix
from .optimize import _BATCH_CELL_LIMIT, DEFAULT_BATCH_SIZE, procedure_5_1
from .schedule import LinearSchedule

__all__ = [
    "SpaceDesign",
    "SpaceOptimizationResult",
    "enumerate_space_rows",
    "evaluate_design",
    "evaluate_designs_batched",
    "evaluate_joint_candidate",
    "joint_objective",
    "pareto_frontier",
    "enumerate_space_mappings",
    "rank_designs",
    "solve_space_optimal",
    "solve_joint_optimal",
]


@dataclass(frozen=True)
class SpaceDesign:
    """One evaluated candidate design for Problem 6.1 / 6.2."""

    mapping: MappingMatrix
    cost: ArrayCost
    objective: float


@dataclass(frozen=True)
class SpaceOptimizationResult:
    """Outcome of a space-mapping optimization.

    Attributes
    ----------
    best:
        The minimal-objective certified design (``None`` if no
        candidate in the bound was conflict-free and routable).
    ranking:
        All surviving designs, best first — Problem 6.1 asks for a
        single optimum but array designers want the Pareto context.
    candidates_examined, rejected_conflicts, rejected_routing:
        Search accounting.
    stats:
        Uniform :class:`repro.dse.progress.SearchStats` accounting,
        deterministic across execution strategies.
    """

    best: SpaceDesign | None
    ranking: tuple[SpaceDesign, ...]
    candidates_examined: int
    rejected_conflicts: int
    rejected_routing: int
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def found(self) -> bool:
        return self.best is not None


def enumerate_space_rows(n: int, magnitude: int = 1) -> list[tuple[int, ...]]:
    """Primitive candidate rows with positive leading non-zero entry.

    Row-scaling and row-negation do not change the induced processor
    partition (they relabel PE coordinates), so only normalized
    representatives are enumerated.
    """
    seen: set[tuple[int, ...]] = set()
    out: list[tuple[int, ...]] = []
    for raw in itertools.product(range(-magnitude, magnitude + 1), repeat=n):
        if all(x == 0 for x in raw):
            continue
        norm = tuple(normalize_primitive(list(raw)))
        if norm not in seen:
            seen.add(norm)
            out.append(norm)
    return out


def enumerate_space_mappings(
    n: int, array_dim: int, magnitude: int = 1
) -> Iterator[tuple[tuple[int, ...], ...]]:
    """All full-rank ``array_dim x n`` candidate space mappings.

    Candidates are combinations (not permutations) of normalized rows —
    row order only permutes processor coordinates.
    """
    rows = enumerate_space_rows(n, magnitude)
    for combo in itertools.combinations(rows, array_dim):
        if rank([list(r) for r in combo]) == array_dim:
            yield combo


def _default_objective(cost: ArrayCost) -> float:
    """Problem 6.1's stated criterion: processors + wire length."""
    return cost.combined(processor_weight=1.0, wire_weight=1.0)


def joint_objective(
    cost: ArrayCost, time_weight: float = 1.0, space_weight: float = 1.0
) -> float:
    """Problem 6.2's ranking criterion: weighted time plus VLSI area.

    The single source of truth for the joint cost model — used by
    :func:`evaluate_joint_candidate` (cold searches, serial and
    sharded) *and* by the engine's warm-cache rebuild, so a cached
    ranking can never drift from a recomputed one if the formula
    changes.
    """
    return time_weight * cost.total_time + space_weight * (
        cost.processors + cost.wire_length
    )


def evaluate_design(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    pi: Sequence[int],
    objective: Callable[[ArrayCost], float] | None = None,
) -> tuple[str, SpaceDesign | None]:
    """Judge one Problem-6.1 candidate ``(S, Pi)``.

    Returns ``(status, design)`` with status one of ``"rank"``,
    ``"conflict"``, ``"routing"`` (design is ``None``) or ``"ok"``.
    This is the unit of work both :func:`solve_space_optimal` and the
    sharded engine execute, so a sharded search judges candidates
    exactly as the serial one does.
    """
    pi_t = tuple(int(x) for x in pi)
    space_rows = tuple(tuple(int(x) for x in row) for row in space)
    obj = objective or _default_objective
    t = MappingMatrix(space=space_rows, schedule=pi_t)
    if t.rank() != len(space_rows) + 1:
        return "rank", None
    if not check_conflict_free(t, algorithm.mu, method="auto").holds:
        return "conflict", None
    try:
        cost = evaluate_cost(algorithm, t)
    except RoutingError:
        return "routing", None
    return "ok", SpaceDesign(mapping=t, cost=cost, objective=obj(cost))


def evaluate_designs_batched(
    algorithm: UniformDependenceAlgorithm,
    spaces: Sequence[Sequence[Sequence[int]]],
    pi: Sequence[int],
    objective: Callable[[ArrayCost], float] | None = None,
    *,
    batch_size: int | None = None,
) -> tuple[list[tuple[str, SpaceDesign | None]], int, int]:
    """Judge a stack of Problem-6.1 candidates with the vectorized screen.

    Returns ``(outcomes, batches_evaluated, fastpath_promotions)`` where
    ``outcomes[i]`` is exactly what ``evaluate_design(algorithm,
    spaces[i], pi, objective)`` returns: the rank check stays scalar
    (tiny exact eliminations), the conflict decision runs as one
    mixed-radix distinct-image count per vectorized batch — candidate
    ``S`` is conflict-free with ``Pi`` iff the stacked point images
    ``[Pi j | S j]`` are pairwise distinct over the whole index box —
    and only candidates whose int64 bounds cannot be certified fall
    back to the scalar exact checker.  Cost/routing evaluation of the
    survivors is scalar either way.
    """
    pi_t = tuple(int(x) for x in pi)
    obj = objective or _default_objective
    norm_spaces = [
        tuple(tuple(int(x) for x in row) for row in space) for space in spaces
    ]
    outcomes: list[tuple[str, SpaceDesign | None] | None] = [None] * len(
        norm_spaces
    )
    batches = 0
    promotions = 0
    mappings: dict[int, MappingMatrix] = {}
    survivors: list[int] = []
    for i, space_rows in enumerate(norm_spaces):
        t = MappingMatrix(space=space_rows, schedule=pi_t)
        if t.rank() != len(space_rows) + 1:
            outcomes[i] = ("rank", None)
        else:
            mappings[i] = t
            survivors.append(i)
    free: dict[int, bool] = {}
    if survivors:
        pts = algorithm.index_set.points_array()
        n_pts = pts.shape[0]
        pts_max = int(np.abs(pts).max(initial=0))
        bound = pts_max * max(1, algorithm.n)
        thr = INT64_MAX if bound == 0 else INT64_MAX // bound
        fixed = as_intmat([list(pi_t)]).image_of_points(pts)
        # Group by row count so each batch reshapes to (P, C, width).
        by_width: dict[int, list[int]] = {}
        for i in survivors:
            by_width.setdefault(len(norm_spaces[i]), []).append(i)
        size = DEFAULT_BATCH_SIZE if batch_size is None else int(batch_size)
        if size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        for width, members in by_width.items():
            chunk = max(
                1, min(size, _BATCH_CELL_LIMIT // max(1, n_pts * max(1, width)))
            )
            for lo in range(0, len(members), chunk):
                group = members[lo : lo + chunk]
                rows = batch_rows(
                    [row for i in group for row in norm_spaces[i]]
                )
                scalar: list[int] = []
                fast: list[int] = []
                if rows.dtype == object or fixed.dtype == object:
                    scalar = list(group)
                else:
                    for pos, i in enumerate(group):
                        own = rows[pos * width : (pos + 1) * width]
                        if int(np.abs(own).max(initial=0)) <= thr:
                            fast.append(i)
                        else:
                            scalar.append(i)
                if fast:
                    batches += 1
                    fast_rows = batch_rows(
                        [row for i in fast for row in norm_spaces[i]]
                    )
                    images, _ = batch_point_images(pts, fast_rows)
                    varying = images.reshape(n_pts, len(fast), width)
                    counts = batch_distinct_image_counts(fixed, varying)
                    for pos, i in enumerate(fast):
                        if counts[pos] < 0:
                            scalar.append(i)
                        else:
                            free[i] = counts[pos] == n_pts
                for i in scalar:
                    promotions += 1
                    free[i] = check_conflict_free(
                        mappings[i], algorithm.mu, method="auto"
                    ).holds
    for i in survivors:
        if not free[i]:
            outcomes[i] = ("conflict", None)
            continue
        t = mappings[i]
        try:
            cost = evaluate_cost(algorithm, t)
        except RoutingError:
            outcomes[i] = ("routing", None)
            continue
        outcomes[i] = ("ok", SpaceDesign(mapping=t, cost=cost, objective=obj(cost)))
    return [out for out in outcomes if out is not None], batches, promotions


def evaluate_joint_candidate(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    time_weight: float = 1.0,
    space_weight: float = 1.0,
    schedule_kwargs: dict | None = None,
) -> tuple[str, SpaceDesign | None]:
    """Judge one Problem-6.2 candidate ``S`` (time-optimal ``Pi`` found
    by Procedure 5.1).

    Status is ``"conflict"`` when no conflict-free schedule exists in
    the search bound, ``"routing"`` when the winner is unroutable, else
    ``"ok"``.  Shared by :func:`solve_joint_optimal` and the engine.

    ``schedule_kwargs`` reaches the inner Procedure 5.1 verbatim, so
    the pruning switches (``symmetry``/``ring_bound``) apply here too —
    by default every per-candidate schedule search runs with orbit
    collapsing and the LP ring bound on, which is safe because both are
    result-preserving (the judged status and design never change).
    """
    kwargs = schedule_kwargs or {}
    search = procedure_5_1(algorithm, space, **kwargs)
    if not search.found:
        return "conflict", None
    try:
        cost = evaluate_cost(algorithm, search.mapping)
    except RoutingError:
        return "routing", None
    objective = joint_objective(cost, time_weight, space_weight)
    return "ok", SpaceDesign(mapping=search.mapping, cost=cost, objective=objective)


def rank_designs(designs: list[SpaceDesign]) -> list[SpaceDesign]:
    """Deterministic total order: objective first, then the space rows."""
    return sorted(designs, key=lambda d: (d.objective, d.mapping.space))


def solve_space_optimal(
    algorithm: UniformDependenceAlgorithm,
    pi: Sequence[int],
    *,
    array_dim: int = 1,
    magnitude: int = 1,
    objective: Callable[[ArrayCost], float] | None = None,
    keep_ranking: int = 10,
    batch: bool = True,
    batch_size: int | None = None,
) -> SpaceOptimizationResult:
    """Problem 6.1: given ``Pi``, find the cheapest conflict-free ``S``.

    Parameters
    ----------
    pi:
        The (given) linear schedule — typically from Procedure 5.1 or
        the scheduling-only optimization the paper cites ([16]).
    array_dim:
        Target array dimension ``k - 1``.
    magnitude:
        Entry bound of the candidate rows (1 covers the paper's
        designs).
    objective:
        Cost aggregation; defaults to processors + wire length.
    keep_ranking:
        How many runner-up designs to retain.
    batch:
        Judge candidates through :func:`evaluate_designs_batched` (the
        default); ``False`` keeps the one-at-a-time
        :func:`evaluate_design` loop.  Identical outcome either way.
    batch_size:
        Candidates per vectorized batch.
    """
    pi_t = tuple(int(x) for x in pi)
    sched = LinearSchedule(pi=pi_t, index_set=algorithm.index_set)
    if not sched.respects(algorithm):
        raise ValueError("the given Pi violates the dependence condition Pi D > 0")

    tracer = get_tracer()
    stats = SearchStats()
    designs: list[SpaceDesign] = []
    root = tracer.span(
        "core.solve_space_optimal",
        algorithm=algorithm.name,
        array_dim=array_dim,
        magnitude=magnitude,
        batch=batch,
    )
    with root:
        spaces = list(enumerate_space_mappings(algorithm.n, array_dim, magnitude))
        if batch:
            outcomes, stats.batches_evaluated, stats.fastpath_promotions = (
                evaluate_designs_batched(
                    algorithm, spaces, pi_t, objective, batch_size=batch_size
                )
            )
        else:
            outcomes = [
                evaluate_design(algorithm, space, pi_t, objective)
                for space in spaces
            ]
        for status, design in outcomes:
            stats.candidates_enumerated += 1
            if status == "rank":
                stats.candidates_pruned += 1
                continue
            stats.candidates_checked += 1
            if status == "conflict":
                stats.conflicts_rejected += 1
            elif status == "routing":
                stats.routing_rejected += 1
            else:
                designs.append(design)
        designs = rank_designs(designs)
        root.set(candidates=stats.candidates_enumerated, surviving=len(designs))

    stats.wall_time = root.duration
    stats.shard_wall_times = (stats.wall_time,)
    return SpaceOptimizationResult(
        best=designs[0] if designs else None,
        ranking=tuple(designs[:keep_ranking]),
        candidates_examined=stats.candidates_enumerated,
        rejected_conflicts=stats.conflicts_rejected,
        rejected_routing=stats.routing_rejected,
        stats=stats,
    )


def pareto_frontier(
    algorithm: UniformDependenceAlgorithm,
    *,
    array_dim: int = 1,
    magnitude: int = 1,
    schedule_kwargs: dict | None = None,
) -> tuple[SpaceDesign, ...]:
    """Non-dominated designs over (time, processors, wire, buffers).

    Explores the same bounded design space as :func:`solve_joint_optimal`
    (every candidate ``S`` paired with its time-optimal conflict-free
    schedule) and returns the Pareto frontier: designs not dominated in
    all four metrics simultaneously.  This is the designer's view of
    Problem 6.2 — instead of committing to a weighting, see the whole
    trade-off curve.
    """
    kwargs = schedule_kwargs or {}
    candidates: list[SpaceDesign] = []
    for space in enumerate_space_mappings(algorithm.n, array_dim, magnitude):
        search = procedure_5_1(algorithm, space, **kwargs)
        if not search.found:
            continue
        try:
            cost = evaluate_cost(algorithm, search.mapping)
        except RoutingError:
            continue
        candidates.append(
            SpaceDesign(mapping=search.mapping, cost=cost, objective=0.0)
        )

    def metrics(d: SpaceDesign) -> tuple[int, int, int, int]:
        return (
            d.cost.total_time,
            d.cost.processors,
            d.cost.wire_length,
            d.cost.buffers,
        )

    def dominated(a: SpaceDesign, b: SpaceDesign) -> bool:
        ma, mb = metrics(a), metrics(b)
        return all(x >= y for x, y in zip(ma, mb)) and ma != mb

    frontier = [
        d for d in candidates
        if not any(dominated(d, other) for other in candidates)
    ]
    # Deduplicate identical metric points (keep the lexicographically
    # smallest space for determinism).
    best_by_metrics: dict[tuple[int, int, int, int], SpaceDesign] = {}
    for d in frontier:
        key = metrics(d)
        incumbent = best_by_metrics.get(key)
        if incumbent is None or d.mapping.space < incumbent.mapping.space:
            best_by_metrics[key] = d
    return tuple(
        sorted(best_by_metrics.values(), key=lambda d: metrics(d))
    )


def solve_joint_optimal(
    algorithm: UniformDependenceAlgorithm,
    *,
    array_dim: int = 1,
    magnitude: int = 1,
    time_weight: float = 1.0,
    space_weight: float = 1.0,
    keep_ranking: int = 10,
    schedule_kwargs: dict | None = None,
) -> SpaceOptimizationResult:
    """Problem 6.2: optimize over ``S`` *and* ``Pi`` jointly.

    For every candidate ``S`` the time-optimal conflict-free ``Pi`` is
    found by Procedure 5.1; designs are then ranked by
    ``time_weight * t + space_weight * (processors + wire)`` — the
    "combination of the total execution time and the VLSI area"
    criterion Section 2 mentions.
    """
    tracer = get_tracer()
    stats = SearchStats()
    designs: list[SpaceDesign] = []
    root = tracer.span(
        "core.solve_joint_optimal",
        algorithm=algorithm.name,
        array_dim=array_dim,
        magnitude=magnitude,
    )
    with root:
        for space in enumerate_space_mappings(algorithm.n, array_dim, magnitude):
            stats.candidates_enumerated += 1
            stats.candidates_checked += 1
            status, design = evaluate_joint_candidate(
                algorithm, space, time_weight, space_weight, schedule_kwargs
            )
            if status == "conflict":
                stats.conflicts_rejected += 1
            elif status == "routing":
                stats.routing_rejected += 1
            else:
                designs.append(design)
        designs = rank_designs(designs)
        root.set(candidates=stats.candidates_enumerated, surviving=len(designs))

    stats.wall_time = root.duration
    stats.shard_wall_times = (stats.wall_time,)
    return SpaceOptimizationResult(
        best=designs[0] if designs else None,
        ranking=tuple(designs[:keep_ranking]),
        candidates_examined=stats.candidates_enumerated,
        rejected_conflicts=stats.conflicts_rejected,
        rejected_routing=stats.routing_rejected,
        stats=stats,
    )
