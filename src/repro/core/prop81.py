"""Proposition 8.1: closed-form Hermite multiplier columns for ``T in Z^{3x5}``.

When a 5-dimensional algorithm (e.g. bit-level matrix multiplication)
is mapped onto a 2-dimensional array, ``T = [S; Pi]`` is ``3 x 5`` and
Theorem 4.7's conditions are phrased in the last two columns
``u_4, u_5`` of the multiplier ``U``.  Proposition 8.1 expresses those
columns as functions of ``Pi`` under the normalizations ``s_11 = 1``
and ``s_22 - s_21 * s_12 = 1``:

    ``u_4 = (h_34 / g_1) * w_3 - (h_33 / g_1) * w_4``
    ``u_5 = (p_1 h_35 / g_2) * w_3 + (q_1 h_35 / g_2) * w_4'
            - (g_1 / g_2) * w_5``

(the paper's 8.3a/8.3b with the ``w`` columns built from the
``c_1j, c_2j`` constants of 8.5), where ``h_3j`` are the linear
functions of ``Pi`` in 8.4, ``g_1 = gcd(h_33, h_34)`` with Bezout pair
``(p_1, q_1)`` and ``g_2 = gcd(g_1, h_35)``.

This module computes ``h``, ``c``, ``g`` and the two columns exactly
and *verifies* ``T u_4 = T u_5 = 0`` before returning — the original
proof lives in chapter 6 of [30] (unavailable), so the implementation
is validated constructively on every call and cross-checked against
the generic HNF kernel in the test-suite (same lattice spanned).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..intlin import extended_gcd
from .mapping import MappingMatrix

__all__ = ["Prop81Result", "prop81_columns", "prop81_applicable"]


@dataclass(frozen=True)
class Prop81Result:
    """The closed-form kernel columns and all intermediate quantities.

    Attributes mirror the paper's symbols: ``h`` is ``(h_33, h_34,
    h_35)``, ``c`` the six constants of 8.5, ``g`` the gcd pair
    ``(g_1, g_2)``, ``bezout`` the pairs ``(p_1, q_1)`` and
    ``(p_2, q_2)``.
    """

    u4: tuple[int, ...]
    u5: tuple[int, ...]
    h: tuple[int, int, int]
    c: dict[str, int]
    g: tuple[int, int]
    bezout: tuple[tuple[int, int], tuple[int, int]]


def prop81_applicable(space: Sequence[Sequence[int]]) -> bool:
    """Check the proposition's normalizations: ``s11 == 1`` and
    ``s22 - s21 s12 == 1``.

    Any full-rank ``S`` can be brought to this form by unimodular row
    operations (which do not change the mapping up to relabeling of
    processor coordinates); the check is left explicit rather than
    automatic so users see which ``S`` the formula was applied to.
    """
    s = [list(map(int, row)) for row in space]
    if len(s) != 2 or any(len(row) != 5 for row in s):
        return False
    return s[0][0] == 1 and s[1][1] - s[1][0] * s[0][1] == 1


def prop81_columns(
    space: Sequence[Sequence[int]], pi: Sequence[int]
) -> Prop81Result:
    """Evaluate Proposition 8.1 for a concrete ``S`` and ``Pi``.

    Raises :class:`ValueError` when the normalizations do not hold,
    when a gcd degenerates to zero (``Pi`` makes ``h_33 = h_34 = 0``,
    outside the proposition's premise), or when the constructed columns
    fail the defining property ``T u = 0`` (which would indicate the
    closed form does not apply to this corner case).
    """
    if not prop81_applicable(space):
        raise ValueError(
            "Proposition 8.1 requires s11 == 1 and s22 - s21*s12 == 1"
        )
    s = [list(map(int, row)) for row in space]
    p = [int(x) for x in pi]
    if len(p) != 5:
        raise ValueError("Pi must have 5 entries")
    s11, s12, s13, s14, s15 = s[0]
    s21, s22, s23, s24, s25 = s[1]
    pi1, pi2, pi3, pi4, pi5 = p

    # Equations 8.4 — the linear functions of Pi.
    h33 = -pi1 * (s12 * s21 * s13 - s12 * s23 + s13) + pi2 * (s21 * s13 - s23) + pi3
    h34 = -pi1 * (s12 * s21 * s14 - s12 * s24 + s14) + pi2 * (s21 * s14 - s24) + pi4
    h35 = -pi1 * (s12 * s21 * s15 - s12 * s25 + s15) + pi2 * (s21 * s15 - s25) + pi5

    # Equations 8.5 — the constants from S.
    c13 = -s12 * (s21 * s13 - s23) - s13
    c14 = -s12 * (s21 * s14 - s24) - s14
    c15 = -s12 * (s21 * s15 - s25) - s15
    c23 = s21 * s13 - s23
    c24 = s21 * s14 - s24
    c25 = s21 * s15 - s25

    g1, p1, q1 = extended_gcd(h33, h34)
    if g1 == 0:
        raise ValueError("Proposition 8.1 degenerates: h33 = h34 = 0 for this Pi")
    g2, p2, q2 = extended_gcd(g1, h35)

    # The w-columns annihilate S by construction of the c constants
    # (S w_j = 0 via the two normalizations) and satisfy Pi w_j = h_3j,
    # so any combination of them with h-orthogonal coefficients is a
    # kernel vector of the full T.
    w3 = [c13, c23, 1, 0, 0]
    w4 = [c14, c24, 0, 1, 0]
    w5 = [c15, c25, 0, 0, 1]

    # Equation 8.3a: coefficients (h34, -h33) / g1 — integral because g1
    # divides both h33 and h34.
    u4 = [(h34 * a - h33 * b) // g1 for a, b in zip(w3, w4)]

    # Equation 8.3b: coefficients (p1 h35, q1 h35, -g1) / g2 — integral
    # because g2 = gcd(g1, h35) divides h35 and g1.
    u5 = [
        (p1 * h35 * a + q1 * h35 * b - g1 * e) // g2
        for a, b, e in zip(w3, w4, w5)
    ]

    t = MappingMatrix(space=tuple(tuple(r) for r in s), schedule=tuple(p))
    for col, label in ((u4, "u4"), (u5, "u5")):
        if any(t.matrix.matvec(col)):
            raise ValueError(f"constructed {label} is not in the kernel of T")

    return Prop81Result(
        u4=tuple(u4),
        u5=tuple(u5),
        h=(h33, h34, h35),
        c={"c13": c13, "c14": c14, "c15": c15, "c23": c23, "c24": c24, "c25": c25},
        g=(g1, g2),
        bezout=((p1, q1), (p2, q2)),
    )
