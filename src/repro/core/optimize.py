"""Procedure 5.1: enumerative search for the time-optimal schedule.

Given an algorithm ``(J, D)`` and a fixed space mapping ``S``, find the
integral schedule ``Pi`` minimizing the total execution time subject to

1. ``Pi D > 0`` (dependences respected),
2. ``rank([S; Pi]) == k`` (genuinely ``(k-1)``-dimensional),
3. ``[S; Pi]`` conflict-free (checked with the strongest theorem for
   the co-rank — Theorem 3.1 / 4.7 / 4.8 / 4.5 — or the exact oracle),
4. optionally an interconnection constraint (Definition 2.2 cond. 2),
   supplied as a callback to keep this module independent of
   :mod:`repro.systolic`.

Candidates are enumerated in non-decreasing execution-time order
(Theorem 2.1 justifies the expanding-ring strategy), exactly the
paper's Steps 1-7 with the candidate set ``C_l = {Pi : sum |pi_i| mu_i
<= x_l}`` and growth ``x_{l+1} = x_l + alpha``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field, replace

from ..dse.progress import SearchStats
from ..intlin import as_intvec
from ..obs import get_tracer
from ..model import UniformDependenceAlgorithm
from .conditions import ConditionVerdict, check_conflict_free
from .mapping import MappingMatrix
from .schedule import LinearSchedule

__all__ = [
    "SearchResult",
    "enumerate_schedule_vectors",
    "find_all_optima",
    "procedure_5_1",
    "search_bounds",
]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of Procedure 5.1.

    Attributes
    ----------
    schedule:
        The optimal ``Pi`` (as a :class:`LinearSchedule`), or ``None``
        if the search bound was exhausted.
    mapping:
        The full conflict-free mapping matrix ``T = [S; Pi]``.
    verdict:
        The conflict checker's verdict for the winning candidate.
    candidates_examined:
        Number of candidate vectors that went through the full check.
    rings_expanded:
        How many times the bound ``x_l`` grew before success.
    stats:
        Uniform :class:`repro.dse.progress.SearchStats` accounting; its
        deterministic counters are identical whichever execution
        strategy (serial, sharded, cached) produced this result.
    """

    schedule: LinearSchedule | None
    mapping: MappingMatrix | None
    verdict: ConditionVerdict | None
    candidates_examined: int
    rings_expanded: int
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def found(self) -> bool:
        return self.schedule is not None

    @property
    def total_time(self) -> int:
        if self.schedule is None:
            raise ValueError("no schedule found")
        return self.schedule.total_time


def enumerate_schedule_vectors(
    mu: Sequence[int],
    f_max: int,
    *,
    f_min: int = 0,
    nonnegative: bool = False,
) -> Iterator[tuple[int, ...]]:
    """All integral ``Pi`` with ``f_min <= sum |pi_i| mu_i <= f_max``.

    Lazy depth-first enumeration with exact budget pruning; the zero
    vector is excluded (it is never a valid schedule).  Order within
    the ring is deterministic but unsorted — Procedure 5.1 sorts by
    execution time afterwards.
    """
    mu = [int(m) for m in mu]
    n = len(mu)

    def rec(prefix: list[int], spent: int, pos: int) -> Iterator[tuple[int, ...]]:
        if pos == n:
            if f_min <= spent and any(prefix):
                yield tuple(prefix)
            return
        budget = f_max - spent
        top = budget // mu[pos]
        for v in range(-top, top + 1):
            prefix.append(v)
            yield from rec(prefix, spent + abs(v) * mu[pos], pos + 1)
            prefix.pop()

    def rec_nonneg(prefix: list[int], spent: int, pos: int) -> Iterator[tuple[int, ...]]:
        if pos == n:
            if f_min <= spent and any(prefix):
                yield tuple(prefix)
            return
        budget = f_max - spent
        top = budget // mu[pos]
        for v in range(0, top + 1):
            prefix.append(v)
            yield from rec_nonneg(prefix, spent + v * mu[pos], pos + 1)
            prefix.pop()

    walker = rec_nonneg if nonnegative else rec
    yield from walker([], 0, 0)


def search_bounds(
    algorithm: UniformDependenceAlgorithm,
    *,
    alpha: int | None = None,
    initial_bound: int | None = None,
    max_bound: int | None = None,
) -> tuple[int, int, int]:
    """Resolve Procedure 5.1's ``(alpha, initial_bound, max_bound)`` defaults.

    One place owns the defaulting rules so the serial search and the
    sharded engine (:mod:`repro.dse.executor`) expand exactly the same
    rings — a prerequisite for their results comparing equal.
    """
    mu = algorithm.mu
    n = algorithm.n
    if alpha is None:
        alpha = max(1, min(mu))
    if initial_bound is None:
        initial_bound = sum(mu)
    if max_bound is None:
        max_bound = (n + 1) * (max(mu) + 1) * max(mu)
    return alpha, initial_bound, max_bound


def procedure_5_1(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    method: str = "auto",
    alpha: int | None = None,
    initial_bound: int | None = None,
    max_bound: int | None = None,
    extra_constraint: Callable[[MappingMatrix], bool] | None = None,
) -> SearchResult:
    """Find the time-optimal conflict-free schedule for a fixed ``S``.

    Parameters
    ----------
    algorithm:
        The uniform dependence algorithm ``(J, D)``.
    space:
        The given space mapping matrix ``S`` (Problem 2.2 assumes it).
    method:
        Conflict-checking mode passed to
        :func:`repro.core.conditions.check_conflict_free`; ``"auto"``
        follows the paper's Step 5(3) dispatch, ``"exact"`` uses the
        kernel-box oracle.
    alpha:
        Ring growth increment ``x_{l+1} = x_l + alpha`` (default: the
        smallest ``mu_i``).
    initial_bound:
        Starting ``x_1`` (default ``sum(mu)``, enough to contain the
        all-ones schedule).
    max_bound:
        Hard stop; ``None`` derives a conservative cap of
        ``(n + 1) * (max mu + 1) * max mu`` — beyond the largest
        objective any of the closed-form optima in the paper reach.
    extra_constraint:
        Optional predicate on the assembled mapping (used for
        Definition 2.2 condition 2 by :mod:`repro.core.pipeline`).

    Notes
    -----
    Because candidates are visited in non-decreasing total time and the
    checks are exact (for ``method="exact"``) or sufficient-and-
    necessary for co-rank <= 3 (``method="auto"``), the first surviving
    candidate is optimal.
    """
    mu = algorithm.mu
    # Pre-normalized IntVec rows: MappingMatrix construction inside the
    # candidate loop then reuses them as-is instead of re-validating.
    space_rows = tuple(as_intvec(row) for row in space)
    k = len(space_rows) + 1
    alpha, initial_bound, max_bound = search_bounds(
        algorithm, alpha=alpha, initial_bound=initial_bound, max_bound=max_bound
    )

    tracer = get_tracer()
    stats = SearchStats()
    examined = 0
    rings = 0
    x_prev = -1
    x = initial_bound
    result: SearchResult | None = None
    # The root span is the single timing source: SearchStats.wall_time
    # is read back from its monotonic duration after it closes.
    root = tracer.span(
        "core.procedure_5_1",
        algorithm=algorithm.name,
        method=method,
        alpha=alpha,
        initial_bound=initial_bound,
        max_bound=max_bound,
    )
    with root:
        while x_prev < max_bound and result is None:
            ring_span = tracer.span(
                "core.ring", ring=rings, f_min=x_prev + 1, f_max=min(x, max_bound)
            )
            with ring_span:
                ring: list[LinearSchedule] = [
                    LinearSchedule(pi=pi, index_set=algorithm.index_set)
                    for pi in enumerate_schedule_vectors(
                        mu, min(x, max_bound), f_min=x_prev + 1
                    )
                ]
                stats.candidates_enumerated += len(ring)
                ring.sort(key=LinearSchedule.sort_key)
                ring_span.set(candidates=len(ring))
                for cand in ring:
                    if not cand.respects(algorithm):
                        stats.candidates_pruned += 1
                        continue
                    t = MappingMatrix(space=space_rows, schedule=cand.pi)
                    examined += 1
                    if t.rank() != k:
                        stats.candidates_pruned += 1
                        continue
                    stats.candidates_checked += 1
                    verdict = check_conflict_free(t, mu, method=method)
                    if not verdict.holds:
                        stats.conflicts_rejected += 1
                        continue
                    if extra_constraint is not None and not extra_constraint(t):
                        continue
                    stats.rings_expanded = rings
                    ring_span.set(winner=list(cand.pi))
                    result = SearchResult(
                        schedule=cand,
                        mapping=t,
                        verdict=verdict,
                        candidates_examined=examined,
                        rings_expanded=rings,
                        stats=stats,
                    )
                    break
            if result is None:
                rings += 1
                x_prev = min(x, max_bound)
                x += alpha

    if result is None:
        stats.rings_expanded = rings
        result = SearchResult(
            schedule=None,
            mapping=None,
            verdict=None,
            candidates_examined=examined,
            rings_expanded=rings,
            stats=stats,
        )
    # stats is shared with the result; the frozen dataclass holds the
    # reference, so deriving wall_time from the span after construction
    # is visible to callers.
    stats.wall_time = root.duration
    stats.shard_wall_times = (stats.wall_time,)
    return result


def find_all_optima(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    method: str = "auto",
    **kwargs,
) -> list[SearchResult]:
    """All co-optimal conflict-free schedules (Procedure 5.1's full tie set).

    The paper's Example 5.1 notes two optima (``[1, mu, 1]`` and
    ``[mu, 1, 1]``); this returns every schedule achieving the minimal
    total time, each wrapped as a :class:`SearchResult`.  Runs the
    standard search once for the optimum, then sweeps the optimal ring
    exhaustively in the search's documented
    :meth:`~repro.core.schedule.LinearSchedule.sort_key` order.

    Each returned result carries its *own* :class:`SearchStats` copy
    (same counter values — one search was performed); mutating one
    result's telemetry never leaks into its siblings.
    """
    first = procedure_5_1(algorithm, space, method=method, **kwargs)
    if not first.found:
        return []
    mu = algorithm.mu
    space_rows = tuple(as_intvec(row) for row in space)
    k = len(space_rows) + 1
    best_f = first.schedule.f
    ties = [
        LinearSchedule(pi=pi, index_set=algorithm.index_set)
        for pi in enumerate_schedule_vectors(mu, best_f, f_min=best_f)
    ]
    ties.sort(key=LinearSchedule.sort_key)
    results: list[SearchResult] = []
    for cand in ties:
        if not algorithm.is_acyclic_under(cand.pi):
            continue
        t = MappingMatrix(space=space_rows, schedule=cand.pi)
        if t.rank() != k:
            continue
        verdict = check_conflict_free(t, mu, method=method)
        if not verdict.holds:
            continue
        results.append(
            SearchResult(
                schedule=cand,
                mapping=t,
                verdict=verdict,
                candidates_examined=first.candidates_examined,
                rings_expanded=first.rings_expanded,
                stats=replace(first.stats),
            )
        )
    return results


# Backwards-friendly alias matching the paper's wording.
find_time_optimal_schedule = procedure_5_1

_ = field  # keep dataclass import grouped for linters
