"""Procedure 5.1: enumerative search for the time-optimal schedule.

Given an algorithm ``(J, D)`` and a fixed space mapping ``S``, find the
integral schedule ``Pi`` minimizing the total execution time subject to

1. ``Pi D > 0`` (dependences respected),
2. ``rank([S; Pi]) == k`` (genuinely ``(k-1)``-dimensional),
3. ``[S; Pi]`` conflict-free (checked with the strongest theorem for
   the co-rank — Theorem 3.1 / 4.7 / 4.8 / 4.5 — or the exact oracle),
4. optionally an interconnection constraint (Definition 2.2 cond. 2),
   supplied as a callback to keep this module independent of
   :mod:`repro.systolic`.

Candidates are enumerated in non-decreasing execution-time order
(Theorem 2.1 justifies the expanding-ring strategy), exactly the
paper's Steps 1-7 with the candidate set ``C_l = {Pi : sum |pi_i| mu_i
<= x_l}`` and growth ``x_{l+1} = x_l + alpha``.
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from functools import lru_cache

import numpy as np

from ..dse.progress import SearchStats
from ..intlin import INT64_MAX, IntMat, as_intmat, as_intvec, kernel_basis
from ..intlin.batch import (
    batch_dependence_mask,
    batch_nonzero_mask,
    batch_point_images,
)
from ..obs import get_tracer
from ..model import UniformDependenceAlgorithm
from .conditions import ConditionVerdict, check_conflict_free
from .conflict import batch_distinct_image_counts
from .mapping import MappingMatrix
from .schedule import LinearSchedule
from .symmetry import SymmetryGroup, symmetry_group_for

__all__ = [
    "BatchCandidateScanner",
    "DEFAULT_BATCH_SIZE",
    "STAGE_CONFLICT",
    "STAGE_DEPS",
    "STAGE_OK",
    "STAGE_RANK",
    "SearchResult",
    "batch_disabled_reason",
    "batch_supported",
    "enumerate_schedule_vectors",
    "find_all_optima",
    "procedure_5_1",
    "ring_candidate_array",
    "search_bounds",
]

# Stage codes of the candidate filter funnel, in rejection order; the
# sharded engine (repro.dse.executor) transports the same codes in its
# shard records.
STAGE_DEPS = "deps"
STAGE_RANK = "rank"
STAGE_CONFLICT = "conflict"
STAGE_OK = "ok"

#: Candidates evaluated per vectorized batch (before the memory cap).
DEFAULT_BATCH_SIZE = 512
# Cap on points x candidates cells materialized per conflict-image
# chunk (~32 MB of int64), and on the box size the vectorized ring
# generator will materialize before falling back to the lazy walker.
_BATCH_CELL_LIMIT = 4_194_304
_BOX_ENUM_LIMIT = 2_000_000
# Rings with budgets beyond this stay on the scalar path: the int64
# sort keys and |pi_i| entries are only certified below it.
_BATCH_MAX_BOUND = 2**31


def batch_disabled_reason(method: str, max_bound: int) -> str | None:
    """Why the batched funnel cannot run, or ``None`` when it can.

    The vectorized conflict screen decides injectivity of ``tau`` on
    ``J`` exactly — which matches :func:`check_conflict_free` for
    ``method="auto"``/``"exact"`` but not for ``method="paper"``, whose
    Theorem 4.7/4.8 sufficient conditions deliberately keep the paper's
    necessity gap.  Oversized ring budgets also fall back to the scalar
    walker so candidate entries stay certified int64.
    """
    if method not in ("auto", "exact"):
        return (
            f"method={method!r} has no exact vectorized form (the "
            "Theorem 4.7/4.8 sufficient conditions are scalar-only)"
        )
    if max_bound > _BATCH_MAX_BOUND:
        return (
            f"max_bound {max_bound} exceeds 2^31, past the certified "
            "int64 range of the batched funnel"
        )
    return None


def batch_supported(method: str, max_bound: int) -> bool:
    """Whether the batched funnel preserves bit-exact results.

    Equivalent to ``batch_disabled_reason(method, max_bound) is None``;
    see that function for the rationale behind each disqualifier.
    """
    return batch_disabled_reason(method, max_bound) is None


_logger = logging.getLogger("repro.core.optimize")
_warned_batch_reasons: set[str] = set()


def _warn_batch_disabled(reason: str) -> None:
    """One-time (per reason, per process) scalar-fallback warning."""
    if reason in _warned_batch_reasons:
        return
    _warned_batch_reasons.add(reason)
    _logger.warning(
        "batched candidate evaluation disabled: %s; falling back to the "
        "scalar scan (typically 7-14x slower)",
        reason,
    )


@dataclass(frozen=True)
class SearchResult:
    """Outcome of Procedure 5.1.

    Attributes
    ----------
    schedule:
        The optimal ``Pi`` (as a :class:`LinearSchedule`), or ``None``
        if the search bound was exhausted.
    mapping:
        The full conflict-free mapping matrix ``T = [S; Pi]``.
    verdict:
        The conflict checker's verdict for the winning candidate.
    candidates_examined:
        Number of candidate vectors that went through the full check.
    rings_expanded:
        How many times the bound ``x_l`` grew before success.
    stats:
        Uniform :class:`repro.dse.progress.SearchStats` accounting; its
        deterministic counters are identical whichever execution
        strategy (serial, sharded, cached) produced this result.
    """

    schedule: LinearSchedule | None
    mapping: MappingMatrix | None
    verdict: ConditionVerdict | None
    candidates_examined: int
    rings_expanded: int
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def found(self) -> bool:
        return self.schedule is not None

    @property
    def total_time(self) -> int:
        if self.schedule is None:
            raise ValueError("no schedule found")
        return self.schedule.total_time


def enumerate_schedule_vectors(
    mu: Sequence[int],
    f_max: int,
    *,
    f_min: int = 0,
    nonnegative: bool = False,
) -> Iterator[tuple[int, ...]]:
    """All integral ``Pi`` with ``f_min <= sum |pi_i| mu_i <= f_max``.

    Lazy depth-first enumeration with exact budget pruning; the zero
    vector is excluded (it is never a valid schedule).  Order within
    the ring is deterministic but unsorted — Procedure 5.1 sorts by
    execution time afterwards.
    """
    mu = [int(m) for m in mu]
    n = len(mu)

    def rec(prefix: list[int], spent: int, pos: int) -> Iterator[tuple[int, ...]]:
        if pos == n:
            if f_min <= spent and any(prefix):
                yield tuple(prefix)
            return
        budget = f_max - spent
        top = budget // mu[pos]
        for v in range(-top, top + 1):
            prefix.append(v)
            yield from rec(prefix, spent + abs(v) * mu[pos], pos + 1)
            prefix.pop()

    def rec_nonneg(prefix: list[int], spent: int, pos: int) -> Iterator[tuple[int, ...]]:
        if pos == n:
            if f_min <= spent and any(prefix):
                yield tuple(prefix)
            return
        budget = f_max - spent
        top = budget // mu[pos]
        for v in range(0, top + 1):
            prefix.append(v)
            yield from rec_nonneg(prefix, spent + v * mu[pos], pos + 1)
            prefix.pop()

    walker = rec_nonneg if nonnegative else rec
    yield from walker([], 0, 0)


@lru_cache(maxsize=8)
def _ring_candidate_array_cached(
    mu: tuple[int, ...], f_max: int, f_min: int
) -> np.ndarray:
    n = len(mu)
    mu_arr = np.array(mu, dtype=np.int64)
    tops = [f_max // m for m in mu] if f_max >= 0 else [0] * n
    box = 1
    for t in tops:
        box *= 2 * t + 1
    if 0 < box <= _BOX_ENUM_LIMIT and n > 0:
        # Vectorized generation: materialize the bounding box and mask
        # the ring out of it — the same candidate set the lazy walker
        # produces, an order of magnitude faster on large rings.
        axes = [np.arange(-t, t + 1, dtype=np.int64) for t in tops]
        grid = np.meshgrid(*axes, indexing="ij")
        pis = np.stack([g.ravel() for g in grid], axis=1)
        f = np.abs(pis) @ mu_arr
        mask = (f >= f_min) & (f <= f_max) & (pis != 0).any(axis=1)
        pis = pis[mask]
        f = f[mask]
    else:
        listed = list(enumerate_schedule_vectors(mu, f_max, f_min=f_min))
        pis = np.array(listed, dtype=np.int64).reshape(len(listed), n)
        f = np.abs(pis) @ mu_arr
    if len(pis):
        # np.lexsort sorts by its *last* key first: primary key f
        # (total time), then the vector entries lexicographically —
        # exactly LinearSchedule.sort_key order.
        keys = tuple(pis[:, j] for j in range(n - 1, -1, -1)) + (f,)
        pis = np.ascontiguousarray(pis[np.lexsort(keys)])
    pis.setflags(write=False)
    return pis


def ring_candidate_array(
    mu: Sequence[int], f_max: int, *, f_min: int = 0
) -> np.ndarray:
    """The ring's candidates as a sorted, read-only ``(N, n)`` array.

    Same candidate set as :func:`enumerate_schedule_vectors`, already in
    Procedure 5.1's documented scan order — primary key total execution
    time, ties broken lexicographically on the vector.  Cached (the
    sharded engine re-derives a ring inside every worker that holds one
    of its slices); callers must treat the array as immutable.
    """
    return _ring_candidate_array_cached(
        tuple(int(m) for m in mu), int(f_max), int(f_min)
    )


class BatchCandidateScanner:
    """Staged vectorized filter funnel over sorted candidate arrays.

    Evaluates ring slices chunk-by-chunk: a vectorized ``Pi D > 0``
    dependence mask, then a vectorized rank screen (``Pi`` against the
    kernel basis of ``S``), then the exact vectorized conflict-image
    screen (mixed-radix distinct-row counts of ``[S j | Pi j]`` over the
    whole index box), with only the candidates whose int64 bounds cannot
    be certified promoted to the scalar exact
    :func:`~repro.core.conditions.check_conflict_free` path.  Produces
    the same per-candidate stage code the scalar loop would, in the same
    order — callers rebuild identical counters and pick the identical
    winner.

    Only valid where :func:`batch_supported` holds; the screen *is* the
    exact conflict decider there.

    Two optional pruners ride on top without changing any stage code:

    * ``symmetry`` — a :class:`repro.core.symmetry.SymmetryGroup`; each
      chunk is canonicalized to orbit representatives, only fresh
      representatives run the funnel, and every member's stage is
      rehydrated from the representative's memoized result (valid
      because the group construction certifies stage invariance).
    * ``min_feasible_f`` — an LP-relaxation lower bound on the budget of
      any conflict-free candidate
      (:func:`repro.core.ilp_formulation.schedule_lower_bound`);
      dependence/rank survivors below it are assigned
      :data:`STAGE_CONFLICT` directly, which is exactly the verdict the
      skipped screen would have computed.
    """

    def __init__(
        self,
        algorithm: UniformDependenceAlgorithm,
        space: Sequence[Sequence[int]],
        *,
        method: str = "auto",
        batch_size: int | None = None,
        symmetry: SymmetryGroup | None = None,
        min_feasible_f: int | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.space_rows = tuple(as_intvec(row) for row in space)
        self.method = method
        size = DEFAULT_BATCH_SIZE if batch_size is None else int(batch_size)
        if size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = size
        self.batches_evaluated = 0
        self.fastpath_promotions = 0
        self.orbits_collapsed = 0
        self.candidates_skipped = 0
        self.conflict_screens = 0
        self.symmetry = (
            symmetry if symmetry is not None and symmetry.order > 1 else None
        )
        self.min_feasible_f = min_feasible_f
        self._orbit_memo: dict[tuple[int, ...], str] = {}
        self._mu_arr = np.array([int(m) for m in algorithm.mu], dtype=np.int64)
        self.n = algorithm.n
        self.k = len(self.space_rows) + 1
        points = 1
        for m in algorithm.mu:
            points *= int(m) + 1
        self._chunk = max(1, min(size, _BATCH_CELL_LIMIT // max(1, points)))
        deps = [tuple(int(x) for x in d) for d in algorithm.dependence_vectors()]
        self._dep_mat: IntMat | None = (
            as_intmat([list(row) for row in zip(*deps)]) if deps else None
        )
        self._s_mat: IntMat | None = None
        self._kernel: IntMat | None = None
        if self.k == 1:
            # No space rows: rank([Pi]) == 1 for every (non-zero) candidate.
            self._rank_mode = "all-pass"
        else:
            self._s_mat = as_intmat([list(row) for row in self.space_rows])
            kernel_cols = (
                kernel_basis(self._s_mat)
                if self._s_mat.rank() == self.k - 1
                else []
            )
            if kernel_cols:
                self._rank_mode = "kernel"
                self._kernel = as_intmat(
                    [list(row) for row in zip(*[list(c) for c in kernel_cols])]
                )
            else:
                # Row-deficient S (or S already spanning Q^n): no Pi can
                # lift [S; Pi] to rank k.
                self._rank_mode = "all-fail"
        self._conflict_ready = False
        self._pts: np.ndarray | None = None
        self._n_pts = 0
        self._fixed: np.ndarray | None = None
        self._col_thr = INT64_MAX

    def _prepare_conflict(self) -> None:
        pts = self.algorithm.index_set.points_array()
        self._pts = pts
        self._n_pts = pts.shape[0]
        if self.k == 1:
            self._fixed = np.empty((pts.shape[0], 0), dtype=np.int64)
        else:
            assert self._s_mat is not None
            self._fixed = self._s_mat.image_of_points(pts)
        pts_max = int(np.abs(pts).max(initial=0))
        bound = pts_max * max(1, self.n)
        self._col_thr = INT64_MAX if bound == 0 else INT64_MAX // bound
        self._conflict_ready = True

    def _scalar_conflict(self, pi_row: np.ndarray) -> str:
        self.fastpath_promotions += 1
        t = MappingMatrix(
            space=self.space_rows,
            schedule=tuple(int(v) for v in pi_row),
        )
        verdict = check_conflict_free(t, self.algorithm.mu, method=self.method)
        return STAGE_OK if verdict.holds else STAGE_CONFLICT

    def _stages_for_chunk(self, chunk: np.ndarray) -> list[str]:
        self.batches_evaluated += 1
        if self.symmetry is None:
            return self._evaluate_rows(chunk)
        # Orbit collapse: evaluate each fresh representative once, then
        # rehydrate every member's stage from the memo.  Representatives
        # share the member's budget f (mu-compatibility), so memo entries
        # are only ever hit within their own ring.
        keys = [tuple(row) for row in self.symmetry.canonicalize_rows(chunk).tolist()]
        memo = self._orbit_memo
        fresh: list[tuple[int, ...]] = []
        fresh_seen: set[tuple[int, ...]] = set()
        for key in keys:
            if key not in memo and key not in fresh_seen:
                fresh_seen.add(key)
                fresh.append(key)
        if fresh:
            stages = self._evaluate_rows(np.array(fresh, dtype=np.int64))
            for key, stage in zip(fresh, stages):
                memo[key] = stage
        self.orbits_collapsed += len(keys) - len(fresh)
        return [memo[key] for key in keys]

    def _evaluate_rows(self, chunk: np.ndarray) -> list[str]:
        m = len(chunk)
        stages = [STAGE_DEPS] * m
        if self._dep_mat is None:
            dep_mask = np.ones(m, dtype=bool)
        else:
            dep_mask, promoted = batch_dependence_mask(chunk, self._dep_mat)
            self.fastpath_promotions += promoted
        if self._rank_mode == "all-fail":
            for i in np.nonzero(dep_mask)[0]:
                stages[i] = STAGE_RANK
            return stages
        if self._rank_mode == "kernel":
            assert self._kernel is not None
            rank_mask, promoted = batch_nonzero_mask(chunk, self._kernel)
            self.fastpath_promotions += promoted
        else:
            rank_mask = np.ones(m, dtype=bool)
        for i in np.nonzero(dep_mask & ~rank_mask)[0]:
            stages[i] = STAGE_RANK
        survivors = np.nonzero(dep_mask & rank_mask)[0]
        if survivors.size == 0:
            return stages
        if self.k == self.n:
            # Co-rank 0: a full-rank square mapping is injective on Z^n.
            for i in survivors:
                stages[i] = STAGE_OK
            return stages
        if self.min_feasible_f is not None:
            # Budgets below the LP bound cannot be conflict-free; assign
            # the screen's inevitable verdict without running it.
            f_vals = np.abs(chunk[survivors]) @ self._mu_arr
            below = f_vals < self.min_feasible_f
            if below.any():
                for i in survivors[below]:
                    stages[i] = STAGE_CONFLICT
                self.candidates_skipped += int(below.sum())
                survivors = survivors[~below]
                if survivors.size == 0:
                    return stages
        self.conflict_screens += int(survivors.size)
        if not self._conflict_ready:
            self._prepare_conflict()
        assert self._pts is not None and self._fixed is not None
        sub = chunk[survivors]
        vec_max = np.abs(sub).max(axis=1, initial=0)
        certified = vec_max <= self._col_thr
        if self._fixed.dtype == object:
            certified[:] = False
        fast_idx = survivors[certified]
        scalar_idx = list(survivors[~certified])
        if fast_idx.size:
            t_cols, _ = batch_point_images(self._pts, chunk[fast_idx])
            counts = batch_distinct_image_counts(self._fixed, t_cols[:, :, None])
            for pos, i in enumerate(fast_idx):
                if counts[pos] < 0:
                    scalar_idx.append(i)
                elif counts[pos] == self._n_pts:
                    stages[i] = STAGE_OK
                else:
                    stages[i] = STAGE_CONFLICT
        for i in scalar_idx:
            stages[i] = self._scalar_conflict(chunk[i])
        return stages

    def iter_stages(
        self, pis: np.ndarray
    ) -> Iterator[tuple[int, list[str]]]:
        """Yield ``(offset, stage_codes)`` per chunk, lazily in order.

        Laziness lets the serial search stop evaluating a ring the
        moment the winner's chunk is consumed.
        """
        for start in range(0, len(pis), self._chunk):
            yield start, self._stages_for_chunk(pis[start : start + self._chunk])


def search_bounds(
    algorithm: UniformDependenceAlgorithm,
    *,
    alpha: int | None = None,
    initial_bound: int | None = None,
    max_bound: int | None = None,
) -> tuple[int, int, int]:
    """Resolve Procedure 5.1's ``(alpha, initial_bound, max_bound)`` defaults.

    One place owns the defaulting rules so the serial search and the
    sharded engine (:mod:`repro.dse.executor`) expand exactly the same
    rings — a prerequisite for their results comparing equal.
    """
    mu = algorithm.mu
    n = algorithm.n
    if alpha is None:
        alpha = max(1, min(mu))
    if initial_bound is None:
        initial_bound = sum(mu)
    if max_bound is None:
        max_bound = (n + 1) * (max(mu) + 1) * max(mu)
    return alpha, initial_bound, max_bound


def procedure_5_1(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    method: str = "auto",
    alpha: int | None = None,
    initial_bound: int | None = None,
    max_bound: int | None = None,
    extra_constraint: Callable[[MappingMatrix], bool] | None = None,
    batch: bool = True,
    batch_size: int | None = None,
    symmetry: bool = True,
    ring_bound: bool = True,
) -> SearchResult:
    """Find the time-optimal conflict-free schedule for a fixed ``S``.

    Parameters
    ----------
    algorithm:
        The uniform dependence algorithm ``(J, D)``.
    space:
        The given space mapping matrix ``S`` (Problem 2.2 assumes it).
    method:
        Conflict-checking mode passed to
        :func:`repro.core.conditions.check_conflict_free`; ``"auto"``
        follows the paper's Step 5(3) dispatch, ``"exact"`` uses the
        kernel-box oracle.
    alpha:
        Ring growth increment ``x_{l+1} = x_l + alpha`` (default: the
        smallest ``mu_i``).
    initial_bound:
        Starting ``x_1`` (default ``sum(mu)``, enough to contain the
        all-ones schedule).
    max_bound:
        Hard stop; ``None`` derives a conservative cap of
        ``(n + 1) * (max mu + 1) * max mu`` — beyond the largest
        objective any of the closed-form optima in the paper reach.
    extra_constraint:
        Optional predicate on the assembled mapping (used for
        Definition 2.2 condition 2 by :mod:`repro.core.pipeline`).
    batch:
        Evaluate rings through the vectorized
        :class:`BatchCandidateScanner` funnel where
        :func:`batch_supported` holds (the default); ``False`` forces
        the one-candidate-at-a-time scalar loop.  Both produce the same
        winner, tie order, counters and verdict — the escape hatch
        exists for cross-checking and diagnosis, not for different
        answers.
    batch_size:
        Candidates per vectorized batch (default
        :data:`DEFAULT_BATCH_SIZE`, memory-capped per chunk).
    symmetry:
        Collapse candidates related by the funnel's signed-permutation
        symmetry group (:mod:`repro.core.symmetry`) onto one orbit
        representative each (the default).  Only applied for the exact
        conflict deciders (``method="auto"``/``"exact"``); the result —
        winner, verdict, tie set and every deterministic counter — is
        bit-identical either way, only the work changes.
    ring_bound:
        Skip conflict screens for candidates whose budget sits below
        the LP-relaxation lower bound of the co-rank-1 disjunctive
        programs (:func:`repro.core.ilp_formulation.schedule_lower_bound`),
        the default.  LP failures degrade to "no bound, scan normally"
        and are recorded as a ``ring_bound_failed`` trace event; results
        are bit-identical with the flag on or off.

    Notes
    -----
    Because candidates are visited in non-decreasing total time and the
    checks are exact (for ``method="exact"``) or sufficient-and-
    necessary for co-rank <= 3 (``method="auto"``), the first surviving
    candidate is optimal.
    """
    mu = algorithm.mu
    # Pre-normalized IntVec rows: MappingMatrix construction inside the
    # candidate loop then reuses them as-is instead of re-validating.
    space_rows = tuple(as_intvec(row) for row in space)
    k = len(space_rows) + 1
    alpha, initial_bound, max_bound = search_bounds(
        algorithm, alpha=alpha, initial_bound=initial_bound, max_bound=max_bound
    )
    disabled_reason = batch_disabled_reason(method, max_bound) if batch else None
    use_batch = batch and disabled_reason is None
    group: SymmetryGroup | None = None
    if symmetry and method in ("auto", "exact"):
        candidate_group = symmetry_group_for(algorithm, space_rows)
        if candidate_group.order > 1:
            group = candidate_group
    min_f: int | None = None
    bound_reason: str | None = None
    if ring_bound:
        # Lazy import: repro.core.ilp_formulation pulls in repro.ilp
        # (scipy) which plain enumerative searches don't need.
        from .ilp_formulation import schedule_lower_bound

        min_f, bound_reason = schedule_lower_bound(algorithm, space_rows)
    scanner = (
        BatchCandidateScanner(
            algorithm,
            space_rows,
            method=method,
            batch_size=batch_size,
            symmetry=group,
            min_feasible_f=min_f,
        )
        if use_batch
        else None
    )

    tracer = get_tracer()
    stats = SearchStats()
    if disabled_reason is not None:
        stats.batch_disabled_reason = disabled_reason
        _warn_batch_disabled(disabled_reason)
    examined = 0
    rings = 0
    x_prev = -1
    x = initial_bound
    result: SearchResult | None = None
    # The root span is the single timing source: SearchStats.wall_time
    # is read back from its monotonic duration after it closes.
    root = tracer.span(
        "core.procedure_5_1",
        algorithm=algorithm.name,
        method=method,
        alpha=alpha,
        initial_bound=initial_bound,
        max_bound=max_bound,
        batch=use_batch,
        symmetry_order=group.order if group is not None else 1,
        ring_bound=min_f,
    )
    if disabled_reason is not None:
        root.set(batch_disabled_reason=disabled_reason)
    scalar_memo: dict[tuple[int, ...], str] = {}
    with root:
        while x_prev < max_bound and result is None:
            f_hi = min(x, max_bound)
            ring_span = tracer.span(
                "core.ring", ring=rings, f_min=x_prev + 1, f_max=f_hi
            )
            with ring_span:
                if rings == 0 and bound_reason is not None:
                    tracer.event("ring_bound_failed", reason=bound_reason)
                    ring_span.set(ring_bound_failed=bound_reason)
                if min_f is not None and f_hi < min_f:
                    stats.rings_bounded_out += 1
                    ring_span.set(bounded_out=True)
                if scanner is not None:
                    winner = _scan_ring_batched(
                        scanner,
                        algorithm,
                        space_rows,
                        mu,
                        method,
                        extra_constraint,
                        f_min=x_prev + 1,
                        f_max=f_hi,
                        stats=stats,
                        examined=examined,
                    )
                else:
                    winner = _scan_ring_scalar(
                        algorithm,
                        space_rows,
                        k,
                        mu,
                        method,
                        extra_constraint,
                        f_min=x_prev + 1,
                        f_max=f_hi,
                        stats=stats,
                        examined=examined,
                        symmetry=group,
                        min_f=min_f,
                        memo=scalar_memo,
                    )
                examined, ring_size, found = winner
                ring_span.set(candidates=ring_size)
                if found is not None:
                    cand, t, verdict = found
                    stats.rings_expanded = rings
                    ring_span.set(winner=list(cand.pi))
                    result = SearchResult(
                        schedule=cand,
                        mapping=t,
                        verdict=verdict,
                        candidates_examined=examined,
                        rings_expanded=rings,
                        stats=stats,
                    )
            if result is None:
                rings += 1
                x_prev = min(x, max_bound)
                x += alpha

    if result is None:
        stats.rings_expanded = rings
        result = SearchResult(
            schedule=None,
            mapping=None,
            verdict=None,
            candidates_examined=examined,
            rings_expanded=rings,
            stats=stats,
        )
    if scanner is not None:
        stats.batches_evaluated = scanner.batches_evaluated
        stats.fastpath_promotions = scanner.fastpath_promotions
        stats.orbits_collapsed += scanner.orbits_collapsed
        stats.candidates_skipped += scanner.candidates_skipped
        stats.conflict_screens += scanner.conflict_screens
    # stats is shared with the result; the frozen dataclass holds the
    # reference, so deriving wall_time from the span after construction
    # is visible to callers.
    stats.wall_time = root.duration
    stats.shard_wall_times = (stats.wall_time,)
    return result


_RingWinner = tuple[LinearSchedule, MappingMatrix, ConditionVerdict]


def _scan_ring_scalar(
    algorithm: UniformDependenceAlgorithm,
    space_rows: tuple,
    k: int,
    mu: Sequence[int],
    method: str,
    extra_constraint: Callable[[MappingMatrix], bool] | None,
    *,
    f_min: int,
    f_max: int,
    stats: SearchStats,
    examined: int,
    symmetry: SymmetryGroup | None = None,
    min_f: int | None = None,
    memo: dict[tuple[int, ...], str] | None = None,
) -> tuple[int, int, _RingWinner | None]:
    """One-ring scalar scan; returns (examined, ring size, winner).

    With ``symmetry`` each orbit representative is judged once and the
    outcome replayed for every member; with ``min_f`` the conflict
    screen is skipped (verdict "conflict" pre-assigned) below the LP
    bound.  Both replicate the unpruned loop's counters exactly.
    """
    ring: list[LinearSchedule] = [
        LinearSchedule(pi=pi, index_set=algorithm.index_set)
        for pi in enumerate_schedule_vectors(mu, f_max, f_min=f_min)
    ]
    stats.candidates_enumerated += len(ring)
    ring.sort(key=LinearSchedule.sort_key)
    use_sym = symmetry is not None and symmetry.order > 1
    if memo is None:
        memo = {}

    def judge(pi: tuple[int, ...]) -> str:
        sched = LinearSchedule(pi=pi, index_set=algorithm.index_set)
        if not sched.respects(algorithm):
            return STAGE_DEPS
        t_rep = MappingMatrix(space=space_rows, schedule=pi)
        if t_rep.rank() != k:
            return STAGE_RANK
        if min_f is not None and sched.f < min_f:
            stats.candidates_skipped += 1
            return STAGE_CONFLICT
        stats.conflict_screens += 1
        holds = check_conflict_free(t_rep, mu, method=method).holds
        return STAGE_OK if holds else STAGE_CONFLICT

    for cand in ring:
        if use_sym:
            assert symmetry is not None
            rep = symmetry.canonicalize(cand.pi)
            outcome = memo.get(rep)
            if outcome is None:
                outcome = judge(rep)
                memo[rep] = outcome
            else:
                stats.orbits_collapsed += 1
            if outcome == STAGE_DEPS:
                stats.candidates_pruned += 1
                continue
            examined += 1
            if outcome == STAGE_RANK:
                stats.candidates_pruned += 1
                continue
            stats.candidates_checked += 1
            if outcome == STAGE_CONFLICT:
                stats.conflicts_rejected += 1
                continue
            # The orbit representative is conflict-free, hence (by the
            # group's stage invariance) so is this member; its own
            # verdict object is still computed so the returned result is
            # the very one the unpruned loop produces.
            t = MappingMatrix(space=space_rows, schedule=cand.pi)
            stats.conflict_screens += 1
            verdict = check_conflict_free(t, mu, method=method)
            if not verdict.holds:  # pragma: no cover - orbit invariance
                stats.conflicts_rejected += 1
                continue
            if extra_constraint is not None and not extra_constraint(t):
                continue
            return examined, len(ring), (cand, t, verdict)
        if not cand.respects(algorithm):
            stats.candidates_pruned += 1
            continue
        t = MappingMatrix(space=space_rows, schedule=cand.pi)
        examined += 1
        if t.rank() != k:
            stats.candidates_pruned += 1
            continue
        stats.candidates_checked += 1
        if min_f is not None and cand.f < min_f:
            # The LP bound proves the screen would reject; record the
            # rejection it would have produced.
            stats.candidates_skipped += 1
            stats.conflicts_rejected += 1
            continue
        stats.conflict_screens += 1
        verdict = check_conflict_free(t, mu, method=method)
        if not verdict.holds:
            stats.conflicts_rejected += 1
            continue
        if extra_constraint is not None and not extra_constraint(t):
            continue
        return examined, len(ring), (cand, t, verdict)
    return examined, len(ring), None


def _scan_ring_batched(
    scanner: BatchCandidateScanner,
    algorithm: UniformDependenceAlgorithm,
    space_rows: tuple,
    mu: Sequence[int],
    method: str,
    extra_constraint: Callable[[MappingMatrix], bool] | None,
    *,
    f_min: int,
    f_max: int,
    stats: SearchStats,
    examined: int,
) -> tuple[int, int, _RingWinner | None]:
    """One-ring batched scan, counter-compatible with the scalar scan.

    Stage codes come from the vectorized funnel, but counters follow
    the scalar loop's prefix semantics exactly: they accumulate only up
    to (and including) the winning candidate, and the winner's verdict
    is recomputed by the scalar :func:`check_conflict_free` so the
    returned :class:`ConditionVerdict` is the very object the scalar
    path would produce.
    """
    pis = ring_candidate_array(mu, f_max, f_min=f_min)
    stats.candidates_enumerated += len(pis)
    for start, stage_codes in scanner.iter_stages(pis):
        for offset, stage in enumerate(stage_codes):
            if stage == STAGE_DEPS:
                stats.candidates_pruned += 1
                continue
            examined += 1
            if stage == STAGE_RANK:
                stats.candidates_pruned += 1
                continue
            stats.candidates_checked += 1
            if stage == STAGE_CONFLICT:
                stats.conflicts_rejected += 1
                continue
            pi = tuple(int(v) for v in pis[start + offset])
            cand = LinearSchedule(pi=pi, index_set=algorithm.index_set)
            t = MappingMatrix(space=space_rows, schedule=cand.pi)
            verdict = check_conflict_free(t, mu, method=method)
            if not verdict.holds:  # pragma: no cover - screen is exact
                stats.conflicts_rejected += 1
                continue
            if extra_constraint is not None and not extra_constraint(t):
                continue
            return examined, len(pis), (cand, t, verdict)
    return examined, len(pis), None


def find_all_optima(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    method: str = "auto",
    **kwargs,
) -> list[SearchResult]:
    """All co-optimal conflict-free schedules (Procedure 5.1's full tie set).

    The paper's Example 5.1 notes two optima (``[1, mu, 1]`` and
    ``[mu, 1, 1]``); this returns every schedule achieving the minimal
    total time, each wrapped as a :class:`SearchResult`.  Runs the
    standard search once for the optimum, then sweeps the optimal ring
    exhaustively in the search's documented
    :meth:`~repro.core.schedule.LinearSchedule.sort_key` order.

    Each returned result carries its *own* :class:`SearchStats` copy
    (same counter values — one search was performed); mutating one
    result's telemetry never leaks into its siblings.

    The tie sweep honors the same ``symmetry`` keyword as
    :func:`procedure_5_1`: orbits whose representative fails the
    conflict screen are dismissed wholesale, while every *surviving*
    member still gets its own verdict object — the returned tie list is
    bit-identical to the unpruned sweep, in the same sort-key order.
    """
    first = procedure_5_1(algorithm, space, method=method, **kwargs)
    if not first.found:
        return []
    mu = algorithm.mu
    space_rows = tuple(as_intvec(row) for row in space)
    k = len(space_rows) + 1
    group: SymmetryGroup | None = None
    if kwargs.get("symmetry", True) and method in ("auto", "exact"):
        candidate_group = symmetry_group_for(algorithm, space_rows)
        if candidate_group.order > 1:
            group = candidate_group
    rep_holds: dict[tuple[int, ...], bool] = {}
    best_f = first.schedule.f
    ties = [
        LinearSchedule(pi=pi, index_set=algorithm.index_set)
        for pi in enumerate_schedule_vectors(mu, best_f, f_min=best_f)
    ]
    ties.sort(key=LinearSchedule.sort_key)
    results: list[SearchResult] = []
    for cand in ties:
        if not algorithm.is_acyclic_under(cand.pi):
            continue
        t = MappingMatrix(space=space_rows, schedule=cand.pi)
        if t.rank() != k:
            continue
        if group is not None:
            rep = group.canonicalize(cand.pi)
            holds = rep_holds.get(rep)
            if holds is None:
                rep_t = MappingMatrix(space=space_rows, schedule=rep)
                holds = check_conflict_free(rep_t, mu, method=method).holds
                rep_holds[rep] = holds
            if not holds:
                continue
        verdict = check_conflict_free(t, mu, method=method)
        if not verdict.holds:
            # Unreachable when group pre-screened the orbit (invariance);
            # the ordinary rejection path otherwise.
            continue
        results.append(
            SearchResult(
                schedule=cand,
                mapping=t,
                verdict=verdict,
                candidates_examined=first.candidates_examined,
                rings_expanded=first.rings_expanded,
                stats=replace(first.stats),
            )
        )
    return results


# Backwards-friendly alias matching the paper's wording.
find_time_optimal_schedule = procedure_5_1

_ = field  # keep dataclass import grouped for linters
