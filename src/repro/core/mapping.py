"""Mapping matrices ``T = [S; Pi]`` (Definition 2.2).

A linear algorithm transformation maps an ``n``-dimensional uniform
dependence algorithm into a ``(k-1)``-dimensional processor array via
``tau(j) = T j`` where the first ``k-1`` rows (the space mapping ``S``)
give the processor coordinates and the last row (the linear schedule
``Pi``) gives the execution time.  This module holds the matrix object
and the structural conditions 1 and 4 of Definition 2.2; conflict
analysis (condition 3) lives in :mod:`repro.core.conflict` and the
interconnection condition 2 in :mod:`repro.systolic.interconnect`.

A :class:`MappingMatrix` is a hashable value object; its full matrix is
exposed as an immutable :class:`~repro.intlin.IntMat` (:attr:`matrix`,
built lazily and cached), which is what the conflict machinery and the
memoized normal-form kernels consume directly — no per-call list
round-trips.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from ..intlin import IntMat, IntVec, as_intmat, as_intvec
from ..model import UniformDependenceAlgorithm

__all__ = ["MappingMatrix", "MappingError"]


class MappingError(ValueError):
    """Raised for structurally invalid mapping matrices."""


@dataclass(frozen=True)
class MappingMatrix:
    """``T = [S; Pi] in Z^{k x n}`` mapping into a ``(k-1)``-D array.

    Parameters
    ----------
    space:
        The space mapping ``S`` as a ``(k-1, n)`` matrix (possibly with
        zero rows for ``k = 1``, i.e. a "0-dimensional array" — a single
        processor — which the paper permits formally).
    schedule:
        The linear schedule vector ``Pi`` (length ``n``).

    Examples
    --------
    The paper's Example 5.1 mapping of matmul onto a linear array:

    >>> t = MappingMatrix(space=[[1, 1, -1]], schedule=[1, 4, 1])
    >>> t.k, t.n, t.corank
    (2, 3, 1)
    >>> t.tau((2, 3, 1))
    (4, 15)
    """

    space: tuple[IntVec, ...]
    schedule: IntVec

    def __post_init__(self) -> None:
        sched = as_intvec(self.schedule)
        raw_space = self.space
        if raw_space is None:
            raw_space = ()
        space_rows = tuple(as_intvec(row) for row in raw_space)
        n = len(sched)
        if n == 0:
            raise MappingError("schedule vector must be non-empty")
        for row in space_rows:
            if len(row) != n:
                raise MappingError(
                    f"space row has {len(row)} entries, schedule has {n}"
                )
        object.__setattr__(self, "space", space_rows)
        object.__setattr__(self, "schedule", sched)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Any) -> "MappingMatrix":
        """Build from a full ``k x n`` matrix (last row is the schedule)."""
        m = as_intmat(rows)
        if not m.nrows:
            raise MappingError("mapping matrix must have at least one row")
        return cls(space=tuple(m[:-1]), schedule=m[-1])

    def with_schedule(self, pi: Sequence[int]) -> "MappingMatrix":
        """The same space mapping with a different schedule vector."""
        return MappingMatrix(space=self.space, schedule=as_intvec(pi))

    # -- shape -------------------------------------------------------------

    @property
    def n(self) -> int:
        """Algorithm dimension (number of columns)."""
        return len(self.schedule)

    @property
    def k(self) -> int:
        """Number of rows; the target array is ``(k-1)``-dimensional."""
        return len(self.space) + 1

    @property
    def array_dimension(self) -> int:
        """Dimension of the target processor array, ``k - 1``."""
        return len(self.space)

    @property
    def corank(self) -> int:
        """``n - k``: the dimension of the kernel when ``T`` has full rank.

        Co-rank 0 means a square (classical ``n -> n-1``-dimensional)
        mapping with no conflict vectors at all; the paper's subject is
        co-rank ``>= 1``.
        """
        return self.n - self.k

    @property
    def matrix(self) -> IntMat:
        """``T`` as an immutable :class:`IntMat` (lazily built, cached)."""
        cached = self.__dict__.get("_matrix")
        if cached is None:
            cached = IntMat(self.space + (self.schedule,))
            object.__setattr__(self, "_matrix", cached)
        return cached

    @property
    def space_matrix(self) -> IntMat:
        """``S`` alone as an :class:`IntMat` (lazily built, cached)."""
        cached = self.__dict__.get("_space_matrix")
        if cached is None:
            cached = IntMat(self.space)
            object.__setattr__(self, "_space_matrix", cached)
        return cached

    def rows(self) -> list[list[int]]:
        """``T`` as a list of row lists (space rows then the schedule)."""
        return self.matrix.rows()

    # -- Definition 2.2 conditions ------------------------------------------

    def rank(self) -> int:
        """Exact integer rank of ``T``."""
        return self.matrix.rank()

    def has_full_rank(self) -> bool:
        """Condition 4 of Definition 2.2: ``rank(T) == k``."""
        return self.rank() == self.k

    def respects_dependences(self, algorithm: UniformDependenceAlgorithm) -> bool:
        """Condition 1 of Definition 2.2: ``Pi D > 0`` componentwise."""
        return algorithm.is_acyclic_under(self.schedule)

    # -- evaluation ----------------------------------------------------------

    def tau(self, j: Sequence[int]) -> IntVec:
        """``tau(j) = T j``: processor coordinates followed by time."""
        return self.matrix.matvec(j)

    def processor(self, j: Sequence[int]) -> IntVec:
        """Processor coordinates ``S j`` (empty tuple for a single PE)."""
        if not self.space:
            return IntVec()
        return self.space_matrix.matvec(j)

    def time(self, j: Sequence[int]) -> int:
        """Execution time ``Pi j``."""
        return sum(p * int(x) for p, x in zip(self.schedule, j))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MappingMatrix(space={self.space}, schedule={self.schedule})"
