"""Machine-checkable optimality certificates for Problem 2.2.

Procedure 5.1's optimality argument is "we enumerated in non-decreasing
execution-time order and this is the first survivor".  A downstream
user adopting a mapping deserves more than trust in the enumerator:
this module materializes the argument as a *certificate* — for every
schedule strictly faster than the claimed optimum, a concrete
refutation:

* ``dependence``  — a dependence column ``d_i`` with ``Pi d_i <= 0``;
* ``rank``        — ``rank([S; Pi]) < k``;
* ``conflict``    — a non-feasible conflict vector together with the
  colliding index-point pair it produces (Theorem 2.2's constructive
  witness).

``verify_certificate`` re-checks every refutation from first
principles (no shared code with the generation path beyond the matrix
type), so a certificate can be audited independently of the solver
that produced it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..model import UniformDependenceAlgorithm
from .conflict import find_conflict_witness
from .mapping import MappingMatrix
from .optimize import enumerate_schedule_vectors

__all__ = [
    "Refutation",
    "OptimalityCertificate",
    "certify_optimality",
    "verify_certificate",
]


@dataclass(frozen=True)
class Refutation:
    """Why one candidate schedule cannot beat the optimum.

    ``kind`` is ``"dependence"``, ``"rank"`` or ``"conflict"``;
    ``witness`` carries the kind-specific evidence (the violated
    dependence column, the deficient rank, or the colliding index-point
    pair).
    """

    pi: tuple[int, ...]
    kind: str
    witness: tuple


@dataclass(frozen=True)
class OptimalityCertificate:
    """Claimed optimum plus a refutation for every faster candidate.

    Attributes
    ----------
    algorithm_mu, space:
        The problem instance the certificate speaks about.
    optimal_pi, optimal_time:
        The claimed optimum.
    refutations:
        One entry per integral ``Pi`` with ``f(Pi) < f(Pi*)``
        (up to the global ``Pi ~ -Pi`` symmetry being broken by both
        being enumerated).
    """

    algorithm_mu: tuple[int, ...]
    space: tuple[tuple[int, ...], ...]
    optimal_pi: tuple[int, ...]
    optimal_time: int
    refutations: tuple[Refutation, ...]


def certify_optimality(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    optimal_pi: Sequence[int],
) -> OptimalityCertificate:
    """Build the refutation list for a claimed optimal schedule.

    Raises :class:`ValueError` if some faster candidate cannot be
    refuted — i.e. the claimed optimum is *not* optimal (making this
    function double as an independent optimality checker).
    """
    mu = algorithm.mu
    space_rows = tuple(tuple(int(x) for x in row) for row in space)
    k = len(space_rows) + 1
    pi_star = tuple(int(x) for x in optimal_pi)
    f_star = sum(abs(p) * m for p, m in zip(pi_star, mu))

    refutations: list[Refutation] = []
    for pi in enumerate_schedule_vectors(mu, f_star - 1):
        # dependence condition
        violated = None
        for i, d in enumerate(algorithm.dependence_vectors()):
            if sum(p * x for p, x in zip(pi, d)) <= 0:
                violated = (i, d)
                break
        if violated is not None:
            refutations.append(
                Refutation(pi=pi, kind="dependence", witness=violated)
            )
            continue
        t = MappingMatrix(space=space_rows, schedule=pi)
        if t.rank() != k:
            refutations.append(
                Refutation(pi=pi, kind="rank", witness=(t.rank(), k))
            )
            continue
        witness = find_conflict_witness(t, algorithm.index_set)
        if witness is not None:
            refutations.append(
                Refutation(pi=pi, kind="conflict", witness=witness)
            )
            continue
        raise ValueError(
            f"claimed optimum is not optimal: Pi = {pi} is valid, "
            f"conflict-free, and faster (f = "
            f"{sum(abs(p) * m for p, m in zip(pi, mu))} < {f_star})"
        )

    return OptimalityCertificate(
        algorithm_mu=mu,
        space=space_rows,
        optimal_pi=pi_star,
        optimal_time=f_star + 1,
        refutations=tuple(refutations),
    )


def verify_certificate(
    algorithm: UniformDependenceAlgorithm,
    certificate: OptimalityCertificate,
) -> bool:
    """Audit a certificate from first principles.

    Checks (1) the instance matches, (2) the claimed optimum itself is
    valid and conflict-free, (3) every refutation's evidence really
    refutes its candidate, and (4) the refutations cover *all* faster
    candidates.  Returns ``True`` only if everything holds.
    """
    mu = algorithm.mu
    if certificate.algorithm_mu != mu:
        return False
    space_rows = certificate.space
    k = len(space_rows) + 1
    pi_star = certificate.optimal_pi
    f_star = sum(abs(p) * m for p, m in zip(pi_star, mu))
    if certificate.optimal_time != f_star + 1:
        return False

    # (2) the optimum itself.
    t_star = MappingMatrix(space=space_rows, schedule=pi_star)
    if not algorithm.is_acyclic_under(pi_star):
        return False
    if t_star.rank() != k:
        return False
    from .conflict import is_conflict_free_kernel_box

    if not is_conflict_free_kernel_box(t_star, mu):
        return False

    # (3) each refutation refutes.
    by_pi = {}
    for ref in certificate.refutations:
        if ref.pi in by_pi:
            return False  # duplicate entries are malformed
        by_pi[ref.pi] = ref
        if ref.kind == "dependence":
            i, d = ref.witness
            deps = algorithm.dependence_vectors()
            if i >= len(deps) or tuple(deps[i]) != tuple(d):
                return False
            if sum(p * x for p, x in zip(ref.pi, d)) > 0:
                return False
        elif ref.kind == "rank":
            t = MappingMatrix(space=space_rows, schedule=ref.pi)
            if t.rank() == k:
                return False
        elif ref.kind == "conflict":
            j1, j2 = ref.witness
            t = MappingMatrix(space=space_rows, schedule=ref.pi)
            if j1 == j2:
                return False
            if j1 not in algorithm.index_set or j2 not in algorithm.index_set:
                return False
            if t.tau(j1) != t.tau(j2):
                return False
        else:
            return False

    # (4) coverage of every faster candidate.
    for pi in enumerate_schedule_vectors(mu, f_star - 1):
        if pi not in by_pi:
            return False
    return True
