"""Optimal linear schedules *without* the conflict constraint (ref [16]).

Problem 6.1 assumes the schedule "possibly [comes from] the
optimization procedure proposed in [16]" — Shang & Fortes' companion
work on time-optimal linear schedules subject only to ``Pi D > 0``.
This module implements that sub-problem:

    minimize  ``sum_i |pi_i| mu_i``   s.t.  ``Pi d_i >= 1`` for all i

solved exactly by the same convex-partition machinery as Section 5 (a
sign-orthant split linearizes the absolute values; each orthant is an
ILP with our branch-and-bound).  The gap between this *dependence-only*
optimum and the conflict-free optimum of Problem 2.2 is the **conflict
penalty** of a space mapping — how much execution time the processor
shortage costs — which the ablation benchmarks report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..ilp import LinearProgram, solve_ilp
from ..model import UniformDependenceAlgorithm
from .schedule import LinearSchedule

__all__ = ["FreeScheduleResult", "optimal_free_schedule", "conflict_penalty"]


@dataclass(frozen=True)
class FreeScheduleResult:
    """The dependence-only optimum and its search accounting.

    Attributes
    ----------
    schedule:
        The optimal ``Pi`` subject only to ``Pi D > 0``.
    orthants_solved:
        How many sign-orthant subproblems were feasible and solved.
    """

    schedule: LinearSchedule
    orthants_solved: int

    @property
    def total_time(self) -> int:
        return self.schedule.total_time


def optimal_free_schedule(
    algorithm: UniformDependenceAlgorithm,
) -> FreeScheduleResult:
    """Exact minimum of Equation 2.7 over ``{Pi : Pi D >= 1}``.

    Splits by sign orthant: within the orthant ``sigma`` the objective
    is the linear ``sum_i sigma_i mu_i pi_i`` and the constraints stay
    linear, so each piece is a small ILP.  Orthants whose relaxation is
    infeasible are skipped; at least one orthant is feasible whenever
    the dependence cone is pointed (any valid schedule's sign pattern
    gives one).

    Raises
    ------
    ValueError
        When no orthant admits a valid schedule (the dependence graph
        is cyclic — no linear schedule exists at all).
    """
    n = algorithm.n
    mu = algorithm.mu
    deps = algorithm.dependence_vectors()

    best: tuple[int, tuple[int, ...]] | None = None
    solved = 0
    for sigma in itertools.product((1, -1), repeat=n):
        c = [float(s * m) for s, m in zip(sigma, mu)]
        a_ub: list[list[float]] = []
        b_ub: list[float] = []
        for d in deps:
            a_ub.append([-float(x) for x in d])
            b_ub.append(-1.0)
        bounds = [
            (0.0, None) if s > 0 else (None, 0.0) for s in sigma
        ]
        prog = LinearProgram.build(
            c, a_ub=a_ub, b_ub=b_ub, bounds=bounds, integer=True,
            names=[f"pi_{i + 1}" for i in range(n)],
        )
        sol = solve_ilp(prog)
        if not sol.ok:
            continue
        solved += 1
        pi = sol.x_int()
        if all(x == 0 for x in pi):
            continue  # the zero vector is not a schedule
        f = sum(abs(p) * m for p, m in zip(pi, mu))
        if best is None or (f, pi) < best:
            best = (f, pi)

    if best is None:
        raise ValueError(
            "no linear schedule satisfies Pi D > 0 (cyclic dependences)"
        )
    return FreeScheduleResult(
        schedule=LinearSchedule(pi=best[1], index_set=algorithm.index_set),
        orthants_solved=solved,
    )


def conflict_penalty(
    algorithm: UniformDependenceAlgorithm,
    conflict_free_time: int,
) -> int:
    """``t_conflict_free - t_dependence_only``: the price of the array.

    Zero means the space mapping costs nothing; for the paper's matmul
    example the penalty is ``mu^2 - mu`` cycles (``mu(mu+2)+1`` vs the
    dependence-only ``3 mu + 1``).
    """
    free = optimal_free_schedule(algorithm)
    return conflict_free_time - free.total_time
