"""Linear schedules and execution-time accounting (Section 2).

The time mapping is a row vector ``Pi``; computation ``j`` executes at
``Pi j``.  For constant-bounded index sets (Assumption 2.1) the total
execution time collapses to the closed form of Equation 2.7,

    ``t = 1 + sum_i |pi_i| * mu_i``,

which is monotonically increasing in each ``|pi_i|`` (Theorem 2.1) —
the fact both Procedure 5.1 and the ILP objective lean on.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..intlin import IntVec, as_intvec
from ..model import ConstantBoundedIndexSet, UniformDependenceAlgorithm

__all__ = [
    "LinearSchedule",
    "total_execution_time",
    "objective_f",
    "validate_schedule",
]


def objective_f(pi: Sequence[int], mu: Sequence[int]) -> int:
    """Problem 2.2's objective ``f = sum_i |pi_i| mu_i`` (Eq 2.6/2.7).

    Differs from the total execution time by exactly one cycle.
    """
    p = [int(x) for x in pi]
    m = [int(x) for x in mu]
    if len(p) != len(m):
        raise ValueError(f"pi has {len(p)} entries, mu has {len(m)}")
    return sum(abs(pi_i) * mu_i for pi_i, mu_i in zip(p, m))


def total_execution_time(pi: Sequence[int], mu: Sequence[int]) -> int:
    """Equation 2.7: ``t = 1 + sum_i |pi_i| mu_i``."""
    return 1 + objective_f(pi, mu)


def validate_schedule(
    pi: Sequence[int], algorithm: UniformDependenceAlgorithm
) -> list[int]:
    """Indices of dependence vectors violated by ``Pi`` (``Pi d_i <= 0``).

    An empty list means condition 1 of Definition 2.2 holds.
    """
    p = [int(x) for x in pi]
    bad = []
    for i, d in enumerate(algorithm.dependence_vectors()):
        if sum(a * b for a, b in zip(p, d)) <= 0:
            bad.append(i)
    return bad


@dataclass(frozen=True, order=False)
class LinearSchedule:
    """A linear schedule vector ``Pi`` bound to an index set.

    Provides execution-time accounting and dependence validation; the
    natural ordering compares total execution time (ties broken
    lexicographically on the vector for determinism in Procedure 5.1's
    sort).
    """

    pi: IntVec
    index_set: ConstantBoundedIndexSet

    def __post_init__(self) -> None:
        pi = as_intvec(self.pi)
        if len(pi) != self.index_set.dimension:
            raise ValueError(
                f"schedule has {len(pi)} entries, index set dimension is "
                f"{self.index_set.dimension}"
            )
        object.__setattr__(self, "pi", pi)

    @property
    def f(self) -> int:
        """Objective value ``sum |pi_i| mu_i``."""
        return objective_f(self.pi, self.index_set.mu)

    @property
    def total_time(self) -> int:
        """Total execution time ``t = f + 1`` (Equation 2.7)."""
        return self.f + 1

    def respects(self, algorithm: UniformDependenceAlgorithm) -> bool:
        """``Pi D > 0`` for the given algorithm."""
        return not validate_schedule(self.pi, algorithm)

    def time_of(self, j: Sequence[int]) -> int:
        """Execution time ``Pi j`` of index point ``j``."""
        return sum(p * int(x) for p, x in zip(self.pi, j))

    def sort_key(self) -> tuple[int, tuple[int, ...]]:
        """Stable ordering key: (execution time, vector)."""
        return (self.total_time, self.pi)

    def __lt__(self, other: "LinearSchedule") -> bool:
        return self.sort_key() < other.sort_key()
