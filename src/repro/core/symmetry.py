"""Signed-permutation symmetries of Procedure 5.1's candidate funnel.

Many candidate schedules are related by renaming (and flipping) index
coordinates in a way the problem instance cannot distinguish.  A signed
permutation matrix ``P`` (exactly one ``+-1`` per row and column) maps a
candidate ``Pi`` to ``Pi P``; when ``P`` satisfies all three conditions
below, every stage of the Procedure 5.1 filter funnel — the dependence
screen, the rank screen and the exact conflict screen — gives ``Pi P``
the same answer it gives ``Pi``, and both candidates have the same
execution-time budget ``f = sum |pi_i| mu_i``:

1. **mu-compatibility** — ``mu_i == mu_j`` wherever ``P[i][j] != 0``.
   Then ``f(Pi P) == f(Pi)`` (same ring) and ``P`` maps the difference
   box ``{|d_i| <= mu_i}`` bijectively onto itself.
2. **dependence fixing** — the columns of ``P D`` equal the columns of
   ``D`` as a multiset (signs included).  Then ``(Pi P) D = Pi (D
   sigma)``, so the sign pattern of ``Pi D`` is permuted, never
   changed: the dependence screen is invariant.
3. **space-row stability** — ``rowspan(S P) == rowspan(S)``.  Then
   ``rank([S; Pi P]) == rank([S; Pi])``, and the kernel of ``[S; Pi
   P]`` intersected with the difference box is the image under
   ``P^{-1}`` of the kernel of ``[S; Pi]`` intersected with the same
   box — so exact conflict-freedom is preserved too.

The set of such ``P`` forms a group; :func:`symmetry_group` enumerates
it and :class:`SymmetryGroup` canonicalizes candidates to the
lexicographically smallest member of their orbit.  The scanner then
evaluates one representative per orbit and rehydrates the stage code
for every member, which cannot change any search outcome — only how
much work computing it takes.

The invariance argument above covers the *exact* conflict deciders
(``method="auto"``/``"exact"``); the paper's Theorem 4.7/4.8 sufficient
conditions are not syntactically symmetric, so callers must not apply
orbit collapsing to ``method="paper"`` scans.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from ..intlin import as_intmat

__all__ = ["SymmetryGroup", "symmetry_group", "symmetry_group_for"]

# n! 2^n enumeration is exact but exponential; beyond this dimension we
# return the trivial group rather than stall the search setup.
_MAX_DIMENSION = 7
# Cap on enumerated group elements: canonicalization costs one (N, n)
# matmul per element per chunk, so a huge group would cost more than
# the collapse saves.  Truncation below keeps a stage-preserving *set*
# (every member still maps candidates to funnel-equivalent candidates),
# which is all the memo-based scanner needs for correctness.
_MAX_GROUP_ORDER = 64


class SymmetryGroup:
    """A set of funnel-preserving signed permutations, identity first.

    ``canonicalize``/``canonicalize_rows`` map candidates to the
    lexicographically smallest image under the stored transforms — the
    orbit representative the scanners key their memo tables on.
    """

    __slots__ = ("mats",)

    def __init__(self, mats: Sequence[np.ndarray]) -> None:
        self.mats: tuple[np.ndarray, ...] = tuple(mats)

    @property
    def order(self) -> int:
        """Number of transforms (1 means "no usable symmetry")."""
        return len(self.mats)

    def canonicalize(self, pi: Sequence[int]) -> tuple[int, ...]:
        """The lexicographic minimum of ``{pi P : P in group}``."""
        best = tuple(int(v) for v in pi)
        if len(self.mats) == 1:
            return best
        row = np.array(best, dtype=np.int64)
        for mat in self.mats[1:]:
            img = tuple(int(v) for v in row @ mat)
            if img < best:
                best = img
        return best

    def canonicalize_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`canonicalize` over an ``(N, n)`` array."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(self.mats) == 1 or rows.size == 0:
            return rows
        best = rows.copy()
        for mat in self.mats[1:]:
            image = rows @ mat
            take = _lex_less(image, best)
            best[take] = image[take]
        return best


def _lex_less(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise ``a < b`` under tuple (lexicographic) ordering."""
    less = np.zeros(len(a), dtype=bool)
    decided = np.zeros(len(a), dtype=bool)
    for j in range(a.shape[1]):
        lt = a[:, j] < b[:, j]
        gt = a[:, j] > b[:, j]
        less |= lt & ~decided
        decided |= lt | gt
        if decided.all():
            break
    return less


def _exact_rank(rows: list[list[int]]) -> int:
    return as_intmat(rows).rank() if rows else 0


@lru_cache(maxsize=64)
def symmetry_group(
    mu: tuple[int, ...],
    dependence: tuple[tuple[int, ...], ...],
    space: tuple[tuple[int, ...], ...],
) -> SymmetryGroup:
    """The funnel symmetry group of ``(mu, D, S)`` (cached).

    Parameters are hashable normal forms: ``mu`` as a tuple, the
    dependence *columns* as a tuple of tuples, and the space rows as a
    tuple of tuples.  Use :func:`symmetry_group_for` to derive them
    from an algorithm/space pair.
    """
    n = len(mu)
    identity = np.eye(n, dtype=np.int64)
    trivial = SymmetryGroup([identity])
    if n <= 1 or n > _MAX_DIMENSION:
        return trivial
    try:
        dep_cols = np.array(
            [[int(x) for x in col] for col in dependence], dtype=np.int64
        ).reshape(len(dependence), n)
    except OverflowError:
        return trivial
    # D with dependence vectors as columns, matching Pi D > 0.
    d_mat = dep_cols.T
    cols_sorted = sorted(map(tuple, dep_cols.tolist()))
    abs_cols_sorted = sorted(map(tuple, np.abs(dep_cols).tolist()))
    s_rows = [[int(x) for x in row] for row in space]
    s_arr = np.array(s_rows, dtype=np.int64).reshape(len(s_rows), n)
    s_rank = _exact_rank(s_rows)

    mats: list[np.ndarray] = [identity]
    sign_choices = list(itertools.product((1, -1), repeat=n))
    for perm in itertools.permutations(range(n)):
        if any(mu[j] != mu[perm[j]] for j in range(n)):
            continue
        # Column j of P carries +-1 at row perm[j]: (pi P)_j = s_j * pi_perm[j].
        base = np.zeros((n, n), dtype=np.int64)
        for j, i in enumerate(perm):
            base[i, j] = 1
        # Cheap pre-screen: if even |P D| cannot match |D| column-wise,
        # no sign assignment can fix it (signs never change magnitudes).
        if sorted(map(tuple, np.abs(base @ d_mat).T.tolist())) != abs_cols_sorted:
            continue
        for signs in sign_choices:
            mat = base * np.array(signs, dtype=np.int64)[np.newaxis, :]
            if (mat == identity).all():
                continue
            # Candidates transform as row vectors: Pi' = Pi @ mat, so the
            # dependence products are Pi (mat @ D); check mat @ D's columns.
            pd = mat @ d_mat
            if sorted(map(tuple, pd.T.tolist())) != cols_sorted:
                continue
            if s_rows:
                stacked = s_rows + (s_arr @ mat).tolist()
                if _exact_rank(stacked) != s_rank:
                    continue
            mats.append(mat)
            if len(mats) >= _MAX_GROUP_ORDER:
                return SymmetryGroup(mats)
    return SymmetryGroup(mats)


def symmetry_group_for(algorithm, space_rows) -> SymmetryGroup:
    """The cached symmetry group for an algorithm/space pair."""
    mu = tuple(int(m) for m in algorithm.mu)
    deps = tuple(
        tuple(int(x) for x in d) for d in algorithm.dependence_vectors()
    )
    space = tuple(tuple(int(x) for x in row) for row in space_rows)
    return symmetry_group(mu, deps, space)
