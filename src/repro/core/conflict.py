"""Conflict vectors and conflict-freedom deciders.

Implements the backbone of Sections 2-4:

* **Definition 2.3** — conflict vectors (primitive integral kernel
  vectors of ``T``), feasible vs non-feasible, conflict-free matrices;
* **Theorem 2.2** — a conflict vector is feasible iff some entry
  exceeds the corresponding problem-size bound;
* **Equation 3.2 / Theorem 3.1** — the closed-form unique conflict
  vector for co-rank-1 mappings via the adjugate;
* **Theorems 4.1-4.2** — the Hermite-normal-form generator set
  ``u_{k+1}, ..., u_n`` of *all* conflict vectors;
* two *exact* deciders used as oracles throughout the test-suite and
  available to users who want certainty beyond the sufficient
  conditions of Section 4:

  - :func:`is_conflict_free_bruteforce` checks all index points
    directly (the method the paper says earlier work was reduced to);
  - :func:`is_conflict_free_kernel_box` enumerates the kernel lattice
    inside the bounding box — exponentially cheaper than brute force
    (it never touches ``|J|``) and exact for any co-rank.

Everything here operates on the mapping's immutable
:attr:`~repro.core.mapping.MappingMatrix.matrix` (:class:`IntMat`)
directly: the Hermite cache is keyed on that matrix value, and the
vectorized brute-force decider routes through
:meth:`IntMat.image_of_points`, whose overflow guard promotes to exact
object arithmetic instead of silently wrapping in int64.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..intlin import IntVec, hnf_cached, normalize_primitive
from ..model import ConstantBoundedIndexSet
from .mapping import MappingMatrix

__all__ = [
    "ConflictAnalysis",
    "is_feasible_conflict_vector",
    "conflict_vector_corank1",
    "conflict_vector_via_adjugate",
    "conflict_generators",
    "batch_distinct_image_counts",
    "distinct_image_count",
    "is_conflict_free_bruteforce",
    "is_conflict_free_bruteforce_vectorized",
    "is_conflict_free_kernel_box",
    "conflict_margin",
    "find_conflict_witness",
    "analyze_conflicts",
]


def is_feasible_conflict_vector(gamma: Sequence[int], mu: Sequence[int]) -> bool:
    """Theorem 2.2: feasible iff ``|gamma_i| > mu_i`` for some ``i``.

    A feasible conflict vector never connects two points of the index
    set, so it cannot cause a computational conflict.
    """
    g = [int(x) for x in gamma]
    m = [int(x) for x in mu]
    if len(g) != len(m):
        raise ValueError(f"gamma has {len(g)} entries, mu has {len(m)}")
    return any(abs(gi) > mi for gi, mi in zip(g, m))


def conflict_vector_corank1(t: MappingMatrix) -> IntVec:
    """The unique conflict vector of a co-rank-1 mapping (Theorem 3.1).

    Normalized to relatively prime entries with positive first non-zero
    entry, as Section 3 fixes.  Computed from the HNF kernel (exact for
    any column arrangement); see :func:`conflict_vector_via_adjugate`
    for the paper's literal Equation 3.2 construction.
    """
    if t.corank != 1:
        raise ValueError(f"mapping has co-rank {t.corank}, expected 1")
    res = hnf_cached(t.matrix)
    [gamma] = res.kernel_columns()
    return IntVec(normalize_primitive(gamma))


def conflict_vector_via_adjugate(t: MappingMatrix) -> IntVec:
    """Equation 3.2 literally: ``gamma = lambda * [-B^* b ; det B]``.

    ``T = [B, b]`` with ``B`` the first ``n-1`` columns.  When ``B`` is
    singular the paper's "without loss of generality" column choice is
    realized by permuting a nonsingular ``(n-1)``-column subset into the
    leading position and un-permuting the result.  Cross-checked in the
    tests against :func:`conflict_vector_corank1`.
    """
    if t.corank != 1:
        raise ValueError(f"mapping has co-rank {t.corank}, expected 1")
    tm = t.matrix
    n = t.n
    all_rows = range(tm.nrows)
    for drop in range(n - 1, -1, -1):
        cols = [c for c in range(n) if c != drop]
        b_mat = tm.submatrix(all_rows, cols)
        det_b = b_mat.det()
        if det_b != 0:
            b_vec = tm.column(drop)
            top = b_mat.adjugate().matvec(b_vec)
            gamma = [0] * n
            for pos, c in enumerate(cols):
                gamma[c] = -top[pos]
            gamma[drop] = det_b
            return IntVec(normalize_primitive(gamma))
    raise ValueError("mapping matrix does not have full row rank")


def conflict_generators(t: MappingMatrix) -> list[IntVec]:
    """Hermite generators ``u_{k+1}, ..., u_n`` of all conflict vectors.

    Theorem 4.2(3): every conflict vector of ``T`` is ``U_2 beta`` for
    integral, relatively prime, not-all-zero ``beta`` — and conversely.
    The returned columns are primitive (columns of a unimodular matrix
    always are).
    """
    return hnf_cached(t.matrix).kernel_columns()


def is_conflict_free_bruteforce(
    t: MappingMatrix, index_set: ConstantBoundedIndexSet
) -> bool:
    """Direct check of Definition 2.2 condition 3 over all index points.

    ``O(|J|)`` time and space; the referee the cleverer deciders are
    validated against.
    """
    seen: dict[tuple[int, ...], tuple[int, ...]] = {}
    for j in index_set:
        image = t.tau(j)
        if image in seen:
            return False
        seen[image] = j
    return True


def is_conflict_free_bruteforce_vectorized(
    t: MappingMatrix, index_set: ConstantBoundedIndexSet
) -> bool:
    """Vectorized brute force: one ``(|J|, n) @ (n, k)`` product.

    Same semantics as :func:`is_conflict_free_bruteforce` — conflict-
    free iff ``tau`` is injective on ``J`` — but materialized as a
    single matmul plus a unique-rows count, an order of magnitude
    faster on the larger index sets.  The product goes through
    :meth:`IntMat.image_of_points`, which certifies the int64 bound
    ``max|point| * max|T| * n`` before vectorizing and otherwise
    computes the exact object-dtype product — mappings with huge
    entries get the same verdict, never a wrapped one.
    """
    pts = index_set.points_array()
    images = t.matrix.image_of_points(pts)
    return distinct_image_count(images) == pts.shape[0]


def distinct_image_count(images: np.ndarray) -> int:
    """Number of distinct rows of an ``(N, k)`` image array, exactly.

    Object-dtype images (the overflow-promoted route) are counted with
    a set of row tuples over Python ints.  int64 images collapse each
    row to a single scalar key — ``(row - lo) . strides``, a mixed-radix
    encoding over the per-column value ranges — when the total range
    provably fits int64 (checked in Python-int arithmetic, so the key
    computation itself cannot wrap), and fall back to a lexicographic
    row sort otherwise.  Both are order-of-magnitude cheaper than
    ``np.unique(images, axis=0)``, which sorts void views.
    """
    n, k = images.shape
    if n <= 1 or k == 0:
        return n
    if images.dtype == object:
        return len({tuple(row) for row in images.tolist()})
    lo = images.min(axis=0)
    hi = images.max(axis=0)
    spans = [int(h) - int(l) + 1 for l, h in zip(lo, hi)]
    total = 1
    for s in spans:
        total *= s
    if total <= np.iinfo(np.int64).max:
        strides = np.empty(k, dtype=np.int64)
        acc = 1
        for j in range(k - 1, -1, -1):
            strides[j] = acc
            acc *= spans[j]
        keys = (images - lo) @ strides
        keys.sort()
        return 1 + int(np.count_nonzero(keys[1:] != keys[:-1]))
    order = np.lexsort(images.T)
    rows = images[order]
    changed = np.any(rows[1:] != rows[:-1], axis=1)
    return 1 + int(np.count_nonzero(changed))


def batch_distinct_image_counts(
    fixed: np.ndarray, varying: np.ndarray
) -> np.ndarray:
    """Distinct-row counts for a *batch* of image matrices sharing columns.

    ``fixed`` is a ``(P, m)`` image block common to every candidate
    (e.g. the points' images under the shared space mapping ``S``);
    ``varying[:, c, :]`` is candidate ``c``'s own ``(P, v)`` image
    block.  Entry ``c`` of the returned ``(C,)`` array is
    ``distinct_image_count`` of the stacked ``(P, m + v)`` matrix
    ``[fixed | varying[:, c]]`` — i.e. candidate ``c``'s mapping is
    injective on the ``P`` points iff ``counts[c] == P``.

    The whole batch runs on the mixed-radix scalar-key path of
    :func:`distinct_image_count`: per-candidate value spans are computed
    in Python-int arithmetic, and a candidate is vectorized only when
    its total key range provably fits int64.  Candidates that cannot be
    certified — and all candidates whenever either input is the
    object-dtype overflow-promoted route — get the sentinel ``-1`` so
    the caller can promote exactly those to the scalar exact path.
    """
    if fixed.ndim != 2 or varying.ndim != 3 or fixed.shape[0] != varying.shape[0]:
        raise ValueError(
            f"shape mismatch: fixed {fixed.shape} vs varying {varying.shape}"
        )
    n_pts, n_cand = varying.shape[0], varying.shape[1]
    counts = np.full(n_cand, -1, dtype=np.int64)
    if n_cand == 0:
        return counts
    if n_pts <= 1:
        counts[:] = n_pts
        return counts
    if fixed.dtype == object or varying.dtype == object:
        return counts
    int64_max = np.iinfo(np.int64).max
    # Base keys for the shared block, certified in Python ints.
    if fixed.shape[1] == 0:
        base = np.zeros(n_pts, dtype=np.int64)
        total_fixed = 1
    else:
        lo_f = fixed.min(axis=0)
        spans_f = [int(h) - int(l) + 1 for l, h in zip(lo_f, fixed.max(axis=0))]
        total_fixed = 1
        for s in spans_f:
            total_fixed *= s
        if total_fixed > int64_max:
            return counts
        strides_f = np.empty(fixed.shape[1], dtype=np.int64)
        acc = 1
        for j in range(fixed.shape[1] - 1, -1, -1):
            strides_f[j] = acc
            acc *= spans_f[j]
        base = (fixed - lo_f) @ strides_f
    width = varying.shape[2]
    if width == 0:
        sorted_base = np.sort(base)
        counts[:] = 1 + int(np.count_nonzero(sorted_base[1:] != sorted_base[:-1]))
        return counts
    # Per-candidate spans over the varying block, again in Python ints
    # (int64 subtraction of extreme values could itself wrap).
    lo = varying.min(axis=0)
    hi = varying.max(axis=0)
    lo_list = lo.tolist()
    hi_list = hi.tolist()
    ok_idx: list[int] = []
    strides_rows: list[list[int]] = []
    mults: list[int] = []
    for c in range(n_cand):
        spans = [hi_list[c][j] - lo_list[c][j] + 1 for j in range(width)]
        total = total_fixed
        for s in spans:
            total *= s
        if total > int64_max:
            continue
        strides = [0] * width
        acc = 1
        for j in range(width - 1, -1, -1):
            strides[j] = acc
            acc *= spans[j]
        ok_idx.append(c)
        strides_rows.append(strides)
        mults.append(acc)
    if not ok_idx:
        return counts
    idx = np.array(ok_idx, dtype=np.intp)
    rel = varying[:, idx, :] - lo[idx][None, :, :]
    keys = (rel * np.array(strides_rows, dtype=np.int64)[None, :, :]).sum(
        axis=2, dtype=np.int64
    )
    keys += base[:, None] * np.array(mults, dtype=np.int64)[None, :]
    keys.sort(axis=0)
    counts[idx] = 1 + np.count_nonzero(keys[1:] != keys[:-1], axis=0)
    return counts


def _exact_beta_bounds(
    generators: Sequence[Sequence[int]], mu: Sequence[int]
) -> list[int]:
    """Per-coordinate bounds on ``beta`` with ``U_2 beta`` inside the box.

    Solves the normal equations ``beta = (G^T G)^{-1} G^T gamma`` over
    exact rationals; the bound for ``beta_l`` is the weighted 1-norm of
    the ``l``-th pseudo-inverse row against the box half-widths.  Exact
    arithmetic (``Fraction``) removes any floating-point soundness gap.
    """
    n = len(generators[0])
    c = len(generators)
    g = [[Fraction(generators[col][row]) for col in range(c)] for row in range(n)]
    # gram = G^T G  (c x c), rhs rows = G^T
    gram = [
        [sum(g[r][i] * g[r][j] for r in range(n)) for j in range(c)] for i in range(c)
    ]
    gt = [[g[r][i] for r in range(n)] for i in range(c)]
    # Invert gram by Gauss-Jordan over Fractions (c is tiny: the co-rank).
    aug = [row[:] + [Fraction(1) if i == j else Fraction(0) for j in range(c)]
           for i, row in enumerate(gram)]
    for col in range(c):
        pivot = next(r for r in range(col, c) if aug[r][col] != 0)
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = 1 / aug[col][col]
        aug[col] = [x * inv_p for x in aug[col]]
        for r in range(c):
            if r != col and aug[r][col] != 0:
                f = aug[r][col]
                aug[r] = [x - f * y for x, y in zip(aug[r], aug[col])]
    gram_inv = [row[c:] for row in aug]
    pinv = [
        [sum(gram_inv[i][l] * gt[l][r] for l in range(c)) for r in range(n)]
        for i in range(c)
    ]
    bounds = []
    for i in range(c):
        weight = sum(abs(pinv[i][r]) * int(mu[r]) for r in range(n))
        bounds.append(int(weight))  # floor of an exact rational bound
    return bounds


def _kernel_box_violation(
    generators: Sequence[Sequence[int]], mu: Sequence[int]
) -> list[int] | None:
    """The first non-zero lattice point ``U_2 beta`` inside ``[-mu, mu]^n``.

    The single enumeration shared by the exact decider and the witness
    finder: both answer "does the kernel lattice meet the box away from
    the origin?", and sharing the sweep makes the two answers
    structurally consistent — whenever the decider says *not*
    conflict-free, this function hands the witness finder the very
    in-box conflict vector that proved it.
    """
    bounds = _exact_beta_bounds(generators, mu)
    n = len(generators[0])
    for beta in itertools.product(*(range(-b, b + 1) for b in bounds)):
        if all(x == 0 for x in beta):
            continue
        gamma = []
        ok = True
        for r in range(n):
            entry = sum(beta[l] * generators[l][r] for l in range(len(beta)))
            if abs(entry) > mu[r]:
                ok = False
                break
            gamma.append(entry)
        if ok:
            return gamma
    return None


def is_conflict_free_kernel_box(
    t: MappingMatrix, mu: Sequence[int] | None = None,
    *,
    index_set: ConstantBoundedIndexSet | None = None,
) -> bool:
    """Exact decider: no non-zero kernel vector lies in ``[-mu, mu]^n``.

    Conflict-freedom is equivalent to the kernel lattice of ``T``
    meeting the box ``{|gamma_i| <= mu_i}`` only at the origin: a
    non-primitive lattice point in the box implies its primitive part
    is in the box too, so the gcd normalization of Definition 2.3 never
    changes the answer.  Enumerates ``beta`` coefficients inside exact
    rational bounds derived from the pseudo-inverse of the generator
    matrix — cost is independent of ``|J|``.
    """
    if mu is None:
        if index_set is None:
            raise ValueError("provide mu or index_set")
        mu = index_set.mu
    mu = [int(x) for x in mu]
    if len(mu) != t.n:
        raise ValueError(f"mu has {len(mu)} entries, mapping has n={t.n}")
    generators = conflict_generators(t)
    if not generators:
        return True  # square full-rank T: kernel is trivial
    return _kernel_box_violation(generators, mu) is None


def find_conflict_witness(
    t: MappingMatrix, index_set: ConstantBoundedIndexSet
) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
    """Two distinct index points with ``tau(j1) == tau(j2)``, or ``None``.

    Runs the same kernel-box enumeration as
    :func:`is_conflict_free_kernel_box` (the shared
    :func:`_kernel_box_violation` sweep) to find a non-feasible conflict
    vector, then applies Theorem 2.2's constructive witness point.
    Sharing the sweep guarantees ``not conflict_free`` always comes with
    a witness: the in-box ``gamma`` that failed the decider translates
    by construction.
    """
    generators = conflict_generators(t)
    if not generators:
        return None
    gamma = _kernel_box_violation(generators, index_set.mu)
    if gamma is None:
        return None
    j = index_set.translate_witness(gamma)
    assert j is not None  # |gamma_i| <= mu_i by construction
    j2 = tuple(a + g for a, g in zip(j, gamma))
    return j, j2


def conflict_margin(t: MappingMatrix, mu: Sequence[int]) -> Fraction:
    """How much the problem size can scale before conflicts appear.

    Defined as ``min over non-zero kernel vectors of max_i |gamma_i| /
    mu_i`` — the scale factor by which the box ``[-mu, mu]`` must grow
    to capture the nearest kernel lattice point.  A mapping is
    conflict-free iff the margin is strictly greater than 1 (the
    nearest conflict lies outside the current box); the value tells a
    designer how much head-room a mapping has if the loop bounds grow.

    Computed exactly: LLL-reduce the kernel basis, then evaluate the
    scaled-infinity measure over a small coefficient sweep around the
    reduced vectors plus all lattice points inside the doubled box
    (enough to contain the minimizer once the reduced basis is short).
    """
    from ..intlin.reduction import lll_reduce

    mu = [int(x) for x in mu]
    if any(m <= 0 for m in mu):
        # The measure divides by each mu_i; a zero entry would raise a
        # bare ZeroDivisionError from Fraction deep in the sweep.
        raise ValueError(
            f"conflict_margin requires every mu entry to be positive, got {mu}"
        )
    generators = conflict_generators(t)
    if not generators:
        raise ValueError("square full-rank mappings have no conflict lattice")

    def measure(v: Sequence[int]) -> Fraction:
        return max(Fraction(abs(x), m) for x, m in zip(v, mu))

    rows = [list(g) for g in generators]
    reduced = lll_reduce(rows)
    # Candidate pool: small combinations of reduced vectors...
    best: Fraction | None = None
    r = len(reduced)
    n = t.n
    for z in itertools.product(range(-2, 3), repeat=r):
        if not any(z):
            continue
        v = [sum(z[c] * reduced[c][i] for c in range(r)) for i in range(n)]
        m = measure(v)
        if best is None or m < best:
            best = m
    # ...plus every lattice point inside the box scaled by the current
    # best (exactness: the minimizer lies in that scaled box by
    # definition, and the enumeration below is exhaustive there).
    assert best is not None
    scale_box = [int(best * m) + 1 for m in mu]
    bounds = _exact_beta_bounds(generators, scale_box)
    for beta in itertools.product(*(range(-b, b + 1) for b in bounds)):
        if not any(beta):
            continue
        v = [
            sum(beta[l] * generators[l][i] for l in range(len(beta)))
            for i in range(n)
        ]
        m = measure(v)
        if m < best:
            best = m
    return best


@dataclass(frozen=True)
class ConflictAnalysis:
    """Structured summary of a mapping's conflict situation.

    Attributes
    ----------
    conflict_free:
        Exact verdict (kernel-box decider).
    generators:
        The HNF generator columns ``u_{k+1..n}``.
    generator_feasible:
        Theorem 2.2 verdict for each generator.
    witness:
        A colliding index-point pair when not conflict-free.
    """

    conflict_free: bool
    generators: tuple[IntVec, ...]
    generator_feasible: tuple[bool, ...]
    witness: tuple[tuple[int, ...], tuple[int, ...]] | None


def analyze_conflicts(
    t: MappingMatrix, index_set: ConstantBoundedIndexSet
) -> ConflictAnalysis:
    """Full conflict analysis: exact verdict, generators, witness if any."""
    generators = conflict_generators(t)
    feasible = tuple(
        is_feasible_conflict_vector(g, index_set.mu) for g in generators
    )
    free = is_conflict_free_kernel_box(t, index_set.mu)
    witness = None if free else find_conflict_witness(t, index_set)
    return ConflictAnalysis(
        conflict_free=free,
        generators=tuple(generators),
        generator_feasible=feasible,
        witness=witness,
    )
