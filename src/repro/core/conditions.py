"""The paper's conflict-freedom conditions, implemented as stated.

Each theorem of Sections 3-4 becomes a checker returning a
:class:`ConditionVerdict` carrying the boolean outcome *and* the
witnesses (which row ``i`` satisfied which clause), so the benchmark
harness can print the same justifications the paper's examples give.

Checker inventory (paper numbering):

========  ==========================================  ==================
Theorem   Statement                                   Function
========  ==========================================  ==================
3.1       co-rank 1: unique ``gamma`` feasible        :func:`theorem_3_1`
4.3       necessary: top-``k`` of each ``V`` column   :func:`theorem_4_3`
4.4       necessary: ``u_{k+1..n}`` feasible          :func:`theorem_4_4`
4.5       sufficient: gcd rows + nonsingular block    :func:`theorem_4_5`
4.6       sufficient, ``k = n-2``                     :func:`theorem_4_6`
4.7       necessary & sufficient, ``k = n-2``         :func:`theorem_4_7`
4.8       necessary & sufficient, ``k = n-3``         :func:`theorem_4_8`
========  ==========================================  ==================

A reproduction note (see DESIGN.md §5): the "necessary" directions of
Theorems 4.7/4.8 rest on a sign argument that rare cancellation
patterns can escape, so :func:`theorem_4_7`/:func:`theorem_4_8` can
return ``False`` for a mapping that the exact decider
(:func:`repro.core.conflict.is_conflict_free_kernel_box`) proves
conflict-free.  The *sufficient* direction ("checker says free implies
exactly free") always holds and is property-tested.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from ..intlin import IntMat, gcd_list, hnf_cached
from .conflict import conflict_vector_corank1, is_feasible_conflict_vector
from .mapping import MappingMatrix

__all__ = [
    "ConditionVerdict",
    "theorem_3_1",
    "theorem_4_3",
    "theorem_4_4",
    "theorem_4_5",
    "theorem_4_6",
    "theorem_4_7",
    "theorem_4_8",
    "sign_pattern_condition",
    "subset_sign_pattern_condition",
    "check_conflict_free",
]


@dataclass(frozen=True)
class ConditionVerdict:
    """Outcome of one theorem check.

    Attributes
    ----------
    holds:
        Whether the theorem's condition is satisfied.
    theorem:
        Paper theorem label (e.g. ``"4.7"``).
    kind:
        ``"necessary"``, ``"sufficient"`` or ``"iff"`` — how the
        condition relates to conflict-freedom.
    witnesses:
        Clause-by-clause evidence (row indices, vectors, determinants).
        Excluded from equality and hashing: a verdict is a value object
        identified by ``(holds, theorem, kind)``, so it can key caches
        and sets; the witnesses are explanatory payload.
    """

    holds: bool
    theorem: str
    kind: str
    witnesses: dict[str, Any] = field(default_factory=dict, compare=False)

    def __bool__(self) -> bool:
        return self.holds


def _hermite_u(t: MappingMatrix) -> tuple[IntMat, IntMat, int]:
    res = hnf_cached(t.matrix)
    return res.u, res.v, res.rank


def theorem_3_1(t: MappingMatrix, mu: Sequence[int]) -> ConditionVerdict:
    """Necessary & sufficient condition 1 (co-rank 1).

    The mapping has a *unique* conflict vector (up to sign); ``T`` is
    conflict-free iff that vector is feasible (Theorem 2.2).
    """
    if t.corank != 1:
        raise ValueError(f"Theorem 3.1 applies to co-rank 1, got {t.corank}")
    gamma = conflict_vector_corank1(t)
    feasible = is_feasible_conflict_vector(gamma, mu)
    return ConditionVerdict(
        holds=feasible,
        theorem="3.1",
        kind="iff",
        witnesses={"gamma": tuple(gamma)},
    )


def theorem_4_3(t: MappingMatrix, mu: Sequence[int] | None = None) -> ConditionVerdict:
    """Necessary condition 2: every column of ``V`` has a non-zero entry
    among its first ``k`` rows.

    Violation exhibits a conflict vector with a single non-zero entry
    (a unit direction), which can never be feasible since ``mu_i >= 1``.
    """
    _u, v, k = _hermite_u(t)
    n = t.n
    bad_columns = [
        j for j in range(n) if all(v[i][j] == 0 for i in range(k))
    ]
    return ConditionVerdict(
        holds=not bad_columns,
        theorem="4.3",
        kind="necessary",
        witnesses={"violating_columns": tuple(bad_columns)},
    )


def theorem_4_4(t: MappingMatrix, mu: Sequence[int]) -> ConditionVerdict:
    """Necessary condition 3: the generators ``u_{k+1..n}`` are feasible."""
    u, _v, k = _hermite_u(t)
    n = t.n
    columns = [u.column(j) for j in range(k, n)]
    infeasible = [
        j for j, col in enumerate(columns)
        if not is_feasible_conflict_vector(col, mu)
    ]
    return ConditionVerdict(
        holds=not infeasible,
        theorem="4.4",
        kind="necessary",
        witnesses={
            "generators": tuple(columns),
            "infeasible_generator_indices": tuple(infeasible),
        },
    )


def theorem_4_5(t: MappingMatrix, mu: Sequence[int]) -> ConditionVerdict:
    """Sufficient condition 4: row-gcd + nonsingular sub-block.

    Exists rows ``i_1 < ... < i_{n-k}`` such that (1) for each, the gcd
    of ``(u_{i, k+1}, ..., u_{i, n})`` is at least ``mu_i + 1``, and (2)
    the ``(n-k) x (n-k)`` sub-block of ``U``'s last columns on those
    rows is nonsingular.  Then every conflict vector has ``|gamma_i|``
    at least the gcd of some such row, hence feasible.
    """
    u, _v, k = _hermite_u(t)
    n = t.n
    mu = [int(x) for x in mu]
    c = n - k
    eligible = [
        i for i in range(n)
        if gcd_list(u[i][k:]) >= mu[i] + 1
    ]
    for combo in itertools.combinations(eligible, c):
        block = u.submatrix(combo, range(k, n))
        if block.det() != 0:
            return ConditionVerdict(
                holds=True,
                theorem="4.5",
                kind="sufficient",
                witnesses={"rows": combo, "gcds": tuple(gcd_list(u[i][k:]) for i in combo)},
            )
    return ConditionVerdict(
        holds=False,
        theorem="4.5",
        kind="sufficient",
        witnesses={"eligible_rows": tuple(eligible)},
    )


def theorem_4_6(t: MappingMatrix, mu: Sequence[int]) -> ConditionVerdict:
    """Sufficient condition 5 for ``k = n-2``.

    (1) some row ``i`` has ``gcd(u_{i,n-1}, u_{i,n}) >= mu_i + 1``; (2)
    for the (up to sign unique) coprime ``beta`` annihilating that row,
    some other row ``j`` has ``|beta . (u_{j,n-1}, u_{j,n})| > mu_j``.
    """
    if t.corank != 2:
        raise ValueError(f"Theorem 4.6 applies to co-rank 2, got {t.corank}")
    u, _v, k = _hermite_u(t)
    n = t.n
    mu = [int(x) for x in mu]
    for i in range(n):
        a, b = u[i][k], u[i][k + 1]
        g = gcd_list([a, b])
        if g < mu[i] + 1:
            continue
        # beta with beta1*a + beta2*b == 0, coprime: (b, -a) / gcd.
        beta1, beta2 = b // g, -a // g
        cond2 = None
        for j in range(n):
            if j == i:
                continue
            val = beta1 * u[j][k] + beta2 * u[j][k + 1]
            if abs(val) > mu[j]:
                cond2 = j
                break
        if cond2 is not None:
            return ConditionVerdict(
                holds=True,
                theorem="4.6",
                kind="sufficient",
                witnesses={"i": i, "gcd": g, "beta": (beta1, beta2), "j": cond2},
            )
    return ConditionVerdict(holds=False, theorem="4.6", kind="sufficient")


def sign_pattern_condition(
    u: Sequence[Sequence[int]], k: int, mu: Sequence[int]
) -> ConditionVerdict:
    """The sign-pattern clauses shared by Theorems 4.7 and 4.8.

    For every sign vector ``sigma in {+1,-1}^{n-k}`` (up to global
    negation) there must be a row ``i`` whose last ``n-k`` entries are
    sign-compatible with ``sigma`` (zero counts as either sign) and
    whose sigma-weighted sum exceeds ``mu_i`` in magnitude.  For
    co-rank 2 these are exactly conditions (1)-(2) of Theorem 4.7; for
    co-rank 3 conditions (1)-(4) of Theorem 4.8.
    """
    n = len(u)
    c = n - k
    mu = [int(x) for x in mu]
    pattern_rows: dict[tuple[int, ...], int] = {}
    for sigma in itertools.product((1, -1), repeat=c):
        if sigma[0] == -1:
            continue  # global negation symmetry
        found = None
        for i in range(n):
            entries = u[i][k:]
            products = [s * e for s, e in zip(sigma, entries)]
            # Compatible when the products beta_l * u_{i,l} would all
            # share one sign (zero is sign-free), so magnitudes add.
            if not (all(p >= 0 for p in products) or all(p <= 0 for p in products)):
                continue
            total = sum(products)
            if abs(total) > mu[i]:
                found = i
                break
        if found is None:
            return ConditionVerdict(
                holds=False,
                theorem="sign-pattern",
                kind="sufficient",
                witnesses={"failing_pattern": sigma, "satisfied": dict(pattern_rows)},
            )
        pattern_rows[sigma] = found
    return ConditionVerdict(
        holds=True,
        theorem="sign-pattern",
        kind="sufficient",
        witnesses={"pattern_rows": pattern_rows},
    )


def subset_sign_pattern_condition(
    u: Sequence[Sequence[int]], k: int, mu: Sequence[int]
) -> ConditionVerdict:
    """Strengthened sufficient condition: sign patterns over *every* subset.

    The stated Theorem 4.8 has a gap its proof sketch misses: a
    coefficient vector ``beta`` with a zero entry combines only a
    *subset* of the generator columns, and the three-column sign
    conditions say nothing about two-column combinations (this
    reproduction exhibits concrete counterexamples — see
    EXPERIMENTS.md, finding F2).  Closing the gap is exactly Theorem
    4.7's own structure applied to every non-empty subset ``A`` of the
    last ``n-k`` columns: for every sign assignment on ``A`` there must
    be a row, sign-compatible on ``A``, whose ``A``-restricted weighted
    sum exceeds ``mu_i``.  Then for arbitrary ``beta`` with support
    ``A``, magnitudes add on that row and the conflict vector is
    feasible — a genuinely sufficient condition for any co-rank, which
    coincides with Theorem 4.7 at co-rank 2 (where subsets of size 1
    are its condition 3).
    """
    n = len(u)
    c = n - k
    mu = [int(x) for x in mu]
    failing: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    for size in range(1, c + 1):
        for subset in itertools.combinations(range(c), size):
            for sigma in itertools.product((1, -1), repeat=size):
                if sigma[0] == -1:
                    continue  # global negation symmetry
                found = False
                for i in range(n):
                    entries = [u[i][k + l] for l in subset]
                    products = [s * e for s, e in zip(sigma, entries)]
                    if not (
                        all(p >= 0 for p in products)
                        or all(p <= 0 for p in products)
                    ):
                        continue
                    if abs(sum(products)) > mu[i]:
                        found = True
                        break
                if not found:
                    failing.append((subset, sigma))
    return ConditionVerdict(
        holds=not failing,
        theorem="subset-sign-pattern",
        kind="sufficient",
        witnesses={"failing": tuple(failing)},
    )


def theorem_4_7(t: MappingMatrix, mu: Sequence[int]) -> ConditionVerdict:
    """Necessary & sufficient condition 6 for ``k = n-2`` (as stated).

    (1) a same-sign row with ``|u_{i,n-1} + u_{i,n}| > mu_i``; (2) an
    opposite-sign row with ``|u_{j,n-1} - u_{j,n}| > mu_j``; (3) both
    generator columns feasible.  See the module docstring for the
    exactness caveat on the necessity direction.
    """
    if t.corank != 2:
        raise ValueError(f"Theorem 4.7 applies to co-rank 2, got {t.corank}")
    u, _v, k = _hermite_u(t)
    patterns = sign_pattern_condition(u, k, mu)
    columns = theorem_4_4(t, mu)
    holds = patterns.holds and columns.holds
    return ConditionVerdict(
        holds=holds,
        theorem="4.7",
        kind="iff",
        witnesses={
            "sign_patterns": patterns.witnesses,
            "generators": columns.witnesses,
            "condition_1_2": patterns.holds,
            "condition_3": columns.holds,
        },
    )


def theorem_4_8(t: MappingMatrix, mu: Sequence[int]) -> ConditionVerdict:
    """Necessary & sufficient condition 7 for ``k = n-3`` (as stated).

    Four sign-pattern clauses over the last three columns of ``U`` plus
    feasibility of each generator column.
    """
    if t.corank != 3:
        raise ValueError(f"Theorem 4.8 applies to co-rank 3, got {t.corank}")
    u, _v, k = _hermite_u(t)
    patterns = sign_pattern_condition(u, k, mu)
    columns = theorem_4_4(t, mu)
    holds = patterns.holds and columns.holds
    return ConditionVerdict(
        holds=holds,
        theorem="4.8",
        kind="iff",
        witnesses={
            "sign_patterns": patterns.witnesses,
            "generators": columns.witnesses,
        },
    )


def check_conflict_free(
    t: MappingMatrix,
    mu: Sequence[int],
    *,
    method: str = "auto",
) -> ConditionVerdict:
    """Dispatch to the strongest checker for the mapping's co-rank.

    Three modes:

    * ``method="paper"`` — the paper's Step 5(3) dispatch verbatim:
      Theorem 3.1 (co-rank 1), Theorem 4.7 (co-rank 2), Theorem 4.8
      (co-rank 3), Theorem 4.5 otherwise.  Faithful but, for co-rank
      >= 3, only *sufficient as corrected* (see finding F2): a positive
      Theorem 4.8 verdict can in rare cancellation cases be wrong.
    * ``method="exact"`` — the kernel-box oracle; exact at any co-rank.
    * ``method="auto"`` (default) — **exact**, with the sufficient
      conditions as a fast path: Theorem 3.1 decides co-rank 1 outright
      (it is genuinely iff); for higher co-ranks the strengthened
      subset-sign-pattern condition answers "free" without touching the
      lattice, and only its failures fall back to the exact oracle.
    """
    from .conflict import is_conflict_free_kernel_box

    corank = t.corank
    if corank == 0:
        return ConditionVerdict(
            holds=t.has_full_rank(),
            theorem="square",
            kind="iff",
            witnesses={"rank": t.rank()},
        )
    if method == "exact":
        return ConditionVerdict(
            holds=is_conflict_free_kernel_box(t, mu),
            theorem="kernel-box",
            kind="iff",
        )
    if method == "paper":
        if corank == 1:
            return theorem_3_1(t, mu)
        if corank == 2:
            return theorem_4_7(t, mu)
        if corank == 3:
            return theorem_4_8(t, mu)
        return theorem_4_5(t, mu)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")
    if corank == 1:
        return theorem_3_1(t, mu)
    u, _v, k = _hermite_u(t)
    fast = subset_sign_pattern_condition(u, k, mu)
    if fast.holds:
        return fast
    return ConditionVerdict(
        holds=is_conflict_free_kernel_box(t, mu),
        theorem="kernel-box",
        kind="iff",
        witnesses={"fast_path": fast.witnesses},
    )
