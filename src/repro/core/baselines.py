"""Baseline schedules from the prior work the paper compares against.

The paper's two quantitative claims (Examples 5.1 and 5.2) are
improvements over published schedules:

* **[23] (Lee & Kedem)** mapped 3-D matrix multiplication onto a linear
  array with the same space mapping ``S = [1, 1, -1]`` but schedule
  ``Pi' = [2, 1, mu]`` — total time ``t' = mu(mu+3) + 1`` and four
  buffers, versus the paper's ``t = mu(mu+2) + 1`` and three buffers.
* **[22] (Lee & Kedem's n->k procedure)** found
  ``Pi' = [2 mu + 1, 1, 1]`` for the reindexed transitive closure —
  total time ``t' = mu(2 mu + 3) + 1`` versus the paper's
  ``t = mu(mu+3) + 1``.

The original papers are not available to this reproduction; their
schedules, as quoted by Shang & Fortes, are implemented here as
explicit baselines so every benchmark can regenerate the comparison
rows (see DESIGN.md §4, substitution note).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import UniformDependenceAlgorithm, matrix_multiplication, transitive_closure
from .mapping import MappingMatrix
from .schedule import LinearSchedule

__all__ = [
    "BaselineMapping",
    "matmul_baseline_ref23",
    "matmul_optimal_paper",
    "transitive_closure_baseline_ref22",
    "transitive_closure_optimal_paper",
]


@dataclass(frozen=True)
class BaselineMapping:
    """A named (algorithm, mapping) pair with its published time formula.

    ``predicted_total_time`` evaluates the closed-form expression the
    source publication reports, so benchmarks can assert that the
    simulated/derived time matches the formula exactly.
    """

    label: str
    source: str
    algorithm: UniformDependenceAlgorithm
    mapping: MappingMatrix

    def schedule(self) -> LinearSchedule:
        return LinearSchedule(
            pi=self.mapping.schedule, index_set=self.algorithm.index_set
        )

    @property
    def total_time(self) -> int:
        return self.schedule().total_time


def matmul_baseline_ref23(mu: int) -> BaselineMapping:
    """Matmul with [23]'s schedule ``Pi' = [2, 1, mu]``: ``t = mu(mu+3)+1``."""
    algo = matrix_multiplication(mu)
    mapping = MappingMatrix(space=((1, 1, -1),), schedule=(2, 1, mu))
    return BaselineMapping(
        label="matmul/[23]",
        source="ref [23], quoted in Example 5.1",
        algorithm=algo,
        mapping=mapping,
    )


def matmul_optimal_paper(mu: int) -> BaselineMapping:
    """Matmul with the paper's optimum ``Pi° = [1, mu, 1]``: ``t = mu(mu+2)+1``."""
    algo = matrix_multiplication(mu)
    mapping = MappingMatrix(space=((1, 1, -1),), schedule=(1, mu, 1))
    return BaselineMapping(
        label="matmul/paper",
        source="Example 5.1",
        algorithm=algo,
        mapping=mapping,
    )


def transitive_closure_baseline_ref22(mu: int) -> BaselineMapping:
    """Transitive closure with [22]'s ``Pi' = [2mu+1, 1, 1]``: ``t = mu(2mu+3)+1``."""
    algo = transitive_closure(mu)
    mapping = MappingMatrix(space=((0, 0, 1),), schedule=(2 * mu + 1, 1, 1))
    return BaselineMapping(
        label="transitive_closure/[22]",
        source="ref [22], quoted in Section 1 and Example 5.2",
        algorithm=algo,
        mapping=mapping,
    )


def transitive_closure_optimal_paper(mu: int) -> BaselineMapping:
    """Transitive closure with the paper's ``Pi° = [mu+1, 1, 1]``: ``t = mu(mu+3)+1``."""
    algo = transitive_closure(mu)
    mapping = MappingMatrix(space=((0, 0, 1),), schedule=(mu + 1, 1, 1))
    return BaselineMapping(
        label="transitive_closure/paper",
        source="Example 5.2",
        algorithm=algo,
        mapping=mapping,
    )
