"""Constant-bounded index sets (Equation 2.5 / Assumption 2.1).

The paper restricts attention to index sets

    ``J = { j in Z^n : 0 <= j_i <= mu_i }``

with problem-size variables ``mu_i``.  This module provides the index
set object used everywhere: membership, enumeration (lazy, in either
lexicographic or schedule order), cardinality and the geometric helper
queries Theorem 2.2's proofs rely on (e.g. constructing the witness
point ``j`` with ``j_i = 0`` when ``gamma_i >= 0`` and ``j_i = -gamma_i``
otherwise).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["ConstantBoundedIndexSet"]


@dataclass(frozen=True)
class ConstantBoundedIndexSet:
    """``{ j in Z^n : 0 <= j_i <= mu_i }`` for positive upper bounds ``mu``.

    Parameters
    ----------
    mu:
        Tuple of per-dimension upper bounds (``mu_i >= 1``, paper's
        ``mu_i in N^+``).  Lower bounds are fixed at zero exactly as in
        Equation 2.5; algorithms with other rectangular bounds can be
        shifted into this form (Section 2 cites [12] for the general
        linear transformation).

    Examples
    --------
    >>> J = ConstantBoundedIndexSet((2, 2))
    >>> len(J)
    9
    >>> (1, 2) in J
    True
    >>> (3, 0) in J
    False
    """

    mu: tuple[int, ...]

    def __post_init__(self) -> None:
        mu = tuple(int(m) for m in self.mu)
        if not mu:
            raise ValueError("index set needs at least one dimension")
        if any(m < 1 for m in mu):
            raise ValueError(f"upper bounds must be positive integers, got {mu}")
        object.__setattr__(self, "mu", mu)

    # -- basic geometry ------------------------------------------------

    @property
    def dimension(self) -> int:
        """The algorithm dimension ``n``."""
        return len(self.mu)

    def __len__(self) -> int:
        """Number of index points, ``prod(mu_i + 1)``."""
        return math.prod(m + 1 for m in self.mu)

    def __contains__(self, point: Sequence[int]) -> bool:
        pt = tuple(point)
        if len(pt) != self.dimension:
            return False
        return all(
            isinstance(x, (int, np.integer)) and 0 <= int(x) <= m
            for x, m in zip(pt, self.mu)
        )

    def contains_all(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership for an ``(N, n)`` array of points."""
        pts = np.asarray(points)
        if pts.ndim != 2 or pts.shape[1] != self.dimension:
            raise ValueError(f"expected shape (N, {self.dimension})")
        mu = np.asarray(self.mu)
        return np.all((pts >= 0) & (pts <= mu), axis=1)

    # -- enumeration ----------------------------------------------------

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        """Lazy lexicographic enumeration of all index points."""
        return itertools.product(*(range(m + 1) for m in self.mu))

    def points_array(self) -> np.ndarray:
        """All index points as an ``(|J|, n)`` int64 array (row-major).

        Materializes the whole set — fine for the problem sizes in the
        paper (``mu <= 10`` or so); prefer :meth:`__iter__` for streaming.
        """
        grids = np.meshgrid(*(np.arange(m + 1) for m in self.mu), indexing="ij")
        return np.stack([g.ravel() for g in grids], axis=1).astype(np.int64)

    # -- paper-specific helpers ------------------------------------------

    def translate_witness(self, gamma: Sequence[int]) -> tuple[int, ...] | None:
        """A point ``j`` with both ``j`` and ``j + gamma`` in ``J``, or ``None``.

        This is the constructive step of Theorem 2.2's "only if"
        direction: when ``|gamma_i| <= mu_i`` for all ``i`` the point
        with ``j_i = 0`` for ``gamma_i >= 0`` and ``j_i = -gamma_i``
        otherwise is such a witness; when some ``|gamma_i| > mu_i`` no
        witness exists.
        """
        g = tuple(int(x) for x in gamma)
        if len(g) != self.dimension:
            raise ValueError(f"gamma must have {self.dimension} entries")
        if any(abs(gi) > mi for gi, mi in zip(g, self.mu)):
            return None
        return tuple(0 if gi >= 0 else -gi for gi in g)

    def admits_translation(self, gamma: Sequence[int]) -> bool:
        """True when some ``j in J`` has ``j + gamma in J`` (Theorem 2.2).

        Equivalent to ``|gamma_i| <= mu_i`` for every coordinate; a
        *feasible* conflict vector is one for which this is false.
        """
        return self.translate_witness(gamma) is not None

    def diameter_along(self, pi: Sequence[int]) -> int:
        """``max { Pi (j1 - j2) : j1, j2 in J } = sum |pi_i| mu_i`` (Eq 2.6)."""
        p = [int(x) for x in pi]
        if len(p) != self.dimension:
            raise ValueError(f"pi must have {self.dimension} entries")
        return sum(abs(pi_i) * mi for pi_i, mi in zip(p, self.mu))

    def corners(self) -> list[tuple[int, ...]]:
        """The ``2^n`` corner points of the bounding box."""
        return [
            tuple(c)
            for c in itertools.product(*((0, m) for m in self.mu))
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantBoundedIndexSet(mu={self.mu})"
