"""Strict structural validation of untrusted algorithm specs.

The searches sit behind a service boundary in the ROADMAP's north-star
deployment: algorithm specs arrive from callers we do not control — a
CLI user, a JSON payload, a worker decoding a shard.  This module is
the front door.  It checks everything *before* any search starts or
any worker is spawned, raising typed :class:`SpecError`\\ s with
actionable messages instead of letting malformed input surface as a
confusing crash three layers down — or worse, as an absurd resource
bill inside the exact-arithmetic kernels (a ``mu`` of ``10**18`` is a
denial of service, not a problem size).

Three layers of checking, each with its own error type:

* **arity/shape** (:class:`SpecShapeError`, :class:`SpecDimensionError`)
  — the dependence matrix has ``n`` rows and rectangular integer
  columns, vectors have ``n`` entries, no zero dependence columns;
* **bounds sanity** (:class:`SpecBoundsError`) — index-set bounds are
  positive integers (``bool`` is not an integer here);
* **size caps** (:class:`SpecSizeError`) — dimensions, dependence
  count, ``mu`` magnitude, index-set cardinality and matrix entries
  all stay under the configurable :class:`SpecLimits` ceilings.

All limits live on one frozen dataclass so a service can widen (or
tighten) them per caller; :data:`DEFAULT_LIMITS` comfortably covers
every algorithm in the paper and the library zoo.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = [
    "SpecError",
    "SpecDimensionError",
    "SpecShapeError",
    "SpecBoundsError",
    "SpecSizeError",
    "SpecLimits",
    "DEFAULT_LIMITS",
    "validate_mu",
    "validate_dependence_matrix",
    "validate_vector",
    "validate_space",
    "validate_algorithm",
    "validate_algorithm_spec",
]


class SpecError(ValueError):
    """Base class: an untrusted algorithm/mapping spec is invalid."""


class SpecDimensionError(SpecError):
    """Dimension arity mismatch (wrong vector length / row count)."""


class SpecShapeError(SpecError):
    """Structurally malformed component (ragged matrix, non-integer
    entry, zero dependence column, wrong container type)."""


class SpecBoundsError(SpecError):
    """Index-set bounds fail the paper's sanity requirements
    (``mu_i in N^+``, Assumption 2.1)."""


class SpecSizeError(SpecError):
    """A size cap in :class:`SpecLimits` was exceeded."""


@dataclass(frozen=True)
class SpecLimits:
    """Resource ceilings applied to untrusted specs.

    Attributes
    ----------
    max_dimensions:
        Loop-nest depth ``n`` (the paper's examples use 3-5; bit-level
        variants add one).
    max_dependences:
        Columns of ``D``.
    max_mu:
        Any single problem-size bound ``mu_i``.
    max_points:
        Index-set cardinality ``prod(mu_i + 1)`` — the real memory /
        time driver for conflict analysis and simulation.
    max_abs_entry:
        Magnitude of any entry of ``D``, a space mapping or a schedule
        vector supplied from outside.
    """

    max_dimensions: int = 16
    max_dependences: int = 256
    max_mu: int = 10**6
    max_points: int = 10**12
    max_abs_entry: int = 10**9

    def __post_init__(self) -> None:
        for name in (
            "max_dimensions", "max_dependences", "max_mu",
            "max_points", "max_abs_entry",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")


DEFAULT_LIMITS = SpecLimits()


def _as_int(value, what: str):
    """A plain ``int`` from a trusted-to-be-integer entry, or raise.

    ``bool`` is rejected explicitly — ``True`` quietly passing as ``1``
    is exactly the kind of type confusion a hardened front door exists
    to stop.
    """
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    if not isinstance(value, bool):  # bool has __index__ too; never admit it
        try:
            return value.__index__()  # numpy integers etc.
        except (AttributeError, TypeError):
            pass
    raise SpecShapeError(
        f"{what} must be an integer, got {type(value).__name__} ({value!r})"
    )


def _as_rows(value, what: str) -> list:
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        raise SpecShapeError(
            f"{what} must be a sequence of rows, got {type(value).__name__}"
        )
    return list(value)


def validate_mu(mu, limits: SpecLimits = DEFAULT_LIMITS) -> tuple[int, ...]:
    """Index-set bounds: a non-empty tuple of positive, capped ints."""
    if isinstance(mu, (str, bytes)) or not isinstance(mu, Sequence):
        raise SpecShapeError(
            f"mu must be a sequence of integers, got {type(mu).__name__}"
        )
    values = tuple(_as_int(m, "mu entry") for m in mu)
    if not values:
        raise SpecDimensionError("mu is empty: an index set needs >= 1 dimension")
    if len(values) > limits.max_dimensions:
        raise SpecSizeError(
            f"mu has {len(values)} dimensions (> max_dimensions="
            f"{limits.max_dimensions}); raise SpecLimits.max_dimensions if "
            "this is intended"
        )
    for i, m in enumerate(values):
        if m < 1:
            raise SpecBoundsError(
                f"mu[{i}] = {m}: problem-size bounds must be positive "
                "integers (Assumption 2.1)"
            )
        if m > limits.max_mu:
            raise SpecSizeError(
                f"mu[{i}] = {m} exceeds max_mu={limits.max_mu}; raise "
                "SpecLimits.max_mu if this is intended"
            )
    points = math.prod(m + 1 for m in values)
    if points > limits.max_points:
        raise SpecSizeError(
            f"index set has {points} points (> max_points="
            f"{limits.max_points}); shrink mu or raise SpecLimits.max_points"
        )
    return values


def validate_dependence_matrix(
    dependence, n: int, limits: SpecLimits = DEFAULT_LIMITS
) -> tuple[tuple[int, ...], ...]:
    """``D`` as an ``n x m`` integer matrix within the caps.

    ``m = 0`` (no dependencies) is legal; a zero *column* is not (it
    would claim a computation depends on itself).
    """
    rows = [_as_rows(r, "dependence-matrix row") for r in
            _as_rows(dependence, "dependence matrix")]
    if not rows:
        return ()
    if len(rows) != n:
        raise SpecDimensionError(
            f"dependence matrix has {len(rows)} rows but the index set has "
            f"{n} dimensions; D must be n x m with one row per dimension"
        )
    m = len(rows[0])
    out = []
    for r, row in enumerate(rows):
        if len(row) != m:
            raise SpecShapeError(
                f"dependence matrix is ragged: row {r} has {len(row)} "
                f"entries, row 0 has {m}"
            )
        out.append(tuple(_as_int(x, f"D[{r}]") for x in row))
    if m > limits.max_dependences:
        raise SpecSizeError(
            f"dependence matrix has {m} columns (> max_dependences="
            f"{limits.max_dependences})"
        )
    for r, row in enumerate(out):
        for c, x in enumerate(row):
            if abs(x) > limits.max_abs_entry:
                raise SpecSizeError(
                    f"D[{r}][{c}] = {x} exceeds max_abs_entry="
                    f"{limits.max_abs_entry}"
                )
    for c in range(m):
        if all(row[c] == 0 for row in out):
            raise SpecShapeError(
                f"dependence vector {c} is the zero vector: a computation "
                "cannot depend on itself"
            )
    return tuple(out)


def validate_vector(
    vector, n: int, what: str = "vector",
    limits: SpecLimits = DEFAULT_LIMITS,
) -> tuple[int, ...]:
    """An ``n``-entry integer vector (schedule ``Pi``, a space row, ...)."""
    values = tuple(
        _as_int(x, f"{what} entry") for x in _as_rows(vector, what)
    )
    if len(values) != n:
        raise SpecDimensionError(
            f"{what} has {len(values)} entries but the algorithm has n={n} "
            "index dimensions"
        )
    for i, x in enumerate(values):
        if abs(x) > limits.max_abs_entry:
            raise SpecSizeError(
                f"{what}[{i}] = {x} exceeds max_abs_entry={limits.max_abs_entry}"
            )
    return values


def validate_space(
    space, n: int, limits: SpecLimits = DEFAULT_LIMITS
) -> tuple[tuple[int, ...], ...]:
    """A space mapping ``S``: 1..n-1 rows of ``n`` capped integers."""
    rows = _as_rows(space, "space mapping")
    if not rows:
        raise SpecDimensionError(
            "space mapping has no rows; S must be (k-1) x n with k >= 2"
        )
    if len(rows) >= n:
        raise SpecDimensionError(
            f"space mapping has {len(rows)} rows for an n={n} algorithm; "
            "T = [S; Pi] must have at most n rows, so S has at most n-1"
        )
    return tuple(
        validate_vector(row, n, f"space row {r}", limits)
        for r, row in enumerate(rows)
    )


def validate_algorithm(algorithm, limits: SpecLimits = DEFAULT_LIMITS):
    """Validate a constructed :class:`UniformDependenceAlgorithm`.

    Returns the algorithm unchanged so call sites can validate inline.
    """
    validate_mu(algorithm.mu, limits)
    dm = algorithm.dependence_matrix
    rows = dm if (dm is not None and len(dm)) else ()
    validate_dependence_matrix(rows, algorithm.n, limits)
    return algorithm


def validate_algorithm_spec(
    spec, limits: SpecLimits = DEFAULT_LIMITS
) -> dict:
    """Validate a transport-level ``{mu, dependence, name}`` payload.

    This is what DSE workers decode: the payload crossed a process
    boundary and may have been corrupted in transit, so its structure
    is proven before an algorithm object is built from it.
    """
    if not isinstance(spec, dict):
        raise SpecShapeError(
            f"algorithm spec must be a dict, got {type(spec).__name__}"
        )
    missing = [k for k in ("mu", "dependence") if k not in spec]
    if missing:
        raise SpecShapeError(
            f"algorithm spec is missing key(s) {missing}; expected "
            "{'mu', 'dependence', 'name'}"
        )
    name = spec.get("name", "algorithm")
    if not isinstance(name, str):
        raise SpecShapeError(
            f"algorithm name must be a string, got {type(name).__name__}"
        )
    mu = validate_mu(spec["mu"], limits)
    validate_dependence_matrix(spec["dependence"], len(mu), limits)
    return spec
