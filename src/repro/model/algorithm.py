"""Uniform dependence algorithms ``(J, D)`` (Definition 2.1).

A uniform dependence algorithm is characterized, for mapping purposes,
entirely by its index set ``J`` and dependence matrix ``D`` whose
columns are the constant dependence vectors ``d_i``: the computation at
index point ``j`` consumes the values produced at ``j - d_i``.  The
optional ``compute`` attribute attaches executable semantics (used by
the systolic functional simulator); the mapping theory never needs it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..intlin import IntMat, IntVec, as_intmat
from .index_set import ConstantBoundedIndexSet

__all__ = ["UniformDependenceAlgorithm", "DependenceError"]


class DependenceError(ValueError):
    """Raised for structurally invalid dependence matrices."""


@dataclass(frozen=True)
class UniformDependenceAlgorithm:
    """An algorithm ``(J, D)`` in the sense of Definition 2.1.

    Parameters
    ----------
    index_set:
        The constant-bounded iteration space ``J`` (Assumption 2.1).
    dependence_matrix:
        Integer matrix ``D`` of shape ``(n, m)``; column ``i`` is the
        dependence vector ``d_i``.  ``m = 0`` (no dependencies) is
        allowed — every schedule then trivially satisfies ``Pi D > 0``.
    name:
        Human-readable label used in reports and visualizations.
    compute:
        Optional executable semantics: ``compute(j, operands) -> value``
        where ``operands[i]`` is the value produced at ``j - d_i`` (or
        ``None`` when ``j - d_i`` falls outside ``J`` and the operand is
        an external input).  See :mod:`repro.systolic.semantics`.
    inputs:
        Optional callable providing boundary values:
        ``inputs(j, i) -> value`` for an operand of ``d_i`` read from
        outside the index set.
    """

    index_set: ConstantBoundedIndexSet
    dependence_matrix: IntMat
    name: str = "algorithm"
    compute: Callable[..., Any] | None = field(default=None, compare=False)
    inputs: Callable[..., Any] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        d = as_intmat(self.dependence_matrix if self._has_deps() else ())
        n = self.index_set.dimension
        if d.nrows:
            if d.nrows != n:
                raise DependenceError(
                    f"dependence matrix has {d.nrows} rows, index set has dimension {n}"
                )
            for col, column in enumerate(d.columns()):
                if not any(column):
                    raise DependenceError(f"dependence vector {col} is the zero vector")
        object.__setattr__(self, "dependence_matrix", d)

    def _has_deps(self) -> bool:
        dm = self.dependence_matrix
        if dm is None or len(dm) == 0:
            return False
        first = dm[0]
        try:
            return len(first) > 0
        except TypeError:
            return True

    # -- structural accessors --------------------------------------------

    @property
    def n(self) -> int:
        """Algorithm dimension (depth of the loop nest)."""
        return self.index_set.dimension

    @property
    def m(self) -> int:
        """Number of dependence vectors."""
        return self.dependence_matrix.ncols if self.dependence_matrix.nrows else 0

    @property
    def mu(self) -> tuple[int, ...]:
        """Problem-size variables ``mu_i`` of the index set."""
        return self.index_set.mu

    def dependence_vectors(self) -> list[IntVec]:
        """The columns ``d_1, ..., d_m`` of ``D`` as vectors."""
        if not self.dependence_matrix.nrows:
            return []
        return self.dependence_matrix.columns()

    def dependence_array(self) -> np.ndarray:
        """``D`` as an ``(n, m)`` int64 array (empty ``(n, 0)`` when m=0)."""
        if self.m == 0:
            return np.zeros((self.n, 0), dtype=np.int64)
        return self.dependence_matrix.to_int64()

    # -- dependence-graph queries ----------------------------------------

    def predecessors(self, j: Sequence[int]) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(i, j - d_i)`` for the in-set predecessors of ``j``."""
        jt = tuple(int(x) for x in j)
        for i, d in enumerate(self.dependence_vectors()):
            pred = tuple(a - b for a, b in zip(jt, d))
            if pred in self.index_set:
                yield i, pred

    def is_acyclic_under(self, pi: Sequence[int]) -> bool:
        """True when ``Pi d_i > 0`` for every dependence (Def 2.2 cond 1)."""
        p = [int(x) for x in pi]
        return all(
            sum(a * b for a, b in zip(p, d)) > 0 for d in self.dependence_vectors()
        )

    def validate(self, limits=None) -> None:
        """Re-run structural validation (no-op if construction succeeded).

        With ``limits`` (a :class:`repro.model.validate.SpecLimits`),
        additionally enforce the untrusted-input size caps — the check
        the search entry points apply to specs from outside callers.
        """
        self.__post_init__()
        if limits is not None:
            from .validate import validate_algorithm

            validate_algorithm(self, limits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UniformDependenceAlgorithm(name={self.name!r}, n={self.n}, "
            f"m={self.m}, mu={self.mu})"
        )
