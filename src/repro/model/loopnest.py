"""Loop-nest front-end: extract ``(J, D)`` from a nested-loop statement.

Definition 2.1 relates uniform dependence algorithms to "programs where
a single statement appears in the body of a multiply nested loop and
the indices of the variable in the left hand side differ by a constant
from the corresponding indices in each reference to the same variable
in the right hand side".  This module mechanizes that reading — it is
the stand-in for the front half of the RAB tool (Section 1), which
analyzed C loop nests and uniformized them.

Two kinds of right-hand-side references are handled:

* **self references** ``v[i-1, j, k]`` — the dependence vector is the
  constant subscript offset (negated), exactly Definition 2.1;
* **input-stream references** ``a[i, k]`` (a different variable, often
  with fewer subscripts) — the reference is *uniformized* by pipelining
  it along a direction in which the access function is invariant, i.e.
  a primitive kernel vector of the access matrix.  This is the standard
  broadcast-removal step the paper cites ([14], [24]).

Example
-------
>>> nest = LoopNest(indices=("j1", "j2", "j3"), bounds=(4, 4, 4))
>>> algo = nest.uniformize(
...     output=Access("c", ("j1", "j2", "j3-1"), variable_is_output=True),
...     reads=(Access("a", ("j1", "j3")), Access("b", ("j3", "j2"))),
... )
>>> algo.dependence_vectors()
[(0, 1, 0), (1, 0, 0), (0, 0, 1)]
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..intlin import kernel_basis, normalize_primitive
from .algorithm import DependenceError, UniformDependenceAlgorithm
from .index_set import ConstantBoundedIndexSet

__all__ = ["Access", "LoopNest", "SubscriptError"]

_TERM_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_]\w*)\s*(?:(?P<sign>[+-])\s*(?P<const>\d+))?\s*$"
)

_AFFINE_TERM_RE = re.compile(
    r"\s*(?P<sign>[+-]?)\s*(?:(?P<coef>\d+)\s*\*\s*)?(?P<body>[A-Za-z_]\w*|\d+)"
)


class SubscriptError(ValueError):
    """Raised when a subscript expression is not of the form ``index ± const``."""


def parse_affine(expr: str, indices: tuple[str, ...]) -> tuple[dict[str, int], int]:
    """Parse an affine subscript like ``"i - k"`` or ``"2*i + j - 1"``.

    Returns ``(coefficients_by_index, constant)``.  Used for input-
    stream accesses, whose access functions may mix several loop
    indices (the classic ``x[i - k]`` of convolution); self references
    stay restricted to ``index ± constant`` as Definition 2.1 requires.
    """
    coeffs: dict[str, int] = {}
    const = 0
    pos = 0
    expr = expr.strip()
    if not expr:
        raise SubscriptError("empty subscript expression")
    while pos < len(expr):
        m = _AFFINE_TERM_RE.match(expr, pos)
        if not m:
            raise SubscriptError(f"cannot parse subscript {expr!r} at position {pos}")
        sign = -1 if m.group("sign") == "-" else 1
        coef = int(m.group("coef")) if m.group("coef") else 1
        body = m.group("body")
        if body.isdigit():
            if m.group("coef"):
                raise SubscriptError(f"constant with coefficient in {expr!r}")
            const += sign * int(body)
        else:
            if body not in indices:
                raise SubscriptError(
                    f"unknown loop index {body!r} in subscript {expr!r}; "
                    f"nest indices are {indices}"
                )
            coeffs[body] = coeffs.get(body, 0) + sign * coef
        pos = m.end()
    return coeffs, const


@dataclass(frozen=True)
class Access:
    """A subscripted array reference such as ``v[j1-1, j2, j3]``.

    Parameters
    ----------
    variable:
        Array name.
    subscripts:
        One expression string per dimension; each must be a loop index
        optionally offset by an integer constant (``"i"``, ``"i-1"``,
        ``"k+2"``).  General affine subscripts would leave the uniform
        dependence class, which the paper (and hence this front-end)
        excludes.
    variable_is_output:
        Marks the left-hand-side access.
    """

    variable: str
    subscripts: tuple[str, ...]
    variable_is_output: bool = False

    def parsed(self) -> list[tuple[str, int]]:
        """Each subscript as ``(index_name, constant_offset)``."""
        out = []
        for expr in self.subscripts:
            m = _TERM_RE.match(expr)
            if not m:
                raise SubscriptError(
                    f"subscript {expr!r} is not of the form 'index +/- constant'"
                )
            const = int(m.group("const") or 0)
            if m.group("sign") == "-":
                const = -const
            out.append((m.group("name"), const))
        return out


@dataclass(frozen=True)
class LoopNest:
    """An ``n``-deep rectangular loop nest ``0 <= index_i <= bounds_i``."""

    indices: tuple[str, ...]
    bounds: tuple[int, ...]
    name: str = field(default="loopnest")

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.bounds):
            raise ValueError("indices and bounds must have equal length")
        if len(set(self.indices)) != len(self.indices):
            raise ValueError(f"duplicate loop indices in {self.indices}")

    @property
    def n(self) -> int:
        return len(self.indices)

    def index_position(self, name: str) -> int:
        try:
            return self.indices.index(name)
        except ValueError:
            raise SubscriptError(
                f"unknown loop index {name!r}; nest indices are {self.indices}"
            ) from None

    # -- dependence extraction -------------------------------------------

    def self_dependence(self, output: Access, read: Access) -> tuple[int, ...]:
        """Dependence vector for a read of the output variable itself.

        With the statement ``v[f(j)] = ... v[g(j)] ...`` and both ``f``
        and ``g`` of the "index + constant" form, the value read at
        iteration ``j`` was written at the iteration ``j'`` with
        ``f(j') = g(j)``; uniformity gives ``d = j - j'`` constant.
        """
        if output.variable != read.variable:
            raise ValueError("self_dependence requires matching variable names")
        if len(output.subscripts) != len(read.subscripts):
            raise SubscriptError(
                f"rank mismatch on {output.variable!r}: "
                f"{len(output.subscripts)} vs {len(read.subscripts)}"
            )
        d = [0] * self.n
        seen: set[int] = set()
        for (w_idx, w_off), (r_idx, r_off) in zip(output.parsed(), read.parsed()):
            if w_idx != r_idx:
                raise SubscriptError(
                    f"non-uniform reference: subscript pairs ({w_idx!r}, {r_idx!r}) "
                    "use different loop indices"
                )
            pos = self.index_position(w_idx)
            if pos in seen:
                raise SubscriptError(f"loop index {w_idx!r} used twice in subscripts")
            seen.add(pos)
            d[pos] = w_off - r_off
        if all(x == 0 for x in d):
            raise DependenceError(
                f"read {read.variable}{list(read.subscripts)} is the same iteration "
                "as the write (zero dependence vector)"
            )
        return tuple(d)

    def input_stream_direction(self, read: Access) -> tuple[int, ...]:
        """Uniformization direction for an input-stream reference.

        The access matrix ``F`` maps the iteration vector to the
        subscript vector; any primitive kernel vector of ``F`` is a
        direction along which the same datum is reused, so the datum is
        pipelined along it.  Raises when the access is injective (no
        reuse: the reference needs no uniformization and induces no
        dependence) or when the reuse space is multidimensional and
        therefore ambiguous.
        """
        if not read.subscripts:
            raise SubscriptError(f"scalar reference {read.variable!r} has no subscripts")
        f = []
        for expr in read.subscripts:
            coeffs, _const = parse_affine(expr, self.indices)
            f.append([coeffs.get(name, 0) for name in self.indices])
        basis = kernel_basis(_full_rank_rows(f))
        if len(basis) == 0:
            raise DependenceError(
                f"access {read.variable}{list(read.subscripts)} is injective; "
                "it induces no reuse and no dependence vector"
            )
        if len(basis) > 1:
            raise DependenceError(
                f"access {read.variable}{list(read.subscripts)} has a "
                f"{len(basis)}-dimensional reuse space; pick a pipelining "
                "direction explicitly"
            )
        d = normalize_primitive(basis[0])
        return tuple(d)

    def uniformize(
        self,
        output: Access,
        reads: tuple[Access, ...],
        *,
        name: str | None = None,
    ) -> UniformDependenceAlgorithm:
        """Build the uniform dependence algorithm for one statement.

        Dependence vectors are emitted in the order of ``reads``:
        self-references via :meth:`self_dependence`, other variables via
        :meth:`input_stream_direction`.  The output access itself also
        contributes when its subscripts carry a constant offset (a
        write at ``v[j3-1]`` means iteration ``j`` produces the value
        consumed at ``j + offset``).

        Loop nests are untrusted front-door input, so the bounds pass
        the :mod:`repro.model.validate` caps (:class:`SpecError` on
        violation) before any dependence extraction runs.
        """
        from .validate import validate_mu

        validate_mu(self.bounds)
        columns: list[tuple[int, ...]] = []
        for read in reads:
            if read.variable == output.variable:
                columns.append(self.self_dependence(output, read))
            else:
                columns.append(self.input_stream_direction(read))
        out_offsets = [off for _idx, off in output.parsed()]
        if any(off != 0 for off in out_offsets):
            d = [0] * self.n
            for (idx, off) in output.parsed():
                d[self.index_position(idx)] = -off
            columns.append(tuple(d))
        if not columns:
            raise DependenceError("statement induces no dependence vectors")
        dep_matrix = tuple(
            tuple(col[r] for col in columns) for r in range(self.n)
        )
        return UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet(self.bounds),
            dependence_matrix=dep_matrix,
            name=name or self.name,
        )


def _full_rank_rows(f: list[list[int]]) -> list[list[int]]:
    """Select a maximal linearly independent subset of rows of ``f``.

    ``kernel_basis`` (HNF) requires full row rank; duplicated
    subscripts like ``a[i, i]`` produce dependent rows that carry no
    extra kernel information.
    """
    from ..intlin import rank as int_rank

    rows: list[list[int]] = []
    for row in f:
        candidate = rows + [row]
        if int_rank(candidate) == len(candidate):
            rows.append(row)
    return rows
