"""Algorithm model: index sets, uniform dependence algorithms, zoo, front-end.

Implements Definition 2.1 (uniform dependence algorithms), Assumption
2.1 (constant-bounded index sets, Equation 2.5), the paper's worked
algorithms (matmul, transitive closure, convolution, LU, bit-level
variants) and a loop-nest front-end that extracts ``(J, D)`` from a
single-statement nested loop.
"""

from .algorithm import DependenceError, UniformDependenceAlgorithm
from .alignment import AlignmentResult, StatementDependence, align_statements
from .generators import random_algorithm, random_schedulable_algorithm
from .index_set import ConstantBoundedIndexSet
from .library import (
    bit_level_convolution,
    bit_level_lu_decomposition,
    convolution_2d,
    bit_level_matrix_multiplication,
    convolution_1d,
    example_2_1_algorithm,
    lu_decomposition,
    matrix_multiplication,
    stencil_2d,
    transitive_closure,
)
from .loopnest import Access, LoopNest, SubscriptError, parse_affine

__all__ = [
    "Access",
    "AlignmentResult",
    "ConstantBoundedIndexSet",
    "DependenceError",
    "LoopNest",
    "StatementDependence",
    "SubscriptError",
    "parse_affine",
    "random_algorithm",
    "random_schedulable_algorithm",
    "stencil_2d",
    "UniformDependenceAlgorithm",
    "align_statements",
    "bit_level_convolution",
    "bit_level_lu_decomposition",
    "convolution_2d",
    "bit_level_matrix_multiplication",
    "convolution_1d",
    "example_2_1_algorithm",
    "lu_decomposition",
    "matrix_multiplication",
    "transitive_closure",
]
