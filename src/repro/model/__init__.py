"""Algorithm model: index sets, uniform dependence algorithms, zoo, front-end.

Implements Definition 2.1 (uniform dependence algorithms), Assumption
2.1 (constant-bounded index sets, Equation 2.5), the paper's worked
algorithms (matmul, transitive closure, convolution, LU, bit-level
variants) and a loop-nest front-end that extracts ``(J, D)`` from a
single-statement nested loop.
"""

from .algorithm import DependenceError, UniformDependenceAlgorithm
from .alignment import AlignmentResult, StatementDependence, align_statements
from .generators import random_algorithm, random_schedulable_algorithm
from .index_set import ConstantBoundedIndexSet
from .library import (
    bit_level_convolution,
    bit_level_lu_decomposition,
    convolution_2d,
    bit_level_matrix_multiplication,
    convolution_1d,
    example_2_1_algorithm,
    lu_decomposition,
    matrix_multiplication,
    stencil_2d,
    transitive_closure,
)
from .loopnest import Access, LoopNest, SubscriptError, parse_affine
from .validate import (
    DEFAULT_LIMITS,
    SpecBoundsError,
    SpecDimensionError,
    SpecError,
    SpecLimits,
    SpecShapeError,
    SpecSizeError,
    validate_algorithm,
    validate_algorithm_spec,
    validate_dependence_matrix,
    validate_mu,
    validate_space,
    validate_vector,
)

__all__ = [
    "Access",
    "AlignmentResult",
    "ConstantBoundedIndexSet",
    "DependenceError",
    "DEFAULT_LIMITS",
    "LoopNest",
    "SpecBoundsError",
    "SpecDimensionError",
    "SpecError",
    "SpecLimits",
    "SpecShapeError",
    "SpecSizeError",
    "StatementDependence",
    "SubscriptError",
    "validate_algorithm",
    "validate_algorithm_spec",
    "validate_dependence_matrix",
    "validate_mu",
    "validate_space",
    "validate_vector",
    "parse_affine",
    "random_algorithm",
    "random_schedulable_algorithm",
    "stencil_2d",
    "UniformDependenceAlgorithm",
    "align_statements",
    "bit_level_convolution",
    "bit_level_lu_decomposition",
    "convolution_2d",
    "bit_level_matrix_multiplication",
    "convolution_1d",
    "example_2_1_algorithm",
    "lu_decomposition",
    "matrix_multiplication",
    "transitive_closure",
]
