"""Random algorithm and mapping generators (fuzzing infrastructure).

The property-test suite and the ablation benchmarks need streams of
structurally valid random instances; centralizing the generators keeps
their invariants (schedulability, full rank, bounded entries) in one
audited place.

All generators are deterministic under a seeded ``random.Random``.
"""

from __future__ import annotations

import random

from .algorithm import UniformDependenceAlgorithm
from .index_set import ConstantBoundedIndexSet

__all__ = [
    "random_algorithm",
    "random_schedulable_algorithm",
]


def random_algorithm(
    rng: random.Random,
    *,
    n: int = 3,
    m: int = 3,
    mu_max: int = 3,
    magnitude: int = 2,
    max_tries: int = 200,
) -> UniformDependenceAlgorithm:
    """A random ``(J, D)`` with non-zero dependence columns.

    No schedulability guarantee — the dependence cone may fail to be
    pointed.  Use :func:`random_schedulable_algorithm` when a valid
    linear schedule must exist.
    """
    mu = tuple(rng.randint(1, mu_max) for _ in range(n))
    cols: list[tuple[int, ...]] = []
    tries = 0
    while len(cols) < m:
        tries += 1
        if tries > max_tries:
            raise RuntimeError("failed to sample distinct dependence columns")
        col = tuple(rng.randint(-magnitude, magnitude) for _ in range(n))
        if any(col) and col not in cols:
            cols.append(col)
    dep_matrix = tuple(tuple(c[r] for c in cols) for r in range(n))
    return UniformDependenceAlgorithm(
        index_set=ConstantBoundedIndexSet(mu),
        dependence_matrix=dep_matrix,
        name=f"random(n={n}, m={m})",
    )


def random_schedulable_algorithm(
    rng: random.Random,
    *,
    n: int = 3,
    m: int = 3,
    mu_max: int = 3,
    magnitude: int = 2,
    max_tries: int = 500,
) -> UniformDependenceAlgorithm:
    """A random ``(J, D)`` guaranteed to admit a linear schedule.

    Sampling draws a hidden positive normal ``Pi_0`` (entries in
    ``1..magnitude+1``) first and accepts only dependence columns with
    ``Pi_0 d > 0`` — so ``Pi_0`` itself witnesses schedulability and
    the dependence cone is pointed by construction.
    """
    pi0 = [rng.randint(1, magnitude + 1) for _ in range(n)]
    mu = tuple(rng.randint(1, mu_max) for _ in range(n))
    cols: list[tuple[int, ...]] = []
    tries = 0
    while len(cols) < m:
        tries += 1
        if tries > max_tries:
            raise RuntimeError("failed to sample schedulable dependence columns")
        col = tuple(rng.randint(-magnitude, magnitude) for _ in range(n))
        if not any(col) or col in cols:
            continue
        if sum(p * x for p, x in zip(pi0, col)) > 0:
            cols.append(col)
    dep_matrix = tuple(tuple(c[r] for c in cols) for r in range(n))
    return UniformDependenceAlgorithm(
        index_set=ConstantBoundedIndexSet(mu),
        dependence_matrix=dep_matrix,
        name=f"random_schedulable(n={n}, m={m})",
    )
