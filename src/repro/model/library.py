"""The paper's algorithm zoo.

Constructors for every uniform dependence algorithm the paper uses or
motivates:

* 3-D matrix multiplication (Example 3.1 / 5.1, Equation 3.4),
* the reindexed transitive closure (Example 3.2 / 5.2, Equation 3.6),
* systolic 1-D convolution and banded LU decomposition (Section 1's
  motivating nested-loop kernels),
* 4-D and 5-D *bit-level* algorithms standing in for the RAB tool's
  workloads (Section 1; RAB itself is unavailable — see DESIGN.md §4).

Where the paper's reference gives executable semantics (matmul,
convolution) the returned algorithm carries a ``compute`` function so
the systolic simulator can execute it functionally and check numerical
results against NumPy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .algorithm import UniformDependenceAlgorithm
from .index_set import ConstantBoundedIndexSet

__all__ = [
    "matrix_multiplication",
    "convolution_2d",
    "bit_level_lu_decomposition",
    "stencil_2d",
    "transitive_closure",
    "convolution_1d",
    "lu_decomposition",
    "bit_level_matrix_multiplication",
    "bit_level_convolution",
    "example_2_1_algorithm",
]


def matrix_multiplication(
    mu: int,
    *,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
) -> UniformDependenceAlgorithm:
    """The 3-D matrix multiplication algorithm of Equation 3.4.

    ``C = A B`` over ``(mu+1) x (mu+1)`` matrices; index point
    ``(j1, j2, j3)`` performs ``c[j1,j2] += a[j1,j3] * b[j3,j2]``.
    Dependence vectors (paper, Example 3.1): ``d1 = (1,0,0)`` carries
    ``B`` (invariant along ``j1``), ``d2 = (0,1,0)`` carries ``A``,
    ``d3 = (0,0,1)`` carries the accumulating ``C``.

    When ``a``/``b`` are given (shape ``(mu+1, mu+1)``), the returned
    algorithm has executable semantics: the simulator's value at each
    index point is the triple ``(a_val, b_val, c_acc)``.
    """
    size = mu + 1
    index_set = ConstantBoundedIndexSet((mu, mu, mu))
    d = ((1, 0, 0), (0, 1, 0), (0, 0, 1))  # rows of D^T; D columns are d1,d2,d3
    dep_matrix = tuple(zip(*d))

    compute = None
    inputs = None
    if a is not None or b is not None:
        if a is None or b is None:
            raise ValueError("provide both a and b, or neither")
        a_arr = np.asarray(a)
        b_arr = np.asarray(b)
        if a_arr.shape != (size, size) or b_arr.shape != (size, size):
            raise ValueError(f"a and b must have shape ({size}, {size})")

        def inputs(j: tuple[int, ...], i: int):  # noqa: ANN202
            j1, j2, j3 = j
            if i == 0:  # d1 boundary (j1 == 0): B enters
                return (None, b_arr[j3, j2], None)
            if i == 1:  # d2 boundary (j2 == 0): A enters
                return (a_arr[j1, j3], None, None)
            return (None, None, 0)  # d3 boundary (j3 == 0): C starts at 0

        def compute(j: tuple[int, ...], operands: Sequence[tuple]):  # noqa: ANN202
            b_val = operands[0][1]
            a_val = operands[1][0]
            c_val = operands[2][2]
            return (a_val, b_val, c_val + a_val * b_val)

    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"matmul(mu={mu})",
        compute=compute,
        inputs=inputs,
    )


def transitive_closure(mu: int) -> UniformDependenceAlgorithm:
    """The reindexed transitive closure algorithm of Equation 3.6.

    3-D index set with bounds ``mu`` and the five dependence vectors

        ``D = [[0, 0, 1, 1, 1],
               [0, 1, -1, -1, 0],
               [1, 0, -1, 0, -1]]``

    exactly as used in Example 3.2 / 5.2 (derived in refs [17], [23]
    from the Fortran transitive-closure code after reindexing).
    """
    index_set = ConstantBoundedIndexSet((mu, mu, mu))
    dep_matrix = (
        (0, 0, 1, 1, 1),
        (0, 1, -1, -1, 0),
        (1, 0, -1, 0, -1),
    )
    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"transitive_closure(mu={mu})",
    )


def convolution_1d(
    taps: int,
    samples: int,
    *,
    weights: np.ndarray | None = None,
    signal: np.ndarray | None = None,
) -> UniformDependenceAlgorithm:
    """Systolic 1-D convolution ``y[i] = sum_k w[k] * x[i-k]``.

    2-D uniform dependence form: index point ``(i, k)`` performs
    ``y[i] += w[k] * x[i-k]`` with

    * ``d1 = (0, 1)`` — the ``y`` accumulation along ``k``,
    * ``d2 = (1, 1)`` — ``x[i-k]`` is invariant along ``(1, 1)``,
    * ``d3 = (1, 0)`` — ``w[k]`` is invariant along ``i``.

    ``samples`` is the number of output points minus one (the ``i``
    bound); ``taps`` is the filter order (the ``k`` bound).  Values in
    functional mode are triples ``(y_acc, x_val, w_val)``.
    """
    index_set = ConstantBoundedIndexSet((samples, taps))
    dep_matrix = ((0, 1, 1), (1, 1, 0))

    compute = None
    inputs = None
    if weights is not None or signal is not None:
        if weights is None or signal is None:
            raise ValueError("provide both weights and signal, or neither")
        w = np.asarray(weights)
        x = np.asarray(signal)
        if w.shape[0] < taps + 1:
            raise ValueError(f"need at least {taps + 1} weights")
        # x is indexed by i - k in [-taps, samples]; shift by taps.
        if x.shape[0] < samples + taps + 1:
            raise ValueError(f"need at least {samples + taps + 1} signal samples")

        def inputs(j: tuple[int, ...], i: int):  # noqa: ANN202
            ii, k = j
            if i == 0:  # y boundary (k == 0)
                return (0, None, None)
            if i == 1:  # x boundary (i == 0 or k == taps edge)
                return (None, x[ii - k + taps], None)
            return (None, None, w[k])  # w boundary (i == 0)

        def compute(j: tuple[int, ...], operands: Sequence[tuple]):  # noqa: ANN202
            y_val = operands[0][0]
            x_val = operands[1][1]
            w_val = operands[2][2]
            return (y_val + w_val * x_val, x_val, w_val)

    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"convolution(taps={taps}, samples={samples})",
        compute=compute,
        inputs=inputs,
    )


def lu_decomposition(
    mu: int, *, a: np.ndarray | None = None
) -> UniformDependenceAlgorithm:
    """Uniformized LU decomposition (3-D, unit dependence vectors).

    The classical systolic LU formulation (Section 1's example list)
    after uniformization has the same structural skeleton as matmul —
    three unit dependence vectors over a ``(mu+1)^3`` index set with
    point ``(k, i, j)`` holding "the state of entry ``(i, j)`` after
    elimination step ``k``":

    * ``d1 = (1, 0, 0)`` carries the evolving matrix entry between
      elimination steps,
    * ``d2 = (0, 1, 0)`` pipelines the pivot-row value ``u[k, j]`` (and
      the pivot ``u[k, k]``) down the ``i`` direction,
    * ``d3 = (0, 0, 1)`` pipelines the multiplier ``l[i, k]`` along the
      ``j`` direction.

    With ``a`` given (an exactly-LU-factorable ``(mu+1) x (mu+1)``
    matrix — no pivoting is performed), the algorithm carries
    executable semantics over :class:`fractions.Fraction` values; after
    the last step the lattice holds ``U`` on and above the diagonal and
    the unit-lower ``L`` multipliers below it.
    """
    index_set = ConstantBoundedIndexSet((mu, mu, mu))
    dep_matrix = ((1, 0, 0), (0, 1, 0), (0, 0, 1))

    compute = None
    inputs = None
    if a is not None:
        from fractions import Fraction

        a_arr = np.asarray(a)
        if a_arr.shape != (mu + 1, mu + 1):
            raise ValueError(f"a must have shape ({mu + 1}, {mu + 1})")

        def inputs(j: tuple[int, ...], i: int):  # noqa: ANN202
            k, row, col = j
            if i == 0:  # d1 boundary (k == 0): the original matrix enters
                return (Fraction(int(a_arr[row, col])), None, None)
            # u-stream (i == 1) and l-stream (i == 2) boundaries carry
            # nothing: streams originate inside the lattice.
            return (None, None, None)

        def compute(jpt: tuple[int, ...], operands):  # noqa: ANN202
            k, row, col = jpt
            a_val = operands[0][0]
            u_in = operands[1][1] if operands[1] is not None else None
            l_in = operands[2][2] if operands[2] is not None else None
            if row < k or col < k:
                # Already-finalized entries pass through untouched.
                return (a_val, None, None)
            if row == k and col == k:
                if a_val == 0:
                    raise ZeroDivisionError(
                        f"zero pivot at step {k}: supply a factorable matrix"
                    )
                return (a_val, a_val, None)  # pivot: u[k,k] starts downward
            if row == k:  # pivot row: u[k, col] starts downward
                return (a_val, a_val, None)
            if col == k:  # pivot column: compute multiplier l[row, k]
                l_val = a_val / u_in
                return (l_val, u_in, l_val)  # pass pivot down, l rightward
            # Interior update: a - l * u.
            return (a_val - l_in * u_in, u_in, l_in)

    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"lu_decomposition(mu={mu})",
        compute=compute,
        inputs=inputs,
    )


def bit_level_matrix_multiplication(mu: int, word_bits: int) -> UniformDependenceAlgorithm:
    """5-D bit-level matrix multiplication (the RAB workload of Section 1).

    Word-level matmul indices ``(j1, j2, j3)`` are expanded with two
    bit-level indices ``(j4, j5)`` ranging over operand bit positions
    (partial-product row/column in the carry-save array).  Each of the
    five data streams — the ``A`` bit, the ``B`` bit, the word-level
    accumulation, the carry and the partial sum — flows along its own
    unit direction, giving ``D = I_5``.  This matches the paper's
    framing ("many bit level algorithms are four or five dimensional")
    and exercises exactly the ``T in Z^{3x5}`` mapping shape of
    Theorem 4.7 and Proposition 8.1.
    """
    if word_bits < 1:
        raise ValueError("word_bits must be >= 1")
    index_set = ConstantBoundedIndexSet((mu, mu, mu, word_bits, word_bits))
    dep_matrix = tuple(
        tuple(1 if r == c else 0 for c in range(5)) for r in range(5)
    )
    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"bit_matmul(mu={mu}, w={word_bits})",
    )


def bit_level_convolution(taps: int, samples: int, word_bits: int) -> UniformDependenceAlgorithm:
    """4-D bit-level convolution (Section 3's motivating application).

    The 2-D word-level convolution is expanded with two bit indices
    (multiplicand bit and carry-save position); streams flow along unit
    directions plus the word-level ``x`` diagonal, giving four
    dependence vectors in four dimensions.
    """
    if word_bits < 1:
        raise ValueError("word_bits must be >= 1")
    index_set = ConstantBoundedIndexSet((samples, taps, word_bits, word_bits))
    dep_matrix = (
        (0, 1, 0, 0),
        (1, 1, 0, 0),
        (0, 0, 1, 0),
        (0, 0, 0, 1),
    )
    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"bit_convolution(taps={taps}, samples={samples}, w={word_bits})",
    )


def convolution_2d(
    rows: int, cols: int, kernel_rows: int, kernel_cols: int
) -> UniformDependenceAlgorithm:
    """2-D convolution as a 4-D uniform dependence algorithm.

    Index ``(i1, i2, k1, k2)`` performs
    ``y[i1, i2] += w[k1, k2] * x[i1 - k1, i2 - k2]``: the accumulation
    runs along the kernel indices, the weight is invariant along the
    image indices, and the image pixel is invariant along the two
    diagonal directions.  A standard word-level source for the 4-D
    mappings the paper targets.
    """
    index_set = ConstantBoundedIndexSet((rows, cols, kernel_rows, kernel_cols))
    # Columns: d1/d2 the y accumulation along the two kernel indices,
    # d3/d4 the x reuse diagonals (x[i1-k1, i2-k2] invariant along
    # (1,0,1,0) and (0,1,0,1)), d5 the w pipeline along i2.
    dep_matrix = (
        (0, 0, 1, 0, 0),
        (0, 0, 0, 1, 1),
        (1, 0, 1, 0, 0),
        (0, 1, 0, 1, 0),
    )
    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"convolution2d({rows}x{cols}, kernel {kernel_rows}x{kernel_cols})",
    )


def bit_level_lu_decomposition(mu: int, word_bits: int) -> UniformDependenceAlgorithm:
    """5-D bit-level LU decomposition (the second RAB workload named in
    Section 4: "the mappings of a bit level matrix multiplication
    algorithm and a bit level LU decomposition algorithm").

    Word-level LU indices ``(k, i, j)`` expanded with two bit indices;
    pivot-row, pivot-column and update streams flow along unit
    directions, the carry chain along the low bit index.
    """
    if word_bits < 1:
        raise ValueError("word_bits must be >= 1")
    index_set = ConstantBoundedIndexSet((mu, mu, mu, word_bits, word_bits))
    dep_matrix = (
        (1, 0, 0, 0, 0),
        (0, 1, 0, 0, 0),
        (0, 0, 1, 0, 0),
        (0, 0, 0, 1, 0),
        (0, 0, 0, 0, 1),
    )
    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"bit_lu(mu={mu}, w={word_bits})",
    )


def stencil_2d(mu: int, *, time_steps: int | None = None) -> UniformDependenceAlgorithm:
    """Iterated 5-point stencil (Jacobi/Gauss-Seidel class) as a 3-D
    uniform dependence algorithm.

    Grid indices ``(i1, i2)`` plus the sweep index ``t``; the value at
    ``(t, i1, i2)`` reads the previous sweep's north/south/east/west
    neighbors and itself — after uniformization, five dependence
    vectors all advancing one sweep:

        ``(1, 0, 0), (1, 1, 0), (1, -1, 0), (1, 0, 1), (1, 0, -1)``.

    A classic systolizable scientific-computing kernel (the
    "scientific computing" application class Definition 2.1's
    discussion names), and a useful stress case: its dependence cone is
    pointed only in the sweep direction, so valid schedules must weight
    ``t`` heavily — mirroring the transitive closure's constraint
    structure.
    """
    sweeps = time_steps if time_steps is not None else mu
    index_set = ConstantBoundedIndexSet((sweeps, mu, mu))
    dep_matrix = (
        (1, 1, 1, 1, 1),
        (0, 1, -1, 0, 0),
        (0, 0, 0, 1, -1),
    )
    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"stencil_2d(mu={mu}, sweeps={sweeps})",
    )


def example_2_1_algorithm(mu: int = 6) -> UniformDependenceAlgorithm:
    """The 4-D algorithm of Example 2.1: ``J = {0 <= j_i <= mu}^4``.

    The paper leaves ``D`` unspecified (only the index set matters for
    the conflict discussion); unit dependence vectors are supplied so
    schedules remain constrained the usual way.
    """
    index_set = ConstantBoundedIndexSet((mu, mu, mu, mu))
    dep_matrix = tuple(
        tuple(1 if r == c else 0 for c in range(4)) for r in range(4)
    )
    return UniformDependenceAlgorithm(
        index_set=index_set,
        dependence_matrix=dep_matrix,
        name=f"example_2_1(mu={mu})",
    )
