"""Statement alignment for multi-statement loop bodies ([14], [24]).

Definition 2.1 covers single-statement nests; the paper notes that
"nested loop programs with multiple statements can also use the
techniques of this paper together with the alignment method discussed
in [14] and [24]".  This module implements that preprocessing step:

Given statements ``S_1, ..., S_q`` in one nest, with inter-statement
dependences "value written by ``S_a`` at iteration ``j`` is read by
``S_b`` at iteration ``j + e``" (constant ``e``), choose integer
*alignment offsets* ``o_1, ..., o_q`` (one per statement) so that in
the aligned space — where statement ``S_a``'s instance at iteration
``j`` is relocated to ``j + o_a`` — every dependence distance

    ``e_ab + o_b - o_a``

is lexicographically positive (a legal uniform dependence) and the
total dependence length is minimized.  The aligned program is then a
single uniform dependence algorithm over the union space whose
dependence matrix collects all relocated distances, ready for the
mapping machinery of :mod:`repro.core`.

Offsets are found exactly by bounded search over the offset box with
statement 0 pinned at the origin; ties are broken toward the shortest
total dependence length (fewer buffers on the eventual array).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .algorithm import DependenceError, UniformDependenceAlgorithm
from .index_set import ConstantBoundedIndexSet

__all__ = ["StatementDependence", "AlignmentResult", "align_statements"]


@dataclass(frozen=True)
class StatementDependence:
    """``S_source`` at iteration ``j`` produces what ``S_target`` reads
    at iteration ``j + distance``."""

    source: int
    target: int
    distance: tuple[int, ...]


@dataclass(frozen=True)
class AlignmentResult:
    """Offsets plus the fused uniform dependence algorithm.

    Attributes
    ----------
    offsets:
        Per-statement relocation vectors (statement 0 pinned at 0).
    algorithm:
        The fused single-statement-equivalent ``(J, D)``; its
        dependence columns are the aligned distances, deduplicated.
    aligned_distances:
        The relocated distance of every input dependence, in input
        order (before deduplication).
    """

    offsets: tuple[tuple[int, ...], ...]
    algorithm: UniformDependenceAlgorithm
    aligned_distances: tuple[tuple[int, ...], ...]


def _lexicographically_positive(v: Sequence[int]) -> bool:
    for x in v:
        if x > 0:
            return True
        if x < 0:
            return False
    return False


def align_statements(
    num_statements: int,
    dimension: int,
    bounds: Sequence[int],
    dependences: Sequence[StatementDependence],
    *,
    offset_bound: int = 4,
) -> AlignmentResult:
    """Choose alignment offsets making all dependences uniform and legal.

    Parameters
    ----------
    num_statements:
        ``q`` statements, numbered from 0.
    dimension, bounds:
        The shared iteration space (Equation 2.5 bounds).
    dependences:
        Inter- and intra-statement dependences with constant distances.
    offset_bound:
        Search box for offsets (``|o_s,l| <= offset_bound``); alignment
        offsets beyond a few iterations indicate a mis-modeled program.

    Raises
    ------
    DependenceError
        When no offsets in the box make every aligned distance
        lexicographically positive (e.g. a zero-distance dependence
        cycle between statements).
    """
    if num_statements < 1:
        raise ValueError("need at least one statement")
    deps = list(dependences)
    for dep in deps:
        if not (0 <= dep.source < num_statements and 0 <= dep.target < num_statements):
            raise ValueError(f"statement index out of range in {dep}")
        if len(dep.distance) != dimension:
            raise ValueError(f"distance arity mismatch in {dep}")

    # Offsets are searched exactly over the box: for alignment, offsets
    # beyond a couple of iterations never pay off, so the box search is
    # both exact and fast at real sizes; legality is lexicographic
    # positivity of every aligned distance, the objective is total L1
    # dependence length (shorter dependences mean fewer buffers on the
    # eventual array).
    import itertools

    free = num_statements - 1
    best: tuple[int, tuple[tuple[int, ...], ...]] | None = None
    offset_range = range(-offset_bound, offset_bound + 1)

    def aligned(offsets: Sequence[Sequence[int]]) -> list[tuple[int, ...]]:
        return [
            tuple(
                e + ob - oa
                for e, oa, ob in zip(
                    dep.distance, offsets[dep.source], offsets[dep.target]
                )
            )
            for dep in deps
        ]

    if free == 0:
        candidates = [((0,) * dimension,)]
    else:
        candidates = (
            ((0,) * dimension,) + combo
            for combo in itertools.product(
                itertools.product(offset_range, repeat=dimension), repeat=free
            )
        )
    for offsets in candidates:
        dist = aligned(offsets)
        if not all(_lexicographically_positive(v) for v in dist):
            continue
        total = sum(sum(abs(x) for x in v) for v in dist)
        offset_norm = sum(sum(abs(x) for x in o) for o in offsets)
        key = (total, offset_norm, offsets)
        if best is None or key < best:
            best = key
    if best is None:
        raise DependenceError(
            "no alignment offsets in the search box make all dependences "
            "lexicographically positive"
        )

    offsets = best[2]
    distances = tuple(tuple(v) for v in aligned(offsets))
    unique: list[tuple[int, ...]] = []
    for v in distances:
        if v not in unique:
            unique.append(v)
    dep_matrix = tuple(
        tuple(col[r] for col in unique) for r in range(dimension)
    )
    algorithm = UniformDependenceAlgorithm(
        index_set=ConstantBoundedIndexSet(tuple(bounds)),
        dependence_matrix=dep_matrix,
        name=f"aligned({num_statements} statements)",
    )
    return AlignmentResult(
        offsets=offsets, algorithm=algorithm, aligned_distances=distances
    )
