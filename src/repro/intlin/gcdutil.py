"""Greatest-common-divisor utilities over the integers.

These are the scalar/vector number-theoretic primitives underneath the
Hermite/Smith normal form machinery (:mod:`repro.intlin.hermite`,
:mod:`repro.intlin.smith`) and the conflict-vector normalization of
Definition 2.3 in the paper (a conflict vector must have relatively
prime entries with a positive leading non-zero entry).

All functions operate on Python ``int`` (arbitrary precision); callers
holding NumPy arrays should convert via ``int(x)`` or use the helpers
in :mod:`repro.intlin.matrix` which do so internally.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = [
    "extended_gcd",
    "gcd_list",
    "lcm_list",
    "is_primitive",
    "primitive_part",
    "normalize_primitive",
    "bezout_row",
]


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``g = gcd(a, b) >= 0`` and ``a*x + b*y == g``.

    The classic iterative extended Euclidean algorithm.  Handles
    negative inputs and zeros; ``extended_gcd(0, 0) == (0, 0, 0)``.

    >>> extended_gcd(240, 46)
    (2, -9, 47)
    """
    old_r, r = int(a), int(b)
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def gcd_list(values: Iterable[int]) -> int:
    """Non-negative gcd of an iterable of integers (0 for an empty iterable).

    >>> gcd_list([12, -18, 30])
    6
    """
    g = 0
    for v in values:
        g = math.gcd(g, int(v))
        if g == 1:
            return 1
    return g


def lcm_list(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of integers (1 for empty).

    A single zero makes the result 0, consistent with ``math.lcm``.
    """
    result = 1
    for v in values:
        result = math.lcm(result, int(v))
    return result


def is_primitive(values: Sequence[int]) -> bool:
    """True when the entries are relatively prime (gcd == 1).

    An all-zero or empty vector is *not* primitive.
    """
    return gcd_list(values) == 1


def primitive_part(values: Sequence[int]) -> list[int]:
    """Divide a non-zero integer vector by the gcd of its entries.

    Raises :class:`ValueError` on the zero vector, which has no
    primitive part.
    """
    g = gcd_list(values)
    if g == 0:
        raise ValueError("the zero vector has no primitive part")
    return [int(v) // g for v in values]


def normalize_primitive(values: Sequence[int]) -> list[int]:
    """Primitive part with the *first non-zero entry positive*.

    This is the canonical representative the paper uses for conflict
    vectors (Definition 2.3 fixes gcd 1; Section 3 additionally fixes
    the sign so that ``gamma`` and ``-gamma`` are not counted twice).
    """
    prim = primitive_part(values)
    for v in prim:
        if v != 0:
            if v < 0:
                prim = [-x for x in prim]
            break
    return prim


def bezout_row(values: Sequence[int]) -> tuple[int, list[int]]:
    """Return ``(g, c)`` with ``sum(c[i] * values[i]) == g == gcd(values)``.

    Generalizes the two-argument Bezout identity to any number of
    entries by folding :func:`extended_gcd` left to right.  For the
    zero vector returns ``(0, [0, ...])``.
    """
    vals = [int(v) for v in values]
    if not vals:
        return 0, []
    coeffs = [0] * len(vals)
    g = vals[0]
    coeffs[0] = 1
    for i in range(1, len(vals)):
        g2, x, y = extended_gcd(g, vals[i])
        for j in range(i):
            coeffs[j] *= x
        coeffs[i] = y
        g = g2
    if g < 0:  # pragma: no cover - extended_gcd already normalizes
        g = -g
        coeffs = [-c for c in coeffs]
    return g, coeffs
