"""Column-style Hermite normal form with unimodular multiplier.

Theorem 4.1 of the paper: for a full-row-rank mapping matrix
``T in Z^{k x n}`` there is a unimodular ``U in Z^{n x n}`` such that

    ``T @ U = H = [L | 0]``

with ``L in Z^{k x k}`` nonsingular lower triangular.  The last ``n-k``
columns of ``U`` then generate *all* integral solutions of
``T @ gamma = 0`` (Theorem 4.2), i.e. all conflict vectors of the
mapping — this module is the engine behind the whole of Section 4.

The paper deliberately relaxes the textbook Hermite definition (no
positivity or row-maximality of the diagonal is needed for the
conflict-vector argument); :func:`hnf` honors that relaxed form by
default and produces the canonical form under ``canonical=True``.

Both the multiplier ``U`` and its exact inverse ``V = U^{-1}`` are
tracked simultaneously through elementary column operations, so no
matrix inversion is ever performed and all results are exact.

Results are immutable :class:`IntMat` values, so the memoized layer
(:func:`hnf_cached`) hands out the *same* result object on every hit —
no defensive copies, and the cache is keyed on the matrix itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

from .intmat import IntMat, IntVec, as_intmat

__all__ = ["HermiteResult", "hermite_normal_form", "hnf", "hnf_cached", "kernel_basis"]


@dataclass(frozen=True)
class HermiteResult:
    """Result of a column-style Hermite normal form computation.

    Attributes
    ----------
    h:
        The normal form ``H = T @ U`` of shape ``(k, n)``; the leading
        ``(k, k)`` block is lower triangular and nonsingular, columns
        ``k..n-1`` are zero.
    u:
        Unimodular right multiplier of shape ``(n, n)``.
    v:
        Exact inverse ``U^{-1}`` (also unimodular), shape ``(n, n)``.
    rank:
        The (full) row rank ``k`` of the input.
    canonical:
        Whether the canonical reduction (positive diagonal, reduced
        off-diagonals) was applied.

    All three matrices are immutable :class:`IntMat` values (raw nested
    sequences passed to the constructor are coerced), so a result can be
    shared, hashed, and cached without copying.
    """

    h: IntMat
    u: IntMat
    v: IntMat
    rank: int
    canonical: bool = False

    def __post_init__(self) -> None:
        for name in ("h", "u", "v"):
            value = getattr(self, name)
            if not isinstance(value, IntMat):
                object.__setattr__(self, name, as_intmat(value))

    @property
    def lower_block(self) -> IntMat:
        """The nonsingular lower-triangular ``L`` block (first ``k`` columns)."""
        return self.h.submatrix(range(self.h.nrows), range(self.rank))

    def kernel_columns(self) -> list[IntVec]:
        """Columns ``u_{k+1}, ..., u_n`` of ``U``: a basis of ``ker T`` over ``Z``.

        By Theorem 4.2(3) every conflict vector of ``T`` is an integral,
        relatively-prime combination of these columns.
        """
        return [self.u.column(j) for j in range(self.rank, self.u.ncols)]


def _ident_rows(n: int) -> list[list[int]]:
    """A mutable identity working matrix for the elimination loops."""
    return [[1 if i == j else 0 for j in range(n)] for i in range(n)]


class _ColumnOps:
    """Apply elementary column operations to T and U while maintaining V = U^-1.

    A column operation is post-multiplication by an elementary matrix
    ``E``; the inverse operation pre-multiplies ``V`` by ``E^{-1}`` so
    the invariant ``U @ V == I`` holds at every step.
    """

    def __init__(self, t: list[list[int]], n: int) -> None:
        self.t = t
        self.u = _ident_rows(n)
        self.v = _ident_rows(n)
        self.n = n

    def swap(self, i: int, j: int) -> None:
        if i == j:
            return
        for row in self.t:
            row[i], row[j] = row[j], row[i]
        for row in self.u:
            row[i], row[j] = row[j], row[i]
        self.v[i], self.v[j] = self.v[j], self.v[i]

    def negate(self, i: int) -> None:
        for row in self.t:
            row[i] = -row[i]
        for row in self.u:
            row[i] = -row[i]
        self.v[i] = [-x for x in self.v[i]]

    def add_multiple(self, dst: int, src: int, q: int) -> None:
        """col_dst += q * col_src  (dst != src)."""
        if q == 0:
            return
        for row in self.t:
            row[dst] += q * row[src]
        for row in self.u:
            row[dst] += q * row[src]
        vs, vd = self.v[src], self.v[dst]
        self.v[src] = [a - q * b for a, b in zip(vs, vd)]


def hnf(t: Any, *, canonical: bool = False) -> HermiteResult:
    """Compute ``T @ U = H = [L | 0]`` with unimodular ``U`` (Theorem 4.1).

    Parameters
    ----------
    t:
        Integer matrix of shape ``(k, n)`` with full row rank ``k <= n``.
    canonical:
        When true, additionally normalize to the canonical column HNF:
        positive diagonal and ``0 <= H[i][j] < H[i][i]`` for ``j < i``.

    Raises
    ------
    ValueError
        If the input does not have full row rank (condition 4 of
        Definition 2.2 — a rank-deficient ``T`` would map into a lower
        dimensional array than intended).
    """
    tm = as_intmat(t).rows()
    k = len(tm)
    n = len(tm[0]) if tm else 0
    if k > n:
        raise ValueError(f"expected k <= n, got shape ({k}, {n})")
    ops = _ColumnOps(tm, n)

    for r in range(k):
        c = r
        # Gcd-reduce row r across columns c..n-1 until a single non-zero
        # survives in position c.
        while True:
            nonzero = [j for j in range(c, n) if tm[r][j] != 0]
            if not nonzero:
                raise ValueError(
                    f"matrix does not have full row rank (row {r} dependent); "
                    "Definition 2.2 condition 4 requires rank(T) == k"
                )
            pivot = min(nonzero, key=lambda j: abs(tm[r][j]))
            ops.swap(c, pivot)
            if tm[r][c] < 0:
                ops.negate(c)
            done = True
            for j in range(c + 1, n):
                if tm[r][j] != 0:
                    q = tm[r][j] // tm[r][c]
                    ops.add_multiple(j, c, -q)
                    if tm[r][j] != 0:
                        done = False
            if done:
                break

    if canonical:
        for i in range(k):
            if tm[i][i] < 0:  # pragma: no cover - pivots are kept positive above
                ops.negate(i)
            for j in range(i):
                q = tm[i][j] // tm[i][i]
                ops.add_multiple(j, i, -q)

    return HermiteResult(h=tm, u=ops.u, v=ops.v, rank=k, canonical=canonical)


# The paper's own Theorem-4.1 terminology, for discoverability.
hermite_normal_form = hnf


@lru_cache(maxsize=4096)
def _hnf_memo(t: IntMat, canonical: bool) -> HermiteResult:
    return hnf(t, canonical=canonical)


def hnf_cached(t: Any, *, canonical: bool = False) -> HermiteResult:
    """Memoized :func:`hnf` keyed on the matrix value itself.

    The conflict checkers recompute the Hermite form of the same mapping
    matrix whenever a winner is re-verified, re-analyzed, or rebuilt
    from the persistent DSE cache; this in-process layer makes those
    repeats O(hash) instead of O(elimination).  Because
    :class:`HermiteResult` is immutable, every hit returns the *same*
    shared result object — the identity ``hnf_cached(t) == hnf(t)`` is
    property-tested.
    """
    return _hnf_memo(as_intmat(t), canonical)


def kernel_basis(t: Any) -> list[IntVec]:
    """Primitive integral basis of ``{x in Z^n : T x = 0}`` via HNF.

    Returns the last ``n - k`` columns of the unimodular multiplier
    ``U`` (Theorem 4.2); because ``U`` is unimodular the basis is
    automatically *saturated*: every integral kernel vector is an
    integral combination of the returned columns, which is exactly the
    property Example 4.1 shows a naive basis lacks.
    """
    res = hnf(t)
    return res.kernel_columns()


def verify_hermite(t: Any, result: HermiteResult) -> bool:
    """Exact self-check: ``T @ U == H``, ``U @ V == I``, ``H = [L | 0]``.

    Used by the test-suite and by :mod:`repro.core.conflict` in
    paranoid mode; returns ``True`` when all invariants hold.
    """
    tm = as_intmat(t)
    n = result.u.nrows
    k = result.rank
    if tm.mul(result.u) != result.h:
        return False
    if result.u.mul(result.v) != IntMat.identity(n):
        return False
    for i, row in enumerate(result.h):
        if any(row[j] != 0 for j in range(i + 1, n)):
            return False
        if i < k and row[i] == 0:
            return False
    return True


# Re-export for type checkers; dataclass field import keeps linters content.
_ = field
