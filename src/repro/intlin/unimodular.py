"""Unimodular matrices: predicates and seeded random generation.

A matrix is unimodular iff it is integral with determinant ±1 (paper,
footnote to Theorem 4.2).  Random unimodular matrices are the workhorse
of the property-test suite: they let us fabricate mapping matrices with
*known* Hermite structure and known conflict lattices, then check that
the theorem implementations recover them.
"""

from __future__ import annotations

import random
from typing import Any

from .intmat import IntMat, as_intmat

__all__ = ["is_unimodular", "random_unimodular", "random_full_rank"]


def is_unimodular(a: Any) -> bool:
    """True iff ``a`` is square, integral and ``|det a| == 1``."""
    try:
        m = as_intmat(a)
    except (TypeError, ValueError):
        return False
    if not m.nrows or not m.is_square():
        return False
    return m.det() in (1, -1)


def random_unimodular(
    n: int,
    *,
    rng: random.Random | None = None,
    steps: int | None = None,
    magnitude: int = 3,
) -> IntMat:
    """A random ``n x n`` unimodular matrix built from elementary operations.

    Starts from the identity and applies ``steps`` random shear/swap/
    negate operations with shear factors in ``[-magnitude, magnitude]``.
    Deterministic when given a seeded ``rng``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = rng or random.Random(0)
    steps = steps if steps is not None else 4 * n
    m = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
    for _ in range(steps):
        op = rng.randrange(3)
        i = rng.randrange(n)
        j = rng.randrange(n)
        if op == 0 and i != j:  # shear: row_i += f * row_j
            f = rng.randint(-magnitude, magnitude)
            m[i] = [a + f * b for a, b in zip(m[i], m[j])]
        elif op == 1 and i != j:  # swap rows
            m[i], m[j] = m[j], m[i]
        elif op == 2:  # negate row
            m[i] = [-a for a in m[i]]
    return IntMat(m)


def random_full_rank(
    k: int,
    n: int,
    *,
    rng: random.Random | None = None,
    magnitude: int = 5,
    max_tries: int = 100,
) -> IntMat:
    """A random integral ``k x n`` matrix with full row rank ``k``.

    Rejection sampling over small uniform entries; raises
    :class:`RuntimeError` if no full-rank sample is found (practically
    impossible for ``magnitude >= 2``).
    """
    if k > n:
        raise ValueError("need k <= n")
    rng = rng or random.Random(0)
    for _ in range(max_tries):
        m = IntMat(
            [[rng.randint(-magnitude, magnitude) for _ in range(n)] for _ in range(k)]
        )
        if m.rank() == k:
            return m
    raise RuntimeError("failed to sample a full-rank matrix")
