"""Exact integer matrix operations.

Everything here runs over arbitrary-precision Python integers stored in
``object``-dtype NumPy arrays or plain ``int64`` arrays; we never go
through floating point, so determinants, ranks and adjugates are exact
no matter how large the intermediate entries grow.  This is the
foundation the paper's conflict-vector computations rest on: Equation
3.2 expresses the unique conflict vector of a co-rank-1 mapping matrix
through the adjugate ``B^*`` and determinant of a submatrix, and
Theorems 4.5-4.8 repeatedly take determinants of sub-blocks of the
unimodular multiplier ``U``.

Implementation notes
--------------------
* Determinants use the Bareiss fraction-free algorithm: ``O(n^3)``
  arithmetic operations with all intermediate divisions exact.
* ``as_int_matrix`` normalizes arbitrary input (lists, tuples, NumPy
  arrays of any integer dtype) into a list-of-lists of Python ints, the
  internal representation shared across :mod:`repro.intlin`.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

__all__ = [
    "as_int_matrix",
    "as_int_vector",
    "freeze_matrix",
    "to_array",
    "identity",
    "matmul",
    "matvec",
    "transpose",
    "det_bareiss",
    "rank",
    "minor",
    "cofactor",
    "adjugate",
    "inverse_unimodular",
    "is_integer_matrix",
]

IntMatrix = list[list[int]]
IntVector = list[int]


def is_integer_matrix(a: Any) -> bool:
    """True when ``a`` converts to a rectangular matrix of exact integers."""
    try:
        as_int_matrix(a)
    except (TypeError, ValueError):
        return False
    return True


def as_int_matrix(a: Any) -> IntMatrix:
    """Normalize matrix-like input to a rectangular list of Python ints.

    Accepts nested sequences and NumPy arrays.  Floating inputs are
    accepted only when every entry is integral (e.g. ``2.0``); anything
    else raises :class:`ValueError`.
    """
    if isinstance(a, (list, tuple)) and len(a) == 0:
        return []  # the empty (0 x 0) matrix
    arr = np.asarray(a, dtype=object)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={arr.ndim}")
    rows, cols = arr.shape
    out: IntMatrix = []
    for i in range(rows):
        row: IntVector = []
        for j in range(cols):
            row.append(_as_int(arr[i, j]))
        out.append(row)
    return out


FrozenIntMatrix = tuple[tuple[int, ...], ...]


def freeze_matrix(a: Any) -> FrozenIntMatrix:
    """Normalize matrix-like input into a hashable tuple-of-tuples form.

    The canonical key type for the memoized normal-form kernels
    (:func:`repro.intlin.hermite.hnf_cached`,
    :func:`repro.intlin.smith.smith_normal_form_cached`): two inputs
    that :func:`as_int_matrix` would normalize identically freeze to the
    same key, whatever mix of lists, tuples or NumPy arrays they arrive
    as.
    """
    return tuple(tuple(row) for row in as_int_matrix(a))


def as_int_vector(v: Any) -> IntVector:
    """Normalize vector-like input to a list of Python ints."""
    arr = np.asarray(v, dtype=object)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got ndim={arr.ndim}")
    return [_as_int(x) for x in arr]


def _as_int(x: Any) -> int:
    if isinstance(x, (bool, np.bool_)):
        raise ValueError("boolean entries are not valid integer matrix entries")
    if isinstance(x, (int, np.integer)):
        return int(x)
    if isinstance(x, (float, np.floating)):
        if float(x).is_integer():
            return int(x)
        raise ValueError(f"non-integral entry {x!r}")
    raise TypeError(f"entry {x!r} of type {type(x).__name__} is not an integer")


def to_array(m: Sequence[Sequence[int]]) -> np.ndarray:
    """Convert an internal int matrix to an ``int64`` NumPy array.

    Raises :class:`OverflowError` if any entry exceeds int64 range; use
    the list-of-lists form for arbitrary precision work.
    """
    return np.array(m, dtype=np.int64)


def identity(n: int) -> IntMatrix:
    """The ``n x n`` identity matrix as lists of Python ints."""
    return [[1 if i == j else 0 for j in range(n)] for i in range(n)]


def matmul(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> IntMatrix:
    """Exact product of two integer matrices."""
    a = as_int_matrix(a)
    b = as_int_matrix(b)
    ra, ca = len(a), len(a[0]) if a else 0
    rb, cb = len(b), len(b[0]) if b else 0
    if ca != rb:
        raise ValueError(f"shape mismatch: ({ra},{ca}) @ ({rb},{cb})")
    bt = list(zip(*b)) if b else []
    return [[sum(x * y for x, y in zip(row, col)) for col in bt] for row in a]


def matvec(a: Sequence[Sequence[int]], v: Sequence[int]) -> IntVector:
    """Exact matrix-vector product."""
    a = as_int_matrix(a)
    v = as_int_vector(v)
    if a and len(a[0]) != len(v):
        raise ValueError(f"shape mismatch: ({len(a)},{len(a[0])}) @ ({len(v)},)")
    return [sum(x * y for x, y in zip(row, v)) for row in a]


def transpose(a: Sequence[Sequence[int]]) -> IntMatrix:
    """Transpose of an integer matrix."""
    a = as_int_matrix(a)
    return [list(col) for col in zip(*a)] if a else []


def det_bareiss(a: Sequence[Sequence[int]]) -> int:
    """Exact determinant via the Bareiss fraction-free algorithm.

    All divisions performed are exact over the integers, so the result
    is correct for arbitrarily large entries.
    """
    m = [row[:] for row in as_int_matrix(a)]
    n = len(m)
    if n == 0:
        return 1
    if any(len(row) != n for row in m):
        raise ValueError("determinant requires a square matrix")
    sign = 1
    prev = 1
    for k in range(n - 1):
        if m[k][k] == 0:
            pivot_row = next((i for i in range(k + 1, n) if m[i][k] != 0), None)
            if pivot_row is None:
                return 0
            m[k], m[pivot_row] = m[pivot_row], m[k]
            sign = -sign
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) // prev
            m[i][k] = 0
        prev = m[k][k]
    return sign * m[n - 1][n - 1]


def rank(a: Sequence[Sequence[int]]) -> int:
    """Exact rank of an integer matrix (fraction-free Gaussian elimination)."""
    m = [row[:] for row in as_int_matrix(a)]
    if not m or not m[0]:
        return 0
    rows, cols = len(m), len(m[0])
    r = 0
    for c in range(cols):
        pivot = next((i for i in range(r, rows) if m[i][c] != 0), None)
        if pivot is None:
            continue
        m[r], m[pivot] = m[pivot], m[r]
        for i in range(r + 1, rows):
            if m[i][c] != 0:
                f1, f2 = m[r][c], m[i][c]
                m[i] = [f1 * m[i][j] - f2 * m[r][j] for j in range(cols)]
        r += 1
        if r == rows:
            break
    return r


def minor(a: Sequence[Sequence[int]], i: int, j: int) -> int:
    """Determinant of ``a`` with row ``i`` and column ``j`` removed."""
    m = as_int_matrix(a)
    sub = [row[:j] + row[j + 1 :] for ri, row in enumerate(m) if ri != i]
    return det_bareiss(sub)


def cofactor(a: Sequence[Sequence[int]], i: int, j: int) -> int:
    """Signed cofactor ``(-1)^(i+j) * minor(a, i, j)``.

    These are the ``B_ij`` of the paper's Equation 3.3.
    """
    sign = -1 if (i + j) % 2 else 1
    return sign * minor(a, i, j)


def adjugate(a: Sequence[Sequence[int]]) -> IntMatrix:
    """Adjugate (classical adjoint) matrix: ``adj(A)[j][i] = cofactor(A, i, j)``.

    Satisfies ``A @ adj(A) == det(A) * I`` exactly.  Used to realize the
    paper's Equation 3.2 conflict vector ``gamma = lambda * [-B^* b; det B]``.
    """
    m = as_int_matrix(a)
    n = len(m)
    if any(len(row) != n for row in m):
        raise ValueError("adjugate requires a square matrix")
    if n == 0:
        return []
    if n == 1:
        return [[1]]
    return [[cofactor(m, j, i) for j in range(n)] for i in range(n)]


def inverse_unimodular(a: Sequence[Sequence[int]]) -> IntMatrix:
    """Exact inverse of a unimodular integer matrix (``|det| == 1``).

    Raises :class:`ValueError` when the determinant is not ±1 — the
    inverse would not be integral.
    """
    m = as_int_matrix(a)
    d = det_bareiss(m)
    if d not in (1, -1):
        raise ValueError(f"matrix is not unimodular (det={d})")
    adj = adjugate(m)
    if d == 1:
        return adj
    return [[-x for x in row] for row in adj]
