"""Exact integer matrix operations — functional facade over :class:`IntMat`.

Historically this module carried its own list-of-lists implementations;
the arithmetic now lives in :mod:`repro.intlin.intmat` on the immutable
:class:`IntMat` value type (with its checked int64 fast path), and the
functions here are thin wrappers kept for the established functional
call style.  They accept anything matrix-like and return :class:`IntMat`
/ :class:`IntVec` values, which compare equal to the lists the old
versions returned — call sites keep working unchanged while gaining
hashability and the vectorized backend.

This is the foundation the paper's conflict-vector computations rest
on: Equation 3.2 expresses the unique conflict vector of a co-rank-1
mapping matrix through the adjugate ``B^*`` and determinant of a
submatrix, and Theorems 4.5-4.8 repeatedly take determinants of
sub-blocks of the unimodular multiplier ``U``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from .intmat import IntMat, IntVec, as_intmat, as_intvec

__all__ = [
    "as_int_matrix",
    "as_int_vector",
    "to_array",
    "identity",
    "matmul",
    "matvec",
    "transpose",
    "det_bareiss",
    "rank",
    "minor",
    "cofactor",
    "adjugate",
    "inverse_unimodular",
    "is_integer_matrix",
]

IntMatrix = list[list[int]]
IntVector = list[int]


def is_integer_matrix(a: Any) -> bool:
    """True when ``a`` converts to a rectangular matrix of exact integers."""
    try:
        as_intmat(a)
    except (TypeError, ValueError):
        return False
    return True


def as_int_matrix(a: Any) -> IntMatrix:
    """Normalize matrix-like input to a rectangular list of Python ints.

    Accepts nested sequences and NumPy arrays.  Floating inputs are
    accepted only when every entry is integral (e.g. ``2.0``); anything
    else raises :class:`ValueError`.  New code should prefer
    :func:`repro.intlin.as_intmat`, which returns the immutable
    :class:`IntMat` without the mutable-copy cost.
    """
    return as_intmat(a).rows()


def as_int_vector(v: Any) -> IntVector:
    """Normalize vector-like input to a list of Python ints."""
    return list(as_intvec(v))


def to_array(m: Sequence[Sequence[int]]) -> np.ndarray:
    """Checked conversion of an integer matrix to an ``int64`` NumPy array.

    Raises :class:`OverflowError` if any entry exceeds int64 range —
    never wraps silently.  Use :class:`IntMat` directly for arbitrary
    precision work.
    """
    return as_intmat(m).to_int64()


def identity(n: int) -> IntMat:
    """The ``n x n`` identity matrix."""
    return IntMat.identity(n)


def matmul(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> IntMat:
    """Exact product of two integer matrices."""
    return as_intmat(a).mul(b)


def matvec(a: Sequence[Sequence[int]], v: Sequence[int]) -> IntVec:
    """Exact matrix-vector product."""
    return as_intmat(a).matvec(v)


def transpose(a: Sequence[Sequence[int]]) -> IntMat:
    """Transpose of an integer matrix."""
    return as_intmat(a).transpose()


def det_bareiss(a: Sequence[Sequence[int]]) -> int:
    """Exact determinant via the Bareiss fraction-free algorithm.

    All divisions performed are exact over the integers, so the result
    is correct for arbitrarily large entries; within the certified
    int64 envelope the elimination runs vectorized.
    """
    return as_intmat(a).det()


def rank(a: Sequence[Sequence[int]]) -> int:
    """Exact rank of an integer matrix (fraction-free Gaussian elimination)."""
    return as_intmat(a).rank()


def minor(a: Sequence[Sequence[int]], i: int, j: int) -> int:
    """Determinant of ``a`` with row ``i`` and column ``j`` removed."""
    return as_intmat(a).minor(i, j)


def cofactor(a: Sequence[Sequence[int]], i: int, j: int) -> int:
    """Signed cofactor ``(-1)^(i+j) * minor(a, i, j)``.

    These are the ``B_ij`` of the paper's Equation 3.3.
    """
    return as_intmat(a).cofactor(i, j)


def adjugate(a: Sequence[Sequence[int]]) -> IntMat:
    """Adjugate (classical adjoint) matrix: ``adj(A)[j][i] = cofactor(A, i, j)``.

    Satisfies ``A @ adj(A) == det(A) * I`` exactly.  Used to realize the
    paper's Equation 3.2 conflict vector ``gamma = lambda * [-B^* b; det B]``.
    """
    return as_intmat(a).adjugate()


def inverse_unimodular(a: Sequence[Sequence[int]]) -> IntMat:
    """Exact inverse of a unimodular integer matrix (``|det| == 1``).

    Raises :class:`ValueError` when the determinant is not ±1 — the
    inverse would not be integral.
    """
    m = as_intmat(a)
    d = m.det()
    if d not in (1, -1):
        raise ValueError(f"matrix is not unimodular (det={d})")
    adj = m.adjugate()
    if d == 1:
        return adj
    return IntMat([[-x for x in row] for row in adj])
