"""Linear diophantine systems: integral solutions of ``A x = b``.

The general solution is ``x = x0 + N z`` where ``x0`` is any particular
integral solution and the columns of ``N`` are a saturated basis of the
integral kernel of ``A``.  We derive both from the Smith normal form:
with ``P A Q = D``, the system becomes ``D y = P b`` for ``y = Q^{-1} x``,
which is solvable over ``Z`` iff each ``(P b)_i`` is divisible by the
invariant factor ``d_i`` (and zero past the rank).

Used by :mod:`repro.systolic.interconnect` to solve ``S D = P K``
column by column for the interconnection usage matrix ``K`` of
Definition 2.2 (condition 2), and generally useful for constructing
index points realizing a given conflict (Theorem 2.2's constructive
direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .intmat import IntVec, as_intmat, as_intvec
from .smith import smith_normal_form_cached

__all__ = ["DiophantineSolution", "solve_diophantine"]


@dataclass(frozen=True)
class DiophantineSolution:
    """All integral solutions of ``A x = b``: ``x = particular + kernel @ z``.

    Attributes
    ----------
    particular:
        One integral solution ``x0`` (an :class:`IntVec`).
    kernel:
        Saturated kernel basis as a tuple of column vectors; empty when
        the solution is unique.
    """

    particular: IntVec
    kernel: tuple[IntVec, ...]

    def sample(self, coefficients: Any) -> IntVec:
        """The solution ``x0 + sum(coefficients[i] * kernel[i])``."""
        coeffs = as_intvec(coefficients)
        if len(coeffs) != len(self.kernel):
            raise ValueError(
                f"expected {len(self.kernel)} coefficients, got {len(coeffs)}"
            )
        x = list(self.particular)
        for c, col in zip(coeffs, self.kernel):
            for i, entry in enumerate(col):
                x[i] += c * entry
        return IntVec(x)


def solve_diophantine(a: Any, b: Any) -> DiophantineSolution | None:
    """Solve ``A x = b`` over the integers; ``None`` when unsolvable.

    >>> sol = solve_diophantine([[2, 3]], [1])
    >>> 2 * sol.particular[0] + 3 * sol.particular[1]
    1
    """
    am = as_intmat(a)
    bv = as_intvec(b)
    m, n = am.shape
    if len(bv) != m:
        raise ValueError(f"shape mismatch: A is ({m},{n}), b has {len(bv)} entries")

    # Memoized: interconnection planning solves the same left-hand side
    # for every dependence column of a design, and the design-space
    # searches revisit structurally identical systems across candidates.
    snf = smith_normal_form_cached(am)
    pb = snf.p.matvec(bv)
    r = snf.rank

    y = [0] * n
    for i in range(min(m, n)):
        d_i = snf.d[i][i]
        if d_i != 0:
            if pb[i] % d_i != 0:
                return None
            y[i] = pb[i] // d_i
    for i in range(min(m, n), m):
        if pb[i] != 0:
            return None
    for i in range(r, min(m, n)):
        if pb[i] != 0:
            return None

    particular = snf.q.matvec(y)
    kernel_cols = tuple(snf.q.column(j) for j in range(r, n))
    return DiophantineSolution(particular=particular, kernel=kernel_cols)
