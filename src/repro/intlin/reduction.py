"""Exact LLL lattice basis reduction.

The conflict lattice of a mapping (kernel of ``T``) decides
conflict-freedom through its shortest vectors relative to the index-set
box: a mapping is conflict-free iff no non-zero lattice vector fits in
the box (Theorem 2.2 + 4.2).  The Hermite basis can be badly skewed;
LLL reduction produces a basis of short, nearly-orthogonal vectors,
which

* tightens the coefficient bounds used by the kernel-box enumeration,
* surfaces the *conflict margin* of a design (how much the problem
  size could grow before the shortest kernel vector falls inside the
  box — see :func:`repro.core.conflict_margin`), and
* gives a certified-exact shortest-vector search (LLL bound +
  Fincke-Pohst style enumeration is overkill at these ranks; the
  reduced basis plus a small coefficient sweep is exact and fast).

Implementation: the classical delta-LLL with Gram-Schmidt over
``fractions.Fraction`` — no floating point anywhere, so reduction
never produces an invalid basis.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from .matrix import as_int_matrix

__all__ = ["lll_reduce", "shortest_vector"]


def _gram_schmidt(
    basis: list[list[int]],
) -> tuple[list[list[Fraction]], list[list[Fraction]]]:
    """Exact Gram-Schmidt: returns (orthogonal vectors, mu coefficients)."""
    k = len(basis)
    ortho: list[list[Fraction]] = []
    mu: list[list[Fraction]] = [[Fraction(0)] * k for _ in range(k)]
    for i in range(k):
        v = [Fraction(x) for x in basis[i]]
        for j in range(i):
            denom = sum(x * x for x in ortho[j])
            if denom == 0:  # pragma: no cover - dependent basis guard
                mu[i][j] = Fraction(0)
                continue
            mu[i][j] = (
                sum(Fraction(a) * b for a, b in zip(basis[i], ortho[j])) / denom
            )
            v = [x - mu[i][j] * y for x, y in zip(v, ortho[j])]
        ortho.append(v)
    return ortho, mu


def lll_reduce(basis_vectors: Any, *, delta: Fraction = Fraction(3, 4)) -> list[list[int]]:
    """LLL-reduce a list of independent integer vectors (rows).

    Returns a new basis of the same lattice whose vectors are short and
    nearly orthogonal (Lovász parameter ``delta``, default 3/4).  All
    arithmetic is exact.

    >>> lll_reduce([[1, 1, 1], [-1, 0, 2], [3, 5, 6]])
    [[0, 1, 0], [1, 0, 1], [-2, 0, 1]]
    """
    b = [row[:] for row in as_int_matrix(basis_vectors)]
    k = len(b)
    if k == 0:
        return []
    ortho, mu = _gram_schmidt(b)

    def norm2(v: list[Fraction]) -> Fraction:
        return sum(x * x for x in v)

    i = 1
    while i < k:
        # Size reduction against all previous vectors.
        for j in range(i - 1, -1, -1):
            q = mu[i][j]
            r = int(q + Fraction(1, 2)) if q >= 0 else -int(-q + Fraction(1, 2))
            if r != 0:
                b[i] = [x - r * y for x, y in zip(b[i], b[j])]
                ortho, mu = _gram_schmidt(b)
        # Lovász condition.
        if norm2(ortho[i]) >= (delta - mu[i][i - 1] ** 2) * norm2(ortho[i - 1]):
            i += 1
        else:
            b[i], b[i - 1] = b[i - 1], b[i]
            ortho, mu = _gram_schmidt(b)
            i = max(i - 1, 1)
    return b


def shortest_vector(basis_vectors: Any, *, norm: str = "l2") -> list[int]:
    """An exactly-shortest non-zero lattice vector (small ranks).

    LLL-reduces, then sweeps integer coefficient combinations within a
    radius derived from the reduced basis: for rank ``r`` the shortest
    vector's coefficients w.r.t. an LLL basis are bounded by
    ``2^((r-1)/2)``-ish factors; at the co-ranks arising here
    (``r <= 4``) a sweep of ``|z_i| <= 2`` past the reduction is
    provably sufficient and cheap, and we verify by construction that
    the returned vector is no longer than every swept candidate.

    ``norm`` selects ``"l2"`` (Euclidean, default), ``"l1"`` or
    ``"linf"``.
    """
    import itertools

    reduced = lll_reduce(basis_vectors)
    if not reduced:
        raise ValueError("empty basis has no shortest vector")
    r = len(reduced)
    n = len(reduced[0])

    def measure(v: list[int]) -> tuple:
        if norm == "l2":
            return (sum(x * x for x in v),)
        if norm == "l1":
            return (sum(abs(x) for x in v),)
        if norm == "linf":
            return (max(abs(x) for x in v),)
        raise ValueError(f"unknown norm {norm!r}")

    best: tuple | None = None
    best_vec: list[int] | None = None
    bound = 2 if r <= 3 else 3
    for z in itertools.product(range(-bound, bound + 1), repeat=r):
        if not any(z):
            continue
        v = [sum(z[c] * reduced[c][i] for c in range(r)) for i in range(n)]
        m = measure(v)
        key = m + (tuple(v),)
        if best is None or key < best:
            best = key
            best_vec = v
    assert best_vec is not None
    return best_vec
