"""Integer lattices: the geometric object behind conflict analysis.

The set of all integral solutions of ``T x = 0`` is a *lattice* (a
discrete subgroup of ``Z^n``); conflict-freedom of a mapping is the
statement that this lattice meets the box ``{|x_i| <= mu_i}`` only at
the origin (Theorem 2.2 + Theorem 4.2).  This module gives the lattice
a first-class API — membership, determinant, canonical basis, box
enumeration — on top of the Hermite/Smith machinery, both for direct
use and as an independent implementation path the conflict deciders
are cross-checked against.

A lattice is represented by a *basis matrix* whose columns generate it.
Two bases generate the same lattice iff they differ by a unimodular
right factor; the canonical (column-HNF) basis makes equality
decidable syntactically.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from .diophantine import solve_diophantine
from .hermite import hnf
from .intmat import IntMat, as_intmat

__all__ = ["Lattice"]


@dataclass(frozen=True)
class Lattice:
    """A full-column-rank integer lattice ``L = { B z : z in Z^r }``.

    Parameters
    ----------
    basis:
        Generator matrix with one *column* per generator (``n x r``,
        rank ``r``); normalized to an immutable :class:`IntMat`.  Use
        :meth:`from_generators` for a list-of-vectors constructor that
        also discards dependent generators.
    """

    basis: IntMat

    def __post_init__(self) -> None:
        b = as_intmat(self.basis)
        if not b.nrows or not b.ncols:
            raise ValueError("lattice needs at least one generator")
        if b.rank() != b.ncols:
            raise ValueError(
                "basis columns must be linearly independent; use "
                "Lattice.from_generators to reduce a spanning set"
            )
        object.__setattr__(self, "basis", b)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_generators(cls, generators: Sequence[Sequence[int]]) -> "Lattice":
        """Build from column vectors, dropping dependent ones greedily."""
        cols: list[list[int]] = []
        for g in generators:
            candidate = cols + [list(map(int, g))]
            mat = [[c[i] for c in candidate] for i in range(len(candidate[0]))]
            if as_intmat(mat).rank() == len(candidate):
                cols.append(list(map(int, g)))
        if not cols:
            raise ValueError("no independent generators supplied")
        n = len(cols[0])
        return cls(basis=tuple(tuple(c[i] for c in cols) for i in range(n)))

    @classmethod
    def kernel_of(cls, t: Any) -> "Lattice":
        """The integral kernel lattice of a full-row-rank matrix ``T``.

        This is exactly the conflict lattice of a mapping matrix
        (Theorem 4.2): saturated by construction.
        """
        res = hnf(t)
        cols = res.kernel_columns()
        if not cols:
            raise ValueError("the kernel of a square full-rank matrix is trivial")
        n = len(cols[0])
        return cls(basis=tuple(tuple(c[i] for c in cols) for i in range(n)))

    # -- shape ------------------------------------------------------------

    @property
    def ambient_dimension(self) -> int:
        return self.basis.nrows

    @property
    def lattice_rank(self) -> int:
        return self.basis.ncols

    # -- equality -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lattice):
            return NotImplemented
        if self.ambient_dimension != other.ambient_dimension:
            return False
        if self.lattice_rank != other.lattice_rank:
            return False
        return self.contains_lattice(other) and other.contains_lattice(self)

    def __hash__(self) -> int:
        return hash((self.ambient_dimension, self.lattice_rank))

    # -- membership ---------------------------------------------------------

    def contains(self, point: Sequence[int]) -> bool:
        """Integral membership: ``point = B z`` for some ``z in Z^r``."""
        p = [int(x) for x in point]
        if len(p) != self.ambient_dimension:
            raise ValueError("point dimension mismatch")
        return solve_diophantine(self.basis, p) is not None

    def contains_lattice(self, other: "Lattice") -> bool:
        """Whether every generator of ``other`` lies in this lattice."""
        return all(
            self.contains([other.basis[i][c] for i in range(other.ambient_dimension)])
            for c in range(other.lattice_rank)
        )

    # -- invariants -----------------------------------------------------------

    def determinant(self) -> int:
        """The lattice determinant ``sqrt(det(B^T B))`` (covolume).

        For full-rank sublattices of ``Z^n`` this is ``|det B|``; in
        general the Gram determinant is a perfect square of the
        covolume only when the lattice is full-dimensional, so the Gram
        value itself is returned for non-full-rank lattices (a standard
        invariant: equal lattices share it).
        """
        if self.lattice_rank == self.ambient_dimension:
            return abs(self.basis.det())
        return self.basis.T.mul(self.basis).det()

    def index_in(self, superlattice: "Lattice") -> int:
        """The group index ``[superlattice : self]`` for same-rank pairs.

        Ratio of Gram determinants' square roots; exact because both
        are integers with the sub-determinant divisible structure.
        """
        if self.lattice_rank != superlattice.lattice_rank:
            raise ValueError("index needs equal ranks")
        if not superlattice.contains_lattice(self):
            raise ValueError("not a sublattice")
        d_sub = self.determinant()
        d_super = superlattice.determinant()
        if self.lattice_rank == self.ambient_dimension:
            if d_sub % d_super != 0:  # pragma: no cover - contradiction guard
                raise ArithmeticError("determinants inconsistent with containment")
            return d_sub // d_super
        # Gram determinants scale with the square of the index.
        ratio = Fraction(d_sub, d_super)
        if ratio.denominator != 1:  # pragma: no cover - contradiction guard
            raise ArithmeticError("Gram ratio inconsistent with containment")
        root = math.isqrt(ratio.numerator)
        if root * root != ratio.numerator:  # pragma: no cover
            raise ArithmeticError("Gram ratio is not a perfect square")
        return root

    # -- box geometry -----------------------------------------------------------

    def _coefficient_bounds(self, box: Sequence[int]) -> list[int]:
        """Exact rational bounds on coefficients of lattice points in a box."""
        n = self.ambient_dimension
        r = self.lattice_rank
        g = [[Fraction(self.basis[i][c]) for c in range(r)] for i in range(n)]
        gram = [
            [sum(g[i][a] * g[i][b] for i in range(n)) for b in range(r)]
            for a in range(r)
        ]
        aug = [
            row[:] + [Fraction(int(i == j)) for j in range(r)]
            for i, row in enumerate(gram)
        ]
        for col in range(r):
            pivot = next(i for i in range(col, r) if aug[i][col] != 0)
            aug[col], aug[pivot] = aug[pivot], aug[col]
            inv = 1 / aug[col][col]
            aug[col] = [x * inv for x in aug[col]]
            for i in range(r):
                if i != col and aug[i][col] != 0:
                    f = aug[i][col]
                    aug[i] = [x - f * y for x, y in zip(aug[i], aug[col])]
        gram_inv = [row[r:] for row in aug]
        bounds = []
        for a in range(r):
            pinv_row = [
                sum(gram_inv[a][b] * g[i][b] for b in range(r)) for i in range(n)
            ]
            weight = sum(abs(w) * int(m) for w, m in zip(pinv_row, box))
            bounds.append(int(weight))
        return bounds

    def points_in_box(self, box: Sequence[int]) -> Iterator[tuple[int, ...]]:
        """All lattice points with ``|x_i| <= box_i`` (the origin included).

        The engine behind the exact conflict decider: enumerate
        coefficient vectors inside exact pseudo-inverse bounds, filter
        by the box.
        """
        if len(box) != self.ambient_dimension:
            raise ValueError("box dimension mismatch")
        box = [int(b) for b in box]
        bounds = self._coefficient_bounds(box)
        n = self.ambient_dimension
        r = self.lattice_rank
        for z in itertools.product(*(range(-b, b + 1) for b in bounds)):
            point = tuple(
                sum(z[c] * self.basis[i][c] for c in range(r)) for i in range(n)
            )
            if all(abs(x) <= m for x, m in zip(point, box)):
                yield point

    def meets_box_nontrivially(self, box: Sequence[int]) -> bool:
        """True when some non-zero lattice point lies in the box.

        ``Lattice.kernel_of(T).meets_box_nontrivially(mu)`` is exactly
        "``T`` is NOT conflict-free" (Theorem 2.2 + 4.2).
        """
        for p in self.points_in_box(box):
            if any(p):
                return True
        return False

    def shortest_nonzero_in_box(
        self, box: Sequence[int]
    ) -> tuple[int, ...] | None:
        """A minimal-L1 non-zero lattice point inside the box, if any."""
        best: tuple[int, tuple[int, ...]] | None = None
        for p in self.points_in_box(box):
            if not any(p):
                continue
            weight = sum(abs(x) for x in p)
            if best is None or (weight, p) < best:
                best = (weight, p)
        return best[1] if best else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Lattice(rank={self.lattice_rank}, "
            f"ambient={self.ambient_dimension})"
        )
