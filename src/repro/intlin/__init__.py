"""Exact integer linear algebra substrate.

Arbitrary-precision, fraction-free linear algebra over the integers:
gcd machinery, Bareiss determinants, adjugates, Hermite and Smith
normal forms with unimodular multipliers, saturated kernel bases and a
linear diophantine solver.  These are the tools the paper's theory
(Sections 3-4) is phrased in; everything downstream in
:mod:`repro.core` is built on this package.

All matrix-valued results are immutable, hashable :class:`IntMat`
values (see :mod:`repro.intlin.intmat`) carrying a checked int64 fast
path with automatic promotion to arbitrary-precision arithmetic; the
memoized normal-form kernels key directly on the matrix.
"""

import warnings

from .batch import (
    batch_dependence_mask,
    batch_matmul,
    batch_nonzero_mask,
    batch_point_images,
    batch_rows,
)
from .diophantine import DiophantineSolution, solve_diophantine
from .gcdutil import (
    bezout_row,
    extended_gcd,
    gcd_list,
    is_primitive,
    lcm_list,
    normalize_primitive,
    primitive_part,
)
from .hermite import (
    HermiteResult,
    hermite_normal_form,
    hnf,
    hnf_cached,
    kernel_basis,
    verify_hermite,
)
from .intmat import INT64_MAX, INT64_MIN, IntMat, IntVec, as_intmat, as_intvec
from .lattice import Lattice
from .reduction import lll_reduce, shortest_vector
from .matrix import (
    adjugate,
    as_int_matrix,
    as_int_vector,
    cofactor,
    det_bareiss,
    identity,
    inverse_unimodular,
    is_integer_matrix,
    matmul,
    matvec,
    minor,
    rank,
    to_array,
    transpose,
)
from .smith import SmithResult, smith_normal_form, smith_normal_form_cached, verify_smith
from .unimodular import is_unimodular, random_full_rank, random_unimodular

__all__ = [
    "INT64_MAX",
    "INT64_MIN",
    "DiophantineSolution",
    "HermiteResult",
    "IntMat",
    "IntVec",
    "Lattice",
    "SmithResult",
    "adjugate",
    "as_int_matrix",
    "as_int_vector",
    "as_intmat",
    "as_intvec",
    "batch_dependence_mask",
    "batch_matmul",
    "batch_nonzero_mask",
    "batch_point_images",
    "batch_rows",
    "bezout_row",
    "cofactor",
    "det_bareiss",
    "extended_gcd",
    "freeze_matrix",
    "gcd_list",
    "hermite_normal_form",
    "hnf",
    "hnf_cached",
    "identity",
    "inverse_unimodular",
    "is_integer_matrix",
    "is_primitive",
    "is_unimodular",
    "kernel_basis",
    "lcm_list",
    "lll_reduce",
    "matmul",
    "matvec",
    "minor",
    "normalize_primitive",
    "primitive_part",
    "random_full_rank",
    "random_unimodular",
    "rank",
    "shortest_vector",
    "smith_normal_form",
    "smith_normal_form_cached",
    "solve_diophantine",
    "to_array",
    "transpose",
    "verify_hermite",
    "verify_smith",
]


def _deprecated_freeze_matrix(a):
    """Former tuple-of-tuples memoization adapter (PR 1), now redundant."""
    return as_intmat(a)


def __getattr__(name):
    # Deprecated pre-IntMat memoization surface: freeze_matrix produced a
    # hashable tuple-of-tuples key, FrozenIntMatrix was its type alias.
    # IntMat is itself hashable (and hash-compatible with the frozen
    # form), so both now resolve to the IntMat machinery.
    if name == "freeze_matrix":
        warnings.warn(
            "repro.intlin.freeze_matrix is deprecated; IntMat is hashable — "
            "use repro.intlin.as_intmat instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _deprecated_freeze_matrix
    if name == "FrozenIntMatrix":
        warnings.warn(
            "repro.intlin.FrozenIntMatrix is deprecated; "
            "use repro.intlin.IntMat instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return IntMat
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
