"""Exact integer linear algebra substrate.

Arbitrary-precision, fraction-free linear algebra over the integers:
gcd machinery, Bareiss determinants, adjugates, Hermite and Smith
normal forms with unimodular multipliers, saturated kernel bases and a
linear diophantine solver.  These are the tools the paper's theory
(Sections 3-4) is phrased in; everything downstream in
:mod:`repro.core` is built on this package.
"""

from .diophantine import DiophantineSolution, solve_diophantine
from .gcdutil import (
    bezout_row,
    extended_gcd,
    gcd_list,
    is_primitive,
    lcm_list,
    normalize_primitive,
    primitive_part,
)
from .hermite import (
    HermiteResult,
    hermite_normal_form,
    hnf,
    hnf_cached,
    kernel_basis,
    verify_hermite,
)
from .lattice import Lattice
from .reduction import lll_reduce, shortest_vector
from .matrix import (
    adjugate,
    as_int_matrix,
    as_int_vector,
    cofactor,
    det_bareiss,
    freeze_matrix,
    identity,
    inverse_unimodular,
    is_integer_matrix,
    matmul,
    matvec,
    minor,
    rank,
    to_array,
    transpose,
)
from .smith import SmithResult, smith_normal_form, smith_normal_form_cached, verify_smith
from .unimodular import is_unimodular, random_full_rank, random_unimodular

__all__ = [
    "DiophantineSolution",
    "HermiteResult",
    "Lattice",
    "SmithResult",
    "adjugate",
    "as_int_matrix",
    "as_int_vector",
    "bezout_row",
    "cofactor",
    "det_bareiss",
    "extended_gcd",
    "freeze_matrix",
    "gcd_list",
    "hermite_normal_form",
    "hnf",
    "hnf_cached",
    "identity",
    "inverse_unimodular",
    "is_integer_matrix",
    "is_primitive",
    "is_unimodular",
    "kernel_basis",
    "lcm_list",
    "lll_reduce",
    "matmul",
    "matvec",
    "minor",
    "normalize_primitive",
    "primitive_part",
    "random_full_rank",
    "random_unimodular",
    "rank",
    "shortest_vector",
    "smith_normal_form",
    "smith_normal_form_cached",
    "solve_diophantine",
    "to_array",
    "transpose",
    "verify_hermite",
    "verify_smith",
]
