"""Smith normal form over the integers.

For any integer matrix ``A in Z^{m x n}`` there are unimodular
``P in Z^{m x m}`` and ``Q in Z^{n x n}`` with

    ``P @ A @ Q = diag(s_1, ..., s_r, 0, ..., 0)``,   ``s_i | s_{i+1}``.

The paper itself only needs the Hermite form (Theorem 4.1), but the
Smith form gives us two things the reproduction uses:

* a general linear diophantine solver (:mod:`repro.intlin.diophantine`)
  used when solving ``S D = P K`` for the interconnection matrix ``K``
  (Definition 2.2, condition 2);
* an independent cross-check of the kernel lattice computed from the
  Hermite form — the last ``n - r`` columns of ``Q`` are a second,
  differently-derived saturated kernel basis, and the property tests
  assert both bases generate the same lattice.

Results are immutable :class:`IntMat` values; the memoized layer
(:func:`smith_normal_form_cached`) shares the same result object across
hits with no defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any

from .intmat import IntMat, as_intmat

__all__ = ["SmithResult", "smith_normal_form", "smith_normal_form_cached"]


@dataclass(frozen=True)
class SmithResult:
    """``P @ A @ Q == D`` with ``D`` diagonal and divisibility down the diagonal.

    Attributes
    ----------
    d:
        The diagonal normal form, same shape as the input.
    p:
        Unimodular row multiplier (``m x m``).
    q:
        Unimodular column multiplier (``n x n``).
    invariants:
        The non-zero diagonal entries ``s_1 | s_2 | ... | s_r``.

    All three matrices are immutable :class:`IntMat` values (raw nested
    sequences passed to the constructor are coerced).
    """

    d: IntMat
    p: IntMat
    q: IntMat
    invariants: tuple[int, ...]

    def __post_init__(self) -> None:
        for name in ("d", "p", "q"):
            value = getattr(self, name)
            if not isinstance(value, IntMat):
                object.__setattr__(self, name, as_intmat(value))

    @property
    def rank(self) -> int:
        return len(self.invariants)


def _ident_rows(n: int) -> list[list[int]]:
    """A mutable identity working matrix for the elimination loops."""
    return [[1 if i == j else 0 for j in range(n)] for i in range(n)]


def smith_normal_form(a: Any) -> SmithResult:
    """Compute the Smith normal form with both unimodular multipliers.

    Standard elimination: repeatedly move a minimal-magnitude pivot to
    the corner, clear its row and column with exact quotients, restart
    when a remainder appears (gcd descent guarantees termination), then
    enforce the divisibility chain.
    """
    d = as_intmat(a).rows()
    m = len(d)
    n = len(d[0]) if d else 0
    p = _ident_rows(m)
    q = _ident_rows(n)

    def row_swap(i: int, j: int) -> None:
        d[i], d[j] = d[j], d[i]
        p[i], p[j] = p[j], p[i]

    def col_swap(i: int, j: int) -> None:
        for row in d:
            row[i], row[j] = row[j], row[i]
        for row in q:
            row[i], row[j] = row[j], row[i]

    def row_add(dst: int, src: int, f: int) -> None:
        d[dst] = [x + f * y for x, y in zip(d[dst], d[src])]
        p[dst] = [x + f * y for x, y in zip(p[dst], p[src])]

    def col_add(dst: int, src: int, f: int) -> None:
        for row in d:
            row[dst] += f * row[src]
        for row in q:
            row[dst] += f * row[src]

    def row_negate(i: int) -> None:
        d[i] = [-x for x in d[i]]
        p[i] = [-x for x in p[i]]

    t = 0
    while t < min(m, n):
        # Find a pivot of minimal magnitude in the trailing block.
        pivot = None
        best = None
        for i in range(t, m):
            for j in range(t, n):
                if d[i][j] != 0 and (best is None or abs(d[i][j]) < best):
                    best = abs(d[i][j])
                    pivot = (i, j)
        if pivot is None:
            break
        row_swap(t, pivot[0])
        col_swap(t, pivot[1])
        if d[t][t] < 0:
            row_negate(t)

        dirty = False
        for i in range(t + 1, m):
            if d[i][t] != 0:
                f = d[i][t] // d[t][t]
                row_add(i, t, -f)
                if d[i][t] != 0:
                    dirty = True
        for j in range(t + 1, n):
            if d[t][j] != 0:
                f = d[t][j] // d[t][t]
                col_add(j, t, -f)
                if d[t][j] != 0:
                    dirty = True
        if dirty:
            continue  # smaller remainders appeared; redo pivot selection

        # Enforce divisibility: if some trailing entry is not divisible
        # by the pivot, fold its row in and restart this corner.
        violator = None
        for i in range(t + 1, m):
            for j in range(t + 1, n):
                if d[i][j] % d[t][t] != 0:
                    violator = i
                    break
            if violator is not None:
                break
        if violator is not None:
            row_add(t, violator, 1)
            continue
        t += 1

    invariants = tuple(d[i][i] for i in range(min(m, n)) if d[i][i] != 0)
    return SmithResult(d=d, p=p, q=q, invariants=invariants)


@lru_cache(maxsize=4096)
def _smith_memo(a: IntMat) -> SmithResult:
    return smith_normal_form(a)


def smith_normal_form_cached(a: Any) -> SmithResult:
    """Memoized :func:`smith_normal_form` keyed on the matrix value itself.

    The diophantine solver recomputes the Smith form of the same
    dependence system for every design sharing an interconnection
    structure; because :class:`SmithResult` is immutable every hit
    returns the *same* shared result object, skipping both the
    elimination and any copying.
    """
    return _smith_memo(as_intmat(a))


def verify_smith(a: Any, result: SmithResult) -> bool:
    """Exact self-check: ``P A Q == D``, diagonal, divisibility chain."""
    am = as_intmat(a)
    if result.p.mul(am).mul(result.q) != result.d:
        return False
    m, n = result.d.shape
    for i in range(m):
        for j in range(n):
            if i != j and result.d[i][j] != 0:
                return False
    inv = result.invariants
    for i in range(len(inv) - 1):
        if inv[i] == 0 or inv[i + 1] % inv[i] != 0:
            return False
    return True
