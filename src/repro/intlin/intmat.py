"""Immutable, hashable exact integer matrices and vectors.

This module is the single value-type kernel every exact-linear-algebra
result in the reproduction rests on.  The paper's machinery — Equation
3.2 adjugates, the Theorem 4.1 Hermite multipliers, the Theorem 4.x
conflict-freedom conditions, Procedure 5.1's candidate scans — all
reduce to exact integer matrix arithmetic, and before this module the
repo juggled three representations (``list[list[int]]``, object-dtype
NumPy, tuple-of-tuples freeze adapters) with conversions on every hot
call.  :class:`IntMat` replaces all of them.

Two backends, one exact semantics
---------------------------------
``IntMat`` carries an optional vectorized **int64 fast path**: when
every entry fits in a signed 64-bit word, a NumPy ``int64`` array is
materialized lazily, and operations whose *intermediate* magnitudes can
be bounded a-priori (matrix products via ``max|a| * max|b| * inner``,
Bareiss determinants and adjugates via a Hadamard bound) run
vectorized.  Whenever a bound cannot be certified the operation falls
back — automatically and silently — to arbitrary-precision Python-int
arithmetic, so results are *bit-identical* on both backends.  A matrix
constructed with ``exact=True`` never touches the fast path, which is
what the property-test suite uses to pin the equivalence.

Value semantics
---------------
``IntMat`` subclasses ``tuple`` (of :class:`IntVec` rows, themselves
``tuple`` subclasses), so instances are

* **immutable** — safe to share across threads and memoization caches
  without defensive copies;
* **hashable** — ``hash(m)`` equals the hash of the plain
  tuple-of-tuples with the same entries, so an ``IntMat`` and its
  frozen-row form are interchangeable as dict keys (this is what lets
  the normal-form ``lru_cache`` layers key on the matrix itself);
* **liberally comparable** — ``m == [[1, 2], [3, 4]]`` normalizes the
  right-hand side, so call sites written against list-of-lists keep
  working unchanged;
* **picklable** — the cached NumPy array and digests are dropped on
  serialization and rebuilt lazily, so DSE worker processes receive
  compact payloads.

The :meth:`IntMat.digest` SHA-256 fingerprint depends only on the shape
and entries (never on the backend) and is stable across processes and
releases; the persistent DSE cache uses it as the canonical key
component for matrix-valued inputs.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

__all__ = [
    "INT64_MAX",
    "INT64_MIN",
    "IntMat",
    "IntVec",
    "as_intmat",
    "as_intvec",
]

INT64_MAX = 2**63 - 1
INT64_MIN = -(2**63)

_SCALARS = (int, float, np.integer, np.floating, bool, np.bool_)


def _as_int(x: Any) -> int:
    """Normalize one entry to an exact Python int (rejecting bools/floats)."""
    if isinstance(x, (bool, np.bool_)):
        raise ValueError("boolean entries are not valid integer matrix entries")
    if isinstance(x, (int, np.integer)):
        return int(x)
    if isinstance(x, (float, np.floating)):
        if float(x).is_integer():
            return int(x)
        raise ValueError(f"non-integral entry {x!r}")
    raise TypeError(f"entry {x!r} of type {type(x).__name__} is not an integer")


class IntVec(tuple):
    """An immutable exact integer vector.

    A ``tuple`` subclass whose entries are guaranteed to be Python
    ints: hashing and ordering are inherited from ``tuple`` (so an
    ``IntVec`` is interchangeable with the equal plain tuple as a dict
    key), while equality additionally accepts lists and 1-D NumPy
    arrays by normalizing them first.
    """

    __slots__ = ()

    def __new__(cls, data: Iterable[Any] = ()) -> "IntVec":
        if isinstance(data, IntVec):
            return data
        if isinstance(data, np.ndarray):
            if data.ndim != 1:
                raise ValueError(f"expected a 1-D vector, got ndim={data.ndim}")
            data = data.tolist()
        if isinstance(data, _SCALARS):
            raise TypeError("IntVec expects an iterable of integers, not a scalar")
        entries = []
        for x in data:
            if isinstance(x, (list, tuple, np.ndarray)):
                raise ValueError("expected a 1-D vector, got nested sequences")
            entries.append(_as_int(x))
        return tuple.__new__(cls, entries)

    # -- equality ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, tuple):
            return tuple.__eq__(self, other)
        if isinstance(other, (list, np.ndarray)):
            try:
                return tuple.__eq__(self, IntVec(other))
            except (TypeError, ValueError):
                return NotImplemented
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = tuple.__hash__

    def __getitem__(self, index):
        result = tuple.__getitem__(self, index)
        if isinstance(index, slice):
            return tuple.__new__(IntVec, result)
        return result

    def __reduce__(self):
        return (IntVec, (tuple(self),))

    # -- arithmetic -------------------------------------------------------

    def dot(self, other: Iterable[Any]) -> int:
        """Exact inner product with another vector."""
        other = as_intvec(other)
        if len(other) != len(self):
            raise ValueError(f"length mismatch: {len(self)} vs {len(other)}")
        return sum(a * b for a, b in zip(self, other))

    def max_abs(self) -> int:
        """Largest entry magnitude (0 for the empty vector)."""
        return max((abs(x) for x in self), default=0)

    def to_int64(self) -> np.ndarray:
        """Checked conversion to an ``int64`` NumPy array.

        Raises :class:`OverflowError` when an entry does not fit — never
        wraps silently.
        """
        if self.max_abs() > INT64_MAX:
            raise OverflowError(
                "vector entries exceed int64 range; stay on the exact backend"
            )
        return np.array(self, dtype=np.int64)


def as_intvec(v: Any) -> IntVec:
    """Normalize vector-like input (list, tuple, 1-D array) to :class:`IntVec`."""
    return IntVec(v)


class IntMat(tuple):
    """An immutable, hashable exact integer matrix.

    A ``tuple`` of :class:`IntVec` rows.  See the module docstring for
    the backend model; the short version:

    * ``IntMat(data)`` — normalizes nested sequences / 2-D NumPy arrays
      of any integer dtype; the int64 fast path is used whenever it can
      be certified overflow-free.
    * ``IntMat(data, exact=True)`` — pins the arbitrary-precision
      backend (used by the property tests and available to paranoid
      callers); results are identical either way.

    Construction from an existing ``IntMat`` with the same backend flag
    returns the instance itself (immutability makes sharing safe).
    """

    def __new__(cls, data: Any = (), *, exact: bool = False) -> "IntMat":
        if isinstance(data, IntMat) and data._exact == bool(exact):
            return data
        rows = _normalize_rows(data)
        return cls._trusted(rows, exact=exact)

    @classmethod
    def _trusted(
        cls, rows: tuple[IntVec, ...], *, exact: bool = False
    ) -> "IntMat":
        """Internal constructor for pre-validated rows (no re-checking)."""
        obj = tuple.__new__(cls, rows)
        obj._exact = bool(exact)
        obj._ncols = len(rows[0]) if rows else 0
        obj._cache: dict[str, Any] = {}
        return obj

    # -- shape ------------------------------------------------------------

    @property
    def nrows(self) -> int:
        return len(self)

    @property
    def ncols(self) -> int:
        return self._ncols

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), self._ncols)

    def is_square(self) -> bool:
        return len(self) == self._ncols

    # -- backends ---------------------------------------------------------

    @property
    def exact_only(self) -> bool:
        """True when the int64 fast path is disabled for this instance."""
        return self._exact

    @property
    def arr(self) -> np.ndarray | None:
        """The int64 fast-path array, or ``None`` on the exact backend.

        Lazily materialized; the returned array is marked read-only —
        callers needing a mutable copy should use :meth:`to_int64`.
        """
        if "arr" not in self._cache:
            if self._exact or self.max_abs() > INT64_MAX:
                self._cache["arr"] = None
            else:
                a = np.array(
                    [list(r) for r in self], dtype=np.int64
                ).reshape(self.shape)
                a.setflags(write=False)
                self._cache["arr"] = a
        return self._cache["arr"]

    @property
    def is_fast(self) -> bool:
        """True when the int64 backend is active for this instance."""
        return self.arr is not None

    def to_exact(self) -> "IntMat":
        """The same matrix pinned to the arbitrary-precision backend."""
        return IntMat(self, exact=True)

    def to_int64(self) -> np.ndarray:
        """Checked conversion to a fresh writable ``int64`` array.

        Raises :class:`OverflowError` when an entry does not fit in a
        signed 64-bit word — never wraps silently (unlike
        ``np.array(rows, dtype=np.int64)`` on object input).
        """
        if self.max_abs() > INT64_MAX:
            raise OverflowError(
                "matrix entries exceed int64 range; use the exact backend"
            )
        return np.array([list(r) for r in self], dtype=np.int64).reshape(self.shape)

    # -- conversions ------------------------------------------------------

    def rows(self) -> list[list[int]]:
        """Fresh mutable list-of-lists copy (the elimination working form)."""
        return [list(r) for r in self]

    def tolist(self) -> list[list[int]]:
        return self.rows()

    def column(self, j: int) -> IntVec:
        """Column ``j`` as an :class:`IntVec`."""
        return tuple.__new__(IntVec, tuple(row[j] for row in self))

    def columns(self) -> list[IntVec]:
        """All columns, left to right."""
        return [self.column(j) for j in range(self._ncols)]

    # -- value semantics --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, tuple):
            return tuple.__eq__(self, other)
        if isinstance(other, (list, np.ndarray)):
            try:
                return tuple.__eq__(self, IntMat(other))
            except (TypeError, ValueError):
                return NotImplemented
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = tuple.__hash__

    def __reduce__(self):
        return (_rebuild_intmat, (tuple(tuple(r) for r in self), self._exact))

    def digest(self) -> str:
        """SHA-256 fingerprint of the matrix value.

        Depends only on shape and entries (backend-independent) and is
        stable across processes — the canonical key component for the
        persistent DSE cache.
        """
        if "digest" not in self._cache:
            blob = "{}x{}:".format(*self.shape) + ";".join(
                ",".join(str(x) for x in row) for row in self
            )
            self._cache["digest"] = hashlib.sha256(
                blob.encode("ascii")
            ).hexdigest()
        return self._cache["digest"]

    # -- entry statistics -------------------------------------------------

    def max_abs(self) -> int:
        """Largest entry magnitude (0 for the empty matrix)."""
        if "max_abs" not in self._cache:
            self._cache["max_abs"] = max(
                (abs(x) for row in self for x in row), default=0
            )
        return self._cache["max_abs"]

    def _hadamard_sq(self) -> int:
        """``prod_i max(1, sum_j a_ij^2)`` — the squared Hadamard bound.

        Every minor of the matrix is bounded in magnitude by the square
        root of this value (rows with square-sum < 1 are zero rows whose
        minors vanish, hence the ``max(1, .)`` clamp keeps the product
        an upper bound for submatrices too).
        """
        if "hadamard_sq" not in self._cache:
            h = 1
            for row in self:
                h *= max(1, sum(x * x for x in row))
            self._cache["hadamard_sq"] = h
        return self._cache["hadamard_sq"]

    def _bareiss_fits_int64(self) -> bool:
        """Whether every Bareiss intermediate provably fits in int64.

        The elimination forms ``a*b - c*d`` with ``a..d`` minors of the
        input, each bounded by the Hadamard bound ``H``; the guard
        ``2 * H^2 <= INT64_MAX`` therefore certifies the whole run.
        """
        return self.arr is not None and 2 * self._hadamard_sq() <= INT64_MAX

    # -- products ---------------------------------------------------------

    def __matmul__(self, other: Any) -> "IntMat | IntVec":
        if isinstance(other, IntVec):
            return self.matvec(other)
        if isinstance(other, (list, tuple, np.ndarray)) and not isinstance(
            other, IntMat
        ):
            probe = other[0] if len(other) else None
            if probe is None or isinstance(probe, _SCALARS):
                return self.matvec(other)
        return self.mul(other)

    def mul(self, other: Any) -> "IntMat":
        """Exact matrix product, vectorized when provably overflow-free."""
        other = as_intmat(other)
        if self._ncols != other.nrows:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}"
            )
        exact = self._exact or other._exact
        if (
            not exact
            and self.arr is not None
            and other.arr is not None
            and self.max_abs() * other.max_abs() * max(1, self._ncols)
            <= INT64_MAX
        ):
            return IntMat(self.arr @ other.arr)
        cols = list(zip(*other)) if other.nrows else []
        rows = tuple(
            tuple.__new__(
                IntVec,
                tuple(
                    sum(a * b for a, b in zip(row, col)) for col in cols
                ),
            )
            for row in self
        )
        return IntMat._trusted(rows, exact=exact)

    def matvec(self, v: Any) -> IntVec:
        """Exact matrix-vector product, vectorized when overflow-free."""
        v = as_intvec(v)
        if self.nrows and self._ncols != len(v):
            raise ValueError(
                f"shape mismatch: {self.shape} @ ({len(v)},)"
            )
        if (
            not self._exact
            and self.arr is not None
            and v.max_abs() <= INT64_MAX
            and self.max_abs() * v.max_abs() * max(1, self._ncols) <= INT64_MAX
        ):
            return tuple.__new__(
                IntVec, tuple(int(x) for x in self.arr @ v.to_int64())
            )
        return tuple.__new__(
            IntVec, tuple(sum(a * b for a, b in zip(row, v)) for row in self)
        )

    def image_of_points(self, points: np.ndarray) -> np.ndarray:
        """``points @ T^T`` for an ``(N, n)`` point array, overflow-checked.

        The conflict-image fast path: returns an int64 array when the
        product provably fits (``max|point| * max|T| * n`` within
        int64), and an exact object-dtype array otherwise — it never
        silently wraps, unlike a bare ``np.array(rows, dtype=np.int64)``
        matmul.
        """
        pts = np.asarray(points)
        if pts.ndim != 2 or pts.shape[1] != self._ncols:
            raise ValueError(f"expected points of shape (N, {self._ncols})")
        if pts.dtype != object and self.arr is not None:
            pts_max = int(np.abs(pts).max(initial=0))
            if pts_max * self.max_abs() * max(1, self._ncols) <= INT64_MAX:
                return pts.astype(np.int64, copy=False) @ self.arr.T
        obj_t = np.array(self.rows(), dtype=object).reshape(self.shape)
        return pts.astype(object) @ obj_t.T

    # -- structure --------------------------------------------------------

    def transpose(self) -> "IntMat":
        rows = tuple(
            tuple.__new__(IntVec, col) for col in zip(*self)
        )
        return IntMat._trusted(rows, exact=self._exact)

    @property
    def T(self) -> "IntMat":
        return self.transpose()

    def submatrix(
        self, row_indices: Sequence[int], col_indices: Sequence[int]
    ) -> "IntMat":
        """The submatrix on the given rows and columns (order preserved)."""
        rows = tuple(
            tuple.__new__(
                IntVec, tuple(self[i][j] for j in col_indices)
            )
            for i in row_indices
        )
        return IntMat._trusted(rows, exact=self._exact)

    def drop(self, i: int, j: int) -> "IntMat":
        """The matrix with row ``i`` and column ``j`` removed."""
        return self.submatrix(
            [r for r in range(len(self)) if r != i],
            [c for c in range(self._ncols) if c != j],
        )

    @classmethod
    def identity(cls, n: int) -> "IntMat":
        rows = tuple(
            tuple.__new__(IntVec, tuple(1 if i == j else 0 for j in range(n)))
            for i in range(n)
        )
        return cls._trusted(rows)

    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "IntMat":
        row = tuple.__new__(IntVec, (0,) * ncols)
        return cls._trusted(tuple(row for _ in range(nrows)))

    # -- exact invariants -------------------------------------------------

    def det(self) -> int:
        """Exact determinant (Bareiss), vectorized int64 when certified.

        The fast path runs the fraction-free elimination on the int64
        array with NumPy row updates, guarded by the Hadamard bound
        (:meth:`_bareiss_fits_int64`); otherwise the identical algorithm
        runs over arbitrary-precision Python ints.  Results are
        bit-identical (property-tested).
        """
        if "det" not in self._cache:
            if not self.is_square():
                raise ValueError("determinant requires a square matrix")
            if self._bareiss_fits_int64():
                self._cache["det"] = _det_bareiss_i64(self.to_int64())
            else:
                self._cache["det"] = _det_bareiss_exact(self.rows())
        return self._cache["det"]

    def minor(self, i: int, j: int) -> int:
        """Determinant of the matrix with row ``i`` and column ``j`` removed."""
        return self.drop(i, j).det()

    def cofactor(self, i: int, j: int) -> int:
        """Signed cofactor ``(-1)^(i+j) * minor(i, j)`` (Equation 3.3)."""
        sign = -1 if (i + j) % 2 else 1
        return sign * self.minor(i, j)

    def adjugate(self) -> "IntMat":
        """Adjugate matrix with ``A @ adj(A) == det(A) * I`` exactly.

        Minors run on the int64 fast path when the parent matrix's
        Hadamard bound certifies them (every minor of a submatrix is
        bounded by the full bound), else over Python ints.
        """
        if not self.is_square():
            raise ValueError("adjugate requires a square matrix")
        n = len(self)
        if n == 0:
            return IntMat._trusted((), exact=self._exact)
        if n == 1:
            return IntMat._trusted(
                (tuple.__new__(IntVec, (1,)),), exact=self._exact
            )
        fast = self._bareiss_fits_int64()
        base = self.to_int64() if fast else None
        rows = []
        for i in range(n):
            row = []
            for j in range(n):
                sign = -1 if (i + j) % 2 else 1
                if fast:
                    sub = np.delete(np.delete(base, j, axis=0), i, axis=1)
                    row.append(sign * _det_bareiss_i64(sub))
                else:
                    sub = [
                        [self[r][c] for c in range(n) if c != i]
                        for r in range(n)
                        if r != j
                    ]
                    row.append(sign * _det_bareiss_exact(sub))
            rows.append(tuple.__new__(IntVec, tuple(row)))
        return IntMat._trusted(tuple(rows), exact=self._exact)

    def rank(self) -> int:
        """Exact integer rank (fraction-free Gaussian elimination)."""
        if "rank" not in self._cache:
            self._cache["rank"] = _rank_exact(self.rows())
        return self._cache["rank"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = "exact" if self._exact else "auto"
        return f"IntMat({self.rows()!r}, backend={backend!r})"


def _rebuild_intmat(rows: tuple, exact: bool) -> IntMat:
    return IntMat(rows, exact=exact)


def _normalize_rows(data: Any) -> tuple[IntVec, ...]:
    if isinstance(data, IntMat):
        return tuple(data)
    if isinstance(data, np.ndarray):
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got ndim={data.ndim}")
        data = data.tolist()
    if isinstance(data, _SCALARS):
        raise ValueError("expected a 2-D matrix, got a scalar")
    rows: list[IntVec] = []
    for r in data:
        if isinstance(r, _SCALARS):
            raise ValueError("expected a 2-D matrix, got a flat sequence")
        rows.append(IntVec(r))
    if rows:
        width = len(rows[0])
        for r in rows[1:]:
            if len(r) != width:
                raise ValueError(
                    f"ragged matrix: row lengths {width} and {len(r)}"
                )
    return tuple(rows)


def as_intmat(a: Any, *, exact: bool = False) -> IntMat:
    """Normalize matrix-like input (nested sequences, 2-D arrays) to IntMat."""
    return IntMat(a, exact=exact)


# -- Bareiss kernels ---------------------------------------------------------


def _det_bareiss_exact(m: list[list[int]]) -> int:
    """Fraction-free determinant over Python ints (arbitrary precision)."""
    n = len(m)
    if n == 0:
        return 1
    sign = 1
    prev = 1
    for k in range(n - 1):
        if m[k][k] == 0:
            pivot_row = next(
                (i for i in range(k + 1, n) if m[i][k] != 0), None
            )
            if pivot_row is None:
                return 0
            m[k], m[pivot_row] = m[pivot_row], m[k]
            sign = -sign
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                m[i][j] = (m[i][j] * m[k][k] - m[i][k] * m[k][j]) // prev
            m[i][k] = 0
        prev = m[k][k]
    return sign * m[n - 1][n - 1]


def _det_bareiss_i64(m: np.ndarray) -> int:
    """The identical elimination, vectorized over an int64 working array.

    Only call under :meth:`IntMat._bareiss_fits_int64`: the Hadamard
    guard certifies every product formed here stays inside int64, and
    all divisions are exact (so NumPy's floor division agrees with
    Python's).
    """
    n = m.shape[0]
    if n == 0:
        return 1
    sign = 1
    prev = np.int64(1)
    for k in range(n - 1):
        if m[k, k] == 0:
            nz = np.nonzero(m[k + 1 :, k])[0]
            if nz.size == 0:
                return 0
            i = k + 1 + int(nz[0])
            m[[k, i]] = m[[i, k]]
            sign = -sign
        block = m[k + 1 :, k + 1 :]
        block[...] = (
            block * m[k, k] - np.outer(m[k + 1 :, k], m[k, k + 1 :])
        ) // prev
        m[k + 1 :, k] = 0
        prev = m[k, k]
    return sign * int(m[n - 1, n - 1])


def _rank_exact(m: list[list[int]]) -> int:
    """Exact rank by fraction-free Gaussian elimination."""
    if not m or not m[0]:
        return 0
    rows, cols = len(m), len(m[0])
    r = 0
    for c in range(cols):
        pivot = next((i for i in range(r, rows) if m[i][c] != 0), None)
        if pivot is None:
            continue
        m[r], m[pivot] = m[pivot], m[r]
        for i in range(r + 1, rows):
            if m[i][c] != 0:
                f1, f2 = m[r][c], m[i][c]
                m[i] = [f1 * m[i][j] - f2 * m[r][j] for j in range(cols)]
        r += 1
        if r == rows:
            break
    return r
