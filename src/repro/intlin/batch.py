"""Batch operations on stacks of integer candidate vectors.

Procedure 5.1 evaluates thousands of structurally identical candidate
schedule vectors per ring; the space searches judge stacks of candidate
space rows the same way.  This module supplies the vectorized products
those funnels run on, with the same exactness contract as
:class:`~repro.intlin.intmat.IntMat`: every operation certifies an
a-priori int64 overflow bound before vectorizing, and promotes **only
the rows (or columns) that fail the bound** to exact arbitrary-
precision Python-int arithmetic — never the whole stack.  Results are
bit-identical whichever backend computed each row, and each function
reports how many rows were promoted so the searches can surface the
``fastpath_promotions`` telemetry.

All functions accept either an ``(N, n)`` NumPy array (``int64`` or
``object`` dtype) or a sequence of row sequences, and return NumPy
arrays — ``int64`` when every row was certified, ``object`` dtype
otherwise (exact Python ints in every cell either way).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .intmat import INT64_MAX, IntMat, as_intmat

__all__ = [
    "batch_rows",
    "batch_matmul",
    "batch_dependence_mask",
    "batch_nonzero_mask",
    "batch_point_images",
]


def batch_rows(vecs: Any) -> np.ndarray:
    """Normalize a stack of integer vectors to an ``(N, n)`` array.

    Entries that fit int64 produce an ``int64`` array; anything larger
    produces an exact ``object``-dtype array of Python ints.  Bool and
    float dtypes are rejected, matching :class:`IntMat`'s entry rules.
    """
    if isinstance(vecs, np.ndarray):
        if vecs.ndim != 2:
            raise ValueError(f"expected a 2-D stack, got ndim={vecs.ndim}")
        if vecs.dtype == object or np.issubdtype(vecs.dtype, np.integer):
            return vecs
        raise ValueError(f"expected integer rows, got dtype {vecs.dtype}")
    rows = [[int(x) for x in row] for row in vecs]
    if rows and any(len(r) != len(rows[0]) for r in rows):
        raise ValueError("ragged row stack")
    big = any(abs(x) > INT64_MAX for r in rows for x in r)
    if big:
        arr = np.empty((len(rows), len(rows[0]) if rows else 0), dtype=object)
        for i, r in enumerate(rows):
            arr[i] = r
        return arr
    width = len(rows[0]) if rows else 0
    return np.array(rows, dtype=np.int64).reshape(len(rows), width)


def _row_threshold(mat: IntMat) -> int:
    """Largest per-row magnitude certified overflow-free against ``mat``.

    A product row ``v @ mat`` is safe when ``max|v| * max|mat| * n``
    stays within int64; computed in Python-int arithmetic so the check
    itself cannot wrap.
    """
    bound = mat.max_abs() * max(1, mat.nrows)
    if bound == 0:
        return INT64_MAX
    return min(INT64_MAX, INT64_MAX // bound)


def _exact_row_product(row: list[int], cols: list) -> list[int]:
    return [sum(a * b for a, b in zip(row, col)) for col in cols]


def batch_matmul(vecs: Any, mat: Any) -> tuple[np.ndarray, int]:
    """``vecs @ mat`` for an ``(N, n)`` row stack, overflow-checked per row.

    Returns ``(product, promoted)`` where ``product`` is the exact
    ``(N, m)`` result and ``promoted`` counts the rows whose int64
    bound could not be certified and were computed over Python ints.
    The fast rows still run vectorized; only the overflowing rows pay
    for exactness.
    """
    mat = as_intmat(mat)
    a = batch_rows(vecs)
    if a.shape[1] != mat.nrows:
        raise ValueError(f"shape mismatch: {a.shape} @ {mat.shape}")
    n_rows = a.shape[0]
    if a.dtype == object or mat.arr is None:
        cols = mat.columns()
        out = np.empty((n_rows, mat.ncols), dtype=object)
        for i in range(n_rows):
            out[i] = _exact_row_product([int(x) for x in a[i]], cols)
        return out, n_rows
    if n_rows == 0:
        return np.empty((0, mat.ncols), dtype=np.int64), 0
    thr = _row_threshold(mat)
    row_max = np.abs(a).max(axis=1, initial=0)
    safe = row_max <= thr
    if bool(safe.all()):
        return a @ mat.arr, 0
    out = np.empty((n_rows, mat.ncols), dtype=object)
    if bool(safe.any()):
        fast = a[safe] @ mat.arr
        out[safe] = fast.astype(object)
    cols = mat.columns()
    promoted_idx = np.nonzero(~safe)[0]
    for i in promoted_idx:
        out[i] = _exact_row_product([int(x) for x in a[i]], cols)
    return out, int(promoted_idx.size)


def batch_dependence_mask(pis: Any, dependence: Any) -> tuple[np.ndarray, int]:
    """Vectorized dependence check ``Pi D > 0`` over a candidate stack.

    Returns ``(mask, promoted)``: ``mask[i]`` is True iff every entry
    of ``pis[i] @ D`` is strictly positive (vacuously True when ``D``
    has no columns, matching the scalar
    :meth:`~repro.core.schedule.LinearSchedule.respects`).
    """
    prod, promoted = batch_matmul(pis, dependence)
    if prod.shape[1] == 0:
        return np.ones(prod.shape[0], dtype=bool), promoted
    return np.asarray((prod > 0).all(axis=1), dtype=bool), promoted


def batch_nonzero_mask(pis: Any, mat: Any) -> tuple[np.ndarray, int]:
    """Whether each ``pis[i] @ mat`` row has any non-zero entry.

    The batch rank screen: with ``mat`` a kernel basis of the space
    mapping ``S`` (full row rank ``k - 1``), ``rank([S; Pi]) == k`` iff
    ``Pi`` is outside the row span of ``S`` iff ``Pi @ kernel != 0``.
    """
    prod, promoted = batch_matmul(pis, mat)
    if prod.shape[1] == 0:
        return np.zeros(prod.shape[0], dtype=bool), promoted
    return np.asarray((prod != 0).any(axis=1), dtype=bool), promoted


def batch_point_images(points: np.ndarray, vecs: Any) -> tuple[np.ndarray, int]:
    """``points @ vecs.T`` with per-*vector* (column) overflow promotion.

    The conflict-image product of the batch funnel: ``points`` is the
    ``(P, n)`` index-point array (one fixed factor shared by every
    candidate), each row of ``vecs`` a candidate functional, and column
    ``c`` of the ``(P, C)`` result holds candidate ``c``'s image of
    every point.  Columns whose bound ``max|point| * max|vec| * n``
    cannot be certified are computed exactly and counted in
    ``promoted``.
    """
    v = batch_rows(vecs)
    pts = np.asarray(points)
    if pts.ndim != 2 or v.ndim != 2 or pts.shape[1] != v.shape[1]:
        raise ValueError(
            f"shape mismatch: points {pts.shape} vs vectors {v.shape}"
        )
    n_pts, n = pts.shape
    n_vecs = v.shape[0]
    pts_exact = pts.dtype == object
    pts_max = (
        max((abs(int(x)) for row in pts for x in row), default=0)
        if pts_exact
        else int(np.abs(pts).max(initial=0))
    )
    bound = pts_max * max(1, n)

    def exact_column(vec_row: Any) -> np.ndarray:
        vec = [int(x) for x in vec_row]
        col = np.empty(n_pts, dtype=object)
        for p in range(n_pts):
            col[p] = sum(int(a) * b for a, b in zip(pts[p], vec))
        return col

    if pts_exact or v.dtype == object:
        out = np.empty((n_pts, n_vecs), dtype=object)
        for c in range(n_vecs):
            out[:, c] = exact_column(v[c])
        return out, n_vecs
    if n_vecs == 0:
        return np.empty((n_pts, 0), dtype=np.int64), 0
    thr = INT64_MAX if bound == 0 else min(INT64_MAX, INT64_MAX // bound)
    vec_max = np.abs(v).max(axis=1, initial=0)
    safe = vec_max <= thr
    pts64 = pts.astype(np.int64, copy=False)
    if bool(safe.all()):
        return pts64 @ v.T, 0
    out = np.empty((n_pts, n_vecs), dtype=object)
    if bool(safe.any()):
        out[:, safe] = (pts64 @ v[safe].T).astype(object)
    promoted_idx = np.nonzero(~safe)[0]
    for c in promoted_idx:
        out[:, c] = exact_column(v[c])
    return out, int(promoted_idx.size)
