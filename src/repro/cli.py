"""Command-line interface: ``python -m repro <command>``.

Four subcommands mirror the library's workflow:

* ``map``      — find the time-optimal conflict-free schedule for a
  named algorithm and a given space mapping (Problem 2.2);
* ``check``    — run the conflict-freedom checkers on an explicit
  mapping matrix (Problem 2.1);
* ``simulate`` — execute a mapping cycle-accurately and report
  conflicts / collisions / makespan, optionally rendering the
  space-time table;
* ``design``   — space-optimal / joint design-space exploration
  (Problems 6.1 / 6.2);
* ``explore``  — the same searches through the parallel, cached
  work-queue engine (:mod:`repro.dse`), with ``--jobs`` /
  ``--cache-dir`` / ``--no-cache``, fault-tolerance knobs
  (``--shard-timeout`` / ``--max-retries`` / ``--no-degrade``),
  crash-safe checkpoint/resume (``--checkpoint`` / ``--resume``),
  run budgets (``--max-seconds`` / ``--max-shards`` / ``--max-bits``),
  ``--strict`` and full telemetry;
* ``report``   — regenerate every experiment into a markdown report
  (see :mod:`repro.experiments`);
* ``obs``      — validate a JSONL trace or render its per-phase
  wall-time breakdown (see :mod:`repro.obs`).

Every subcommand accepts ``--trace FILE`` (export a structured JSONL
trace of the run) and ``--log-level LEVEL`` (wire the ``repro`` logger
hierarchy to stderr).  ``--mu`` takes one value or a comma-separated
tuple where the algorithm has several size parameters (e.g.
``--algorithm convolution --mu 8,32``); entries must be positive.

Examples
--------
::

    python -m repro map --algorithm matmul --mu 4 --space "1,1,-1"
    python -m repro check --rows "1,7,1,1;1,7,1,0" --mu 6,6,6,6
    python -m repro simulate --algorithm matmul --mu 4 \
        --space "1,1,-1" --schedule 1,4,1 --render
    python -m repro design --algorithm matmul --mu 4 --schedule 1,4,1
    python -m repro explore --algorithm matmul --mu 4 --space "1,1,-1" \
        --jobs 4 --trace run.jsonl
    python -m repro explore --algorithm matmul --mu 4 --jobs 4  # joint
    python -m repro obs report run.jsonl
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections.abc import Sequence

from .core import (
    MappingMatrix,
    analyze_conflicts,
    check_conflict_free,
    find_time_optimal_mapping,
    solve_space_optimal,
)
from .model import (
    UniformDependenceAlgorithm,
    bit_level_convolution,
    bit_level_lu_decomposition,
    bit_level_matrix_multiplication,
    convolution_1d,
    convolution_2d,
    lu_decomposition,
    matrix_multiplication,
    transitive_closure,
)

__all__ = ["main", "build_parser", "EXIT_INTERRUPTED", "EXIT_STRICT"]

#: ``explore`` exit code for a clean, resumable stop (signal or budget);
#: modeled on BSD's EX_TEMPFAIL — "try again later" is the right reading.
EXIT_INTERRUPTED = 75

#: ``explore --strict`` exit code when the run completed only through
#: degradation (pool restarts, exhausted retries, in-process fallback).
EXIT_STRICT = 3


def _parse_vector(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.replace(" ", "").split(",") if x != "")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad integer vector {text!r}") from exc


def _parse_matrix(text: str) -> tuple[tuple[int, ...], ...]:
    rows = tuple(_parse_vector(row) for row in text.split(";") if row.strip())
    if rows and any(len(r) != len(rows[0]) for r in rows):
        raise argparse.ArgumentTypeError(f"ragged matrix {text!r}")
    return rows


def _parse_mu(text: str) -> tuple[int, ...]:
    """``--mu``: a positive int or comma-separated tuple of positive ints.

    One parser for every subcommand — ``map``/``simulate``/... and
    ``check`` used to disagree (scalar int vs vector), and none rejected
    non-positive sizes until deep library code crashed on them.
    """
    values = _parse_vector(text)
    if not values:
        raise argparse.ArgumentTypeError(
            f"--mu needs at least one integer, got {text!r}"
        )
    if any(v <= 0 for v in values):
        raise argparse.ArgumentTypeError(
            f"--mu entries must be positive integers, got {text!r}"
        )
    return values


def _parse_mu_range(text: str) -> tuple[int, int]:
    """``--mu-range LO:HI`` for the symbolic compiler."""
    parts = text.split(":")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(
            f"--mu-range takes LO:HI (e.g. 1:16), got {text!r}"
        )
    try:
        lo, hi = (int(p) for p in parts)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad --mu-range {text!r}: bounds must be integers"
        ) from exc
    if not 1 <= lo <= hi:
        raise argparse.ArgumentTypeError(
            f"--mu-range needs 1 <= LO <= HI, got {text!r}"
        )
    return (lo, hi)


def _mu_arity(name: str, mu: tuple[int, ...], arities: tuple[int, ...]) -> None:
    if len(mu) not in arities:
        expected = " or ".join(str(a) for a in arities)
        raise SystemExit(
            f"--mu for {name!r} takes {expected} value(s), "
            f"got {len(mu)}: {','.join(str(m) for m in mu)}"
        )


def _make_algorithm(
    name: str, mu: tuple[int, ...], word_bits: int
) -> UniformDependenceAlgorithm:
    def one() -> int:
        _mu_arity(name, mu, (1,))
        return mu[0]

    def pair() -> tuple[int, int]:
        # (taps, samples); a single value sets both.
        _mu_arity(name, mu, (1, 2))
        return (mu[0], mu[0]) if len(mu) == 1 else (mu[0], mu[1])

    def quad() -> tuple[int, int, int, int]:
        _mu_arity(name, mu, (1, 4))
        if len(mu) == 4:
            return mu[0], mu[1], mu[2], mu[3]
        m = mu[0]
        return m, m, max(1, m // 2), max(1, m // 2)

    registry = {
        "matmul": lambda: matrix_multiplication(one()),
        "transitive-closure": lambda: transitive_closure(one()),
        "convolution": lambda: convolution_1d(*pair()),
        "convolution2d": lambda: convolution_2d(*quad()),
        "lu": lambda: lu_decomposition(one()),
        "bit-matmul": lambda: bit_level_matrix_multiplication(one(), word_bits),
        "bit-convolution": lambda: bit_level_convolution(*pair(), word_bits),
        "bit-lu": lambda: bit_level_lu_decomposition(one(), word_bits),
    }
    if name not in registry:
        raise SystemExit(
            f"unknown algorithm {name!r}; choose from {sorted(registry)}"
        )
    return registry[name]()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Time-optimal, conflict-free mappings of uniform dependence "
            "algorithms onto lower dimensional processor arrays "
            "(Shang & Fortes, ICPP 1990)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", metavar="FILE", default=None,
                       help="export a structured JSONL trace of this run "
                            "(inspect with 'repro obs report FILE')")
        p.add_argument("--log-level", default=None,
                       metavar="LEVEL",
                       help="stderr logging for the repro.* loggers "
                            "(DEBUG, INFO, WARNING, ...)")

    def add_algo_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--algorithm", "-a", default="matmul",
                       help="algorithm name (matmul, transitive-closure, ...)")
        p.add_argument("--mu", type=_parse_mu, default=(4,),
                       help="problem size(s): one positive int, or a "
                            "comma-separated tuple for multi-parameter "
                            "algorithms (convolution: taps,samples; "
                            "convolution2d: 1 or 4 values)")
        p.add_argument("--word-bits", type=int, default=2,
                       help="word size for bit-level algorithms")
        add_obs_args(p)

    p_map = sub.add_parser("map", help="find the time-optimal conflict-free schedule")
    add_algo_args(p_map)
    p_map.add_argument("--space", "-s", type=_parse_matrix, required=True,
                       help='space mapping rows, e.g. "1,1,-1" or "1,0;0,1"')
    p_map.add_argument("--solver", default="auto",
                       choices=["auto", "ilp", "procedure-5.1"])

    p_check = sub.add_parser("check", help="conflict-freedom of an explicit T")
    p_check.add_argument("--rows", type=_parse_matrix, required=True,
                         help='T rows, e.g. "1,7,1,1;1,7,1,0" (last row = Pi)')
    p_check.add_argument("--mu", type=_parse_mu, required=True,
                         help="problem-size bounds, e.g. 6,6,6,6 (a single "
                              "value broadcasts to every dimension)")
    p_check.add_argument("--method", default="auto",
                         choices=["auto", "paper", "exact"])
    add_obs_args(p_check)

    p_sim = sub.add_parser("simulate", help="cycle-accurate execution audit")
    add_algo_args(p_sim)
    p_sim.add_argument("--space", "-s", type=_parse_matrix, required=True)
    p_sim.add_argument("--schedule", "-p", type=_parse_vector, required=True)
    p_sim.add_argument("--render", action="store_true",
                       help="print the space-time table (linear arrays)")

    p_design = sub.add_parser(
        "design", help="space-optimal design exploration (Problem 6.1)"
    )
    add_algo_args(p_design)
    p_design.add_argument("--schedule", "-p", type=_parse_vector, required=True)
    p_design.add_argument("--array-dim", type=int, default=1)
    p_design.add_argument("--magnitude", type=int, default=1)

    p_explore = sub.add_parser(
        "explore",
        help="parallel, cached design-space exploration (repro.dse)",
        description=(
            "Run the mapping searches through the repro.dse work-queue "
            "engine.  With --space: time-optimal schedule for that S "
            "(Problem 2.2).  With --schedule: space-optimal S for that "
            "Pi (Problem 6.1).  With neither: joint optimization over "
            "both (Problem 6.2).  Results are identical to the serial "
            "map/design commands for any --jobs value and cache state."
        ),
    )
    add_algo_args(p_explore)
    p_explore.add_argument("--space", "-s", type=_parse_matrix,
                           help="fix S and search Pi (Problem 2.2)")
    p_explore.add_argument("--schedule", "-p", type=_parse_vector,
                           help="fix Pi and search S (Problem 6.1)")
    p_explore.add_argument("--jobs", "-j", type=int, default=None,
                           help="worker processes (default: CPU count)")
    p_explore.add_argument("--cache-dir", default=None,
                           help="result cache directory "
                                "(default: ~/.cache/repro-dse)")
    p_explore.add_argument("--no-cache", action="store_true",
                           help="disable the persistent result cache")
    p_explore.add_argument("--shard-timeout", type=float, default=None,
                           help="seconds a shard batch may run before hung "
                                "workers are replaced (default: no timeout)")
    p_explore.add_argument("--max-retries", type=int, default=2,
                           help="re-submissions of a failed shard before "
                                "degrading (default: 2)")
    p_explore.add_argument("--no-degrade", action="store_true",
                           help="fail instead of falling back to in-process "
                                "execution when shard retries are exhausted")
    p_explore.add_argument("--no-batch", action="store_true",
                           help="evaluate candidates one at a time instead "
                                "of through the vectorized batch funnel "
                                "(results are identical either way)")
    p_explore.add_argument("--batch-size", type=int, default=None,
                           metavar="N",
                           help="candidates per vectorized batch "
                                "(default: engine-chosen)")
    p_explore.add_argument("--no-symmetry", action="store_true",
                           help="disable orbit collapsing under the funnel "
                                "symmetry group in the schedule search "
                                "(results are identical either way)")
    p_explore.add_argument("--no-ring-bound", action="store_true",
                           help="disable the LP-relaxation ring lower bound "
                                "in the schedule search "
                                "(results are identical either way)")
    p_explore.add_argument("--method", default="auto",
                           choices=["auto", "paper", "exact"],
                           help="conflict-check mode for schedule search")
    p_explore.add_argument("--array-dim", type=int, default=1)
    p_explore.add_argument("--magnitude", type=int, default=1)
    p_explore.add_argument("--checkpoint", metavar="PATH", default=None,
                           help="write-ahead journal of completed shards; "
                                "SIGINT/SIGTERM and budget stops become "
                                f"clean resumable exits (code {EXIT_INTERRUPTED})")
    p_explore.add_argument("--resume", action="store_true",
                           help="replay --checkpoint first and skip every "
                                "shard it already holds")
    p_explore.add_argument("--max-seconds", type=float, default=None,
                           help="wall-clock budget; exceeding it stops "
                                "cleanly and resumably")
    p_explore.add_argument("--max-shards", type=int, default=None,
                           help="budget on dispatched shards (resumed "
                                "shards are free)")
    p_explore.add_argument("--max-bits", type=int, default=None,
                           help="cap on the schedule ring bound's bit "
                                "length (bounds exact-arithmetic growth)")
    p_explore.add_argument("--strict", action="store_true",
                           help=f"exit {EXIT_STRICT} when the run needed "
                                "fallbacks (shard retries, pool restarts, "
                                "or degraded execution) to complete")
    p_explore.add_argument("maintenance", nargs="?", choices=["cache"],
                           help="'cache': report the result cache "
                                "(counters, entry/corrupt/temp files, "
                                "disk usage) instead of searching")
    p_explore.add_argument("--sweep", action="store_true",
                           help="with 'cache': remove leftover writer "
                                "temp files (run only when no explore "
                                "is active)")
    p_explore.add_argument("--clear", action="store_true",
                           help="with 'cache': delete every cache entry, "
                                "temp file and quarantined file")

    p_serve = sub.add_parser(
        "serve",
        help="mapping-as-a-service job server (repro.serve)",
        description=(
            "Run the asyncio job-queue server over the exploration "
            "engine.  POST /jobs accepts validated job specs, identical "
            "requests deduplicate onto one job, every search is "
            "journaled so killing and restarting the server resumes "
            "in-flight jobs with results equal to uninterrupted runs. "
            "See docs/serving.md."
        ),
    )
    p_serve.add_argument("--state-dir", required=True,
                         help="directory for job records, per-job "
                              "checkpoint journals and event logs")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (0 picks an ephemeral port; "
                              "see --port-file)")
    p_serve.add_argument("--port-file", default=None, metavar="PATH",
                         help="write the bound port here once listening")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent searches (worker threads)")
    p_serve.add_argument("--search-jobs", type=int, default=1,
                         help="worker processes per search; a spec's own "
                              "'jobs' field is capped at this value")
    p_serve.add_argument("--cache-dir", default=None,
                         help="result cache directory "
                              "(default: ~/.cache/repro-dse)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the persistent result cache")
    p_serve.add_argument("--shard-timeout", type=float, default=None)
    p_serve.add_argument("--max-retries", type=int, default=2)
    p_serve.add_argument("--no-degrade", action="store_true")
    p_serve.add_argument("--max-active", type=int, default=None,
                         help="default per-tenant cap on in-flight jobs")
    p_serve.add_argument("--max-seconds", type=float, default=None,
                         help="default per-job wall-clock budget")
    p_serve.add_argument("--max-shards", type=int, default=None,
                         help="default per-job dispatched-shard budget")
    p_serve.add_argument("--max-bits", type=int, default=None,
                         help="default per-job ring-bound bit cap")
    p_serve.add_argument("--tenants-file", default=None, metavar="PATH",
                         help="JSON {tenant: {max_active, max_seconds, "
                              "max_shards, max_bits, rate, burst}} "
                              "overriding the default policy per tenant")
    p_serve.add_argument("--max-queue", type=int, default=256,
                         help="server-wide bound on queued jobs; submits "
                              "past it are shed with 503 + Retry-After "
                              "(default: 256)")
    p_serve.add_argument("--job-deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-job wall-clock deadline enforced by "
                              "the watchdog: the search is stopped "
                              "(resumable) and, if it ignores the stop, "
                              "abandoned so the worker slot is reclaimed "
                              "(default: none)")
    p_serve.add_argument("--breaker-threshold", type=int, default=3,
                         help="failures before containment trips: a "
                              "digest failing this many times is "
                              "quarantined (never re-executed), a tenant "
                              "with this many consecutive failures has "
                              "its breaker opened (default: 3)")
    p_serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                         metavar="SECONDS",
                         help="seconds an open breaker waits before "
                              "admitting one half-open probe "
                              "(default: 30)")
    p_serve.add_argument("--rate-limit", type=float, default=None,
                         metavar="PER_SECOND",
                         help="default per-tenant submit rate "
                              "(token bucket, tokens/second); over it "
                              "submits get 429 + Retry-After "
                              "(default: unlimited)")
    p_serve.add_argument("--rate-burst", type=int, default=None,
                         help="token-bucket depth for --rate-limit "
                              "(default: max(1, rate))")
    p_serve.add_argument("--no-hardening", action="store_true",
                         help="disable the failure-containment layer "
                              "entirely (queue bound, watchdog, breaker, "
                              "quarantine) — benchmark baselines only")
    add_obs_args(p_serve)

    p_report = sub.add_parser(
        "report", help="regenerate all experiments into a markdown report"
    )
    p_report.add_argument("--output", "-o", default="experiment_report.md")
    p_report.add_argument("--full", action="store_true",
                          help="full sweeps (slower)")
    add_obs_args(p_report)

    p_obs = sub.add_parser(
        "obs",
        help="inspect JSONL traces written with --trace",
        description=(
            "Work with structured traces (repro.obs).  'report' renders "
            "a per-phase wall-time breakdown; 'validate' checks every "
            "record against the trace schema and exits non-zero on any "
            "problem."
        ),
    )
    p_obs.add_argument("action", choices=["report", "validate"])
    p_obs.add_argument("trace_file", help="JSONL trace written with --trace")
    p_obs.add_argument("--top", type=int, default=None,
                       help="show only the N most expensive phases")
    add_obs_args(p_obs)

    p_sym = sub.add_parser(
        "symbolic",
        help="compile a parametric design: solve once in mu, serve any size",
        description=(
            "The symbolic design compiler (repro.symbolic).  'solve' runs "
            "the enumerative engine at a few sample sizes and certifies "
            "piecewise-polynomial optima over a whole mu range; 'eval' "
            "answers one concrete size in O(1) from the compiled artifact "
            "(recompiling or falling back to enumeration when needed)."
        ),
    )
    p_sym.add_argument("action", choices=["solve", "eval"])
    p_sym.add_argument("--algorithm", "-a", default="matmul",
                       help="algorithm family name (matmul, "
                            "transitive-closure, ...)")
    p_sym.add_argument("--word-bits", type=int, default=2,
                       help="word size for bit-level algorithm families")
    p_sym.add_argument("--task", default="schedule",
                       choices=["schedule", "space", "joint"],
                       help="which search to compile symbolically")
    p_sym.add_argument("--space", "-s", type=_parse_matrix, default=None,
                       help='space mapping rows (schedule task), e.g. "1,1,-1"')
    p_sym.add_argument("--pi", default=None,
                       help="schedule vector for the space task; entries "
                            'may be polynomials in mu, e.g. "1,2,mu-1"')
    p_sym.add_argument("--mu-range", type=_parse_mu_range, default=(1, 16),
                       metavar="LO:HI",
                       help="size range to certify (default 1:16)")
    p_sym.add_argument("--mu", type=int, default=None,
                       help="concrete size to answer (eval action)")
    p_sym.add_argument("--max-degree", type=int, default=2,
                       help="polynomial degree ceiling for the fit")
    p_sym.add_argument("--array-dim", type=int, default=1,
                       help="target array dimension (space/joint tasks)")
    p_sym.add_argument("--magnitude", type=int, default=1,
                       help="space-mapping entry bound (space/joint tasks)")
    p_sym.add_argument("--time-weight", type=float, default=1.0,
                       help="joint objective time weight")
    p_sym.add_argument("--space-weight", type=float, default=1.0,
                       help="joint objective space weight")
    p_sym.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="solution cache directory; eval reuses a "
                            "solve's compiled artifact through it")
    p_sym.add_argument("--json", action="store_true",
                       help="machine-readable output")
    add_obs_args(p_sym)
    return parser


def _require_width(algo: UniformDependenceAlgorithm, rows, what: str) -> None:
    if rows and len(rows[0]) != algo.n:
        raise SystemExit(
            f"{what} has {len(rows[0])} columns but {algo.name} has "
            f"n={algo.n} index dimensions"
        )


def _cmd_map(args: argparse.Namespace) -> int:
    algo = _make_algorithm(args.algorithm, args.mu, args.word_bits)
    _require_width(algo, args.space, "--space")
    result = find_time_optimal_mapping(algo, args.space, solver=args.solver)
    print(f"algorithm      : {algo.name}")
    print(f"space mapping  : {[list(r) for r in args.space]}")
    print(f"optimal Pi     : {list(result.schedule.pi)}")
    print(f"total time     : {result.total_time}")
    print(f"solver         : {result.solver}  {result.stats}")
    print(f"conflict gens  : {[list(g) for g in result.analysis.generators]}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    t = MappingMatrix.from_rows(args.rows)
    mu = args.mu
    if len(mu) == 1:
        mu = mu * t.n  # scalar --mu broadcasts to every dimension
    if len(mu) != t.n:
        raise SystemExit(
            f"--mu has {len(mu)} entries, T has {t.n} columns "
            f"(give one value or {t.n})"
        )
    verdict = check_conflict_free(t, mu, method=args.method)
    print(f"T ({t.k} x {t.n}, co-rank {t.corank}) rank = {t.rank()}")
    print(f"checker        : {verdict.theorem} ({verdict.kind})")
    print(f"conflict-free  : {verdict.holds}")
    if not verdict.holds:
        from .model import ConstantBoundedIndexSet

        analysis = analyze_conflicts(t, ConstantBoundedIndexSet(tuple(mu)))
        if analysis.witness:
            j1, j2 = analysis.witness
            print(f"witness        : tau{j1} == tau{j2} == {t.tau(j1)}")
    return 0 if verdict.holds else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .systolic import render_space_time, simulate_mapping

    algo = _make_algorithm(args.algorithm, args.mu, args.word_bits)
    _require_width(algo, args.space, "--space")
    _require_width(algo, (args.schedule,), "--schedule")
    t = MappingMatrix(space=args.space, schedule=args.schedule)
    report = simulate_mapping(algo, t)
    print(f"algorithm      : {algo.name}")
    print(f"makespan       : {report.makespan} cycles on "
          f"{report.num_processors} PEs")
    print(f"conflicts      : {len(report.conflicts)}")
    print(f"link collisions: {len(report.link_collisions)}")
    print(f"late operands  : {len(report.latency_violations)}")
    print(f"buffers (plan) : {report.plan.buffers}")
    print(f"verdict        : {'CLEAN' if report.ok else 'DEFECTIVE'}")
    if args.render:
        print(render_space_time(algo, t))
    return 0 if report.ok else 1


def _cmd_design(args: argparse.Namespace) -> int:
    algo = _make_algorithm(args.algorithm, args.mu, args.word_bits)
    result = solve_space_optimal(
        algo, args.schedule, array_dim=args.array_dim, magnitude=args.magnitude
    )
    print(f"algorithm      : {algo.name}   Pi = {list(args.schedule)}")
    print(f"candidates     : {result.candidates_examined} "
          f"(conflicted: {result.rejected_conflicts}, "
          f"unroutable: {result.rejected_routing})")
    if not result.found:
        print("no conflict-free design in the search bound")
        return 1
    for rank_idx, design in enumerate(result.ranking, start=1):
        c = design.cost
        print(f"  #{rank_idx}: S = {[list(r) for r in design.mapping.space]}  "
              f"PEs={c.processors} wire={c.wire_length} "
              f"buffers={c.buffers} t={c.total_time}  "
              f"objective={design.objective:g}")
    return 0


def _strict_violation(stats) -> str | None:
    """Why a ``--strict`` run should fail, or ``None`` when it is clean.

    The result is still exactly correct in these cases (degradation
    re-judges shards deterministically) — strict mode exists for users
    who treat needing the fallback machinery as an environment failure.
    """
    reasons = []
    if stats.degraded:
        reasons.append("degraded to in-process execution")
    if stats.pool_restarts:
        reasons.append(f"{stats.pool_restarts} pool restart(s)")
    if stats.shard_retries:
        reasons.append(f"{stats.shard_retries} shard retry(s)")
    return "; ".join(reasons) if reasons else None


def _finish_explore(result, args, code: int) -> int:
    if args.strict and code == 0:
        problem = _strict_violation(result.stats)
        if problem is not None:
            print(f"strict: completed only via fallbacks: {problem}",
                  file=sys.stderr)
            return EXIT_STRICT
    return code


def _cmd_explore_cache(args: argparse.Namespace) -> int:
    """``repro explore cache``: report and maintain the result cache."""
    from .dse import ResultCache

    cache = ResultCache(args.cache_dir, enabled=not args.no_cache)
    if args.clear:
        removed = cache.clear()
        print(f"cleared        : {removed} entr{'y' if removed == 1 else 'ies'}")
    elif args.sweep:
        removed = cache.sweep_temp(max_age_seconds=0.0)
        print(f"swept          : {removed} temp file(s)")
    stats = cache.stats()
    print(f"cache dir      : {stats['dir']}")
    print(f"enabled        : {stats['enabled']}")
    print(f"schema         : v{stats['schema']}")
    print(f"entries        : {stats['entries']}")
    print(f"corrupt files  : {stats['corrupt_files']}")
    print(f"temp files     : {stats['temp_files']}")
    print(f"disk bytes     : {stats['disk_bytes']}")
    print(f"session        : {stats['hits']} hits / {stats['misses']} misses / "
          f"{stats['quarantined']} quarantined / {stats['swept']} swept on open")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from .dse import (
        ResiliencePolicy,
        ResultCache,
        RunBudget,
        RunInterrupted,
        resolve_jobs,
    )

    if args.maintenance == "cache":
        return _cmd_explore_cache(args)
    if args.sweep or args.clear:
        raise SystemExit("--sweep/--clear need the 'cache' subcommand: "
                         "repro explore cache [--sweep|--clear]")
    if args.space is not None and args.schedule is not None:
        raise SystemExit(
            "give --space (schedule search) OR --schedule (space search) "
            "OR neither (joint search), not both"
        )
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.batch_size is not None and args.batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {args.batch_size}")
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint PATH")
    algo = _make_algorithm(args.algorithm, args.mu, args.word_bits)
    cache = ResultCache(args.cache_dir, enabled=not args.no_cache)
    try:
        policy = ResiliencePolicy(
            shard_timeout=args.shard_timeout,
            max_retries=args.max_retries,
            degrade=not args.no_degrade,
        )
        budget = None
        if (args.max_seconds is not None or args.max_shards is not None
                or args.max_bits is not None):
            budget = RunBudget(
                max_seconds=args.max_seconds,
                max_shards=args.max_shards,
                max_bits=args.max_bits,
            )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    print(f"algorithm      : {algo.name}")
    try:
        return _run_explore(args, algo, cache, policy, budget)
    except RunInterrupted as exc:
        print(f"interrupted: {exc.reason}", file=sys.stderr)
        if args.checkpoint is not None:
            print(
                f"resumable: rerun with --checkpoint {args.checkpoint} --resume",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED


def _run_explore(args, algo, cache, policy, budget) -> int:
    from .dse import explore_joint, explore_schedule, explore_space
    from .dse.progress import format_stats

    engine_kwargs = dict(
        jobs=args.jobs, cache=cache, resilience=policy,
        checkpoint=args.checkpoint, resume=args.resume, budget=budget,
        batch=not args.no_batch, batch_size=args.batch_size,
    )

    if args.space is not None:
        result = explore_schedule(
            algo, args.space, method=args.method,
            symmetry=not args.no_symmetry,
            ring_bound=not args.no_ring_bound,
            **engine_kwargs,
        )
        print(f"mode           : schedule search (Problem 2.2)")
        print(f"space mapping  : {[list(r) for r in args.space]}")
        if not result.found:
            print("no conflict-free schedule within the search bound")
            print(format_stats(result.stats))
            return _finish_explore(result, args, 1)
        print(f"optimal Pi     : {list(result.schedule.pi)}")
        print(f"total time     : {result.total_time}")
        print(format_stats(result.stats))
        return _finish_explore(result, args, 0)

    if args.schedule is not None:
        result = explore_space(
            algo, args.schedule,
            array_dim=args.array_dim, magnitude=args.magnitude,
            **engine_kwargs,
        )
        print(f"mode           : space search (Problem 6.1)")
        print(f"schedule Pi    : {list(args.schedule)}")
    else:
        # Pruning opt-outs reach the joint search's inner schedule runs
        # through schedule_kwargs; only explicit opt-outs are passed so
        # a default run's cache identity stays the default one.
        schedule_kwargs = {}
        if args.no_symmetry:
            schedule_kwargs["symmetry"] = False
        if args.no_ring_bound:
            schedule_kwargs["ring_bound"] = False
        result = explore_joint(
            algo,
            array_dim=args.array_dim, magnitude=args.magnitude,
            schedule_kwargs=schedule_kwargs or None,
            **engine_kwargs,
        )
        print(f"mode           : joint search (Problem 6.2)")

    if not result.found:
        print("no conflict-free design within the search bound")
        print(format_stats(result.stats))
        return _finish_explore(result, args, 1)
    for rank_idx, design in enumerate(result.ranking, start=1):
        c = design.cost
        print(f"  #{rank_idx}: S = {[list(r) for r in design.mapping.space]}  "
              f"Pi = {list(design.mapping.schedule)}  "
              f"PEs={c.processors} wire={c.wire_length} t={c.total_time}  "
              f"objective={design.objective:g}")
    print(format_stats(result.stats))
    return _finish_explore(result, args, 0)


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from .dse import ResiliencePolicy
    from .serve import HardeningPolicy, ServerConfig, TenantPolicy, run_server

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.search_jobs is not None and args.search_jobs < 1:
        raise SystemExit(f"--search-jobs must be >= 1, got {args.search_jobs}")
    try:
        if args.no_hardening:
            hardening = HardeningPolicy.disabled()
        else:
            hardening = HardeningPolicy(
                max_queue=args.max_queue,
                job_deadline=args.job_deadline,
                breaker_threshold=args.breaker_threshold,
                breaker_cooldown=args.breaker_cooldown,
            )
        default_policy = TenantPolicy(
            max_active=args.max_active,
            max_seconds=args.max_seconds,
            max_shards=args.max_shards,
            max_bits=args.max_bits,
            rate=args.rate_limit,
            burst=args.rate_burst,
        )
        # Mint a budget (and a token bucket) once to surface bad
        # ceilings at startup, not at first job admission.
        default_policy.budget()
        if default_policy.rate is not None:
            from .serve import TokenBucket

            TokenBucket(default_policy.rate, default_policy.burst)
        tenants = {"default": default_policy}
        if args.tenants_file:
            with open(args.tenants_file, encoding="utf-8") as fh:
                overrides = _json.load(fh)
            if not isinstance(overrides, dict):
                raise ValueError("tenants file must be a JSON object")
            for tenant, policy in overrides.items():
                tenants[tenant] = TenantPolicy.from_dict(policy)
                tenants[tenant].budget()
                if tenants[tenant].rate is not None:
                    from .serve import TokenBucket

                    TokenBucket(tenants[tenant].rate, tenants[tenant].burst)
        resilience = ResiliencePolicy(
            shard_timeout=args.shard_timeout,
            max_retries=args.max_retries,
            degrade=not args.no_degrade,
        )
    except (OSError, ValueError, TypeError, _json.JSONDecodeError) as exc:
        raise SystemExit(str(exc)) from exc
    config = ServerConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        workers=args.workers,
        search_jobs=args.search_jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        tenants=tenants,
        resilience=resilience,
        hardening=hardening,
    )
    return run_server(config)


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments import write_markdown_report

    data = write_markdown_report(args.output, quick=not args.full)
    print(f"wrote {args.output} ({len(data)} experiments)")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs import report_file, validate_trace_file

    if args.action == "validate":
        records, errors = validate_trace_file(args.trace_file)
        if errors:
            for problem in errors[:20]:
                print(problem)
            if len(errors) > 20:
                print(f"... and {len(errors) - 20} more")
            print(f"INVALID: {len(errors)} problem(s) in {len(records)} "
                  "valid record(s)")
            return 1
        print(f"OK: {len(records)} schema-valid record(s)")
        return 0
    try:
        print(report_file(args.trace_file, top=args.top))
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    return 0


_PI_EXPR = re.compile(r"[0-9mu+\-*() ]+\Z")


def _parse_pi_exprs(text: str, max_degree: int):
    """Parse ``--pi "1,2,mu-1"`` into exact :class:`RationalPoly` entries.

    Each comma-separated component is integer arithmetic in ``mu``; the
    expression is sampled at a few sizes and the polynomial recovered
    exactly (and cross-checked) by :func:`repro.symbolic.poly_from_samples`.
    """
    from .symbolic import poly_from_samples

    polys = []
    for part in (p.strip() for p in text.split(",")):
        if not part or not _PI_EXPR.match(part):
            raise SystemExit(
                f"bad --pi component {part!r}: use integer arithmetic in "
                "'mu', e.g. \"1,2,mu-1\""
            )
        try:
            code = compile(part, "<pi>", "eval")

            def evaluate(m, _code=code):
                return eval(_code, {"__builtins__": {}}, {"mu": m})

            polys.append(poly_from_samples(evaluate, max_degree))
        except SyntaxError as exc:
            raise SystemExit(f"bad --pi component {part!r}: {exc}") from exc
        except ValueError as exc:
            raise SystemExit(f"bad --pi component {part!r}: {exc}") from exc
    if not polys:
        raise SystemExit("--pi needs at least one component")
    return tuple(polys)


def _cmd_symbolic(args: argparse.Namespace) -> int:
    from .dse.cache import ResultCache
    from .symbolic import (
        AlgorithmFamily,
        CompileError,
        compile_joint,
        compile_schedule,
        compile_space,
        joint_compile_params,
        load_or_compile,
        schedule_compile_params,
        space_compile_params,
    )

    name, word_bits = args.algorithm, args.word_bits

    def build(m: int) -> UniformDependenceAlgorithm:
        return _make_algorithm(name, (m,), word_bits)

    probe = build(max(2, args.mu_range[0]))  # fail fast on unknown names
    family = AlgorithmFamily(name=name, build=build)
    dep = probe.dependence_matrix.tolist()
    common = dict(mu_range=args.mu_range, max_degree=args.max_degree)

    if args.task == "schedule":
        if args.space is None:
            raise SystemExit("--task schedule needs --space")
        _require_width(probe, args.space, "--space")
        params = schedule_compile_params(dep, args.space, **common)
        compile_fn = lambda: compile_schedule(family, args.space, **common)
    elif args.task == "space":
        if args.pi is None:
            raise SystemExit("--task space needs --pi")
        pi = _parse_pi_exprs(args.pi, args.max_degree)
        if len(pi) != probe.n:
            raise SystemExit(
                f"--pi has {len(pi)} components but {probe.name} has "
                f"n={probe.n} index dimensions"
            )
        shape = dict(array_dim=args.array_dim, magnitude=args.magnitude)
        params = space_compile_params(dep, pi, **shape, **common)
        compile_fn = lambda: compile_space(family, pi, **shape, **common)
    else:
        weights = dict(
            array_dim=args.array_dim, magnitude=args.magnitude,
            time_weight=args.time_weight, space_weight=args.space_weight,
        )
        params = joint_compile_params(dep, **weights, **common)
        compile_fn = lambda: compile_joint(family, **weights, **common)

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    try:
        solution, compiled = load_or_compile(compile_fn, params, cache)
    except CompileError as exc:
        raise SystemExit(f"symbolic compile failed: {exc}") from exc

    if args.action == "solve":
        if args.json:
            print(json.dumps(solution.to_dict(), indent=2))
            return 0
        lo, hi = solution.mu_lo, solution.mu_hi
        origin = "compiled" if compiled else "cached"
        print(f"family         : {solution.family}  task={solution.task}")
        print(f"certified range: mu in [{lo}, {hi}]  ({origin}, "
              f"{solution.samples} enumerative samples, "
              f"{solution.compile_seconds:.2f}s)")
        for iv in solution.intervals:
            print(f"interval [{iv.lo}, {iv.hi}]"
                  + ("" if iv.found else "  (no design)"))
            if iv.pi is not None:
                print(f"  Pi         : [{', '.join(str(p) for p in iv.pi)}]")
            if iv.space is not None:
                for row in iv.space:
                    print(f"  S row      : [{', '.join(str(p) for p in row)}]")
            if iv.total_time is not None:
                print(f"  total time : {iv.total_time}")
            print(f"  verified at: {list(iv.verified)}")
        return 0

    # -- eval ------------------------------------------------------------
    if args.mu is None:
        raise SystemExit("action 'eval' needs --mu")
    if args.mu < 1:
        raise SystemExit(f"--mu must be >= 1, got {args.mu}")
    answer = solution.eval(args.mu)
    if answer is not None:
        payload = dict(answer.to_dict(), mode="symbolic")
    else:
        payload = _symbolic_eval_fallback(args, build(args.mu))
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"mu             : {args.mu}  ({payload['mode']})")
    if not payload["found"]:
        print("result         : no conflict-free design within bounds")
        return 1
    if "pi" in payload:
        print(f"optimal Pi     : {payload['pi']}")
    if "space" in payload:
        print(f"space mapping  : {payload['space']}")
    if "total_time" in payload:
        print(f"total time     : {payload['total_time']}")
    if "cost" in payload:
        print(f"cost           : {payload['cost']}")
    return 0


def _symbolic_eval_fallback(args: argparse.Namespace, algo) -> dict:
    """Enumerative answer for a size the certificate does not cover."""
    from .core.optimize import procedure_5_1
    from .core.space_optimize import solve_joint_optimal, solve_space_optimal

    if args.task == "schedule":
        result = procedure_5_1(algo, args.space)
        payload = {"task": "schedule", "mode": "enumerative", "mu": args.mu,
                   "found": result.found}
        if result.found:
            payload["pi"] = list(result.schedule.pi)
            payload["total_time"] = result.total_time
        return payload
    if args.task == "space":
        pi = [p.eval_int(args.mu)
              for p in _parse_pi_exprs(args.pi, args.max_degree)]
        result = solve_space_optimal(
            algo, pi, array_dim=args.array_dim, magnitude=args.magnitude
        )
    else:
        result = solve_joint_optimal(
            algo, array_dim=args.array_dim, magnitude=args.magnitude,
            time_weight=args.time_weight, space_weight=args.space_weight,
        )
    payload = {"task": args.task, "mode": "enumerative", "mu": args.mu,
               "found": result.found}
    if result.found:
        best = result.best
        payload["space"] = [list(r) for r in best.mapping.space]
        if args.task == "joint":
            payload["pi"] = list(best.mapping.schedule)
        cost = best.cost
        payload["cost"] = {
            "processors": cost.processors, "wire_length": cost.wire_length,
            "buffers": cost.buffers, "total_time": cost.total_time,
        }
        payload["objective"] = best.objective
        payload["total_time"] = cost.total_time
    return payload


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "map": _cmd_map,
        "check": _cmd_check,
        "simulate": _cmd_simulate,
        "design": _cmd_design,
        "explore": _cmd_explore,
        "serve": _cmd_serve,
        "report": _cmd_report,
        "obs": _cmd_obs,
        "symbolic": _cmd_symbolic,
    }
    handler = handlers[args.command]
    from .obs import configure_logging, trace_session

    try:
        configure_logging(getattr(args, "log_level", None))
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    from .model import SpecError

    try:
        trace_path = getattr(args, "trace", None)
        if trace_path:
            with trace_session(trace_path):
                code = handler(args)
            print(f"trace written: {trace_path}", file=sys.stderr)
            return code
        return handler(args)
    except SpecError as exc:
        # Untrusted-input validation (repro.model.validate): reject with
        # the typed diagnostic instead of a traceback.
        raise SystemExit(f"invalid specification: {exc}") from exc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
