"""The mapping-as-a-service server.

A stdlib-only asyncio server speaking a deliberately small slice of
HTTP/1.1 (one request per connection, ``Connection: close``).  Routes::

    POST /jobs               submit a job spec (201 created, 200 deduped)
    GET  /jobs               list job summaries
    GET  /jobs/{id}          full job record (result once done)
    GET  /jobs/{id}/events   progress events as JSONL; ?follow=1 streams
    POST /jobs/{id}/cancel   stop a queued or running job
    GET  /cache              result-cache counters (ResultCache.stats)
    GET  /healthz            liveness: queue depth, workers, breakers,
                             store health, watchdog counters
    GET  /readyz             readiness: 200 while accepting new work,
                             503 (with reasons) while stopping or full

Design rules:

* The event loop owns all job state (via :class:`JobManager`); searches
  run in worker threads through :func:`asyncio.to_thread` and talk back
  only via ``call_soon_threadsafe`` hops.
* Every search is journaled (``checkpoint=..., resume=True``), so the
  server can be SIGTERM'd/SIGKILL'd at any moment: on the next start,
  :meth:`JobManager.recover` re-enqueues every non-terminal job and the
  engine replays completed shards from the journal.  A resumed job's
  result is equal to an uninterrupted one — the engine's contract, not
  the server's promise.
* SIGTERM/SIGINT trigger a graceful stop: the listener closes, every
  running search gets its stop event, workers drain (a stopping search
  raises ``RunInterrupted`` at the next shard boundary, which marks the
  job ``interrupted`` — i.e. *resumable*), then the process exits 0.
* Failure containment (:mod:`repro.serve.hardening`) wraps the whole
  pipeline: over-capacity submits are shed with 503 + ``Retry-After``
  rather than buffered, poison digests answer from their recorded
  failure rather than re-executing, a per-job watchdog deadline
  reclaims hung worker slots, and disk faults degrade the store to
  memory instead of crashing.  All of it is visible on ``/healthz``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from ..dse.cache import ResultCache
from ..dse.resilience import ResiliencePolicy
from ..model import SpecError
from .bridge import execute_job
from .hardening import HardeningPolicy, Rejected
from .protocol import TERMINAL_STATES, error_body, parse_job_spec
from .queue import JobManager, TenantPolicy
from .store import JobStore

logger = logging.getLogger("repro.serve.server")

__all__ = ["ServerConfig", "MappingServer", "run_server"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 1024 * 1024


@dataclass
class ServerConfig:
    """Everything ``repro serve`` configures."""

    state_dir: str
    host: str = "127.0.0.1"
    port: int = 8642
    #: Concurrent searches (worker threads).  Each search may itself
    #: use ``search_jobs`` worker processes.
    workers: int = 2
    #: Default worker-process count per search; a spec's own ``jobs``
    #: field wins but is capped at this value.
    search_jobs: int | None = 1
    cache_dir: str | None = None
    no_cache: bool = False
    tenants: dict[str, TenantPolicy] = field(default_factory=dict)
    resilience: ResiliencePolicy | None = None
    #: The failure-containment layer: queue bound, watchdog deadline,
    #: breaker/quarantine thresholds.  ``HardeningPolicy.disabled()``
    #: turns the whole layer off (benchmark baselines).
    hardening: HardeningPolicy = field(default_factory=HardeningPolicy)
    #: Written once the listener is bound — how tests and scripts learn
    #: an ephemeral (``--port 0``) port.
    port_file: str | None = None


class _BadRequest(Exception):
    pass


class MappingServer:
    """One server instance: store + manager + listener + worker tasks."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.store = JobStore(config.state_dir)
        self.manager = JobManager(self.store, tenants=config.tenants,
                                  hardening=config.hardening)
        self.cache = ResultCache(config.cache_dir,
                                 enabled=not config.no_cache)
        self._stops: dict[str, threading.Event] = {}
        self._cancelled: set[str] = set()
        self._stopping = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._workers: list[asyncio.Task] = []
        #: Worker index -> job id currently held (None = idle); the
        #: worker-liveness block of /healthz.
        self._busy: dict[int, str | None] = {}
        self._started_at = time.time()
        #: Watchdog counters: deadlines that fired, executions the
        #: watchdog had to abandon outright (slot reclaimed, thread
        #: orphaned until it winds down on its own).
        self.watchdog_fired = 0
        self.watchdog_abandoned = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.manager.bind_loop(loop)
        requeued = self.manager.recover()
        if requeued:
            logger.info("recovered %d unfinished job(s)", requeued)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            Path(self.config.port_file).write_text(str(port))
        self._busy = {i: None for i in range(self.config.workers)}
        self._workers = [
            asyncio.create_task(self._worker(i), name=f"serve-worker-{i}")
            for i in range(self.config.workers)
        ]
        logger.info("serving on %s:%d (%d worker slots, state in %s)",
                    self.config.host, port, self.config.workers,
                    self.config.state_dir)

    async def serve_forever(self) -> None:
        """Run until a stop signal; returns after a graceful drain."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await self.start()
        await self._stopping.wait()
        await self._shutdown()

    def request_stop(self) -> None:
        """Signal-safe stop: flips the event; the drain happens in
        :meth:`serve_forever`'s context."""
        logger.info("stop requested; draining")
        self._stopping.set()
        for stop in self._stops.values():
            stop.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Workers see the stopping flag (queue sentinel) and running
        # searches see their stop events; both wind down cleanly.
        for _ in self._workers:
            self.manager.queue.put_nowait("")
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        logger.info("drained; all interrupted jobs are journaled")

    # -- worker loop -----------------------------------------------------

    async def _worker(self, index: int) -> None:
        while not self._stopping.is_set():
            job_id = await self.manager.queue.get()
            if not job_id:  # shutdown sentinel
                break
            record = self.manager.jobs.get(job_id)
            if record is None or record.state != "queued":
                continue  # cancelled or re-armed elsewhere while queued
            self._busy[index] = job_id
            try:
                await self._run_job(job_id)
            finally:
                self._busy[index] = None

    async def _run_job(self, job_id: str) -> None:
        record = self.manager.jobs[job_id]
        self.manager.transition(job_id, "running", started=time.time())
        stop = threading.Event()
        self._stops[job_id] = stop
        if self._stopping.is_set():
            stop.set()
        abandoned = False
        try:
            from .protocol import JobSpec

            spec = JobSpec.from_dict(record.spec)
            budget = self.manager.policy_for(record.tenant).budget()
            search_jobs = spec.jobs or self.config.search_jobs
            if search_jobs and self.config.search_jobs:
                search_jobs = min(search_jobs, self.config.search_jobs)
            task = asyncio.ensure_future(asyncio.to_thread(
                execute_job, spec,
                journal_path=self.store.journal_path(job_id),
                cache=self.cache,
                resilience=self.config.resilience,
                budget=budget,
                stop=stop,
                on_progress=lambda event, _id=job_id:
                    self.manager.post_event_threadsafe(_id, event),
                jobs=search_jobs,
            ))
            outcome = await self._watch(job_id, task, stop)
            if outcome is None:
                abandoned = True  # watchdog reclaimed the slot
                return
        except Exception as exc:  # spec reload / budget minting failed
            logger.exception("job %s could not start", job_id)
            quarantined = self.manager.note_failure(
                job_id, f"{type(exc).__name__}: {exc}")
            self.manager.transition(job_id, "failed",
                                    error=f"{type(exc).__name__}: {exc}",
                                    quarantined=quarantined,
                                    finished=time.time())
            return
        finally:
            if not abandoned:
                self._stops.pop(job_id, None)

        state = outcome.state
        if state == "interrupted" and job_id in self._cancelled:
            self._cancelled.discard(job_id)
            state = "cancelled"
        fields = {"finished": time.time()}
        if outcome.result is not None:
            fields["result"] = outcome.result
            fields["telemetry"] = outcome.telemetry
            fields["cache_hit"] = outcome.cache_hit
        if outcome.error is not None and state != "interrupted":
            fields["error"] = outcome.error
        if state == "done":
            self.manager.note_success(job_id)
        elif state == "failed":
            if self.manager.note_failure(job_id, outcome.error or "failed"):
                fields["quarantined"] = True
        if state == "interrupted":
            # Not terminal: stays resumable.  Don't record a finish
            # time or an error — the job is merely paused in its
            # journal until the next server start re-enqueues it.
            fields = {}
        self.manager.transition(job_id, state, **fields)
        logger.info("job %s -> %s", job_id, state)

    async def _watch(self, job_id: str, task: asyncio.Future,
                     stop: threading.Event):
        """Await the execution under the watchdog deadline.

        Returns the :class:`JobOutcome`, or ``None`` when the execution
        had to be *abandoned*: it ignored its stop event past the grace
        period, so the job was marked (resumable) ``interrupted`` — or
        ``failed`` once its hang strikes quarantine the digest — and
        the worker slot goes back to the pool.  The orphaned thread
        finishes on its own eventually; its late outcome is discarded.
        """
        deadline = self.config.hardening.job_deadline
        if deadline is None:
            return await task
        done, pending = await asyncio.wait({task}, timeout=deadline)
        if not pending:
            return task.result()

        # Deadline passed: ask nicely first (the engine parks at the
        # next shard boundary), then abandon.
        self.watchdog_fired += 1
        grace = self.config.hardening.watchdog_grace
        logger.warning("watchdog: job %s passed its %.1fs deadline; "
                       "stopping (grace %.1fs)", job_id, deadline, grace)
        self.manager.post_event(job_id, {
            "event": "watchdog", "action": "deadline",
            "deadline": deadline,
        })
        stop.set()
        quarantined = self.manager.note_failure(
            job_id, f"watchdog: exceeded {deadline:.1f}s deadline")
        done, pending = await asyncio.wait({task}, timeout=grace)
        if not pending:
            # Cooperative stop: the engine journaled and parked.  The
            # outcome is RunInterrupted -> "interrupted" (resumable)
            # unless the strikes just quarantined the digest.
            outcome = task.result()
            if quarantined and outcome.state == "interrupted":
                self.manager.transition(
                    job_id, "failed",
                    error=f"quarantined: hung past the {deadline:.1f}s "
                          f"deadline {self.manager.hardening.breaker_threshold} time(s)",
                    quarantined=True, finished=time.time())
                self._stops.pop(job_id, None)
                return None
            return outcome

        # Truly hung: reclaim the slot, orphan the thread.
        self.watchdog_abandoned += 1
        task.add_done_callback(_discard_result)
        self._stops.pop(job_id, None)
        self.manager.post_event(job_id, {
            "event": "watchdog", "action": "abandoned",
        })
        if quarantined:
            self.manager.transition(
                job_id, "failed",
                error=f"quarantined: hung past the {deadline:.1f}s "
                      f"deadline repeatedly",
                quarantined=True, finished=time.time())
        else:
            # Resumable: the journal holds every completed shard; the
            # next server start (or resubmit after failure) retries.
            self.manager.transition(job_id, "interrupted")
        logger.error("watchdog: job %s abandoned (slot reclaimed)", job_id)
        return None

    # -- HTTP ------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except _BadRequest as exc:
                await self._respond(writer, 400, error_body(str(exc)))
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            await self._route(writer, method, path, query, body)
        except ConnectionError:  # client went away mid-response
            pass
        except Exception:
            logger.exception("request handling failed")
            try:
                await self._respond(writer, 500,
                                    error_body("internal server error"))
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _BadRequest("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _BadRequest("malformed request line") from None
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            length = int(length)
        except ValueError:
            raise _BadRequest("malformed Content-Length") from None
        if length > _MAX_BODY_BYTES:
            raise _BadRequest(
                f"body exceeds {_MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return method.upper(), parts.path, query, body

    async def _route(self, writer, method: str, path: str,
                     query: dict, body: bytes) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, self._health())
            return
        if path == "/readyz" and method == "GET":
            ready, reasons = self._readiness()
            payload = {"ready": ready}
            if reasons:
                payload["reasons"] = reasons
            await self._respond(writer, 200 if ready else 503, payload)
            return
        if path == "/cache" and method == "GET":
            await self._respond(writer, 200, self.cache.stats())
            return
        if path == "/jobs" and method == "POST":
            await self._submit(writer, body)
            return
        if path == "/jobs" and method == "GET":
            summaries = [
                {k: v for k, v in r.public().items()
                 if k not in ("result", "telemetry", "spec")}
                for r in sorted(self.manager.jobs.values(),
                                key=lambda r: r.created)
            ]
            await self._respond(writer, 200, {"jobs": summaries})
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, action = rest.partition("/")
            record = self.manager.jobs.get(job_id)
            if record is None:
                await self._respond(writer, 404,
                                    error_body(f"no job {job_id!r}"))
                return
            if not action and method == "GET":
                await self._respond(writer, 200, record.public())
                return
            if action == "events" and method == "GET":
                await self._stream_events(writer, job_id, query)
                return
            if action == "cancel" and method == "POST":
                await self._cancel(writer, job_id)
                return
        await self._respond(writer, 404,
                            error_body(f"no route {method} {path}"))

    def _health(self) -> dict:
        """Liveness + the whole failure-containment picture.  Always
        200 while the loop answers — degradation is reported, not
        conflated with being down."""
        census: dict[str, int] = {}
        for r in self.manager.jobs.values():
            census[r.state] = census.get(r.state, 0) + 1
        busy = sum(1 for j in self._busy.values() if j is not None)
        alive = sum(1 for t in self._workers if not t.done())
        quarantine = self.manager.quarantine
        return {
            "status": "ok",
            "uptime_s": time.time() - self._started_at,
            "jobs": census,
            "queue": {
                "depth": self.manager.queued_depth(),
                "max": self.manager.hardening.max_queue,
            },
            "workers": {
                "total": self.config.workers,
                "busy": busy,
                "alive": alive,
            },
            "watchdog": {
                "fired": self.watchdog_fired,
                "abandoned": self.watchdog_abandoned,
            },
            "breakers": self.manager.breaker_states(),
            "shed": dict(self.manager.shed_counts),
            "quarantined": len(quarantine) if quarantine is not None else 0,
            "store": self.store.health(),
        }

    def _readiness(self) -> tuple[bool, list[str]]:
        """Ready = willing to take on new work right now.  A degraded
        store does NOT flip readiness — serving from memory is the
        degradation working, not a reason to pull the server out of
        rotation."""
        reasons = []
        if self._stopping.is_set():
            reasons.append("stopping")
        max_queue = self.manager.hardening.max_queue
        if (max_queue is not None
                and self.manager.queued_depth() >= max_queue):
            reasons.append("queue_full")
        if self._workers and all(t.done() for t in self._workers):
            reasons.append("no_live_workers")
        return (not reasons, reasons)

    async def _submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond(writer, 400,
                                error_body(f"body is not JSON: {exc}"))
            return
        try:
            spec = parse_job_spec(payload)
            record, created = self.manager.submit(spec)
        except SpecError as exc:
            await self._respond(
                writer, 400,
                error_body(f"invalid specification: {exc}"))
            return
        except Rejected as exc:
            retry_after = max(1, math.ceil(exc.retry_after))
            await self._respond(
                writer, exc.status,
                error_body(str(exc), code=exc.code,
                           retry_after=exc.retry_after),
                headers={"Retry-After": str(retry_after)})
            return
        response = record.public()
        response["created"] = created
        await self._respond(writer, 201 if created else 200, response)

    async def _cancel(self, writer, job_id: str) -> None:
        record = self.manager.jobs[job_id]
        if record.state == "queued":
            self.manager.transition(job_id, "cancelled")
        elif record.state == "running":
            self._cancelled.add(job_id)
            stop = self._stops.get(job_id)
            if stop is not None:
                stop.set()
            # state flips to cancelled when the worker drains.
        await self._respond(writer, 200, self.manager.jobs[job_id].public())

    async def _stream_events(self, writer, job_id: str,
                             query: dict) -> None:
        follow = query.get("follow") in ("1", "true", "yes")
        if not follow:
            lines = "".join(
                json.dumps(e, separators=(",", ":")) + "\n"
                for e in self.store.read_events(job_id)
            )
            await self._respond(writer, 200, lines,
                                content_type="application/x-ndjson")
            return
        # Streaming: close-delimited body, one JSON event per line.
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        index = 0
        while True:
            events = await self.manager.wait_for_events(job_id, index,
                                                        timeout=1.0)
            for event in events:
                writer.write(
                    json.dumps(event, separators=(",", ":")).encode()
                    + b"\n"
                )
            index += len(events)
            await writer.drain()
            record = self.manager.jobs.get(job_id)
            done = record is None or record.state in TERMINAL_STATES
            if (done and not events) or self._stopping.is_set():
                break

    async def _respond(self, writer, status: int, payload,
                       *, content_type: str = "application/json",
                       headers: dict | None = None) -> None:
        reason = {200: "OK", 201: "Created", 400: "Bad Request",
                  404: "Not Found", 429: "Too Many Requests",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        if isinstance(payload, (dict, list)):
            body = json.dumps(payload, separators=(",", ":")).encode()
        else:
            body = str(payload).encode()
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()


def _discard_result(task: asyncio.Future) -> None:
    """Swallow the late outcome of an abandoned execution so it never
    surfaces as an un-retrieved exception warning."""
    try:
        task.exception()
    except asyncio.CancelledError:  # pragma: no cover
        pass


def run_server(config: ServerConfig) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    server = MappingServer(config)
    asyncio.run(server.serve_forever())
    return 0
