"""Admission, deduplication and scheduling of jobs.

:class:`JobManager` is the single-writer brain of the server.  It lives
on the asyncio event loop; worker threads reach it only through
``loop.call_soon_threadsafe`` hops, so job state never needs a lock.

Deduplication is by content digest: two ``POST /jobs`` bodies that
canonicalize to the same engine run key are the *same search*, so the
second request attaches to the first job (or is answered instantly if
it already finished) instead of enqueueing duplicate work.  A failed or
cancelled job is re-armed by a new identical request — resubmitting is
the retry button.

Admission is per tenant: a :class:`TenantPolicy` caps how many jobs a
tenant may have in flight and hands each of its jobs a fresh
:class:`~repro.dse.checkpoint.RunBudget` (budgets are stateful timers,
so they are minted per run, never shared).
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass

from ..dse.checkpoint import RunBudget
from .protocol import RESUMABLE_STATES, TERMINAL_STATES, JobSpec
from .store import ID_LENGTH, JobRecord, JobStore

logger = logging.getLogger("repro.serve.queue")

__all__ = ["TenantPolicy", "TenantBusy", "JobManager"]


class TenantBusy(Exception):
    """Tenant is at its in-flight job cap (HTTP 429)."""


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission cap and resource ceilings.

    ``max_active`` bounds queued+running jobs; the rest mint the
    :class:`RunBudget` each of the tenant's jobs runs under.
    """

    max_active: int | None = None
    max_seconds: float | None = None
    max_shards: int | None = None
    max_bits: int | None = None

    def budget(self) -> RunBudget | None:
        """A fresh budget for one run (``None`` if unlimited).

        Fresh per run on purpose: ``RunBudget`` starts its wall clock
        when the run starts, and a resumed run gets a full budget again
        — the journal already guarantees resumed work is never re-paid.
        """
        if (self.max_seconds is None and self.max_shards is None
                and self.max_bits is None):
            return None
        return RunBudget(max_seconds=self.max_seconds,
                         max_shards=self.max_shards,
                         max_bits=self.max_bits)

    @classmethod
    def from_dict(cls, data: dict) -> TenantPolicy:
        known = {"max_active", "max_seconds", "max_shards", "max_bits"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown tenant policy field(s) {unknown}; "
                f"allowed: {sorted(known)}"
            )
        return cls(**data)


class JobManager:
    """Owns job records, the run queue, and progress-event fan-out.

    Every method (except the ``*_threadsafe`` hops) must run on the
    event loop thread.
    """

    def __init__(self, store: JobStore, *,
                 tenants: dict[str, TenantPolicy] | None = None) -> None:
        self.store = store
        self.tenants = dict(tenants or {})
        self.jobs: dict[str, JobRecord] = {}
        self.queue: asyncio.Queue[str] = asyncio.Queue()
        #: Per-job wakeup for event-stream followers; broadcast via
        #: replacing the event so every waiter sees each edge.
        self._event_waiters: dict[str, asyncio.Event] = {}
        self._loop: asyncio.AbstractEventLoop | None = None

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant) or self.tenants.get("default") \
            or TenantPolicy()

    # -- startup ---------------------------------------------------------

    def recover(self) -> int:
        """Reload persisted jobs and re-enqueue every non-terminal one.

        A job found ``running`` was in flight when the previous server
        died — its journal holds the completed shards, so it goes back
        on the queue with ``resume`` semantics, same as ``interrupted``
        and ``queued`` ones.  Returns how many jobs were re-enqueued.
        """
        requeued = 0
        for record in self.store.load_all():
            self.jobs[record.id] = record
            if record.state in RESUMABLE_STATES:
                if record.state != "queued":
                    record.state = "queued"
                    record.resumes += 1
                    self.store.save(record)
                self.queue.put_nowait(record.id)
                requeued += 1
                logger.info("recovered job %s (resume #%d)",
                            record.id, record.resumes)
        return requeued

    # -- admission -------------------------------------------------------

    def _active_for(self, tenant: str) -> int:
        return sum(
            1 for r in self.jobs.values()
            if r.tenant == tenant and r.state in ("queued", "running")
        )

    def submit(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        """Admit a validated spec; returns ``(record, created)``.

        ``created`` is False when the request deduplicated onto an
        existing queued/running/done job.  Raises :class:`TenantBusy`
        when the tenant is at its cap (dedup hits are exempt — they
        add no work).
        """
        digest = spec.digest
        job_id = digest[:ID_LENGTH]
        record = self.jobs.get(job_id)
        if record is not None and record.state not in ("failed", "cancelled"):
            if record.state not in TERMINAL_STATES:
                record.deduped += 1
                self.store.save(record)
                logger.info("deduplicated request onto job %s (%d so far)",
                            job_id, record.deduped)
            return record, False

        policy = self.policy_for(spec.tenant)
        if (policy.max_active is not None
                and self._active_for(spec.tenant) >= policy.max_active):
            raise TenantBusy(
                f"tenant {spec.tenant!r} already has "
                f"{policy.max_active} job(s) in flight"
            )

        if record is None:
            record = JobRecord(
                id=job_id, digest=digest, spec=spec.to_dict(),
                task=spec.task, tenant=spec.tenant,
            )
            self.jobs[job_id] = record
            created = True
        else:
            # failed/cancelled: identical resubmission re-arms the job.
            record.state = "queued"
            record.error = None
            record.finished = None
            created = False
        self.store.save(record)
        self.queue.put_nowait(job_id)
        return record, created

    # -- state transitions (event-loop thread) ---------------------------

    def transition(self, job_id: str, state: str, **fields) -> JobRecord:
        record = self.jobs[job_id]
        record.state = state
        for key, value in fields.items():
            setattr(record, key, value)
        self.store.save(record)
        self.post_event(job_id, {"event": "state", "state": state})
        return record

    # -- progress events -------------------------------------------------

    def post_event(self, job_id: str, event: dict) -> None:
        self.store.append_event(job_id, event)
        waiter = self._event_waiters.pop(job_id, None)
        if waiter is not None:
            waiter.set()

    def post_event_threadsafe(self, job_id: str, event: dict) -> None:
        """The worker-thread entry point for progress hooks."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self.post_event, job_id, event)
        except RuntimeError:  # loop shut down between check and call
            pass

    async def wait_for_events(self, job_id: str, start: int,
                              timeout: float = 10.0) -> list[dict]:
        """Events from ``start`` on, waiting up to ``timeout`` for new
        ones; an empty list means the follower should poll again (or
        the job reached a terminal state — caller checks)."""
        events = self.store.read_events(job_id, start)
        if events:
            return events
        waiter = self._event_waiters.get(job_id)
        if waiter is None:
            waiter = asyncio.Event()
            self._event_waiters[job_id] = waiter
        try:
            await asyncio.wait_for(waiter.wait(), timeout)
        except asyncio.TimeoutError:
            return []
        return self.store.read_events(job_id, start)
