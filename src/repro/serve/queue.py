"""Admission, deduplication and scheduling of jobs.

:class:`JobManager` is the single-writer brain of the server.  It lives
on the asyncio event loop; worker threads reach it only through
``loop.call_soon_threadsafe`` hops, so job state never needs a lock.

Deduplication is by content digest: two ``POST /jobs`` bodies that
canonicalize to the same engine run key are the *same search*, so the
second request attaches to the first job (or is answered instantly if
it already finished) instead of enqueueing duplicate work.  A failed or
cancelled job is re-armed by a new identical request — resubmitting is
the retry button.

Admission is layered (:mod:`repro.serve.hardening` supplies the
machinery), cheapest check first, and *new work only* — requests that
deduplicate onto an existing job are always admitted, they add nothing:

1. **quarantine** — a poison digest is answered from its recorded
   failure, never executed again;
2. **circuit breaker** — a tenant with ``breaker_threshold``
   consecutive failures is shed (503) until a cooldown passes, then
   one half-open probe decides;
3. **rate limit** — the tenant's token bucket (429 when empty);
4. **queue bound** — the server-wide cap on queued jobs (503);
5. **tenant cap** — ``max_active`` queued+running jobs (429).

Each of :class:`TenantPolicy`'s jobs also gets a fresh
:class:`~repro.dse.checkpoint.RunBudget` (budgets are stateful timers,
so they are minted per run, never shared).
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass

from ..dse.checkpoint import RunBudget
from .hardening import (
    BreakerOpen,
    CircuitBreaker,
    HardeningPolicy,
    QuarantineRegistry,
    QueueFull,
    RateLimited,
    Rejected,
    TokenBucket,
)
from .protocol import RESUMABLE_STATES, TERMINAL_STATES, JobSpec
from .store import ID_LENGTH, JobRecord, JobStore

logger = logging.getLogger("repro.serve.queue")

__all__ = ["TenantPolicy", "TenantBusy", "JobManager"]


class TenantBusy(Rejected):
    """Tenant is at its in-flight job cap (HTTP 429)."""

    status = 429
    code = "tenant_busy"


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission caps and resource ceilings.

    ``max_active`` bounds queued+running jobs; ``rate``/``burst``
    configure the tenant's submit token bucket (tokens per second and
    bucket depth); the rest mint the :class:`RunBudget` each of the
    tenant's jobs runs under.
    """

    max_active: int | None = None
    max_seconds: float | None = None
    max_shards: int | None = None
    max_bits: int | None = None
    rate: float | None = None
    burst: int | None = None

    def budget(self) -> RunBudget | None:
        """A fresh budget for one run (``None`` if unlimited).

        Fresh per run on purpose: ``RunBudget`` starts its wall clock
        when the run starts, and a resumed run gets a full budget again
        — the journal already guarantees resumed work is never re-paid.
        """
        if (self.max_seconds is None and self.max_shards is None
                and self.max_bits is None):
            return None
        return RunBudget(max_seconds=self.max_seconds,
                         max_shards=self.max_shards,
                         max_bits=self.max_bits)

    @classmethod
    def from_dict(cls, data: dict) -> TenantPolicy:
        known = {"max_active", "max_seconds", "max_shards", "max_bits",
                 "rate", "burst"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown tenant policy field(s) {unknown}; "
                f"allowed: {sorted(known)}"
            )
        return cls(**data)


class JobManager:
    """Owns job records, the run queue, and progress-event fan-out.

    Every method (except the ``*_threadsafe`` hops) must run on the
    event loop thread.
    """

    def __init__(self, store: JobStore, *,
                 tenants: dict[str, TenantPolicy] | None = None,
                 hardening: HardeningPolicy | None = None) -> None:
        self.store = store
        self.tenants = dict(tenants or {})
        self.hardening = hardening or HardeningPolicy()
        self.jobs: dict[str, JobRecord] = {}
        self.queue: asyncio.Queue[str] = asyncio.Queue()
        if self.hardening.breaker_threshold is not None:
            self.quarantine: QuarantineRegistry | None = QuarantineRegistry(
                store.root / "quarantine", self.hardening.breaker_threshold
            )
        else:
            self.quarantine = None
        self._breakers: dict[str, CircuitBreaker] = {}
        self._buckets: dict[str, TokenBucket] = {}
        #: Lifetime shed counts by rejection code, for /healthz.
        self.shed_counts: dict[str, int] = {}
        #: Per-job wakeup for event-stream followers; broadcast via
        #: replacing the event so every waiter sees each edge.
        self._event_waiters: dict[str, asyncio.Event] = {}
        self._loop: asyncio.AbstractEventLoop | None = None

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant) or self.tenants.get("default") \
            or TenantPolicy()

    def breaker_for(self, tenant: str) -> CircuitBreaker | None:
        if self.hardening.breaker_threshold is None:
            return None
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(self.hardening.breaker_threshold,
                                     self.hardening.breaker_cooldown)
            self._breakers[tenant] = breaker
        return breaker

    def _bucket_for(self, tenant: str) -> TokenBucket | None:
        policy = self.policy_for(tenant)
        if policy.rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(policy.rate, policy.burst)
            self._buckets[tenant] = bucket
        return bucket

    # -- health ----------------------------------------------------------

    def queued_depth(self) -> int:
        return sum(1 for r in self.jobs.values() if r.state == "queued")

    def breaker_states(self) -> dict:
        return {
            tenant: {"state": b.state, "opened_total": b.opened_total}
            for tenant, b in sorted(self._breakers.items())
        }

    # -- startup ---------------------------------------------------------

    def recover(self) -> int:
        """Reload persisted jobs and re-enqueue every non-terminal one.

        A job found ``running`` was in flight when the previous server
        died — its journal holds the completed shards, so it goes back
        on the queue with ``resume`` semantics, same as ``interrupted``
        and ``queued`` ones.  Quarantined digests are the exception:
        their recorded failure is the answer, so they are *not* re-run
        even across a restart.  Returns how many jobs were re-enqueued.
        """
        requeued = 0
        for record in self.store.load_all():
            self.jobs[record.id] = record
            if (self.quarantine is not None
                    and self.quarantine.get(record.digest) is not None):
                if record.state in RESUMABLE_STATES or not record.quarantined:
                    entry = self.quarantine.get(record.digest)
                    record.state = "failed"
                    record.quarantined = True
                    if record.error is None and entry["errors"]:
                        record.error = entry["errors"][-1]
                    self.store.save(record)
                    logger.info("job %s stays quarantined across restart",
                                record.id)
                continue
            if record.state in RESUMABLE_STATES:
                if record.state != "queued":
                    record.state = "queued"
                    record.resumes += 1
                    self.store.save(record)
                self.queue.put_nowait(record.id)
                requeued += 1
                logger.info("recovered job %s (resume #%d)",
                            record.id, record.resumes)
        return requeued

    # -- admission -------------------------------------------------------

    def _active_for(self, tenant: str) -> int:
        return sum(
            1 for r in self.jobs.values()
            if r.tenant == tenant and r.state in ("queued", "running")
        )

    def _shed(self, exc: Rejected) -> Rejected:
        self.shed_counts[exc.code] = self.shed_counts.get(exc.code, 0) + 1
        logger.info("shed submit (%s): %s", exc.code, exc)
        return exc

    def submit(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        """Admit a validated spec; returns ``(record, created)``.

        ``created`` is False when the request deduplicated onto an
        existing queued/running/done job, or when the digest is
        quarantined (the returned record carries the recorded failure).
        Raises a :class:`~repro.serve.hardening.Rejected` subclass when
        the submit is shed (dedup hits are exempt — they add no work).
        """
        digest = spec.digest
        job_id = digest[:ID_LENGTH]
        record = self.jobs.get(job_id)

        if self.quarantine is not None:
            entry = self.quarantine.get(digest)
            if entry is not None:
                # Poison: answer from the recorded failure, never
                # re-execute.  Synthesize a record if the jobs dir was
                # lost but the registry survived.
                if record is None:
                    record = JobRecord(
                        id=job_id, digest=digest, spec=spec.to_dict(),
                        task=spec.task, tenant=spec.tenant,
                        state="failed", error=entry["errors"][-1]
                        if entry["errors"] else "quarantined",
                        quarantined=True,
                    )
                    self.jobs[job_id] = record
                    self.store.save(record)
                elif not record.quarantined:
                    record.quarantined = True
                    self.store.save(record)
                logger.info("answered quarantined digest %s from its "
                            "failure record", job_id)
                return record, False

        if record is not None and record.state not in ("failed", "cancelled"):
            if record.state not in TERMINAL_STATES:
                record.deduped += 1
                self.store.save(record)
                logger.info("deduplicated request onto job %s (%d so far)",
                            job_id, record.deduped)
            return record, False

        # New work from here on: the shedding ladder applies.
        breaker = self.breaker_for(spec.tenant)
        if breaker is not None:
            wait = breaker.allow()
            if wait > 0:
                raise self._shed(BreakerOpen(
                    f"tenant {spec.tenant!r} breaker is open after "
                    f"repeated failures", retry_after=wait))

        bucket = self._bucket_for(spec.tenant)
        if bucket is not None:
            wait = bucket.try_acquire()
            if wait > 0:
                raise self._shed(RateLimited(
                    f"tenant {spec.tenant!r} is over its submit rate",
                    retry_after=max(wait, 0.001)))

        if (self.hardening.max_queue is not None
                and self.queued_depth() >= self.hardening.max_queue):
            raise self._shed(QueueFull(
                f"pending queue is full ({self.hardening.max_queue} "
                f"job(s)); retry later",
                retry_after=self.hardening.retry_after))

        policy = self.policy_for(spec.tenant)
        if (policy.max_active is not None
                and self._active_for(spec.tenant) >= policy.max_active):
            raise self._shed(TenantBusy(
                f"tenant {spec.tenant!r} already has "
                f"{policy.max_active} job(s) in flight",
                retry_after=self.hardening.retry_after))

        if record is None:
            record = JobRecord(
                id=job_id, digest=digest, spec=spec.to_dict(),
                task=spec.task, tenant=spec.tenant,
            )
            self.jobs[job_id] = record
            created = True
        else:
            # failed/cancelled: identical resubmission re-arms the job.
            record.state = "queued"
            record.error = None
            record.finished = None
            created = False
        self.store.save(record)
        self.queue.put_nowait(job_id)
        return record, created

    # -- failure containment feedback ------------------------------------

    def note_success(self, job_id: str) -> None:
        """A job finished ``done``: close the loop on breaker and
        quarantine strikes."""
        record = self.jobs[job_id]
        breaker = self.breaker_for(record.tenant)
        if breaker is not None:
            breaker.record_success()
        if self.quarantine is not None:
            self.quarantine.clear(record.digest)

    def note_failure(self, job_id: str, error: str) -> bool:
        """A job failed (or hung past its watchdog deadline): count the
        strike.  Returns True when the digest is now quarantined — the
        caller should surface the job as terminally failed."""
        record = self.jobs[job_id]
        breaker = self.breaker_for(record.tenant)
        if breaker is not None:
            breaker.record_failure()
        if self.quarantine is None:
            return False
        quarantined = self.quarantine.record_failure(record.digest, error)
        if quarantined:
            record.quarantined = True
        return quarantined

    # -- state transitions (event-loop thread) ---------------------------

    def transition(self, job_id: str, state: str, **fields) -> JobRecord:
        record = self.jobs[job_id]
        record.state = state
        for key, value in fields.items():
            setattr(record, key, value)
        self.store.save(record)
        self.post_event(job_id, {"event": "state", "state": state})
        return record

    # -- progress events -------------------------------------------------

    def post_event(self, job_id: str, event: dict) -> None:
        self.store.append_event(job_id, event)
        waiter = self._event_waiters.pop(job_id, None)
        if waiter is not None:
            waiter.set()

    def post_event_threadsafe(self, job_id: str, event: dict) -> None:
        """The worker-thread entry point for progress hooks."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self.post_event, job_id, event)
        except RuntimeError:  # loop shut down between check and call
            pass

    async def wait_for_events(self, job_id: str, start: int,
                              timeout: float = 10.0) -> list[dict]:
        """Events from ``start`` on, waiting up to ``timeout`` for new
        ones; an empty list means the follower should poll again (or
        the job reached a terminal state — caller checks)."""
        events = self.store.read_events(job_id, start)
        if events:
            return events
        waiter = self._event_waiters.get(job_id)
        if waiter is None:
            waiter = asyncio.Event()
            self._event_waiters[job_id] = waiter
        try:
            await asyncio.wait_for(waiter.wait(), timeout)
        except asyncio.TimeoutError:
            return []
        return self.store.read_events(job_id, start)
