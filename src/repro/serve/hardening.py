"""Failure containment for the mapping service.

The DSE engine already survives its own failure modes — shard crashes
retry (:mod:`repro.dse.resilience`), kills resume from the journal
(:mod:`repro.dse.checkpoint`) — but without this layer every one of
them can still take the *server* down or degrade it silently: an
unbounded queue accepts until memory dies, a spec that reliably crashes
the engine is happily re-executed on every resubmit, a hung search pins
a worker slot forever.  This module is the containment layer between
the HTTP front door and the engine:

* :class:`HardeningPolicy` — the knobs (queue bound, per-job deadline,
  breaker threshold/cooldown), validated at construction.
* :class:`TokenBucket` — per-tenant submit rate limiting.
* :class:`CircuitBreaker` — per-tenant closed → open → half-open
  breaker: a tenant whose jobs keep failing stops being admitted until
  a cooldown passes, then one probe job decides whether to re-close.
* :class:`QuarantineRegistry` — per-digest failure strikes, persisted;
  a spec that fails :attr:`~HardeningPolicy.breaker_threshold` times is
  *poison* and is never executed again — resubmission answers from the
  recorded failure.
* :class:`Rejected` and friends — typed load-shedding rejections, each
  carrying the HTTP status and a ``Retry-After`` hint the server
  returns verbatim.
* ``$REPRO_SERVE_FAULT`` — deterministic chaos injection, same style
  as the engine's ``$REPRO_DSE_FAULT``: ``crash`` / ``hang`` fire in
  the execution bridge, ``disk_full`` / ``corrupt_store`` in the
  :class:`~repro.serve.store.JobStore` write paths.  Each fires once
  per process unless suffixed ``:always``.

Everything here is stdlib-only and loop-agnostic: the classes are
plain objects the single-threaded :class:`~repro.serve.queue.JobManager`
drives, so none of them need locks beyond the fault bookkeeping.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

logger = logging.getLogger("repro.serve.hardening")

__all__ = [
    "FAULT_ENV_VAR",
    "FAULT_HANG_ENV_VAR",
    "FAULT_MODES",
    "take_fault",
    "reset_fault_state",
    "Rejected",
    "QueueFull",
    "RateLimited",
    "BreakerOpen",
    "HardeningPolicy",
    "TokenBucket",
    "CircuitBreaker",
    "QuarantineRegistry",
]


# -- chaos injection ---------------------------------------------------------

#: ``mode[:always]`` with mode in :data:`FAULT_MODES`.  Without
#: ``always`` the fault fires exactly once per process — enough to
#: poison one execution and then watch the containment machinery work.
FAULT_ENV_VAR = "REPRO_SERVE_FAULT"

#: How long a ``hang`` fault sleeps, in seconds (default 30).  The
#: watchdog abandons the hung execution long before that; the sleep
#: only bounds how long the orphaned thread lingers.
FAULT_HANG_ENV_VAR = "REPRO_SERVE_FAULT_HANG"

FAULT_MODES = ("crash", "hang", "disk_full", "corrupt_store")

_fired: set[str] = set()
_fired_lock = threading.Lock()


def _parse_fault_spec(raw: str | None) -> tuple[str, bool] | None:
    """``(mode, always)`` from a ``$REPRO_SERVE_FAULT`` value."""
    if not raw:
        return None
    parts = raw.split(":")
    if parts[0] not in FAULT_MODES or len(parts) > 2 or (
            len(parts) == 2 and parts[1] != "always"):
        raise ValueError(
            f"bad {FAULT_ENV_VAR} value {raw!r}; expected "
            f"'mode[:always]' with mode in {FAULT_MODES}"
        )
    return parts[0], len(parts) == 2


def take_fault(point: str) -> bool:
    """True when the configured fault targets ``point`` and should fire.

    ``point`` is one of :data:`FAULT_MODES`.  A one-shot fault (no
    ``:always``) is consumed by the first call that matches it.
    """
    spec = _parse_fault_spec(os.environ.get(FAULT_ENV_VAR))
    if spec is None or spec[0] != point:
        return False
    mode, always = spec
    if always:
        return True
    with _fired_lock:
        if mode in _fired:
            return False
        _fired.add(mode)
        return True


def reset_fault_state() -> None:
    """Forget which one-shot faults already fired (tests only)."""
    with _fired_lock:
        _fired.clear()


# -- load-shedding rejections ------------------------------------------------


class Rejected(Exception):
    """A submit the server refuses to take on right now.

    Not an error in the spec — the work is valid, the server is simply
    protecting itself.  Carries everything the HTTP layer needs for a
    well-formed shed response: the status, a machine-readable ``code``
    and the ``Retry-After`` hint in seconds.
    """

    status = 503
    code = "rejected"

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QueueFull(Rejected):
    """The bounded pending queue is at capacity (HTTP 503)."""

    status = 503
    code = "queue_full"


class RateLimited(Rejected):
    """The tenant's token bucket is empty (HTTP 429)."""

    status = 429
    code = "rate_limited"


class BreakerOpen(Rejected):
    """The tenant's circuit breaker is open (HTTP 503)."""

    status = 503
    code = "breaker_open"


# -- policy -------------------------------------------------------------------


@dataclass(frozen=True)
class HardeningPolicy:
    """The failure-containment knobs, validated at construction.

    Attributes
    ----------
    max_queue:
        Server-wide bound on *queued* jobs (running jobs don't count —
        they hold worker slots, not queue space).  Submits past the
        bound are shed with 503 + ``Retry-After`` instead of buffering
        without limit.  ``None`` disables the bound.
    job_deadline:
        Per-job wall-clock seconds before the watchdog steps in: it
        asks the search to stop (the engine parks at the next shard
        boundary, resumable), and if the execution ignores even that
        for ``watchdog_grace`` seconds, abandons it and reclaims the
        worker slot.  Composes with per-tenant ``RunBudget``s — the
        budget is the engine's own cooperative stop; the watchdog is
        the server's backstop for executions too wedged to cooperate.
        ``None`` disables the watchdog.
    watchdog_grace:
        Seconds between the watchdog's stop request and abandoning the
        execution outright.
    breaker_threshold:
        Failures before containment trips — both meanings on purpose:
        a *digest* that fails this many times total is quarantined as
        poison (never executed again), and a *tenant* with this many
        consecutive failures has its breaker opened.  ``None`` disables
        breaker and quarantine.
    breaker_cooldown:
        Seconds an open breaker waits before admitting one half-open
        probe job.
    retry_after:
        Default ``Retry-After`` hint (seconds) on shed responses that
        have no better estimate of their own.
    """

    max_queue: int | None = 256
    job_deadline: float | None = None
    watchdog_grace: float = 2.0
    breaker_threshold: int | None = 3
    breaker_cooldown: float = 30.0
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError(
                f"max_queue must be >= 1 or None, got {self.max_queue}")
        if self.job_deadline is not None and self.job_deadline <= 0:
            raise ValueError(
                f"job_deadline must be > 0 or None, got {self.job_deadline}")
        if self.watchdog_grace < 0:
            raise ValueError(
                f"watchdog_grace must be >= 0, got {self.watchdog_grace}")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError(
                "breaker_threshold must be >= 1 or None, got "
                f"{self.breaker_threshold}")
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, got {self.breaker_cooldown}")
        if self.retry_after <= 0:
            raise ValueError(
                f"retry_after must be > 0, got {self.retry_after}")

    @classmethod
    def disabled(cls) -> "HardeningPolicy":
        """Everything off — the pre-hardening server, for baselines."""
        return cls(max_queue=None, job_deadline=None, breaker_threshold=None)


# -- token bucket -------------------------------------------------------------


class TokenBucket:
    """A classic token bucket on the monotonic clock.

    ``rate`` tokens are refilled per second up to ``burst``; each
    admitted submit spends one.  :meth:`try_acquire` never blocks — it
    returns how long the caller should wait, which becomes the
    ``Retry-After`` hint.
    """

    def __init__(self, rate: float, burst: int | None = None,
                 *, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/s, got {rate}")
        if burst is None:
            burst = max(1, int(rate))
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self) -> float:
        """Take one token; 0.0 on success, else seconds until one."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


# -- circuit breaker ----------------------------------------------------------


class CircuitBreaker:
    """Per-tenant closed → open → half-open → closed breaker.

    ``threshold`` *consecutive* failures open the breaker: the tenant's
    submits are shed for ``cooldown`` seconds.  After the cooldown one
    probe job is admitted (half-open); its success closes the breaker,
    its failure re-opens it for another cooldown.
    """

    def __init__(self, threshold: int, cooldown: float,
                 *, clock=time.monotonic) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        #: Lifetime counts, surfaced on /healthz.
        self.opened_total = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half_open"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half_open"
        return "open"

    def allow(self) -> float:
        """Admit or shed one submit; 0.0 admits, else retry-after secs.

        Admitting from the half-open state claims the probe slot:
        further submits are shed until the probe's outcome is recorded.
        """
        if self._opened_at is None:
            return 0.0
        elapsed = self._clock() - self._opened_at
        if elapsed < self.cooldown:
            return max(self.cooldown - elapsed, 0.001)
        if self._probing:
            return max(self.cooldown, 0.001)
        self._probing = True  # this submit is the half-open probe
        return 0.0

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._failures += 1
        if self._probing or self._failures >= self.threshold:
            # A failed probe re-opens immediately; so does crossing the
            # threshold while closed.
            if self._opened_at is None or self._probing:
                self.opened_total += 1
            self._opened_at = self._clock()
            self._probing = False
            self._failures = 0


# -- poison-job quarantine ------------------------------------------------------


class QuarantineRegistry:
    """Per-digest failure strikes, persisted under the state directory.

    A digest that accumulates ``threshold`` strikes is quarantined:
    the registry records the final failure and the server answers any
    future submit of that digest from the record instead of burning
    another worker on it.  Strikes survive restarts (one small JSON
    file per digest), so a poison spec is executed at most
    ``threshold`` times *ever*, not per server generation.

    Disk writes are best-effort: a registry that cannot persist keeps
    full fidelity in memory and the server keeps running — this layer
    must never be the thing that takes the service down.
    """

    def __init__(self, root: str | os.PathLike, threshold: int) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.root = Path(root)
        self.threshold = threshold
        self._entries: dict[str, dict] = {}
        self.write_errors = 0
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            paths = sorted(self.root.glob("*.json"))
        except OSError as exc:
            logger.warning("quarantine registry unreadable (%s); "
                           "starting empty, memory-only", exc)
            paths = []
        for path in paths:
            try:
                with open(path, encoding="utf-8") as fh:
                    entry = json.load(fh)
                digest = entry["digest"]
            except (OSError, ValueError, TypeError, KeyError) as exc:
                logger.warning("ignoring damaged quarantine entry %s: %s",
                               path, exc)
                continue
            self._entries[digest] = entry

    def __len__(self) -> int:
        return sum(1 for e in self._entries.values() if e.get("quarantined"))

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest[:32]}.json"

    def _persist(self, entry: dict) -> None:
        try:
            tmp = self._path(entry["digest"]).with_suffix(".json.tmp")
            tmp.write_text(json.dumps(entry, separators=(",", ":")),
                           encoding="utf-8")
            os.replace(tmp, self._path(entry["digest"]))
        except OSError as exc:
            self.write_errors += 1
            logger.warning("quarantine entry for %s kept memory-only: %s",
                           entry["digest"][:16], exc)

    def record_failure(self, digest: str, error: str) -> bool:
        """Add one strike; returns True when the digest is (now)
        quarantined."""
        entry = self._entries.get(digest)
        if entry is None:
            entry = {"digest": digest, "strikes": 0, "errors": [],
                     "quarantined": False}
            self._entries[digest] = entry
        if entry["quarantined"]:
            return True
        entry["strikes"] += 1
        entry["errors"] = (entry["errors"] + [error])[-3:]
        entry["quarantined"] = entry["strikes"] >= self.threshold
        if entry["quarantined"]:
            entry["quarantined_at"] = time.time()
            logger.warning("digest %s quarantined after %d failure(s): %s",
                           digest[:16], entry["strikes"], error)
        self._persist(entry)
        return entry["quarantined"]

    def get(self, digest: str) -> dict | None:
        """The quarantine record, or ``None`` if the digest may run."""
        entry = self._entries.get(digest)
        if entry is not None and entry.get("quarantined"):
            return entry
        return None

    def strikes(self, digest: str) -> int:
        entry = self._entries.get(digest)
        return entry["strikes"] if entry else 0

    def clear(self, digest: str) -> None:
        """A success wipes the slate (strikes were transient flakes)."""
        if self._entries.pop(digest, None) is not None:
            try:
                self._path(digest).unlink(missing_ok=True)
            except OSError:
                self.write_errors += 1
