"""Durable state of the mapping service: job records and event logs.

Layout under the server's state directory::

    state/
      jobs/<id>.json        one record per job, atomic tmp + os.replace
      journals/<id>.ckpt    the job's CheckpointJournal (engine-owned)
      events/<id>.jsonl     append-only progress events, torn-tail tolerant

The job id **is** a prefix of the job's content digest, which in turn
is the engine's cache/journal key — one identity from HTTP request to
on-disk shard checkpoint.  Records are rewritten in full on every state
transition (they are small); the event log is append-only so followers
can stream it.  Both use the same durability discipline as the rest of
the repo: records go through a temp file and :func:`os.replace` so a
crash never leaves a torn record, and a record that fails to parse on
startup is quarantined aside (``*.json.corrupt``) rather than taking
the whole server down.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .protocol import JOB_STATES

logger = logging.getLogger("repro.serve.store")

__all__ = ["JobRecord", "JobStore", "ID_LENGTH"]

#: Job ids are digest prefixes: long enough that collisions would need
#: ~2^32 distinct specs, short enough to read aloud.
ID_LENGTH = 16


@dataclass
class JobRecord:
    """Everything the service knows about one job.

    ``result`` holds the :func:`~repro.serve.protocol.encode_result`
    encoding (deterministic, comparable); ``telemetry`` holds the
    non-deterministic ``SearchStats`` sidecar (wall time, shard/resume
    counts) that must never participate in equality.
    """

    id: str
    digest: str
    spec: dict
    task: str
    tenant: str = "default"
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    result: dict | None = None
    error: str | None = None
    telemetry: dict | None = None
    #: How many times the server (re)started this search with
    #: ``resume=True`` after the first attempt — restarts survived.
    resumes: int = 0
    #: How many identical requests were coalesced onto this job.
    deduped: int = 0
    cache_hit: bool = False

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> JobRecord:
        known = {f for f in cls.__dataclass_fields__}
        record = cls(**{k: v for k, v in data.items() if k in known})
        if record.state not in JOB_STATES:
            raise ValueError(f"unknown job state {record.state!r}")
        return record

    def public(self) -> dict:
        """The ``GET /jobs/{id}`` view (wire names, no internals)."""
        out = {
            "id": self.id,
            "digest": self.digest,
            "task": self.task,
            "tenant": self.tenant,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "resumes": self.resumes,
            "deduped": self.deduped,
            "cache_hit": self.cache_hit,
            "spec": self.spec,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        return out


class JobStore:
    """Filesystem-backed job state under one root directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.journals_dir = self.root / "journals"
        self.events_dir = self.root / "events"
        for d in (self.jobs_dir, self.journals_dir, self.events_dir):
            d.mkdir(parents=True, exist_ok=True)

    # -- job records -----------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def save(self, record: JobRecord) -> None:
        """Persist ``record`` atomically and durably.

        fsync before the rename: a job that claims ``done`` after a
        power cut must actually hold its result.
        """
        path = self._record_path(record.id)
        fd, tmp = tempfile.mkstemp(dir=self.jobs_dir, prefix=".tmp-",
                                   suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record.to_dict(), fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self, job_id: str) -> JobRecord | None:
        """The stored record, or ``None``; damaged records are moved
        aside (``*.json.corrupt``) so they can be inspected but never
        wedge the server."""
        path = self._record_path(job_id)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
            return JobRecord.from_dict(data)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, TypeError) as exc:
            logger.warning("quarantining damaged job record %s: %s", path, exc)
            try:
                path.replace(path.with_name(path.name + ".corrupt"))
            except OSError:
                pass
            return None

    def load_all(self) -> list[JobRecord]:
        """Every readable job record, oldest first."""
        records = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            if path.name.startswith("."):
                continue
            record = self.load(path.stem)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: r.created)
        return records

    # -- engine artifacts ------------------------------------------------

    def journal_path(self, job_id: str) -> Path:
        """Where the job's :class:`CheckpointJournal` lives.  The
        engine owns the format; the store only names the file."""
        return self.journals_dir / f"{job_id}.ckpt"

    # -- event log -------------------------------------------------------

    def events_path(self, job_id: str) -> Path:
        return self.events_dir / f"{job_id}.jsonl"

    def append_event(self, job_id: str, event: dict) -> None:
        """Append one progress event.  Flushed but not fsynced — events
        are a telemetry stream, not the source of truth; losing the
        tail on a crash is acceptable where losing a result is not."""
        stamped = {"ts": time.time(), **event}
        with open(self.events_path(job_id), "a", encoding="utf-8") as fh:
            fh.write(json.dumps(stamped, separators=(",", ":")) + "\n")

    def read_events(self, job_id: str, start: int = 0) -> list[dict]:
        """Events from index ``start`` on.  A torn final line (writer
        died mid-append) is silently dropped, mirroring the journal's
        torn-tail tolerance."""
        path = self.events_path(job_id)
        events: list[dict] = []
        try:
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    if not line.endswith("\n"):
                        break
                    try:
                        events.append(json.loads(line))
                    except json.JSONDecodeError:
                        break
        except FileNotFoundError:
            pass
        return events[start:]
