"""Durable state of the mapping service: job records and event logs.

Layout under the server's state directory::

    state/
      jobs/<id>.json        one record per job, atomic tmp + os.replace
      journals/<id>.ckpt    the job's CheckpointJournal (engine-owned)
      events/<id>.jsonl     append-only progress events, torn-tail tolerant
      quarantine/<digest>.json   poison-job registry (hardening-owned)

The job id **is** a prefix of the job's content digest, which in turn
is the engine's cache/journal key — one identity from HTTP request to
on-disk shard checkpoint.  Records are rewritten in full on every state
transition (they are small); the event log is append-only so followers
can stream it.  Both use the same durability discipline as the rest of
the repo: records go through a temp file and :func:`os.replace` so a
crash never leaves a torn record, and a record that fails to parse on
startup is quarantined aside (``*.json.corrupt``) rather than taking
the whole server down.

Disk faults degrade, never crash.  A write that fails with ENOSPC/EIO
(or any other ``OSError``) parks the record or event in an in-memory
overlay, flags the record ``degraded``, and the server keeps answering
from memory; the overlay drains back to disk as soon as a later write
of the same record succeeds.  An ``fsync`` failure is treated as worse
than a plain write failure: the bytes may or may not be durable, so the
on-disk record is *quarantined* aside (``*.json.fsyncfail``) and the
in-memory copy becomes the only trusted one.  :meth:`JobStore.health`
reports all of it for ``GET /healthz``.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .hardening import take_fault
from .protocol import JOB_STATES

logger = logging.getLogger("repro.serve.store")

__all__ = ["JobRecord", "JobStore", "ID_LENGTH"]

#: Job ids are digest prefixes: long enough that collisions would need
#: ~2^32 distinct specs, short enough to read aloud.
ID_LENGTH = 16


@dataclass
class JobRecord:
    """Everything the service knows about one job.

    ``result`` holds the :func:`~repro.serve.protocol.encode_result`
    encoding (deterministic, comparable); ``telemetry`` holds the
    non-deterministic ``SearchStats`` sidecar (wall time, shard/resume
    counts) that must never participate in equality.
    """

    id: str
    digest: str
    spec: dict
    task: str
    tenant: str = "default"
    state: str = "queued"
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    result: dict | None = None
    error: str | None = None
    telemetry: dict | None = None
    #: How many times the server (re)started this search with
    #: ``resume=True`` after the first attempt — restarts survived.
    resumes: int = 0
    #: How many identical requests were coalesced onto this job.
    deduped: int = 0
    cache_hit: bool = False
    #: The digest is poison (failed ``breaker_threshold`` times); the
    #: record answers resubmissions, the search never runs again.
    quarantined: bool = False
    #: The record could not be durably persisted (disk fault); it lives
    #: in the store's in-memory overlay until disk recovers.
    degraded: bool = False

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> JobRecord:
        known = {f for f in cls.__dataclass_fields__}
        record = cls(**{k: v for k, v in data.items() if k in known})
        if record.state not in JOB_STATES:
            raise ValueError(f"unknown job state {record.state!r}")
        return record

    def public(self) -> dict:
        """The ``GET /jobs/{id}`` view (wire names, no internals)."""
        out = {
            "id": self.id,
            "digest": self.digest,
            "task": self.task,
            "tenant": self.tenant,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "resumes": self.resumes,
            "deduped": self.deduped,
            "cache_hit": self.cache_hit,
            "quarantined": self.quarantined,
            "degraded": self.degraded,
            "spec": self.spec,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        return out


class JobStore:
    """Filesystem-backed job state under one root directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.journals_dir = self.root / "journals"
        self.events_dir = self.root / "events"
        for d in (self.jobs_dir, self.journals_dir, self.events_dir):
            d.mkdir(parents=True, exist_ok=True)
        #: Records that could not be persisted; memory is authoritative
        #: for these until a later save of the same id succeeds.
        self._memory_records: dict[str, JobRecord] = {}
        #: Per-job event tails that could not be appended to disk.
        #: Sticky per job: once a job's events degrade, its later
        #: events stay in memory too, so the disk + memory concatenation
        #: keeps its order.
        self._memory_events: dict[str, list[dict]] = {}
        self.write_errors = 0
        self.degraded_since: float | None = None

    # -- health ----------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return bool(self._memory_records or self._memory_events)

    def health(self) -> dict:
        """The store block of ``GET /healthz``."""
        return {
            "ok": not self.degraded,
            "degraded": self.degraded,
            "write_errors": self.write_errors,
            "memory_records": len(self._memory_records),
            "memory_event_jobs": len(self._memory_events),
            "degraded_since": self.degraded_since,
        }

    def _note_write_failure(self, what: str, exc: OSError) -> None:
        self.write_errors += 1
        if self.degraded_since is None:
            self.degraded_since = time.time()
        errname = getattr(exc, "strerror", None) or str(exc)
        logger.warning("store degraded: %s write failed (%s); "
                       "continuing from memory", what, errname)

    # -- job records -----------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def save(self, record: JobRecord) -> None:
        """Persist ``record`` atomically and durably — or degrade.

        fsync before the rename: a job that claims ``done`` after a
        power cut must actually hold its result.  Any ``OSError`` on
        the way (ENOSPC, EIO, ...) never propagates: the record is
        parked in the in-memory overlay with ``degraded=True`` and the
        server keeps running.  A *failed fsync* is special — the bytes
        already written have unknown durability, so the current on-disk
        record is quarantined aside (``*.json.fsyncfail``) rather than
        trusted.
        """
        if take_fault("disk_full"):
            self._degrade_record(record, "save",
                                 OSError(28, "injected disk_full"))
            return
        path = self._record_path(record.id)
        payload = json.dumps(record.to_dict(), separators=(",", ":"))
        if take_fault("corrupt_store"):
            payload = payload[: max(1, len(payload) // 2)]  # torn JSON
        synced = False
        try:
            fd, tmp = tempfile.mkstemp(dir=self.jobs_dir, prefix=".tmp-",
                                       suffix=".json")
        except OSError as exc:
            self._degrade_record(record, "save", exc)
            return
        try:
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                    synced = True
                os.replace(tmp, path)
            except OSError as exc:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                if not synced:
                    # fsync (or an earlier write) failed: the on-disk
                    # record's lineage is broken — quarantine it.
                    self._quarantine_unsynced(path)
                self._degrade_record(record, "save", exc)
                return
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # Disk took the write: this record is durable again.
        if record.degraded or record.id in self._memory_records:
            self._memory_records.pop(record.id, None)
            if record.degraded:
                record.degraded = False
                self.save(record)  # rewrite with the flag cleared
                return
        if not self.degraded:
            self.degraded_since = None

    def _quarantine_unsynced(self, path: Path) -> None:
        """Move a record whose replacement failed mid-durability aside."""
        try:
            if path.exists():
                path.replace(path.with_name(path.name + ".fsyncfail"))
                logger.warning("quarantined possibly-stale record %s", path)
        except OSError:
            pass

    def _degrade_record(self, record: JobRecord, what: str,
                        exc: OSError) -> None:
        record.degraded = True
        self._memory_records[record.id] = record
        self._note_write_failure(what, exc)

    def load(self, job_id: str) -> JobRecord | None:
        """The stored record, or ``None``; damaged records are moved
        aside (``*.json.corrupt``) so they can be inspected but never
        wedge the server.  The in-memory overlay wins — it is newer
        than anything on disk by construction."""
        overlay = self._memory_records.get(job_id)
        if overlay is not None:
            return overlay
        path = self._record_path(job_id)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
            return JobRecord.from_dict(data)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, TypeError) as exc:
            logger.warning("quarantining damaged job record %s: %s", path, exc)
            try:
                path.replace(path.with_name(path.name + ".corrupt"))
            except OSError:
                pass
            return None

    def load_all(self) -> list[JobRecord]:
        """Every readable job record, oldest first."""
        records = []
        seen = set()
        for path in sorted(self.jobs_dir.glob("*.json")):
            if path.name.startswith("."):
                continue
            record = self.load(path.stem)
            if record is not None:
                records.append(record)
                seen.add(record.id)
        for job_id, record in self._memory_records.items():
            if job_id not in seen:
                records.append(record)
        records.sort(key=lambda r: r.created)
        return records

    # -- engine artifacts ------------------------------------------------

    def journal_path(self, job_id: str) -> Path:
        """Where the job's :class:`CheckpointJournal` lives.  The
        engine owns the format; the store only names the file."""
        return self.journals_dir / f"{job_id}.ckpt"

    # -- event log -------------------------------------------------------

    def events_path(self, job_id: str) -> Path:
        return self.events_dir / f"{job_id}.jsonl"

    def append_event(self, job_id: str, event: dict) -> None:
        """Append one progress event.  Flushed but not fsynced — events
        are a telemetry stream, not the source of truth; losing the
        tail on a crash is acceptable where losing a result is not.
        A write failure degrades the job's event tail to memory (and
        keeps it there, preserving order) instead of crashing."""
        stamped = {"ts": time.time(), **event}
        if job_id not in self._memory_events and not take_fault("disk_full"):
            try:
                with open(self.events_path(job_id), "a",
                          encoding="utf-8") as fh:
                    fh.write(json.dumps(stamped, separators=(",", ":")) + "\n")
                return
            except OSError as exc:
                self._note_write_failure("event", exc)
        else:
            if job_id not in self._memory_events:
                self._note_write_failure(
                    "event", OSError(28, "injected disk_full"))
        self._memory_events.setdefault(job_id, []).append(stamped)

    def read_events(self, job_id: str, start: int = 0) -> list[dict]:
        """Events from index ``start`` on.  A torn final line (writer
        died mid-append) is silently dropped, mirroring the journal's
        torn-tail tolerance.  Degraded in-memory tails are concatenated
        after the on-disk prefix."""
        path = self.events_path(job_id)
        events: list[dict] = []
        try:
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    if not line.endswith("\n"):
                        break
                    try:
                        events.append(json.loads(line))
                    except json.JSONDecodeError:
                        break
        except FileNotFoundError:
            pass
        except OSError:
            pass  # reads degrade too: serve what memory holds
        events.extend(self._memory_events.get(job_id, ()))
        return events[start:]
