"""Thin blocking client for the mapping service.

Stdlib :mod:`http.client` only — mirrors the server's one-request-per-
connection discipline, so every call opens a fresh connection.  Used by
the test suite, the benchmark harness and the CI smoke script; small
enough to be the reference for writing clients in any language.

Two client-side containment behaviors (mirroring the server's
hardening layer):

* every request carries a **connect/read timeout** (``timeout=``,
  default 30 s) so a dead or wedged server raises instead of hanging
  the caller forever;
* a request that dies on a **connection reset** (server restarting,
  listener draining) is retried once (``retries=``).  This is safe for
  every route: ``POST /jobs`` is idempotent by content digest — a
  replay deduplicates onto the job the first attempt may have created
  — and everything else is a read or an idempotent cancel.

Shed responses (429/503) raise :class:`ServeError` with the parsed
``retry_after`` hint so callers can back off properly.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from typing import Iterator

from .protocol import TERMINAL_STATES

__all__ = ["ServeClient", "ServeError"]

#: Exceptions that mean "the connection died under us" — worth one
#: retry against a server that is restarting or shedding connections.
_RETRYABLE = (ConnectionResetError, ConnectionAbortedError,
              BrokenPipeError, ConnectionRefusedError, HTTPException)


class ServeError(Exception):
    """Non-2xx response; carries the HTTP status, server diagnosis,
    machine-readable ``code``, the ``retry_after`` hint (seconds,
    ``None`` when the server sent none) and the decoded response
    ``body`` for routes whose error payload says more than
    ``{"error": ...}``."""

    def __init__(self, status: int, message: str, *,
                 code: str | None = None,
                 retry_after: float | None = None,
                 body: dict | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.code = code
        self.retry_after = retry_after
        self.body = body if body is not None else {}


class ServeClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 *, timeout: float = 30.0, retries: int = 1) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries

    # -- plumbing --------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None):
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, payload)
            except _RETRYABLE as exc:
                last = exc
                if attempt >= self.retries:
                    break
                time.sleep(min(0.1 * (attempt + 1), 1.0))
        raise last  # type: ignore[misc]

    def _request_once(self, method: str, path: str,
                      payload: dict | None = None):
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = (json.dumps(payload).encode()
                    if payload is not None else None)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            try:
                decoded = json.loads(data) if data else {}
            except json.JSONDecodeError:
                decoded = {"error": data.decode("utf-8", "replace")}
            if response.status >= 400:
                retry_after = decoded.get("retry_after")
                if retry_after is None:
                    header = response.getheader("Retry-After")
                    retry_after = float(header) if header else None
                raise ServeError(response.status,
                                 decoded.get("error", "unknown error"),
                                 code=decoded.get("code"),
                                 retry_after=retry_after,
                                 body=decoded)
            return response.status, decoded
        finally:
            conn.close()

    # -- API -------------------------------------------------------------

    def submit(self, spec: dict) -> dict:
        """Submit a job spec; the returned record's ``created`` field
        tells whether it enqueued new work or deduplicated."""
        _status, record = self._request("POST", "/jobs", spec)
        return record

    def job(self, job_id: str) -> dict:
        _status, record = self._request("GET", f"/jobs/{job_id}")
        return record

    def jobs(self) -> list[dict]:
        _status, body = self._request("GET", "/jobs")
        return body["jobs"]

    def cancel(self, job_id: str) -> dict:
        _status, record = self._request("POST", f"/jobs/{job_id}/cancel")
        return record

    def health(self) -> dict:
        _status, body = self._request("GET", "/healthz")
        return body

    def ready(self) -> dict:
        """The ``/readyz`` body — ``{"ready": bool, "reasons": [...]}``.
        Not-ready is a normal poll answer, not a failure: the server's
        503 is returned as the body rather than raised, so callers can
        loop on ``ready()["ready"]``."""
        try:
            _status, body = self._request("GET", "/readyz")
        except ServeError as exc:
            if exc.status != 503 or "ready" not in exc.body:
                raise
            body = exc.body
        return body

    def cache_stats(self) -> dict:
        _status, body = self._request("GET", "/cache")
        return body

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll: float = 0.1) -> dict:
        """Poll until the job leaves the queue for good; returns the
        final record.  ``interrupted`` also ends the wait — the job is
        paused, not progressing, until a server restart resumes it."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES + ("interrupted",):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    def events(self, job_id: str, *, follow: bool = False) -> Iterator[dict]:
        """Progress events; with ``follow=True`` streams until the job
        finishes (the server closes the stream)."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            suffix = "?follow=1" if follow else ""
            conn.request("GET", f"/jobs/{job_id}/events{suffix}")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data).get("error", "")
                except json.JSONDecodeError:
                    message = data.decode("utf-8", "replace")
                raise ServeError(response.status, message)
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
