"""Thin blocking client for the mapping service.

Stdlib :mod:`http.client` only — mirrors the server's one-request-per-
connection discipline, so every call opens a fresh connection.  Used by
the test suite, the benchmark harness and the CI smoke script; small
enough to be the reference for writing clients in any language.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Iterator

from .protocol import TERMINAL_STATES

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """Non-2xx response; carries the HTTP status and server diagnosis."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None):
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = (json.dumps(payload).encode()
                    if payload is not None else None)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            try:
                decoded = json.loads(data) if data else {}
            except json.JSONDecodeError:
                decoded = {"error": data.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServeError(response.status,
                                 decoded.get("error", "unknown error"))
            return response.status, decoded
        finally:
            conn.close()

    # -- API -------------------------------------------------------------

    def submit(self, spec: dict) -> dict:
        """Submit a job spec; the returned record's ``created`` field
        tells whether it enqueued new work or deduplicated."""
        _status, record = self._request("POST", "/jobs", spec)
        return record

    def job(self, job_id: str) -> dict:
        _status, record = self._request("GET", f"/jobs/{job_id}")
        return record

    def jobs(self) -> list[dict]:
        _status, body = self._request("GET", "/jobs")
        return body["jobs"]

    def cancel(self, job_id: str) -> dict:
        _status, record = self._request("POST", f"/jobs/{job_id}/cancel")
        return record

    def health(self) -> dict:
        _status, body = self._request("GET", "/healthz")
        return body

    def cache_stats(self) -> dict:
        _status, body = self._request("GET", "/cache")
        return body

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll: float = 0.1) -> dict:
        """Poll until the job leaves the queue for good; returns the
        final record.  ``interrupted`` also ends the wait — the job is
        paused, not progressing, until a server restart resumes it."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES + ("interrupted",):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    def events(self, job_id: str, *, follow: bool = False) -> Iterator[dict]:
        """Progress events; with ``follow=True`` streams until the job
        finishes (the server closes the stream)."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            suffix = "?follow=1" if follow else ""
            conn.request("GET", f"/jobs/{job_id}/events{suffix}")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data).get("error", "")
                except json.JSONDecodeError:
                    message = data.decode("utf-8", "replace")
                raise ServeError(response.status, message)
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
