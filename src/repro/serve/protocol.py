"""Wire protocol of the mapping service: job specs, digests, results.

A job spec is the JSON body of ``POST /jobs``.  This module is the
service's front door: every field is validated through
:mod:`repro.model.validate` (typed :class:`SpecError`\\ s, size caps)
**before** anything is enqueued or spawned, and the validated spec is
then *canonicalized to the engine's own content digest* — the
``canonical_key`` of the same run-parameter record
(:func:`repro.dse.executor.schedule_run_params` and friends) that keys
the result cache and the checkpoint journal.  Spec digest, cache key
and journal run key are therefore one identity, which is what makes
request deduplication sound: two requests with the same digest are the
same search, byte for byte.

Spec shape (fields beyond these are rejected — a service front door is
strict)::

    {
      "task": "schedule" | "space" | "joint" | "parametric",
      "algorithm": "matmul" | {"mu": [...], "dependence": [[...]], "name": "..."},
      "mu": [6],                  # named algorithms only
      "word_bits": 2,             # named bit-level algorithms only
      "space": [[1, 1, -1]],      # schedule + parametric tasks
      "method": "auto",           # schedule + parametric tasks
      "mu_range": [1, 16],        # parametric task (certified size range)
      "pi": [1, 6, 1],            # space task
      "array_dim": 1, "magnitude": 1, "keep_ranking": 10,   # space/joint
      "time_weight": 1.0, "space_weight": 1.0,              # joint
      "jobs": 2,                  # worker processes (capped by the server)
      "tenant": "default"
    }

A ``parametric`` job is a schedule search answered through the
:mod:`repro.symbolic` design compiler: the compiled artifact is keyed
by the compile parameters *without* the concrete size (so every size
shares one artifact), while the job digest appends the size being
answered (so answers stay distinct jobs).  The algorithm's bounds must
be uniform — one ``mu`` is the whole point.

``jobs`` and ``tenant`` never enter the digest: execution strategy is
invisible in the result, so it must be invisible in the identity too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dse.cache import canonical_key
from ..dse.executor import (
    _algorithm_from_spec,
    _algorithm_spec,
    joint_run_params,
    schedule_run_params,
    space_run_params,
)
from ..model import (
    SpecShapeError,
    UniformDependenceAlgorithm,
    validate_algorithm,
    validate_algorithm_spec,
    validate_space,
    validate_vector,
)

__all__ = [
    "TASKS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "RESUMABLE_STATES",
    "JobSpec",
    "parse_job_spec",
    "encode_result",
    "error_body",
]


def error_body(message: str, *, code: str | None = None,
               retry_after: float | None = None) -> dict:
    """The one shape every error response uses.

    ``{"error": <human diagnosis>}`` always; ``code`` adds a stable
    machine-readable discriminator (``queue_full``, ``rate_limited``,
    ``breaker_open``, ``tenant_busy``, ...) and ``retry_after`` mirrors
    the ``Retry-After`` header in seconds so clients that only parse
    bodies still get the hint.
    """
    body: dict = {"error": message}
    if code is not None:
        body["code"] = code
    if retry_after is not None:
        body["retry_after"] = retry_after
    return body

TASKS = ("schedule", "space", "joint", "parametric")

#: Lifecycle of a job.  ``interrupted`` is non-terminal on purpose: a
#: restarting server re-enqueues interrupted jobs and resumes them from
#: their journal.
JOB_STATES = (
    "queued", "running", "done", "failed", "interrupted", "cancelled",
)
TERMINAL_STATES = ("done", "failed", "cancelled")
RESUMABLE_STATES = ("queued", "running", "interrupted")

_METHODS = ("auto", "paper", "exact")

_COMMON_KEYS = {"task", "algorithm", "mu", "word_bits", "tenant", "jobs"}
_TASK_KEYS = {
    "schedule": {"space", "method"},
    "space": {"pi", "array_dim", "magnitude", "keep_ranking"},
    "joint": {
        "array_dim", "magnitude", "keep_ranking",
        "time_weight", "space_weight",
    },
    "parametric": {"space", "method", "mu_range"},
}

#: Front-door ceiling on a parametric job's certified range: compile
#: cost grows with the largest enumerated size, and a service must not
#: let one request buy an unbounded amount of compute.
MAX_SYMBOLIC_MU = 64


def _require_int(payload: dict, key: str, default: int, minimum: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecShapeError(
            f"{key!r} must be an integer, got {type(value).__name__}"
        )
    if value < minimum:
        raise SpecShapeError(f"{key!r} must be >= {minimum}, got {value}")
    return value


def _require_weight(payload: dict, key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecShapeError(
            f"{key!r} must be a number, got {type(value).__name__}"
        )
    return float(value)


@dataclass(frozen=True)
class JobSpec:
    """A validated, normalized job request.

    ``algorithm_spec`` is the transport-level ``{mu, dependence, name}``
    payload (already validated); ``options`` holds the task-specific
    search parameters with defaults applied, so two specs that differ
    only in spelled-out defaults normalize — and digest — identically.
    """

    task: str
    algorithm_spec: dict
    options: dict
    tenant: str = "default"
    jobs: int | None = None
    _digest: str = field(default="", compare=False)

    def build_algorithm(self) -> UniformDependenceAlgorithm:
        return _algorithm_from_spec(dict(self.algorithm_spec))

    def run_params(self, algorithm: UniformDependenceAlgorithm) -> dict:
        """The engine's canonical run-parameter record for this job."""
        opts = self.options
        if self.task == "parametric":
            # Lazy: repro.symbolic pulls in the whole compiler stack.
            from ..symbolic import schedule_compile_params

            params = schedule_compile_params(
                algorithm.dependence_matrix.tolist(), opts["space"],
                method=opts["method"], mu_range=opts["mu_range"],
            )
            # The compile artifact is shared across sizes; the *job* is
            # one answered size, so the digest appends it.
            return {**params, "eval_mu": algorithm.index_set.mu[0]}
        if self.task == "schedule":
            return schedule_run_params(
                algorithm, opts["space"], method=opts["method"]
            )
        if self.task == "space":
            return space_run_params(
                algorithm, opts["pi"], array_dim=opts["array_dim"],
                magnitude=opts["magnitude"], keep_ranking=opts["keep_ranking"],
            )
        return joint_run_params(
            algorithm, array_dim=opts["array_dim"],
            magnitude=opts["magnitude"], time_weight=opts["time_weight"],
            space_weight=opts["space_weight"],
            keep_ranking=opts["keep_ranking"],
        )

    @property
    def digest(self) -> str:
        """The job's content digest — identical to the engine's result-
        cache key and checkpoint run key for the same search."""
        if not self._digest:
            params = self.run_params(self.build_algorithm())
            object.__setattr__(self, "_digest", canonical_key(params))
        return self._digest

    def to_dict(self) -> dict:
        """JSON-safe normalized form, persisted in the job record."""
        return {
            "task": self.task,
            "algorithm": {
                "mu": list(self.algorithm_spec["mu"]),
                "dependence": [
                    list(row) for row in self.algorithm_spec["dependence"]
                ],
                "name": self.algorithm_spec.get("name", "algorithm"),
            },
            "options": {
                k: ([list(r) for r in v] if k == "space"
                    else list(v) if k in ("pi", "mu_range") else v)
                for k, v in self.options.items()
            },
            "tenant": self.tenant,
            "jobs": self.jobs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> JobSpec:
        """Rebuild from :meth:`to_dict` output (a persisted job record).

        The record was validated on the way in, but it crossed a disk
        boundary since, so the algorithm payload is re-proven before a
        search is started from it.
        """
        algo_spec = validate_algorithm_spec(dict(data["algorithm"]))
        options = dict(data["options"])
        if "space" in options:
            options["space"] = tuple(tuple(r) for r in options["space"])
        if "pi" in options:
            options["pi"] = tuple(options["pi"])
        if "mu_range" in options:
            options["mu_range"] = tuple(options["mu_range"])
        return cls(
            task=data["task"], algorithm_spec=algo_spec, options=options,
            tenant=data.get("tenant", "default"), jobs=data.get("jobs"),
        )


def _named_algorithm(payload: dict) -> UniformDependenceAlgorithm:
    """Resolve ``"algorithm": "<name>"`` through the CLI's registry.

    One registry serves both front ends so they can never drift; the
    CLI speaks ``SystemExit`` for bad input, which is re-raised here as
    the service's typed :class:`SpecError`.
    """
    from ..cli import _make_algorithm, _parse_mu  # lazy: cli imports serve lazily too

    name = payload["algorithm"]
    mu = payload.get("mu")
    if mu is None:
        raise SpecShapeError(
            "named algorithms need a 'mu' field (e.g. \"mu\": [6])"
        )
    word_bits = _require_int(payload, "word_bits", 2, 1)
    try:
        mu_t = _parse_mu(",".join(str(m) for m in _as_mu_list(mu)))
        return _make_algorithm(name, mu_t, word_bits)
    except SystemExit as exc:
        raise SpecShapeError(str(exc)) from None


def _as_mu_list(mu) -> list:
    if isinstance(mu, bool) or isinstance(mu, int):
        return [mu]
    if not isinstance(mu, list):
        raise SpecShapeError(
            f"'mu' must be an integer or a list, got {type(mu).__name__}"
        )
    return mu


def _parametric_range(payload: dict) -> tuple[int, int]:
    """Validate the ``mu_range`` field of a parametric job."""
    from ..symbolic import DEFAULT_MU_RANGE

    value = payload.get("mu_range", list(DEFAULT_MU_RANGE))
    if (
        not isinstance(value, list) or len(value) != 2
        or any(isinstance(v, bool) or not isinstance(v, int) for v in value)
    ):
        raise SpecShapeError(
            f"'mu_range' must be a [lo, hi] pair of integers, got {value!r}"
        )
    lo, hi = value
    if not 1 <= lo <= hi:
        raise SpecShapeError(
            f"'mu_range' needs 1 <= lo <= hi, got [{lo}, {hi}]"
        )
    if hi > MAX_SYMBOLIC_MU:
        raise SpecShapeError(
            f"'mu_range' upper bound {hi} exceeds the service cap "
            f"{MAX_SYMBOLIC_MU}"
        )
    return (lo, hi)


def parse_job_spec(payload) -> JobSpec:
    """Validate an untrusted ``POST /jobs`` body into a :class:`JobSpec`.

    Raises a typed :class:`~repro.model.SpecError` on any problem —
    the server maps those to HTTP 400 with the message as diagnosis.
    """
    if not isinstance(payload, dict):
        raise SpecShapeError(
            f"job spec must be a JSON object, got {type(payload).__name__}"
        )
    task = payload.get("task")
    if task not in TASKS:
        raise SpecShapeError(
            f"'task' must be one of {list(TASKS)}, got {task!r}"
        )
    allowed = _COMMON_KEYS | _TASK_KEYS[task]
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise SpecShapeError(
            f"unknown field(s) {unknown} for task {task!r}; "
            f"allowed: {sorted(allowed)}"
        )

    algorithm = payload.get("algorithm")
    if isinstance(algorithm, str):
        algo = validate_algorithm(_named_algorithm(payload))
        algo_spec = _algorithm_spec(algo)
    elif isinstance(algorithm, dict):
        if "mu" in payload or "word_bits" in payload:
            raise SpecShapeError(
                "'mu'/'word_bits' are for named algorithms; an inline "
                "algorithm object carries its own 'mu'"
            )
        algo_spec = validate_algorithm_spec(dict(algorithm))
        algo = _algorithm_from_spec(algo_spec)
        algo_spec = _algorithm_spec(algo)
    else:
        raise SpecShapeError(
            "'algorithm' must be a library name (string) or an object "
            "{mu, dependence, name}"
        )

    n = algo.n
    options: dict = {}
    if task in ("schedule", "parametric"):
        if "space" not in payload:
            raise SpecShapeError(f"task {task!r} needs a 'space' field")
        options["space"] = validate_space(payload["space"], n)
        method = payload.get("method", "auto")
        if method not in _METHODS:
            raise SpecShapeError(
                f"'method' must be one of {list(_METHODS)}, got {method!r}"
            )
        options["method"] = method
        if task == "parametric":
            if len(set(algo.index_set.mu)) != 1:
                raise SpecShapeError(
                    "task 'parametric' needs uniform bounds (one size "
                    f"parameter), got mu={list(algo.index_set.mu)}"
                )
            options["mu_range"] = _parametric_range(payload)
    else:
        if task == "space":
            if "pi" not in payload:
                raise SpecShapeError("task 'space' needs a 'pi' field")
            options["pi"] = validate_vector(payload["pi"], n, "pi")
        options["array_dim"] = _require_int(payload, "array_dim", 1, 1)
        options["magnitude"] = _require_int(payload, "magnitude", 1, 1)
        options["keep_ranking"] = _require_int(payload, "keep_ranking", 10, 1)
        if task == "joint":
            options["time_weight"] = _require_weight(payload, "time_weight", 1.0)
            options["space_weight"] = _require_weight(payload, "space_weight", 1.0)

    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise SpecShapeError("'tenant' must be a non-empty string")
    jobs = payload.get("jobs")
    if jobs is not None:
        jobs = _require_int(payload, "jobs", 1, 1)

    return JobSpec(
        task=task, algorithm_spec=algo_spec, options=options,
        tenant=tenant, jobs=jobs,
    )


# -- result encoding --------------------------------------------------------


def encode_result(task: str, result) -> dict:
    """The JSON answer of a completed search.

    Pure function of the result object, so a server-side answer can be
    compared verbatim against one encoded from a direct library call —
    the resumed == uninterrupted equality bar is checked on exactly
    this encoding.  Only deterministic fields enter (telemetry travels
    separately on the job record).
    """
    if task == "schedule":
        out = {
            "task": task,
            "found": result.found,
            "candidates_examined": result.candidates_examined,
            "rings_expanded": result.rings_expanded,
            "counters": result.stats.counter_dict(),
        }
        if result.found:
            out["pi"] = list(result.schedule.pi)
            out["total_time"] = result.total_time
        return out
    ranking = []
    for design in result.ranking:
        cost = design.cost
        ranking.append({
            "space": [list(row) for row in design.mapping.space],
            "pi": list(design.mapping.schedule),
            "cost": {
                "processors": cost.processors,
                "wire_length": cost.wire_length,
                "buffers": cost.buffers,
                "total_time": cost.total_time,
            },
            "objective": design.objective,
        })
    return {
        "task": task,
        "found": bool(result.found),
        "candidates_examined": result.candidates_examined,
        "rejected_conflicts": result.rejected_conflicts,
        "rejected_routing": result.rejected_routing,
        "counters": result.stats.counter_dict(),
        "ranking": ranking,
    }
