"""repro.serve — mapping-as-a-service over the DSE engine.

An asyncio job-queue server (stdlib only) that turns the package's
exploration entry points into a long-running service:

* :mod:`~repro.serve.protocol` — job specs, validation, content
  digests (identical to the engine's cache/journal keys), result
  encoding.
* :mod:`~repro.serve.store` — durable job records, per-job checkpoint
  journals and append-only event logs.
* :mod:`~repro.serve.queue` — admission (per-tenant caps and budgets),
  digest-based deduplication, the run queue.
* :mod:`~repro.serve.hardening` — failure containment: load shedding
  (bounded queue, token buckets), per-tenant circuit breakers,
  poison-job quarantine, the watchdog policy, chaos fault injection.
* :mod:`~repro.serve.bridge` — the worker-thread call into
  ``explore_*`` (always journaled, always resumable).
* :mod:`~repro.serve.server` — the HTTP front end and worker pool;
  ``repro serve`` on the CLI.
* :mod:`~repro.serve.client` — a thin blocking client.

Everything is lazy here: importing :mod:`repro` must not pay for the
server stack.
"""

from __future__ import annotations

__all__ = [
    "JobSpec",
    "parse_job_spec",
    "encode_result",
    "JobRecord",
    "JobStore",
    "JobManager",
    "TenantPolicy",
    "TenantBusy",
    "HardeningPolicy",
    "TokenBucket",
    "CircuitBreaker",
    "QuarantineRegistry",
    "Rejected",
    "QueueFull",
    "RateLimited",
    "BreakerOpen",
    "error_body",
    "execute_job",
    "ServerConfig",
    "MappingServer",
    "run_server",
    "ServeClient",
    "ServeError",
]

_LAZY = {
    "JobSpec": "protocol",
    "parse_job_spec": "protocol",
    "encode_result": "protocol",
    "JobRecord": "store",
    "JobStore": "store",
    "JobManager": "queue",
    "TenantPolicy": "queue",
    "TenantBusy": "queue",
    "HardeningPolicy": "hardening",
    "TokenBucket": "hardening",
    "CircuitBreaker": "hardening",
    "QuarantineRegistry": "hardening",
    "Rejected": "hardening",
    "QueueFull": "hardening",
    "RateLimited": "hardening",
    "BreakerOpen": "hardening",
    "error_body": "protocol",
    "execute_job": "bridge",
    "ServerConfig": "server",
    "MappingServer": "server",
    "run_server": "server",
    "ServeClient": "client",
    "ServeError": "client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
