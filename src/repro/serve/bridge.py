"""The worker-thread bridge from job records to the DSE engine.

:func:`execute_job` is the only code in :mod:`repro.serve` that calls
the engine.  It runs inside ``asyncio.to_thread`` — *off* the main
thread — which is safe by construction: the engine's
``ShutdownGuard`` degrades to a no-op off the main thread, and the
server-level SIGTERM handler reaches running jobs through the
``threading.Event`` stop hook instead.

Every execution is journaled and resumable: jobs always run with
``checkpoint=<per-job journal>, resume=True``.  A fresh job simply has
no journal yet (an absent file is a fresh start), while a job the
server picked back up after a crash or restart replays its completed
shards for free.  This is what makes the service's crash story one
sentence long: kill the server whenever, restart it, and every
in-flight job resumes where its journal ends with a result equal to an
uninterrupted run.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..dse.cache import ResultCache
from ..dse.checkpoint import BudgetExceeded, RunBudget, RunInterrupted
from ..dse.executor import explore_joint, explore_schedule, explore_space
from ..dse.resilience import ResiliencePolicy
from .hardening import FAULT_HANG_ENV_VAR, take_fault
from .protocol import JobSpec, encode_result

logger = logging.getLogger("repro.serve.bridge")

__all__ = ["JobOutcome", "execute_job"]


@dataclass(frozen=True)
class JobOutcome:
    """What a finished (or stopped) execution hands back to the loop."""

    #: "done" | "interrupted" | "failed"
    state: str
    result: dict | None = None
    telemetry: dict | None = None
    cache_hit: bool = False
    error: str | None = None


def execute_job(
    spec: JobSpec,
    *,
    journal_path,
    cache: ResultCache | None,
    resilience: ResiliencePolicy | None = None,
    budget: RunBudget | None = None,
    stop: threading.Event | None = None,
    on_progress: Callable[[dict], None] | None = None,
    jobs: int | None = None,
) -> JobOutcome:
    """Run one job to completion, interruption, or failure.

    Blocking — call from a worker thread.  Never raises: every outcome
    (including engine bugs) is folded into a :class:`JobOutcome` so the
    event loop's job bookkeeping cannot be skipped by an exception.

    Chaos hooks (``$REPRO_SERVE_FAULT``, see
    :mod:`repro.serve.hardening`): ``crash`` makes this execution fail
    the way an engine bug would; ``hang`` wedges it in an
    uninterruptible sleep that ignores the stop event — exactly the
    failure the watchdog exists for.
    """
    if take_fault("crash"):
        logger.error("injected fault: crash (REPRO_SERVE_FAULT)")
        return JobOutcome(state="failed",
                          error="InjectedFault: crash (REPRO_SERVE_FAULT)")
    if take_fault("hang"):
        naptime = float(os.environ.get(FAULT_HANG_ENV_VAR, "30"))
        logger.error("injected fault: hang %.1fs (REPRO_SERVE_FAULT)", naptime)
        time.sleep(naptime)  # deliberately deaf to `stop`
        return JobOutcome(state="interrupted",
                          error="InjectedFault: hang (REPRO_SERVE_FAULT)")
    algorithm = spec.build_algorithm()
    opts = spec.options
    common = dict(
        jobs=jobs, cache=cache, resilience=resilience,
        checkpoint=journal_path, resume=True, budget=budget,
        stop=stop, on_progress=on_progress,
    )
    try:
        if spec.task == "parametric":
            return _execute_parametric(spec, algorithm, cache, common)
        if spec.task == "schedule":
            result = explore_schedule(
                algorithm, opts["space"], method=opts["method"], **common
            )
        elif spec.task == "space":
            result = explore_space(
                algorithm, opts["pi"], array_dim=opts["array_dim"],
                magnitude=opts["magnitude"],
                keep_ranking=opts["keep_ranking"], **common,
            )
        else:
            result = explore_joint(
                algorithm, array_dim=opts["array_dim"],
                magnitude=opts["magnitude"],
                time_weight=opts["time_weight"],
                space_weight=opts["space_weight"],
                keep_ranking=opts["keep_ranking"], **common,
            )
    except RunInterrupted as exc:
        logger.info("job interrupted: %s", exc)
        return JobOutcome(state="interrupted", error=str(exc))
    except BudgetExceeded as exc:
        logger.warning("job budget exhausted: %s", exc)
        return JobOutcome(state="failed", error=f"budget exhausted: {exc}")
    except Exception as exc:
        logger.exception("job execution failed")
        return JobOutcome(state="failed",
                          error=f"{type(exc).__name__}: {exc}")
    return JobOutcome(
        state="done",
        result=encode_result(spec.task, result),
        telemetry=result.stats.to_dict(),
        cache_hit=result.stats.cache_hits > 0,
    )


def _execute_parametric(spec, algorithm, cache, common) -> JobOutcome:
    """Answer a parametric job from its compiled symbolic artifact.

    The artifact (a :class:`repro.symbolic.SymbolicSolution`) is fetched
    from — or compiled once into — the server's result cache, keyed by
    the compile parameters *without* the answered size; any size inside
    the certified range is then an O(1) polynomial evaluation with no
    search shards at all.  A size outside the certificate falls back to
    the ordinary journaled enumerative search, so the service's answer
    contract (equal to a direct engine run) holds everywhere.
    """
    from ..symbolic import (
        compile_schedule,
        family_from_algorithm,
        load_or_compile,
        schedule_compile_params,
    )

    opts = spec.options
    family = family_from_algorithm(algorithm)
    size = algorithm.index_set.mu[0]
    params = schedule_compile_params(
        algorithm.dependence_matrix.tolist(), opts["space"],
        method=opts["method"], mu_range=opts["mu_range"],
    )
    solution, compiled = load_or_compile(
        lambda: compile_schedule(
            family, opts["space"],
            method=opts["method"], mu_range=opts["mu_range"],
        ),
        params,
        cache,
    )
    answer = solution.eval(size)
    if answer is None:
        logger.info(
            "mu=%d outside the certified range %s; falling back to "
            "enumeration", size, [solution.mu_lo, solution.mu_hi],
        )
        result = explore_schedule(
            algorithm, opts["space"], method=opts["method"], **common
        )
        encoded = encode_result("schedule", result)
        encoded["task"] = "parametric"
        encoded["mode"] = "enumerative-fallback"
        return JobOutcome(
            state="done",
            result=encoded,
            telemetry=result.stats.to_dict(),
            cache_hit=result.stats.cache_hits > 0,
        )
    result = {
        "task": "parametric",
        "mode": "symbolic",
        "found": answer.found,
        "mu": size,
        "interval": list(answer.interval),
    }
    if answer.found:
        result["pi"] = list(answer.pi)
        result["total_time"] = answer.total_time
    telemetry = {
        "symbolic": True,
        "compiled": compiled,
        "compile_samples": solution.samples,
        "intervals": len(solution.intervals),
        "shards_dispatched": 0,
        "cache_hits": 0 if compiled else 1,
        "cache_misses": 1 if compiled else 0,
    }
    return JobOutcome(
        state="done",
        result=result,
        telemetry=telemetry,
        cache_hit=not compiled,
    )
