"""Persistent result cache for design-space exploration queries.

A query is identified by a **canonical key**: the SHA-256 of a
canonical-JSON rendering (sorted keys, compact separators, no floats
except plain weights) of everything the answer depends on — the index
set ``J``, the dependence matrix ``D``, the space mapping ``S`` (or the
design-space bounds when ``S`` is being searched), the solver/method,
and the search bounds.  Renaming an algorithm does not change its key;
changing ``mu``, ``D``, the method, or any bound does.

Entries are stored one JSON file per key under a cache directory
(``$REPRO_DSE_CACHE_DIR``, else ``~/.cache/repro-dse``).  Writes go
through a temp file + :func:`os.replace`, so concurrent processes never
observe a torn entry; each entry carries a content checksum, so
corruption that still parses as JSON is quarantined instead of served.  What is stored is the *decision* of the search
(the winning schedule vector, the ranked design list, the deterministic
counters) — never derived objects like verdicts or cost structures,
which the engine re-derives exactly on a hit.  That keeps entries tiny,
version-tolerant, and guarantees a warm result is equal to a cold one.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from pathlib import Path

from ..intlin import IntMat
from ..obs import get_tracer

logger = logging.getLogger("repro.dse.cache")

__all__ = ["ResultCache", "canonical_key", "default_cache_dir"]

# Bump when the stored-entry layout or the key canonicalization changes;
# old entries are then simply never looked up again.  v2: matrix-valued
# key components are rendered as IntMat digests instead of nested lists.
# v3: entries carry a content checksum (``"crc"``) so silent on-disk
# corruption that still parses as JSON is detected and quarantined.
# v4: schedule run params grew the pruning switches ("symmetry",
# "ring_bound"), so every schedule key changed — a run with pruning on
# and one with pruning off are distinct queries and must never answer
# each other from cache.
CACHE_SCHEMA_VERSION = 4

# v2 entries differ from v3+ only by the absence of the checksum, so
# they stay readable (no checksum to verify) instead of forcing a cold
# cache; v3 entries differ from v4 only by which keys can reach them
# (pre-pruning canonical keys), so any v3 entry a v4 key *does* reach
# is byte-compatible and stays readable too.
_READABLE_SCHEMAS = (2, 3, CACHE_SCHEMA_VERSION)


def default_cache_dir() -> Path:
    """``$REPRO_DSE_CACHE_DIR`` if set, else ``~/.cache/repro-dse``."""
    env = os.environ.get("REPRO_DSE_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-dse"


def canonical_key(payload: dict) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``.

    The payload must be JSON-serializable; lists/tuples of ints are the
    expected currency.  :class:`~repro.intlin.IntMat` components are
    rendered as their cached content digest (shape + entries), so keying
    on a matrix costs one hash of an immutable value instead of
    re-serializing rows.  Key order and whitespace never influence the
    digest.
    """
    blob = json.dumps(
        _canonicalize(payload), sort_keys=True, separators=(",", ":"),
        default=_jsonify,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _canonicalize(obj):
    # IntMat first: it is a tuple subclass, so json.dumps would happily
    # re-serialize its rows without ever consulting the default hook.
    if isinstance(obj, IntMat):
        return {"intmat": obj.digest()}
    if isinstance(obj, dict):
        return {k: _canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(x) for x in obj]
    return obj


def _jsonify(obj):
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(f"non-canonical cache-key component: {obj!r}")


def _content_checksum(value: dict) -> str:
    """SHA-256 of the canonical JSON form of an entry's ``value``.

    Tuples canonicalize to lists, so the digest computed at ``put`` time
    (over in-memory tuples) equals the digest recomputed at ``get`` time
    (over the lists ``json.load`` hands back).
    """
    blob = json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=_jsonify
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk JSON store mapping canonical keys to search decisions.

    Parameters
    ----------
    cache_dir:
        Directory for entries; created lazily on first write.  ``None``
        uses :func:`default_cache_dir`.
    enabled:
        A disabled cache never reads or writes but still counts lookups
        as misses, so callers need no branching.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None,
                 *, enabled: bool = True) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        # Opening the cache reclaims temp files leaked by writers that
        # crashed mid-put; recent ones may belong to a live writer and
        # are left alone (sweep_temp's default age threshold).
        self.swept = self.sweep_temp() if enabled else 0
        if self.swept:
            tracer = get_tracer()
            tracer.event("cache.sweep", removed=self.swept)
            tracer.add("cache.swept", self.swept)
            logger.info("swept %d stale writer temp file(s)", self.swept)

    # -- lookup ----------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored entry for ``key``, or ``None`` (counted as a miss).

        A malformed entry — unparsable JSON, a non-object document, a
        schema-valid object missing its ``"value"``, or a v3 entry whose
        content checksum no longer matches — is a miss too: the file is
        quarantined aside (renamed ``*.json.corrupt``) so the search
        re-runs and overwrites it, instead of crashing on (or silently
        trusting) a truncated, bit-rotted, or hand-edited file.  A
        well-formed entry of an unknown schema version is an ordinary
        miss (version skew, not damage); v2 entries predate the
        checksum and are read without one.
        """
        if self.enabled:
            path = self._path(key)
            absent = object()
            entry = absent
            try:
                with open(path, encoding="utf-8") as fh:
                    entry = json.load(fh)
            except OSError:
                entry = absent
            except json.JSONDecodeError:
                entry = None  # file exists but is damaged
            if isinstance(entry, dict):
                schema = entry.get("schema")
                if schema in _READABLE_SCHEMAS:
                    value = entry.get("value")
                    if isinstance(value, dict) and (
                        schema == 2
                        or entry.get("crc") == _content_checksum(value)
                    ):
                        self.hits += 1
                        tracer = get_tracer()
                        tracer.event("cache.hit", key=key)
                        tracer.add("cache.hits")
                        logger.debug("cache hit: %s", key)
                        return value
                    self._quarantine(path)
                # unknown schema versions: inert, plain miss
            elif entry is not absent:
                self._quarantine(path)
        self.misses += 1
        tracer = get_tracer()
        tracer.event("cache.miss", key=key)
        tracer.add("cache.misses")
        logger.debug("cache miss: %s", key)
        return None

    def _quarantine(self, path: Path) -> None:
        """Move a malformed entry aside (``*.json.corrupt``)."""
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
            self.quarantined += 1
            tracer = get_tracer()
            tracer.event("cache.quarantine", path=path.name)
            tracer.add("cache.quarantined")
            logger.warning("quarantined malformed cache entry: %s", path)
        except OSError:  # pragma: no cover - raced deletion
            pass

    def put(self, key: str, value: dict) -> None:
        """Store ``value`` under ``key`` atomically (no-op when disabled)."""
        if not self.enabled:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "crc": _content_checksum(value),
            "value": value,
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, separators=(",", ":"))
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance -----------------------------------------------------

    def _entry_paths(self):
        """Real entry files only — writer temp files (``.tmp-*.json``,
        left behind if a writer crashes between ``mkstemp`` and
        ``os.replace``) are dotfiles and must never count as entries,
        even though :meth:`Path.glob` happily matches them."""
        if not self.cache_dir.is_dir():
            return
        for path in self.cache_dir.glob("*.json"):
            if not path.name.startswith("."):
                yield path

    def clear(self) -> int:
        """Delete every entry; returns how many entries were removed.

        Leftover writer temp files and quarantined ``*.json.corrupt``
        files are swept as well (not counted — they were never
        entries).
        """
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.sweep_temp(max_age_seconds=0.0)
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.json.corrupt"):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - raced deletion
                    pass
        return removed

    def sweep_temp(self, max_age_seconds: float = 3600.0) -> int:
        """Delete stale writer temp files; returns how many were removed.

        A temp file only outlives its ``put`` if the writing process
        died between creating it and the atomic rename, so anything
        older than ``max_age_seconds`` is garbage from a crashed
        writer.  Newer files are left alone — they may belong to a
        concurrent live writer.
        """
        removed = 0
        if not self.cache_dir.is_dir():
            return 0
        cutoff = time.time() - max_age_seconds
        for path in self.cache_dir.glob(".tmp-*.json"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:  # pragma: no cover - raced deletion
                pass
        return removed

    def stats(self) -> dict:
        """Operator-facing snapshot: this instance's counters plus the
        directory's on-disk state (entry/corrupt/temp counts, bytes).

        Hit/miss/quarantine/sweep counters are per-instance — a long-
        lived holder (the :mod:`repro.serve` server) accumulates them
        across requests; a fresh CLI instance reports the disk state
        plus whatever its own opening swept.
        """
        entries = corrupt = temp = 0
        disk_bytes = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.iterdir():
                try:
                    size = path.stat().st_size
                except OSError:  # pragma: no cover - raced deletion
                    continue
                name = path.name
                if name.endswith(".json.corrupt"):
                    corrupt += 1
                elif name.startswith(".tmp-") and name.endswith(".json"):
                    temp += 1
                elif name.endswith(".json") and not name.startswith("."):
                    entries += 1
                else:
                    continue
                disk_bytes += size
        return {
            "dir": str(self.cache_dir),
            "enabled": self.enabled,
            "schema": CACHE_SCHEMA_VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "swept": self.swept,
            "entries": entries,
            "corrupt_files": corrupt,
            "temp_files": temp,
            "disk_bytes": disk_bytes,
        }

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return (
            f"ResultCache({str(self.cache_dir)!r}, {state}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"quarantined={self.quarantined}, swept={self.swept})"
        )
