"""Fault tolerance for the parallel design-space exploration engine.

The executor's contract — a sharded search returns a result *equal* to
the serial one — makes recovery unusually simple: every shard is a pure
function of its payload, so a shard lost to a crashed worker, a hung
conflict check, or a corrupted result can always be re-judged
deterministically.  This module supplies the machinery:

* :class:`ResiliencePolicy` — the knobs: per-shard timeout, bounded
  retries with exponential backoff, and whether the engine may degrade
  to the in-process path once the process pool proves unreliable.
* :class:`ResilientShardRunner` — the fan-out loop.  It detects worker
  death (``BrokenProcessPool``), hung shards (per-batch deadline), and
  malformed shard outputs; failed shards are retried on a replacement
  pool and, once retries are exhausted, re-judged in-process — a shard
  is **never dropped**, which is what preserves result equality.
* Deterministic fault injection — ``$REPRO_DSE_FAULT`` makes a chosen
  shard crash, hang, or return garbage *inside the worker process*, so
  the recovery paths are exercised for real in tests rather than
  mocked.

Failure telemetry (``shard_retries``, ``shard_timeouts``,
``pool_restarts``, ``degraded``) is folded into the search's
:class:`~repro.dse.progress.SearchStats`; like all telemetry it is
excluded from result equality.
"""

from __future__ import annotations

import logging
import os
import time
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..obs import get_tracer

logger = logging.getLogger("repro.dse.resilience")

__all__ = [
    "ResiliencePolicy",
    "ResilienceError",
    "ResilientShardRunner",
    "FAULT_ENV_VAR",
    "FAULT_HANG_ENV_VAR",
    "SLOW_ENV_VAR",
    "maybe_slow",
]

# -- fault injection --------------------------------------------------------

#: ``mode:shard_index[:always]`` with mode in {crash, hang, corrupt}.
#: Without ``always`` the fault fires exactly once per search: on the
#: first attempt of the chosen shard in the runner's first batch.
FAULT_ENV_VAR = "REPRO_DSE_FAULT"

#: How long a ``hang`` fault sleeps, in seconds (default 30; the parent
#: terminates the hung worker when the shard deadline passes, so the
#: sleep only bounds cleanup if termination itself fails).
FAULT_HANG_ENV_VAR = "REPRO_DSE_FAULT_HANG"

#: Seconds every shard sleeps before doing real work (default: none).
#: A test/CI knob like ``$REPRO_DSE_FAULT``: it stretches a search that
#: would finish in milliseconds into one long enough to deliver a
#: signal to, so the checkpoint/shutdown paths are exercised for real.
#: Honored on both the pool and the in-process execution paths.
SLOW_ENV_VAR = "REPRO_DSE_SLOW"

_FAULT_MODES = ("crash", "hang", "corrupt")


def maybe_slow() -> None:
    """Sleep ``$REPRO_DSE_SLOW`` seconds, if set (shard workers call
    this first thing, whichever process they run in)."""
    raw = os.environ.get(SLOW_ENV_VAR)
    if raw:
        time.sleep(float(raw))


def _parse_fault_spec(raw: str | None) -> tuple[str, int, bool] | None:
    """``(mode, shard_index, always)`` from a ``$REPRO_DSE_FAULT`` value."""
    if not raw:
        return None
    parts = raw.split(":")
    if len(parts) not in (2, 3) or parts[0] not in _FAULT_MODES:
        raise ValueError(
            f"bad {FAULT_ENV_VAR} value {raw!r}; expected "
            f"'mode:shard_index[:always]' with mode in {_FAULT_MODES}"
        )
    always = len(parts) == 3 and parts[2] == "always"
    return parts[0], int(parts[1]), always


def _maybe_inject_fault(shard_index: int, attempt: int, batch: int) -> bool:
    """Fire the configured fault for this shard, if any.

    Runs inside the worker process.  Returns ``True`` when the caller
    should return a corrupted output (the ``corrupt`` mode); ``crash``
    never returns and ``hang`` returns after its sleep.
    """
    spec = _parse_fault_spec(os.environ.get(FAULT_ENV_VAR))
    if spec is None:
        return False
    mode, target, always = spec
    if shard_index != target:
        return False
    if not always and (attempt > 0 or batch > 0):
        return False
    if mode == "crash":
        os._exit(17)
    if mode == "hang":
        time.sleep(float(os.environ.get(FAULT_HANG_ENV_VAR, "30")))
        return False
    return True  # corrupt


def _call_shard(worker: Callable[[dict], dict], payload: dict) -> object:
    """Pool-side shard entry point: fault hook, then the real worker.

    The runner annotates payloads with ``_shard_index`` / ``_attempt`` /
    ``_batch``; they are stripped before the worker sees the payload.
    """
    shard_index = payload.pop("_shard_index", -1)
    attempt = payload.pop("_attempt", 0)
    batch = payload.pop("_batch", 0)
    if _maybe_inject_fault(shard_index, attempt, batch):
        return {"corrupted": True}  # fails _output_ok; retried by parent
    return worker(payload)


def _output_ok(out: object) -> bool:
    """Structural sanity of a shard output (guards corrupted transport)."""
    if not isinstance(out, dict):
        return False
    if not isinstance(out.get("wall_time"), (int, float)):
        return False
    data = out.get("records", out.get("evaluated"))
    return isinstance(data, list)


# -- policy -----------------------------------------------------------------


class ResilienceError(RuntimeError):
    """A shard could not be completed under the active policy."""


@dataclass(frozen=True)
class ResiliencePolicy:
    """Fault-tolerance knobs for the parallel execution path.

    Attributes
    ----------
    shard_timeout:
        Seconds a batch of shards may run before unfinished shards are
        declared hung and their pool replaced (``None``: wait forever).
    max_retries:
        How many times a failed shard is re-submitted to a pool before
        the policy gives up on parallel execution for it.
    backoff_base, backoff_factor:
        The ``r``-th retry round sleeps ``backoff_base *
        backoff_factor**(r - 1)`` seconds before resubmitting.
    max_pool_restarts:
        After this many pool replacements the runner stops trusting
        process pools for the rest of the search.
    degrade:
        Whether exhausted retries fall back to the deterministic
        in-process path (the default).  With ``degrade=False`` the
        search raises :class:`ResilienceError` instead — the result is
        still never silently wrong, just absent.
    """

    shard_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    max_pool_restarts: int = 3
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive or None, got {self.shard_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_pool_restarts < 0:
            raise ValueError(
                f"max_pool_restarts must be >= 0, got {self.max_pool_restarts}"
            )

    def backoff_delay(self, retry_round: int) -> float:
        """Sleep before retry round ``retry_round`` (1-based)."""
        return self.backoff_base * self.backoff_factor ** max(0, retry_round - 1)


# -- runner -----------------------------------------------------------------


class ResilientShardRunner:
    """Runs shard payloads in-process or on a supervised process pool.

    The pool is created lazily on the first parallel batch and reused
    across batches (rings), so an early-terminating search never pays
    fork start-up for rings it does not reach.  Every failure mode ends
    in one of two states: the shard's result was recomputed exactly, or
    (with ``degrade=False``) :class:`ResilienceError` was raised —
    results are never dropped or reordered, preserving the engine's
    serial-equality contract.

    Failure telemetry accumulates on the runner; callers fold it into
    their :class:`~repro.dse.progress.SearchStats` via
    :meth:`apply_telemetry`.
    """

    def __init__(
        self,
        jobs: int,
        *,
        in_process: bool = False,
        policy: ResiliencePolicy | None = None,
    ) -> None:
        self.jobs = jobs
        self.in_process = in_process or jobs <= 1
        self.policy = policy or ResiliencePolicy()
        self._pool: ProcessPoolExecutor | None = None
        self._batch = 0
        self._degraded = False
        self._pool_dead = False
        self.shard_retries = 0
        self.shard_timeouts = 0
        self.pool_restarts = 0
        self.degraded = False

    # -- pool lifecycle --------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _abandon_pool(self) -> None:
        """Discard the pool, terminating workers (they may be hung)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown never raises today
            pass
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already-dead worker
                pass

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ResilientShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution -------------------------------------------------------

    def run(
        self,
        worker: Callable[[dict], dict],
        payloads: list[dict],
        *,
        on_result: Callable[[int, dict], None] | None = None,
        should_stop: Callable[[], None] | None = None,
    ) -> list[dict]:
        """Run every payload; returns outputs in payload order.

        on_result:
            Called as ``on_result(i, out)`` the moment shard ``i``'s
            final good output is known — exactly once per shard, before
            later shards are awaited.  The checkpoint journal hangs off
            this hook: a shard is durable before the run moves on.
        should_stop:
            Polled between shards; it *raises* (``RunInterrupted``) to
            stop the run.  Pending work is cancelled, in-flight workers
            are terminated, and the exception propagates — completed
            shards have already been delivered through ``on_result``.
        """
        def emit(i: int, out: dict) -> None:
            if on_result is not None:
                on_result(i, out)

        def poll() -> None:
            if should_stop is not None:
                should_stop()

        if self.in_process or self._degraded or len(payloads) <= 1:
            results_ip: list[dict] = []
            for i, p in enumerate(payloads):
                poll()
                out = worker(p)
                emit(i, out)
                results_ip.append(out)
            return results_ip

        results: list[dict | None] = [None] * len(payloads)
        attempts = [0] * len(payloads)
        pending = list(range(len(payloads)))
        retry_round = 0
        while pending:
            poll()
            if self._degraded:
                for i in pending:
                    poll()
                    results[i] = worker(payloads[i])
                    emit(i, results[i])
                break
            if retry_round:
                delay = self.policy.backoff_delay(retry_round)
                if delay > 0:
                    time.sleep(delay)
            failed = self._run_batch(
                worker, payloads, pending, attempts, results,
                emit=emit, poll=poll,
            )
            pending = []
            for i in failed:
                attempts[i] += 1
                if attempts[i] <= self.policy.max_retries:
                    self.shard_retries += 1
                    get_tracer().event(
                        "dse.shard_retry", shard=i, attempt=attempts[i]
                    )
                    logger.warning(
                        "shard %d failed; retrying (attempt %d/%d)",
                        i, attempts[i], self.policy.max_retries,
                    )
                    pending.append(i)
                else:
                    poll()
                    self._degrade_shard(worker, payloads, results, i)
                    emit(i, results[i])
            retry_round += 1
        return results  # type: ignore[return-value]  # every slot is filled

    def _run_batch(
        self,
        worker: Callable[[dict], dict],
        payloads: list[dict],
        pending: list[int],
        attempts: list[int],
        results: list[dict | None],
        emit: Callable[[int, dict], None] = lambda i, out: None,
        poll: Callable[[], None] = lambda: None,
    ) -> list[int]:
        """Submit ``pending`` shards once; returns the indices that failed."""
        pool = self._ensure_pool()
        batch = self._batch
        self._batch += 1
        submitted = [
            (
                i,
                pool.submit(
                    _call_shard,
                    worker,
                    dict(payloads[i], _shard_index=i, _attempt=attempts[i], _batch=batch),
                ),
            )
            for i in pending
        ]
        deadline = (
            None
            if self.policy.shard_timeout is None
            else time.monotonic() + self.policy.shard_timeout
        )
        failed: list[int] = []
        try:
            self._collect_batch(
                submitted, deadline, results, failed, emit, poll,
            )
        except BaseException:
            # A stop request (or a journal write failing) mid-batch:
            # cancel what has not started, terminate what has — the
            # run is over, in-flight work would be thrown away anyway.
            for _i, fut in submitted:
                fut.cancel()
            self._abandon_pool()
            raise
        pool_dead, self._pool_dead = self._pool_dead, False
        if pool_dead:
            self._abandon_pool()
            self.pool_restarts += 1
            get_tracer().event("dse.pool_restart", restarts=self.pool_restarts)
            logger.warning(
                "process pool abandoned and replaced (restart %d/%d)",
                self.pool_restarts, self.policy.max_pool_restarts,
            )
            if self.pool_restarts > self.policy.max_pool_restarts:
                if not self.policy.degrade:
                    raise ResilienceError(
                        f"process pool failed {self.pool_restarts} times "
                        f"(> max_pool_restarts={self.policy.max_pool_restarts}) "
                        "and degradation is disabled"
                    )
                self._degraded = True
                self.degraded = True
                get_tracer().event("dse.degraded", cause="pool_restarts")
                logger.warning(
                    "pool restart budget exhausted; degrading to in-process "
                    "execution for the rest of the search"
                )
        return failed

    def _collect_batch(
        self,
        submitted: list,
        deadline: float | None,
        results: list[dict | None],
        failed: list[int],
        emit: Callable[[int, dict], None],
        poll: Callable[[], None],
    ) -> None:
        """Await each submitted future, sorting outputs from failures."""
        self._pool_dead = False
        for i, fut in submitted:
            try:
                if deadline is None:
                    out = fut.result()
                else:
                    out = fut.result(timeout=max(0.0, deadline - time.monotonic()))
            except _FuturesTimeout:
                self.shard_timeouts += 1
                get_tracer().event(
                    "dse.shard_timeout",
                    shard=i,
                    timeout=self.policy.shard_timeout,
                )
                logger.warning(
                    "shard %d exceeded the %gs deadline; worker presumed hung",
                    i, self.policy.shard_timeout,
                )
                failed.append(i)
                self._pool_dead = True  # the worker may be hung; reclaim it
                continue
            except BrokenProcessPool:
                failed.append(i)
                self._pool_dead = True
                continue
            except Exception:
                failed.append(i)  # worker raised; pool itself survives
                continue
            if _output_ok(out):
                results[i] = out  # type: ignore[assignment]
                emit(i, out)
                poll()
            else:
                failed.append(i)

    def _degrade_shard(
        self,
        worker: Callable[[dict], dict],
        payloads: list[dict],
        results: list[dict | None],
        i: int,
    ) -> None:
        """Retries exhausted: re-judge shard ``i`` in-process (or raise)."""
        if not self.policy.degrade:
            raise ResilienceError(
                f"shard {i} failed {self.policy.max_retries + 1} attempts "
                "and degradation is disabled"
            )
        get_tracer().event("dse.degraded", cause="retries_exhausted", shard=i)
        logger.warning(
            "shard %d exhausted its %d retries; re-judging in-process",
            i, self.policy.max_retries,
        )
        results[i] = worker(payloads[i])
        self.degraded = True

    # -- telemetry -------------------------------------------------------

    def apply_telemetry(self, stats) -> None:
        """Fold this runner's failure counters into ``stats``."""
        stats.shard_retries += self.shard_retries
        stats.shard_timeouts += self.shard_timeouts
        stats.pool_restarts += self.pool_restarts
        stats.degraded = stats.degraded or self.degraded
