"""Crash-safe checkpoint/resume for long design-space explorations.

PR 3 made individual *shards* survive worker crashes; this module makes
the *run* survive the death of the parent process.  Three pieces:

* :class:`CheckpointJournal` — a write-ahead journal of completed shard
  results.  Every record is one JSONL line carrying a SHA-256 checksum
  of its body; appends are flushed and ``fsync``'d before the shard is
  considered durable, so a ``SIGKILL`` (OOM killer, preemption) can
  lose at most the record being written.  Replay tolerates exactly that
  damage: a torn or corrupted tail is dropped (and truncated away on
  reopen), everything before it is trusted because the checksums prove
  it was written whole.  Periodic snapshot **compaction** rewrites the
  journal as one snapshot record via the usual temp-file +
  ``os.replace`` dance, bounding file growth on huge sweeps.
* :class:`RunBudget` — run-level resource ceilings: wall-clock seconds,
  dispatched shards, and (for Procedure 5.1's expanding rings) the bit
  growth of the ring bound, which caps the magnitude of every integer
  the candidate schedules feed into the exact arithmetic kernels.
  Exceeding any ceiling raises :class:`BudgetExceeded` — the same
  clean, resumable stop a signal produces.
* :class:`ShutdownGuard` / :class:`RunControl` — graceful shutdown.
  The guard intercepts ``SIGINT``/``SIGTERM`` and merely sets a flag;
  the engine polls it between shards, stops dispatching new work,
  drains or cancels what is in flight, and raises
  :class:`RunInterrupted`.  Because every completed shard was journaled
  the moment it finished, the interrupted run is resumable: restarting
  with ``resume=True`` replays the journal, skips every completed
  shard, and — by the engine's serial-equality contract — returns a
  result equal to an uninterrupted run's.

The journal stores *encoded shard outputs* (plain JSON), keyed by a
canonical digest of the run parameters plus the shard's position and
content.  A resumed run with different parameters therefore cannot be
poisoned by a stale journal: mismatched run keys are a hard
:class:`CheckpointError`, mismatched shard keys are simply recomputed.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..obs import get_tracer

logger = logging.getLogger("repro.dse.checkpoint")

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "CheckpointError",
    "RunInterrupted",
    "BudgetExceeded",
    "RunBudget",
    "CheckpointJournal",
    "ShutdownGuard",
    "RunControl",
]

#: Bump when the journal record layout changes; old journals are then
#: rejected with a :class:`CheckpointError` instead of being misread.
JOURNAL_SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """The journal cannot be used: version/run-key mismatch or damage
    beyond the tolerated torn tail."""


class RunInterrupted(RuntimeError):
    """The run was stopped cleanly and is resumable from its journal.

    Raised on ``SIGINT``/``SIGTERM`` (via :class:`ShutdownGuard`); the
    ``reason`` attribute says why.  Every shard completed before the
    stop is in the journal, so rerunning with ``resume=True`` loses no
    work.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class BudgetExceeded(RunInterrupted):
    """A :class:`RunBudget` ceiling was reached — same clean, resumable
    stop as a signal, distinguishable by type."""


@dataclass(frozen=True)
class RunBudget:
    """Run-level resource ceilings for an exploration.

    Attributes
    ----------
    max_seconds:
        Wall-clock budget for the whole run.  Checked between shards
        and between rings; an in-flight shard batch is drained, not
        killed, so the stop is clean and the overshoot is bounded by
        one shard's duration.
    max_shards:
        Ceiling on *dispatched* shards (shards replayed from a journal
        are free — resuming never re-buys work already paid for).
    max_bits:
        Ceiling on the bit length of Procedure 5.1's ring bound
        ``x_l``.  Every candidate schedule in ring ``l`` has
        ``sum |pi_i| mu_i <= x_l``, so this caps the magnitude of the
        integers the search pushes through the exact (arbitrary
        precision) arithmetic kernels.  Ignored by the space/joint
        searches, whose candidate entries are bounded by ``magnitude``.
    """

    max_seconds: float | None = None
    max_shards: int | None = None
    max_bits: int | None = None

    def __post_init__(self) -> None:
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError(
                f"max_seconds must be positive or None, got {self.max_seconds}"
            )
        if self.max_shards is not None and self.max_shards < 1:
            raise ValueError(
                f"max_shards must be >= 1 or None, got {self.max_shards}"
            )
        if self.max_bits is not None and self.max_bits < 1:
            raise ValueError(
                f"max_bits must be >= 1 or None, got {self.max_bits}"
            )


# -- the journal ------------------------------------------------------------


def _record_line(rec: dict) -> str:
    """One JSONL line: the record body plus a SHA-256 of its canonical
    form.  The checksum is what lets replay distinguish 'written whole'
    from 'torn by a crash' without trusting file sizes or flush order.

    The wrapper is assembled by hand — ``"crc"`` sorts before ``"rec"``
    and ``body`` is already compact canonical JSON, so this equals
    ``json.dumps({"crc": ..., "rec": rec}, sort_keys=True, ...)``
    without serializing the record a second time (appends are on the
    per-shard hot path)."""
    body = json.dumps(rec, sort_keys=True, separators=(",", ":"))
    crc = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return f'{{"crc":"{crc}","rec":{body}}}\n'


def _parse_line(line: str) -> dict | None:
    """The verified record body, or ``None`` for a torn/corrupt line."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(obj, dict):
        return None
    rec, crc = obj.get("rec"), obj.get("crc")
    if not isinstance(rec, dict) or not isinstance(crc, str):
        return None
    body = json.dumps(rec, sort_keys=True, separators=(",", ":"))
    if hashlib.sha256(body.encode("utf-8")).hexdigest() != crc:
        return None
    return rec


def _fsync_dir(path: Path) -> None:
    """Best-effort directory fsync so a rename survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


class CheckpointJournal:
    """Write-ahead journal of completed shard results for one run.

    Record kinds (each one checksummed JSONL line):

    * ``run`` — header: schema version, run key, task label.  Written
      first; replay refuses a journal whose run key differs from the
      resuming search's (the checkpoint belongs to other parameters).
    * ``shard`` — ``{key, out}``: one completed shard's encoded output
      under its canonical shard key.  Appended (flush + fsync) the
      moment the shard completes.
    * ``snapshot`` — a compacted header + all shard outputs in one
      record; produced by :meth:`compact` every ``compact_every``
      appends via an atomic temp-file + ``os.replace`` rewrite.
    * ``result`` — the search's final decision entry.  A journal with a
      result record resumes without dispatching anything at all.

    Replay walks the file line by line and stops at the first line that
    fails parsing or its checksum: with fsync'd appends only the tail
    can be damaged, so everything before it is trusted and everything
    from it on is dropped (and truncated away when the journal reopens
    for appending).
    """

    def __init__(self, path: str | os.PathLike, *, compact_every: int = 256) -> None:
        if compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.path = Path(path)
        self.compact_every = compact_every
        self.run_key: str | None = None
        self.task: str | None = None
        self.shards: dict[str, dict] = {}
        self.result_entry: dict | None = None
        self.resumed_shards = 0  # shards loaded from disk on open
        self.dropped_records = 0  # torn/corrupt tail lines discarded
        self._fh = None
        self._appends = 0
        self._opened = False

    # -- lifecycle -------------------------------------------------------

    def open(self, run_key: str, *, task: str = "", resume: bool = False) -> None:
        """Start fresh, or replay and reopen for appending.

        Without ``resume`` an existing file is overwritten (a new run
        deliberately discards old state).  With ``resume`` the file is
        replayed first: its run key must match ``run_key`` exactly,
        its torn tail (if any) is dropped and truncated, and
        :attr:`shards` / :attr:`result_entry` hold everything durable.
        """
        if self._opened:
            raise CheckpointError("journal is already open")
        self.run_key = run_key
        self.task = task
        good_bytes = 0
        if resume and self.path.exists():
            good_bytes = self._replay(run_key)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # r+b lets us truncate the torn tail before appending; "wb"
        # covers the fresh/overwrite path.
        if good_bytes:
            self._fh = open(self.path, "r+b")
            self._fh.truncate(good_bytes)
            self._fh.seek(good_bytes)
        else:
            self._fh = open(self.path, "wb")
            self._append({
                "kind": "run",
                "schema": JOURNAL_SCHEMA_VERSION,
                "run": run_key,
                "task": task,
            })
        self._opened = True
        if self.resumed_shards or self.result_entry is not None:
            tracer = get_tracer()
            tracer.event(
                "checkpoint.resume",
                path=str(self.path),
                shards=self.resumed_shards,
                complete=self.result_entry is not None,
                dropped=self.dropped_records,
            )
            tracer.add("checkpoint.resumed", self.resumed_shards)
            logger.info(
                "checkpoint resume: %d shard(s)%s replayed from %s "
                "(%d torn record(s) dropped)",
                self.resumed_shards,
                " + final result" if self.result_entry is not None else "",
                self.path, self.dropped_records,
            )

    def _replay(self, run_key: str) -> int:
        """Load records, verifying checksums; returns the byte offset of
        the end of the last good line (where appending may resume)."""
        good = 0
        header_seen = False
        with open(self.path, "rb") as fh:
            for raw in fh:
                rec = None
                if raw.endswith(b"\n"):
                    try:
                        rec = _parse_line(raw.decode("utf-8"))
                    except UnicodeDecodeError:
                        rec = None
                if rec is None:
                    # Torn or corrupt: with fsync'd appends this can
                    # only be the tail — drop it and everything after.
                    self.dropped_records += 1
                    break
                kind = rec.get("kind")
                if kind in ("run", "snapshot"):
                    if rec.get("schema") != JOURNAL_SCHEMA_VERSION:
                        raise CheckpointError(
                            f"journal {self.path} has schema "
                            f"{rec.get('schema')!r}, this library writes "
                            f"{JOURNAL_SCHEMA_VERSION}; delete it or rerun "
                            "without resume to start fresh"
                        )
                    if rec.get("run") != run_key:
                        raise CheckpointError(
                            f"journal {self.path} belongs to a different run "
                            f"(run key {str(rec.get('run'))[:12]}..., this "
                            f"search is {run_key[:12]}...); it records a "
                            "search with different parameters — rerun "
                            "without resume to discard it"
                        )
                    header_seen = True
                    if kind == "snapshot":
                        shards = rec.get("shards")
                        if isinstance(shards, dict):
                            self.shards.update(shards)
                elif kind == "shard":
                    key, out = rec.get("key"), rec.get("out")
                    if isinstance(key, str) and isinstance(out, dict):
                        self.shards[key] = out
                elif kind == "result":
                    entry = rec.get("entry")
                    if isinstance(entry, dict):
                        self.result_entry = entry
                # unknown kinds: forward-compatible no-ops
                good += len(raw)
        if not header_seen and self.shards:
            raise CheckpointError(
                f"journal {self.path} has shard records but no valid run "
                "header; refusing to trust it"
            )
        if not header_seen:
            # Nothing durable at all (empty or fully torn file): treat
            # as fresh.
            self.shards.clear()
            self.result_entry = None
            return 0
        self.resumed_shards = len(self.shards)
        return good

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()
        self._opened = False

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writes ----------------------------------------------------------

    def _append(self, rec: dict) -> None:
        if self._fh is None:
            raise CheckpointError("journal is not open")
        self._fh.write(_record_line(rec).encode("utf-8"))
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_shard(self, key: str, out: dict) -> None:
        """Durably journal one completed shard's encoded output.

        Idempotent per key: re-recording a shard that is already
        journaled (e.g. a resumed ring re-merging) writes nothing.
        """
        if key in self.shards:
            return
        self._append({"kind": "shard", "key": key, "out": out})
        self.shards[key] = out
        self._appends += 1
        tracer = get_tracer()
        tracer.event("checkpoint.flush", key=key)
        tracer.add("checkpoint.appends")
        if self._appends >= self.compact_every:
            self.compact()

    def record_result(self, entry: dict) -> None:
        """Journal the final decision; a resumed run then short-circuits
        exactly like a warm cache hit."""
        self.result_entry = entry
        self._append({"kind": "result", "entry": entry})
        tracer = get_tracer()
        tracer.event("checkpoint.flush", kind="result")
        tracer.add("checkpoint.appends")

    def compact(self) -> None:
        """Rewrite the journal as one snapshot record, atomically.

        Bounds journal growth on long sweeps: ``N`` shard lines become
        one snapshot line holding the same mapping.  The rewrite goes
        through a temp file + ``fsync`` + ``os.replace`` (+ directory
        fsync), so a crash mid-compaction leaves either the old journal
        or the new one — never a mix.
        """
        if self._fh is None:
            raise CheckpointError("journal is not open")
        snapshot = {
            "kind": "snapshot",
            "schema": JOURNAL_SCHEMA_VERSION,
            "run": self.run_key,
            "task": self.task,
            "shards": self.shards,
        }
        tmp = self.path.with_name(self.path.name + ".compact-tmp")
        with open(tmp, "wb") as fh:
            fh.write(_record_line(snapshot).encode("utf-8"))
            if self.result_entry is not None:
                fh.write(
                    _record_line(
                        {"kind": "result", "entry": self.result_entry}
                    ).encode("utf-8")
                )
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        _fsync_dir(self.path.parent)
        self._fh = open(self.path, "ab")
        self._appends = 0
        get_tracer().event("checkpoint.compact", shards=len(self.shards))
        logger.debug(
            "journal compacted: %d shard(s) -> 1 snapshot", len(self.shards)
        )

    # -- reads -----------------------------------------------------------

    def lookup(self, key: str) -> dict | None:
        """The journaled encoded output for a shard key, if any."""
        return self.shards.get(key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckpointJournal({str(self.path)!r}, shards={len(self.shards)}, "
            f"complete={self.result_entry is not None})"
        )


# -- graceful shutdown ------------------------------------------------------


class ShutdownGuard:
    """Intercept ``SIGINT``/``SIGTERM`` and record the request.

    The handler only sets a flag — no work is interrupted at signal
    time.  The engine polls :attr:`stop_reason` between shards and
    converts the request into a :class:`RunInterrupted` at a point
    where everything completed so far is already journaled.  Previous
    handlers are restored on exit; outside the main thread (where
    Python forbids installing handlers) the guard degrades to a no-op.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.stop_reason: str | None = None
        self._previous: dict[int, object] = {}

    def _handler(self, signum, frame) -> None:  # pragma: no cover - signal
        self.stop_reason = signal.Signals(signum).name

    def __enter__(self) -> "ShutdownGuard":
        if threading.current_thread() is threading.main_thread():
            for sig in self.SIGNALS:
                try:
                    self._previous[sig] = signal.signal(sig, self._handler)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return self

    def __exit__(self, *exc) -> None:
        for sig, prev in self._previous.items():
            try:
                signal.signal(sig, prev)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()


class RunControl:
    """One run's stop conditions, polled by the engine between shards.

    Bundles the (optional) journal, the (optional) budget and the
    signal guard behind three check methods the executor calls at its
    natural boundaries.  All three raise :class:`RunInterrupted` (or
    its :class:`BudgetExceeded` subtype) — by the time they do, every
    completed shard has already been journaled, so the stop is
    resumable by construction.

    Two embedding hooks let a long-lived host (the :mod:`repro.serve`
    job server) drive a search it does not own the process of:

    * ``stop`` — a :class:`threading.Event`; once set, the next poll
      point raises :class:`RunInterrupted` exactly like a signal would.
      Signals only reach the main thread, so a search running on a
      worker thread needs this cooperative equivalent.
    * ``on_progress`` — a callable receiving small progress-event
      dicts (ring completed, shard done, shards resumed) as the run
      crosses its natural boundaries.  Events derived from spans go
      through :func:`repro.obs.progress.span_progress`, so what a
      subscriber sees is the same data a trace would record.  A hook
      that raises is disarmed, never the run.
    """

    def __init__(
        self,
        *,
        journal: CheckpointJournal | None = None,
        budget: RunBudget | None = None,
        stop: threading.Event | None = None,
        on_progress=None,
    ) -> None:
        self.journal = journal
        self.budget = budget
        self.stop = stop
        self.on_progress = on_progress
        self.shards_dispatched = 0
        self.shards_resumed = 0  # journal lookups that hit this run
        self._guard = ShutdownGuard() if journal is not None else None
        self._started = time.monotonic()

    def __enter__(self) -> "RunControl":
        self._started = time.monotonic()
        if self._guard is not None:
            self._guard.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        if self._guard is not None:
            self._guard.__exit__(*exc)
        if self.journal is not None:
            self.journal.close()

    # -- checks ----------------------------------------------------------

    def _interrupt(self, exc: RunInterrupted) -> RunInterrupted:
        get_tracer().event("checkpoint.interrupt", reason=exc.reason)
        logger.warning("run stopping: %s", exc.reason)
        return exc

    def poll(self) -> None:
        """Signal + stop-event + wall-clock check; called between
        shards and rings."""
        if self.stop is not None and self.stop.is_set():
            raise self._interrupt(
                RunInterrupted(
                    "stop requested; completed shards are journaled — "
                    "rerun with resume to continue"
                )
            )
        if self._guard is not None and self._guard.stop_reason is not None:
            raise self._interrupt(
                RunInterrupted(
                    f"interrupted by {self._guard.stop_reason}; completed "
                    "shards are journaled — rerun with resume to continue"
                )
            )
        if (
            self.budget is not None
            and self.budget.max_seconds is not None
            and time.monotonic() - self._started > self.budget.max_seconds
        ):
            raise self._interrupt(
                BudgetExceeded(
                    f"wall-clock budget of {self.budget.max_seconds:g}s "
                    "exhausted; rerun with resume to continue"
                )
            )

    def check_ring(self, ring_bound: int) -> None:
        """Per-ring check: signals, the clock, and the bit-growth cap."""
        self.poll()
        if (
            self.budget is not None
            and self.budget.max_bits is not None
            and int(ring_bound).bit_length() > self.budget.max_bits
        ):
            raise self._interrupt(
                BudgetExceeded(
                    f"ring bound {ring_bound} needs "
                    f"{int(ring_bound).bit_length()} bits "
                    f"(> max_bits={self.budget.max_bits}); rerun with "
                    "resume and a larger budget to continue"
                )
            )

    def before_dispatch(self, count: int) -> None:
        """Account ``count`` shards about to be dispatched (resumed
        shards are free and never pass through here)."""
        self.poll()
        if (
            self.budget is not None
            and self.budget.max_shards is not None
            and self.shards_dispatched + count > self.budget.max_shards
        ):
            raise self._interrupt(
                BudgetExceeded(
                    f"shard budget of {self.budget.max_shards} exhausted "
                    f"({self.shards_dispatched} dispatched, {count} more "
                    "needed); rerun with resume to continue"
                )
            )
        self.shards_dispatched += count

    # -- progress hooks --------------------------------------------------

    def emit(self, event: str, **attrs) -> None:
        """Deliver one progress event to the (optional) subscriber.

        A raising hook is disarmed instead of killing the search: the
        hook is an observer, and a broken observer must never cost a
        correct answer.
        """
        if self.on_progress is None:
            return
        try:
            self.on_progress({"event": event, **attrs})
        except Exception:
            logger.exception("progress hook failed; disabling it")
            self.on_progress = None

    def emit_span(self, span, **extra) -> None:
        """Emit a closed span as a progress event (obs adapter)."""
        if self.on_progress is None:
            return
        from ..obs.progress import span_progress

        self.emit("phase", **span_progress(span, **extra))

    # -- journal pass-throughs -------------------------------------------

    def shard_key(self, kind: str, ring: int, index: int, content) -> str:
        """Canonical identity of one shard of this run.

        Mixes the run key (search parameters), the shard's position and
        its exact content, so a journal can never satisfy a lookup for
        different work — resuming with a different ``jobs`` value just
        recomputes the shards whose content changed.

        Shard content is plain ints in lists/tuples, and ``json.dumps``
        already renders tuples as arrays at C speed — so this skips
        :func:`canonical_key`'s recursive canonicalization walk, which
        profiled as the dominant checkpointing cost on rings with
        thousands of candidates (the digest is identical for the
        tuple/list mixes both the enumerators and a replay produce).
        """
        blob = json.dumps(
            {
                "run": self.journal.run_key if self.journal else "",
                "kind": kind,
                "ring": ring,
                "shard": index,
                "content": content,
            },
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def lookup(self, key: str) -> dict | None:
        if self.journal is None:
            return None
        return self.journal.lookup(key)

    def record_shard(self, key: str, out: dict) -> None:
        if self.journal is not None:
            self.journal.record_shard(key, out)

    def record_result(self, entry: dict) -> None:
        if self.journal is not None:
            self.journal.record_result(entry)

    @property
    def resume_entry(self) -> dict | None:
        """The journaled final decision, when resuming a completed run."""
        return self.journal.result_entry if self.journal is not None else None
