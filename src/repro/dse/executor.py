"""Parallel, cached execution of the mapping-space searches.

The engine wraps the serial enumerators of :mod:`repro.core` behind a
work-queue architecture:

* :func:`explore_schedule` — Procedure 5.1 (Problem 2.2).  Each
  expanding ring ``C_l`` is described to workers as contiguous *ranges*
  over the canonical sorted ring array
  (:func:`~repro.core.optimize.ring_candidate_array`): a shard payload
  carries ``(ring bounds, start, stop)`` and the worker re-derives its
  slice locally, judging it through the vectorized
  :class:`~repro.core.optimize.BatchCandidateScanner` funnel (or the
  scalar loop, for ``batch=False`` / ``method="paper"``).  Per-candidate
  verdicts are merged back in the serial scan order, so the winner, the
  verdict *and every stats counter* equal the serial search's exactly.
  Shard granularity is cost-adaptive by default: a
  :class:`~repro.dse.partition.ShardAutotuner` feeds observed shard
  wall-times back into the fan-out decision, so cheap rings stay serial
  and only genuinely expensive rings pay process-dispatch overhead.
  Rings are processed strictly in sequence, which doubles as the
  early-termination broadcast: the moment one ring proves an optimum,
  no candidate of any later ring is ever submitted.
* :func:`explore_space` / :func:`explore_joint` — Problems 6.1 / 6.2.
  The bounded space-mapping design space is dealt across workers; each
  judged design travels back whole and the merge re-ranks with the same
  total order the serial solvers use.

Execution strategy is a detail, never a semantic: ``jobs=1``, the
in-process fallback (forced whenever a non-picklable callback such as
``extra_constraint`` is supplied), and any ``jobs=N`` all return results
that compare equal.  Workers never receive live algorithm objects —
only a plain spec ``(mu, D, name)`` — so the executable semantics
attached to library algorithms (closures, ufuncs) never need to pickle.

Results are optionally backed by a persistent :class:`~repro.dse.cache.
ResultCache`: the cache stores the search *decision* (winning vector,
ranked design list, deterministic counters) under a canonical key of
``(J, D, S, solver, bounds)``, and a hit re-derives verdicts and costs
exactly instead of re-searching.
"""

from __future__ import annotations

import logging
import os
from collections.abc import Callable, Sequence
from contextlib import nullcontext
from itertools import islice

import numpy as np

from ..core.conditions import check_conflict_free
from ..core.mapping import MappingMatrix
from ..core.optimize import (
    BatchCandidateScanner,
    SearchResult,
    _warn_batch_disabled,
    batch_disabled_reason,
    batch_supported,
    ring_candidate_array,
    search_bounds,
)
from ..core.schedule import LinearSchedule
from ..core.symmetry import SymmetryGroup, symmetry_group_for
from ..intlin import as_intvec
from ..core.space_optimize import (
    SpaceDesign,
    SpaceOptimizationResult,
    enumerate_space_mappings,
    evaluate_design,
    evaluate_designs_batched,
    evaluate_joint_candidate,
    joint_objective,
    rank_designs,
)
from ..model import (
    ConstantBoundedIndexSet,
    UniformDependenceAlgorithm,
    validate_algorithm,
    validate_algorithm_spec,
    validate_space,
    validate_vector,
)
from ..obs import Span, get_tracer
from ..systolic.cost import ArrayCost, evaluate_cost
from .cache import ResultCache, canonical_key
from .checkpoint import CheckpointJournal, RunBudget, RunControl
from .partition import (
    ShardAutotuner,
    calibration_probe,
    effective_shards,
    ring_bounds,
    ring_ranges,
    round_robin,
)
from .progress import SearchStats
from .resilience import ResiliencePolicy, ResilientShardRunner, maybe_slow

__all__ = [
    "explore_schedule",
    "explore_space",
    "explore_joint",
    "resolve_jobs",
    "schedule_run_params",
    "space_run_params",
    "joint_run_params",
]

logger = logging.getLogger("repro.dse.executor")

#: Environment override for ``resolve_jobs(None)``: lets a deployment
#: (the job server, CI, a cron wrapper) cap worker parallelism without
#: threading a flag through every call site.
JOBS_ENV_VAR = "REPRO_JOBS"

# Per-candidate scan outcomes, in serial rejection order.
_DEPS = "deps"          # Pi D <= 0 — pruned before the mapping is built
_RANK = "rank"          # rank([S; Pi]) < k
_CONFLICT = "conflict"  # conflict checker rejected
_EXTRA = "extra"        # user extra_constraint rejected
_OK = "ok"              # fully valid candidate


def resolve_jobs(jobs: int | None, max_useful: int | None = None) -> int:
    """``None`` means one worker per *available* CPU; explicit values
    must be >= 1.

    With ``jobs=None``, a ``$REPRO_JOBS`` environment variable (a
    validated positive integer) takes precedence over CPU detection —
    the deployment-wide cap for environments that cannot pass a flag
    through every call site.  An explicit ``jobs`` argument always
    wins over the environment.

    "Available" honors cgroup/affinity limits where the platform
    exposes them (``os.sched_getaffinity``), so a container pinned to 2
    cores gets 2 workers, not one per physical core of the host.

    ``max_useful`` caps the resolved value at the number of work units
    that actually exist (pending shards or rings): asking for 32 workers
    to scan 3 shards resolves to 3, never spawning processes that could
    only idle.  The cap applies after validation and never drops the
    result below 1.
    """
    if jobs is None:
        resolved: int | None = None
        env = os.environ.get(JOBS_ENV_VAR)
        if env is not None and env.strip():
            try:
                value = int(env)
            except ValueError:
                raise ValueError(
                    f"${JOBS_ENV_VAR} must be a positive integer, got {env!r}"
                ) from None
            if value < 1:
                raise ValueError(
                    f"${JOBS_ENV_VAR} must be >= 1, got {value}"
                )
            resolved = value
        if resolved is None and hasattr(os, "sched_getaffinity"):
            try:
                resolved = len(os.sched_getaffinity(0)) or 1
            except OSError:  # pragma: no cover - affinity query denied
                resolved = None
        if resolved is None:
            resolved = os.cpu_count() or 1
    else:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        resolved = jobs
    if max_useful is not None:
        resolved = max(1, min(resolved, max_useful))
    return resolved


# -- algorithm transport ----------------------------------------------------


def _algorithm_spec(algorithm: UniformDependenceAlgorithm) -> dict:
    """The picklable essence of ``(J, D)`` — semantics callbacks dropped.

    ``D`` travels as the :class:`~repro.intlin.IntMat` value itself
    (immutable and picklable); the receiving side's constructor accepts
    it without copying.
    """
    return {
        "mu": list(algorithm.mu),
        "dependence": algorithm.dependence_matrix,
        "name": algorithm.name,
    }


def _algorithm_from_spec(spec: dict) -> UniformDependenceAlgorithm:
    """Rebuild ``(J, D)`` from a transport spec, worker side.

    The payload crossed a process boundary, so its structure is proven
    (:func:`repro.model.validate_algorithm_spec`) before an algorithm
    object is built from it — a corrupted pickle surfaces as a typed
    :class:`~repro.model.SpecError`, not an arbitrary crash downstream.
    """
    validate_algorithm_spec(spec)
    return UniformDependenceAlgorithm(
        index_set=ConstantBoundedIndexSet(tuple(spec["mu"])),
        dependence_matrix=spec["dependence"],
        name=spec["name"],
    )


# -- canonical run parameters -----------------------------------------------

# These dicts are the *identity* of a query: ``canonical_key`` of one is
# the result-cache key, the checkpoint journal's run key, and the job
# digest :mod:`repro.serve` deduplicates identical requests on.  They
# are public so a front end can compute the digest before anything runs
# and be certain it equals the one the engine derives internally.


def schedule_run_params(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    method: str = "auto",
    alpha: int | None = None,
    initial_bound: int | None = None,
    max_bound: int | None = None,
    symmetry: bool = True,
    ring_bound: bool = True,
) -> dict:
    """Canonical run parameters of a Problem 2.2 (schedule) search.

    Defaults resolve exactly as :func:`explore_schedule` resolves them
    (one shared :func:`~repro.core.optimize.search_bounds`), so a
    digest computed at submission time equals the engine's.

    The pruning switches (``symmetry``, ``ring_bound``) are part of the
    run's identity even though pruning is proven result-preserving: a
    cache or journal entry produced under one pruning configuration
    must never answer a query made under another, so a suspect entry
    can always be invalidated by rerunning with pruning off.
    """
    space_rows = tuple(as_intvec(row) for row in space)
    alpha, initial_bound, max_bound = search_bounds(
        algorithm, alpha=alpha, initial_bound=initial_bound, max_bound=max_bound
    )
    return {
        "task": "procedure-5.1",
        "mu": list(algorithm.mu),
        "dependence": algorithm.dependence_matrix,
        "space": space_rows,
        "method": method,
        "alpha": alpha,
        "initial_bound": initial_bound,
        "max_bound": max_bound,
        "symmetry": bool(symmetry),
        "ring_bound": bool(ring_bound),
    }


def space_run_params(
    algorithm: UniformDependenceAlgorithm,
    pi: Sequence[int],
    *,
    array_dim: int = 1,
    magnitude: int = 1,
    keep_ranking: int = 10,
) -> dict:
    """Canonical run parameters of a Problem 6.1 (space) search."""
    return {
        "task": "space-optimal",
        "mu": list(algorithm.mu),
        "dependence": algorithm.dependence_matrix,
        "pi": list(as_intvec(pi)),
        "array_dim": array_dim,
        "magnitude": magnitude,
        "keep_ranking": keep_ranking,
    }


def joint_run_params(
    algorithm: UniformDependenceAlgorithm,
    *,
    array_dim: int = 1,
    magnitude: int = 1,
    time_weight: float = 1.0,
    space_weight: float = 1.0,
    keep_ranking: int = 10,
    schedule_kwargs: dict | None = None,
) -> dict:
    """Canonical run parameters of a Problem 6.2 (joint) search."""
    kwargs = dict(schedule_kwargs or {})
    return {
        "task": "joint-optimal",
        "mu": list(algorithm.mu),
        "dependence": algorithm.dependence_matrix,
        "array_dim": array_dim,
        "magnitude": magnitude,
        "time_weight": time_weight,
        "space_weight": space_weight,
        "keep_ranking": keep_ranking,
        "schedule_kwargs": {k: kwargs[k] for k in sorted(kwargs)},
    }


# -- shard workers (module level: must pickle under ProcessPoolExecutor) ----


def _shard_span(payload: dict, kind: str, candidates: int) -> Span:
    """The worker-side span timing one whole shard.

    Standalone (no tracer): its monotonic duration *is* the shard's
    reported ``wall_time``, and when the parent asked for tracing
    (``payload["trace"]``) its record travels back in the output for
    :meth:`~repro.obs.Tracer.absorb` to merge under the parent trace.
    """
    return Span("dse.shard", attrs={"kind": kind, "candidates": candidates})


def _shard_output(span: Span, payload: dict, data_key: str, data: list) -> dict:
    out = {data_key: data, "wall_time": span.duration}
    if payload.get("trace"):
        out["spans"] = [span.to_record()]
    return out


def _candidate_keys(
    chunk: np.ndarray, mu: Sequence[int]
) -> list[tuple[int, tuple[int, ...]]]:
    """Serial sort keys ``(total_time, pi)`` for a slice of a ring array."""
    if len(chunk) == 0:
        return []
    mu_arr = np.array([int(m) for m in mu], dtype=np.int64)
    f = np.abs(chunk) @ mu_arr
    return [
        (int(f[i]) + 1, tuple(int(v) for v in chunk[i]))
        for i in range(len(chunk))
    ]


def _shard_symmetry(payload: dict, algo: UniformDependenceAlgorithm):
    """Rebuild the funnel symmetry group inside a worker, if enabled.

    The group itself never travels in the payload (numpy matrices are
    picklable but re-deriving is cheaper and keeps payloads JSON-ish);
    :func:`~repro.core.symmetry.symmetry_group` is ``lru_cache``'d, so
    each worker process pays the enumeration once per ``(mu, D, S)``.
    """
    if not payload.get("symmetry"):
        return None
    group = symmetry_group_for(algo, payload["space"])
    return group if group.order > 1 else None


def _scan_schedule_shard(payload: dict) -> dict:
    """Judge one shard of a schedule ring; returns per-candidate records.

    The payload names the ring (``(f_min, f_max)`` bounds) and a
    contiguous ``(start, stop)`` range of the canonical sorted ring
    array; the worker re-derives its slice locally via the cached
    :func:`~repro.core.optimize.ring_candidate_array` instead of
    receiving candidates over the wire.  A record is ``(sort_key,
    outcome)`` with ``sort_key = (total_time, pi)`` — the same total
    order the serial scan sorts by — so the parent can merge shards
    back into the exact serial visit sequence.

    Pruning (``payload["symmetry"]`` / ``payload["min_f"]``) changes
    only *how* a stage code is computed, never which code a candidate
    gets — orbit members rehydrate their representative's stage, and
    candidates whose budget sits below the LP lower bound take the
    ``conflict`` verdict the screen would have produced — so the merged
    record stream is identical to the unpruned one.
    """
    maybe_slow()
    algo = _algorithm_from_spec(payload["algorithm"])
    space = payload["space"]  # tuple of IntVec rows, reused as-is
    method = payload["method"]
    f_min, f_max = payload["ring"]
    start, stop = payload["span"]
    chunk = ring_candidate_array(algo.mu, f_max, f_min=f_min)[start:stop]
    records: list[tuple[tuple[int, tuple[int, ...]], str]] = []
    batches = promotions = 0
    orbits = skipped = screens = 0
    group = _shard_symmetry(payload, algo)
    min_f = payload.get("min_f")
    span = _shard_span(payload, "schedule", len(chunk))
    with span:
        if payload.get("batch"):
            scanner = BatchCandidateScanner(
                algo, space, method=method,
                batch_size=payload.get("batch_size"),
                symmetry=group, min_feasible_f=min_f,
            )
            keys = _candidate_keys(chunk, algo.mu)
            for offset, stages in scanner.iter_stages(chunk):
                for i, stage in enumerate(stages):
                    records.append((keys[offset + i], stage))
            batches = scanner.batches_evaluated
            promotions = scanner.fastpath_promotions
            orbits = scanner.orbits_collapsed
            skipped = scanner.candidates_skipped
            screens = scanner.conflict_screens
        else:
            k = len(space) + 1
            memo: dict[tuple[int, ...], str] = {}
            for row in chunk:
                pi = tuple(int(v) for v in row)
                cand = LinearSchedule(pi=pi, index_set=algo.index_set)
                key = cand.sort_key()
                rep = None
                if group is not None:
                    rep = group.canonicalize(pi)
                    hit = memo.get(rep)
                    if hit is not None:
                        orbits += 1
                        records.append((key, hit))
                        continue
                if not cand.respects(algo):
                    stage = _DEPS
                else:
                    t = MappingMatrix(space=space, schedule=pi)
                    if t.rank() != k:
                        stage = _RANK
                    elif min_f is not None and key[0] - 1 < min_f:
                        # Below the LP lower bound no candidate can be
                        # conflict-free: the screen's verdict, without
                        # running the screen.
                        skipped += 1
                        stage = _CONFLICT
                    else:
                        screens += 1
                        stage = (
                            _OK
                            if check_conflict_free(
                                t, algo.mu, method=method
                            ).holds
                            else _CONFLICT
                        )
                if rep is not None:
                    memo[rep] = stage
                records.append((key, stage))
    out = _shard_output(span, payload, "records", records)
    out["batches"] = batches
    out["promotions"] = promotions
    out["orbits"] = orbits
    out["skipped"] = skipped
    out["screens"] = screens
    return out


def _shard_spaces(
    algo: UniformDependenceAlgorithm, payload: dict
) -> list[tuple[tuple[int, ...], ...]]:
    """Re-derive a design-space shard's slice from its range payload."""
    start, stop = payload["span"]
    return list(
        islice(
            enumerate_space_mappings(
                algo.n, payload["array_dim"], payload["magnitude"]
            ),
            start,
            stop,
        )
    )


def _evaluate_space_shard(payload: dict) -> dict:
    """Judge one shard of Problem 6.1's design space."""
    maybe_slow()
    algo = _algorithm_from_spec(payload["algorithm"])
    pi = payload["pi"]
    spaces = _shard_spaces(algo, payload)
    batches = promotions = 0
    span = _shard_span(payload, "space", len(spaces))
    with span:
        if payload.get("batch"):
            evaluated, batches, promotions = evaluate_designs_batched(
                algo, spaces, pi, batch_size=payload.get("batch_size")
            )
        else:
            evaluated = [
                evaluate_design(algo, space, pi) for space in spaces
            ]
    out = _shard_output(span, payload, "evaluated", evaluated)
    out["batches"] = batches
    out["promotions"] = promotions
    return out


def _evaluate_joint_shard(payload: dict) -> dict:
    """Judge one shard of Problem 6.2's design space."""
    maybe_slow()
    algo = _algorithm_from_spec(payload["algorithm"])
    spaces = _shard_spaces(algo, payload)
    # Batch preferences travel outside schedule_kwargs (they are not
    # part of the run's identity); explicit user kwargs always win.
    kwargs = dict(payload["schedule_kwargs"])
    kwargs.setdefault("batch", payload.get("schedule_batch", True))
    size = payload.get("schedule_batch_size")
    if size is not None:
        kwargs.setdefault("batch_size", size)
    span = _shard_span(payload, "joint", len(spaces))
    with span:
        evaluated = [
            evaluate_joint_candidate(
                algo,
                space,
                payload["time_weight"],
                payload["space_weight"],
                kwargs,
            )
            for space in spaces
        ]
    return _shard_output(span, payload, "evaluated", evaluated)


# -- fan-out helper ---------------------------------------------------------

# The fan-out loop lives in repro.dse.resilience: ResilientShardRunner
# runs payloads in-process or on a supervised pool, retrying/re-judging
# failed shards so the serial-equality contract survives worker death,
# hangs and corrupted outputs.


# -- journal transport ------------------------------------------------------

# Shard outputs must round-trip through the checkpoint journal as plain
# JSON.  Both encodings are exact — sort keys and costs are ints, the
# objective float survives JSON unchanged — so a replayed shard merges
# identically to a recomputed one.  Worker-side trace spans are dropped:
# they belong to the run that produced them, not to the journal.


def _encode_schedule_out(out: dict) -> dict:
    # Records are ((t, pi), stage) tuples of ints; json renders tuples
    # as arrays natively, so no per-record rebuild is needed (this is
    # on the per-candidate checkpointing hot path).  Spans stay out of
    # the journal either way.
    return {
        "records": out["records"],
        "wall_time": out["wall_time"],
        "batches": out.get("batches", 0),
        "promotions": out.get("promotions", 0),
        "orbits": out.get("orbits", 0),
        "skipped": out.get("skipped", 0),
        "screens": out.get("screens", 0),
    }


def _decode_schedule_out(data: dict) -> dict:
    # ``.get(..., 0)`` on the pruning telemetry keeps journals written
    # before the pruning release replayable (they carry no such keys).
    return {
        "records": [
            ((int(key[0]), tuple(int(x) for x in key[1])), str(stage))
            for key, stage in data["records"]
        ],
        "wall_time": data["wall_time"],
        "batches": int(data.get("batches", 0)),
        "promotions": int(data.get("promotions", 0)),
        "orbits": int(data.get("orbits", 0)),
        "skipped": int(data.get("skipped", 0)),
        "screens": int(data.get("screens", 0)),
    }


def _encode_design_out(out: dict) -> dict:
    evaluated = []
    for status, design in out["evaluated"]:
        if design is None:
            evaluated.append([status, None])
            continue
        evaluated.append([
            status,
            {
                "space": [list(row) for row in design.mapping.space],
                "pi": list(design.mapping.schedule),
                "cost": [
                    design.cost.processors,
                    design.cost.wire_length,
                    design.cost.buffers,
                    design.cost.total_time,
                ],
                "objective": design.objective,
            },
        ])
    return {
        "evaluated": evaluated,
        "wall_time": out["wall_time"],
        "batches": out.get("batches", 0),
        "promotions": out.get("promotions", 0),
    }


def _decode_design_out(data: dict) -> dict:
    evaluated = []
    for status, item in data["evaluated"]:
        if item is None:
            evaluated.append((status, None))
            continue
        mapping = MappingMatrix(
            space=tuple(tuple(int(x) for x in row) for row in item["space"]),
            schedule=tuple(int(x) for x in item["pi"]),
        )
        cost = ArrayCost(*(int(c) for c in item["cost"]))
        evaluated.append(
            (status, SpaceDesign(mapping=mapping, cost=cost,
                                 objective=item["objective"]))
        )
    return {
        "evaluated": evaluated,
        "wall_time": data["wall_time"],
        "batches": int(data.get("batches", 0)),
        "promotions": int(data.get("promotions", 0)),
    }


def _run_shards(
    runner: ResilientShardRunner,
    worker: Callable[[dict], dict],
    payloads: list[dict],
    control: RunControl | None,
    *,
    kind: str,
    ring: int,
    content_key: str,
    encode: Callable[[dict], dict],
    decode: Callable[[dict], dict],
) -> list[dict]:
    """Run shard payloads under the (optional) run control.

    With a journal: journaled shards are replayed instead of dispatched,
    and every fresh shard is journaled the moment it completes (the
    runner's ``on_result`` hook fires before later shards are awaited,
    so a kill can lose at most in-flight work).  With a budget: the
    stop conditions are polled between shards.  With neither: a plain
    ``runner.run``.
    """
    if control is None:
        return runner.run(worker, payloads)
    outs: list[dict | None] = [None] * len(payloads)
    keys: list[str] | None = None
    if control.journal is not None:
        keys = [
            control.shard_key(kind, ring, i, payload[content_key])
            for i, payload in enumerate(payloads)
        ]
        for i, key in enumerate(keys):
            recorded = control.lookup(key)
            if recorded is not None:
                outs[i] = decode(recorded)
                control.shards_resumed += 1
    todo = [i for i, out in enumerate(outs) if out is None]
    if len(todo) < len(payloads):
        control.emit(
            "shards_resumed", kind=kind, ring=ring,
            count=len(payloads) - len(todo), total=len(payloads),
        )
    if not todo:
        control.poll()  # fully replayed rings still honor signals/budget
        return outs  # type: ignore[return-value]
    control.before_dispatch(len(todo))
    done = 0

    def on_result(j: int, out: dict) -> None:
        nonlocal done
        if keys is not None:
            control.record_shard(keys[todo[j]], encode(out))
        done += 1
        control.emit(
            "shard_done", kind=kind, ring=ring, completed=done,
            total=len(todo), wall_time=out.get("wall_time"),
        )

    fresh = runner.run(
        worker,
        [payloads[i] for i in todo],
        on_result=on_result,
        should_stop=control.poll,
    )
    for j, i in enumerate(todo):
        outs[i] = fresh[j]
    return outs  # type: ignore[return-value]


# -- Problem 2.2: schedule search ------------------------------------------


def explore_schedule(
    algorithm: UniformDependenceAlgorithm,
    space: Sequence[Sequence[int]],
    *,
    jobs: int | None = None,
    method: str = "auto",
    alpha: int | None = None,
    initial_bound: int | None = None,
    max_bound: int | None = None,
    extra_constraint: Callable[[MappingMatrix], bool] | None = None,
    batch: bool = True,
    batch_size: int | None = None,
    adaptive: bool = True,
    symmetry: bool = True,
    ring_bound: bool = True,
    cache: ResultCache | None = None,
    resilience: ResiliencePolicy | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    budget: RunBudget | None = None,
    stop=None,
    on_progress: Callable[[dict], None] | None = None,
) -> SearchResult:
    """Procedure 5.1 through the work-queue engine.

    Equal (dataclass ``==``) to ``procedure_5_1(algorithm, space, ...)``
    for every ``jobs`` value, for warm-cache replays and for
    interrupted-then-resumed runs; only the telemetry fields of
    :class:`~repro.dse.progress.SearchStats` (shards, wall times, cache
    counters) reflect the execution strategy.

    Parameters mirror :func:`repro.core.optimize.procedure_5_1`, plus:

    jobs:
        Worker processes (``None``: one per available CPU).
        ``extra_constraint`` forces the in-process fallback — arbitrary
        callbacks do not cross process boundaries.
    batch, batch_size:
        Evaluation strategy inside each shard: the vectorized
        :class:`~repro.core.optimize.BatchCandidateScanner` funnel by
        default, the scalar loop with ``batch=False`` (and always
        scalar where :func:`~repro.core.optimize.batch_supported` says
        batching cannot be bit-exact, e.g. ``method="paper"``).  Never
        part of the run's cache/journal identity — a cached or
        journaled decision replays regardless of strategy.
    adaptive:
        Cost-adaptive shard granularity (default).  Observed shard
        wall-times feed a :class:`~repro.dse.partition.ShardAutotuner`
        so small rings stay serial and only expensive rings fan out to
        ``jobs`` workers; ``adaptive=False`` restores the fixed
        ``effective_shards`` policy (every ring cut ``jobs`` ways).
        Decisions are deterministic given the journal, so resumes
        re-derive identical shard ranges.
    symmetry, ring_bound:
        Result-preserving pruning, mirroring
        :func:`repro.core.optimize.procedure_5_1`: orbit collapsing
        under the funnel symmetry group of ``(mu, D, S)`` and the
        LP-relaxation ring lower bound.  Unlike ``batch``, these *are*
        part of the run's cache/journal identity (see
        :func:`schedule_run_params`).
    cache:
        Optional persistent :class:`~repro.dse.cache.ResultCache`; hits
        skip the search and re-derive the verdict exactly.
    resilience:
        Optional :class:`~repro.dse.resilience.ResiliencePolicy`
        governing shard timeouts, retries and degradation on the
        parallel path (``None``: the default policy).
    checkpoint:
        Path of a :class:`~repro.dse.checkpoint.CheckpointJournal`.
        Every completed shard is journaled (fsync'd) the moment it
        finishes, and ``SIGINT``/``SIGTERM`` become a clean
        :class:`~repro.dse.checkpoint.RunInterrupted` stop instead of a
        lost run.  Incompatible with ``extra_constraint`` (a callback
        cannot be canonicalized into the journal's run key).
    resume:
        With ``checkpoint``: replay the journal first and skip every
        shard it already holds.  The journal's run key must match this
        search's parameters exactly.
    budget:
        Optional :class:`~repro.dse.checkpoint.RunBudget`; exceeding a
        ceiling raises :class:`~repro.dse.checkpoint.BudgetExceeded`,
        the same clean resumable stop a signal produces.
    stop:
        Optional :class:`threading.Event`; once set, the run stops at
        the next shard boundary with the same clean, resumable
        :class:`~repro.dse.checkpoint.RunInterrupted` a signal
        produces.  This is how a host that runs searches on worker
        threads (the :mod:`repro.serve` job server) cancels or drains
        them — signals only reach the main thread.
    on_progress:
        Optional callable receiving progress-event dicts (rings
        completed, shards done/resumed) at the engine's natural
        boundaries; see :meth:`~repro.dse.checkpoint.RunControl.emit`.
    """
    validate_algorithm(algorithm)
    jobs = resolve_jobs(jobs)
    mu = algorithm.mu
    # Pre-normalized IntVec rows: every MappingMatrix built from them —
    # in shards and in the final result — reuses them without validation.
    space_rows = tuple(as_intvec(row) for row in space)
    validate_space(space_rows, algorithm.n)
    if checkpoint is not None and extra_constraint is not None:
        raise ValueError(
            "checkpoint is incompatible with extra_constraint: a live "
            "callback cannot be canonicalized into the journal's run key"
        )
    alpha, initial_bound, max_bound = search_bounds(
        algorithm, alpha=alpha, initial_bound=initial_bound, max_bound=max_bound
    )
    tracer = get_tracer()
    root = tracer.span(
        "dse.explore_schedule",
        algorithm=algorithm.name,
        jobs=jobs,
        method=method,
        batch=batch and batch_supported(method, max_bound),
        adaptive=adaptive,
    )
    if batch:
        disabled = batch_disabled_reason(method, max_bound)
        if disabled is not None:
            root.set(batch_disabled_reason=disabled)
    with root:
        result = _explore_schedule_traced(
            algorithm, space_rows, jobs=jobs, method=method, alpha=alpha,
            initial_bound=initial_bound, max_bound=max_bound,
            extra_constraint=extra_constraint, batch=batch,
            batch_size=batch_size, adaptive=adaptive,
            symmetry=symmetry, ring_bound=ring_bound, cache=cache,
            resilience=resilience, tracer=tracer,
            checkpoint=checkpoint, resume=resume, budget=budget,
            stop=stop, on_progress=on_progress,
        )
    # One timing source: the search's wall time is the root span.
    result.stats.wall_time = root.duration
    return result


def _explore_schedule_traced(
    algorithm: UniformDependenceAlgorithm,
    space_rows: tuple,
    *,
    jobs: int,
    method: str,
    alpha: int,
    initial_bound: int,
    max_bound: int,
    extra_constraint: Callable[[MappingMatrix], bool] | None,
    batch: bool,
    batch_size: int | None,
    adaptive: bool,
    symmetry: bool,
    ring_bound: bool,
    cache: ResultCache | None,
    resilience: ResiliencePolicy | None,
    tracer,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    budget: RunBudget | None = None,
    stop=None,
    on_progress: Callable[[dict], None] | None = None,
) -> SearchResult:
    run_params = schedule_run_params(
        algorithm, space_rows, method=method, alpha=alpha,
        initial_bound=initial_bound, max_bound=max_bound,
        symmetry=symmetry, ring_bound=ring_bound,
    )
    cache_key = None
    if cache is not None and extra_constraint is None:
        cache_key = canonical_key(run_params)
        entry = cache.get(cache_key)
        if entry is not None:
            logger.debug("explore_schedule: warm cache hit, skipping search")
            return _schedule_result_from_entry(
                algorithm, space_rows, method, entry
            )

    control = _run_control(
        run_params, "procedure-5.1", checkpoint, resume, budget,
        stop=stop, on_progress=on_progress,
    )

    spec = _algorithm_spec(algorithm)
    stats = SearchStats(cache_misses=1 if cache_key is not None else 0)

    with control if control is not None else nullcontext():
        if control is not None and control.resume_entry is not None:
            # The journal already holds the final decision: short-circuit
            # exactly like a warm cache hit (and warm the cache, if any).
            logger.debug("explore_schedule: journal holds a completed run")
            if cache_key is not None:
                cache.put(cache_key, control.resume_entry)
            result = _schedule_result_from_entry(
                algorithm, space_rows, method, control.resume_entry
            )
            result.stats.cache_hits = 0
            result.stats.cache_misses = 1 if cache_key is not None else 0
            result.stats.shards_resumed = control.journal.resumed_shards
            return result

        with ResilientShardRunner(
            jobs, in_process=extra_constraint is not None, policy=resilience
        ) as runner:
            result = _scan_rings(
                algorithm, space_rows, spec, stats, runner, control,
                jobs=jobs, method=method, alpha=alpha,
                initial_bound=initial_bound, max_bound=max_bound,
                extra_constraint=extra_constraint, batch=batch,
                batch_size=batch_size, adaptive=adaptive,
                symmetry=symmetry, ring_bound=ring_bound, tracer=tracer,
            )
        if control is not None:
            stats.shards_resumed = control.shards_resumed
            control.record_result(_schedule_entry_from_result(result))
    if cache_key is not None:
        cache.put(cache_key, _schedule_entry_from_result(result))
    return result


# One probe per process: explore_* is called in tight loops by tests
# and benchmarks, and the machine does not change between calls.
_process_calibration: float | None = None


def _calibration_seconds(control: RunControl | None) -> float:
    """The machine-speed probe feeding the autotuner's thresholds.

    With a checkpoint journal the measurement is recorded under a
    dedicated ``"calibrate"`` shard key on first use and replayed from
    the journal ever after, so a resumed run derives exactly the
    thresholds — and therefore exactly the shard ranges and journal
    keys — the original run used.  Without a journal the probe runs
    once per process.
    """
    global _process_calibration
    key = None
    if control is not None:
        key = control.shard_key("calibrate", 0, 0, "machine-probe")
        recorded = control.lookup(key)
        if recorded is not None:
            # Replayed, not remeasured — counts as a resumed shard so a
            # resume that serves everything from the journal reports
            # exactly as many resumed shards as the journal holds.
            control.shards_resumed += 1
            return float(recorded["seconds"])
    if _process_calibration is None:
        _process_calibration = calibration_probe()
    if key is not None:
        control.record_shard(key, {"seconds": _process_calibration})
    return _process_calibration


def _scan_rings(
    algorithm: UniformDependenceAlgorithm,
    space_rows: tuple,
    spec: dict,
    stats: SearchStats,
    runner: ResilientShardRunner,
    control: RunControl | None,
    *,
    jobs: int,
    method: str,
    alpha: int,
    initial_bound: int,
    max_bound: int,
    extra_constraint: Callable[[MappingMatrix], bool] | None,
    batch: bool,
    batch_size: int | None,
    adaptive: bool,
    symmetry: bool,
    ring_bound: bool,
    tracer,
) -> SearchResult:
    """The ring loop of Procedure 5.1, sharded; fills ``stats`` in place."""
    mu = algorithm.mu
    examined = 0
    rings = 0
    winner_pi: tuple[int, ...] | None = None
    max_shards = 1
    trace = tracer.enabled
    use_batch = batch and batch_supported(method, max_bound)
    if batch and not use_batch:
        reason = batch_disabled_reason(method, max_bound)
        stats.batch_disabled_reason = reason
        _warn_batch_disabled(reason)
    # Pruning setup mirrors the serial procedure_5_1 exactly: orbit
    # collapsing only under the exact conflict deciders (the paper's
    # sufficient conditions are not syntactically symmetric), and the
    # LP ring bound degrading to "no bound" on any solver failure.
    group: SymmetryGroup | None = None
    if symmetry and method in ("auto", "exact"):
        group = symmetry_group_for(algorithm, space_rows)
        if group.order <= 1:
            group = None
    min_f: int | None = None
    bound_reason: str | None = None
    if ring_bound:
        from ..core.ilp_formulation import schedule_lower_bound

        min_f, bound_reason = schedule_lower_bound(algorithm, space_rows)
    tuner = (
        ShardAutotuner(jobs=jobs, calibration=_calibration_seconds(control))
        if adaptive
        else None
    )
    for f_min, f_max in ring_bounds(initial_bound, alpha, max_bound):
        if control is not None:
            control.check_ring(f_max)
        ring_span = tracer.span("dse.ring", ring=rings, f_min=f_min, f_max=f_max)
        with ring_span:
            if rings == 0 and bound_reason is not None:
                tracer.event("ring_bound_failed", reason=bound_reason)
                ring_span.set(ring_bound_failed=bound_reason)
            if min_f is not None and f_max < min_f:
                stats.rings_bounded_out += 1
                ring_span.set(bounded_out=True)
            ring_arr = ring_candidate_array(mu, f_max, f_min=f_min)
            total = len(ring_arr)
            stats.candidates_enumerated += total
            # The autotuner's work measure is orbit *representatives*
            # when symmetry collapsing is on: shard ranges still cover
            # every enumerated candidate (the merge needs every record),
            # but the cost of a ring is what actually gets evaluated.
            reps = total
            if group is not None and total:
                reps = len(
                    np.unique(group.canonicalize_rows(ring_arr), axis=0)
                )
            if tuner is not None:
                shards = tuner.shards_for(total, representatives=reps)
            else:
                shards = effective_shards(total, jobs)
            max_shards = max(max_shards, shards)
            ring_span.set(candidates=total, shards=shards)
            payloads = [
                {
                    "algorithm": spec,
                    "space": space_rows,
                    "method": method,
                    "ring": (f_min, f_max),
                    "span": (start, stop),
                    "batch": use_batch,
                    "batch_size": batch_size,
                    "symmetry": group is not None,
                    "min_f": min_f,
                    "trace": trace,
                }
                for start, stop in ring_ranges(total, shards)
            ]
            if extra_constraint is None:
                outs = _run_shards(
                    runner, _scan_schedule_shard, payloads, control,
                    kind="schedule", ring=rings, content_key="span",
                    encode=_encode_schedule_out, decode=_decode_schedule_out,
                )
            else:
                outs = [
                    _scan_constrained_shard(p, extra_constraint)
                    for p in payloads
                ]
            records = [rec for out in outs for rec in out["records"]]
            stats.shard_wall_times = stats.shard_wall_times + tuple(
                out["wall_time"] for out in outs
            )
            ring_batches = sum(out.get("batches", 0) for out in outs)
            ring_promotions = sum(out.get("promotions", 0) for out in outs)
            stats.batches_evaluated += ring_batches
            stats.fastpath_promotions += ring_promotions
            stats.orbits_collapsed += sum(out.get("orbits", 0) for out in outs)
            stats.candidates_skipped += sum(
                out.get("skipped", 0) for out in outs
            )
            stats.conflict_screens += sum(
                out.get("screens", 0) for out in outs
            )
            if tuner is not None:
                # Feed only journal-exact signals (shard wall times) so a
                # resumed run re-derives identical shard ranges.  The work
                # measure matches shards_for: representatives, since those
                # are what the shard wall time was spent on.
                tuner.observe(reps, sum(out["wall_time"] for out in outs))
            for shard_idx, out in enumerate(outs):
                tracer.absorb(out.get("spans"), shard=shard_idx, ring=rings)

            # Deterministic merge: replay the serial visit order.
            for key, stage in sorted(records):
                if stage == _DEPS:
                    stats.candidates_pruned += 1
                    continue
                examined += 1
                if stage == _RANK:
                    stats.candidates_pruned += 1
                    continue
                stats.candidates_checked += 1
                if stage == _CONFLICT:
                    stats.conflicts_rejected += 1
                    continue
                if stage == _EXTRA:
                    continue
                winner_pi = tuple(key[1])
                break
        if control is not None:
            # Materialize the closed ring span as a progress event: a
            # subscriber sees the same data a --trace file would hold.
            # candidates/shards travel explicitly — Span.set() drops
            # attrs when the tracer is disabled.
            control.emit_span(
                ring_span, winner=winner_pi is not None,
                candidates=total, shards=shards,
                batches=ring_batches, promotions=ring_promotions,
            )
        if winner_pi is not None:
            logger.debug(
                "explore_schedule: ring %d produced winner %s", rings, winner_pi
            )
            break  # later rings are never submitted
        rings += 1

    stats.rings_expanded = rings
    stats.shards = max_shards
    if tuner is not None:
        stats.shards_autotuned = tuner.autotuned
    runner.apply_telemetry(stats)

    if winner_pi is None:
        return SearchResult(
            schedule=None,
            mapping=None,
            verdict=None,
            candidates_examined=examined,
            rings_expanded=rings,
            stats=stats,
        )
    mapping = MappingMatrix(space=space_rows, schedule=winner_pi)
    return SearchResult(
        schedule=LinearSchedule(pi=winner_pi, index_set=algorithm.index_set),
        mapping=mapping,
        verdict=check_conflict_free(mapping, mu, method=method),
        candidates_examined=examined,
        rings_expanded=rings,
        stats=stats,
    )


def _schedule_entry_from_result(result: SearchResult) -> dict:
    """The persistent decision record — shared by the result cache and
    the checkpoint journal, so either can rebuild the result exactly."""
    return {
        "found": result.found,
        "pi": list(result.schedule.pi) if result.found else None,
        "candidates_examined": result.candidates_examined,
        "rings_expanded": result.rings_expanded,
        "counters": result.stats.counter_dict(),
    }


def _scan_constrained_shard(
    payload: dict, extra_constraint: Callable[[MappingMatrix], bool]
) -> dict:
    """In-process variant of :func:`_scan_schedule_shard` that applies the
    (non-picklable) user constraint after the conflict check, exactly
    where the serial scan applies it."""
    out = _scan_schedule_shard(payload)
    space = payload["space"]
    records = []
    for key, stage in out["records"]:
        if stage == _OK and not extra_constraint(
            MappingMatrix(space=space, schedule=key[1])
        ):
            stage = _EXTRA
        records.append((key, stage))
    out["records"] = records
    return out


def _schedule_result_from_entry(
    algorithm: UniformDependenceAlgorithm,
    space_rows: tuple[tuple[int, ...], ...],
    method: str,
    entry: dict,
) -> SearchResult:
    """Rebuild a :class:`SearchResult` from a cache hit.

    The entry stores only the decision; the verdict is re-derived with
    the same checker call the search would have made, so the rebuilt
    result equals the cold one.  ``stats.wall_time`` is left for the
    caller's root span to fill in.
    """
    stats = SearchStats.from_dict(entry["counters"])
    stats.cache_hits = 1
    if not entry["found"]:
        return SearchResult(
            schedule=None,
            mapping=None,
            verdict=None,
            candidates_examined=entry["candidates_examined"],
            rings_expanded=entry["rings_expanded"],
            stats=stats,
        )
    pi = tuple(entry["pi"])
    mapping = MappingMatrix(space=space_rows, schedule=pi)
    return SearchResult(
        schedule=LinearSchedule(pi=pi, index_set=algorithm.index_set),
        mapping=mapping,
        verdict=check_conflict_free(mapping, algorithm.mu, method=method),
        candidates_examined=entry["candidates_examined"],
        rings_expanded=entry["rings_expanded"],
        stats=stats,
    )


# -- Problems 6.1 / 6.2: design-space search -------------------------------


def explore_space(
    algorithm: UniformDependenceAlgorithm,
    pi: Sequence[int],
    *,
    jobs: int | None = None,
    array_dim: int = 1,
    magnitude: int = 1,
    objective=None,
    keep_ranking: int = 10,
    batch: bool = True,
    batch_size: int | None = None,
    cache: ResultCache | None = None,
    resilience: ResiliencePolicy | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    budget: RunBudget | None = None,
    stop=None,
    on_progress: Callable[[dict], None] | None = None,
) -> SpaceOptimizationResult:
    """Problem 6.1 through the engine; equal to ``solve_space_optimal``.

    A custom ``objective`` callable forces the in-process fallback and
    bypasses the cache (it is part of the answer but not of any
    canonical key); for the same reason it is incompatible with
    ``checkpoint``.  ``batch`` / ``batch_size`` select the vectorized
    conflict screen of
    :func:`~repro.core.space_optimize.evaluate_designs_batched` inside
    each shard (never part of the run's identity).  ``checkpoint`` /
    ``resume`` / ``budget`` / ``stop`` / ``on_progress`` behave as in
    :func:`explore_schedule`.
    """
    validate_algorithm(algorithm)
    pi_t = as_intvec(pi)
    validate_vector(pi_t, algorithm.n, "pi")
    sched = LinearSchedule(pi=pi_t, index_set=algorithm.index_set)
    if not sched.respects(algorithm):
        raise ValueError("the given Pi violates the dependence condition Pi D > 0")
    if checkpoint is not None and objective is not None:
        raise ValueError(
            "checkpoint is incompatible with a custom objective: a live "
            "callback cannot be canonicalized into the journal's run key"
        )
    jobs = resolve_jobs(jobs)
    tracer = get_tracer()
    root = tracer.span(
        "dse.explore_space",
        algorithm=algorithm.name,
        jobs=jobs,
        array_dim=array_dim,
        magnitude=magnitude,
    )
    result: SpaceOptimizationResult | None = None
    with root:
        run_params = space_run_params(
            algorithm, pi_t, array_dim=array_dim, magnitude=magnitude,
            keep_ranking=keep_ranking,
        )

        def rebuild(space):
            return evaluate_design(algorithm, space, pi_t)[1]

        cache_key = None
        if cache is not None and objective is None:
            cache_key = canonical_key(run_params)
            entry = cache.get(cache_key)
            if entry is not None:
                logger.debug("explore_space: warm cache hit, skipping search")
                result = _space_result_from_entry(algorithm, entry, rebuild=rebuild)

        if result is None:
            control = _run_control(
                run_params, "space-optimal", checkpoint, resume, budget,
                stop=stop, on_progress=on_progress,
            )
            with control if control is not None else nullcontext():
                if control is not None and control.resume_entry is not None:
                    logger.debug("explore_space: journal holds a completed run")
                    result = _resumed_design_result(
                        algorithm, control, cache, cache_key, rebuild
                    )
                else:
                    candidates = list(
                        enumerate_space_mappings(algorithm.n, array_dim, magnitude)
                    )
                    root.set(candidates=len(candidates))
                    payload_extra = {
                        "pi": pi_t,
                        "batch": batch,
                        "batch_size": batch_size,
                    }
                    runner = None
                    if objective is None:
                        outs, runner = _fan_out_designs(
                            algorithm, candidates, jobs, _evaluate_space_shard,
                            payload_extra, resilience,
                            array_dim=array_dim, magnitude=magnitude,
                            control=control, kind="space",
                        )
                    elif batch:
                        outs = []
                        for part in round_robin(
                            candidates, effective_shards(len(candidates), jobs)
                        ):
                            evaluated, n_batches, promoted = (
                                evaluate_designs_batched(
                                    algorithm, part, pi_t, objective,
                                    batch_size=batch_size,
                                )
                            )
                            outs.append({
                                "evaluated": evaluated,
                                "wall_time": 0.0,
                                "batches": n_batches,
                                "promotions": promoted,
                            })
                    else:
                        outs = [
                            {
                                "evaluated": [
                                    evaluate_design(algorithm, space, pi_t, objective)
                                    for space in part
                                ],
                                "wall_time": 0.0,
                            }
                            for part in round_robin(
                                candidates, effective_shards(len(candidates), jobs)
                            )
                        ]

                    result = _merge_design_outs(
                        candidates, outs, keep_ranking,
                        cache_misses=1 if cache_key is not None else 0,
                    )
                    if runner is not None:
                        runner.apply_telemetry(result.stats)
                    if control is not None:
                        result.stats.shards_resumed = control.shards_resumed
                        control.record_result(_space_entry_from_result(result))
                    if cache_key is not None:
                        cache.put(cache_key, _space_entry_from_result(result))
    result.stats.wall_time = root.duration
    return result


def _run_control(
    run_params: dict,
    task: str,
    checkpoint: str | os.PathLike | None,
    resume: bool,
    budget: RunBudget | None,
    stop=None,
    on_progress: Callable[[dict], None] | None = None,
) -> RunControl | None:
    """Build the (optional) run control for one search invocation."""
    if (checkpoint is None and budget is None and stop is None
            and on_progress is None):
        return None
    journal = None
    if checkpoint is not None:
        journal = CheckpointJournal(checkpoint)
        journal.open(canonical_key(run_params), task=task, resume=resume)
    return RunControl(
        journal=journal, budget=budget, stop=stop, on_progress=on_progress
    )


def _resumed_design_result(
    algorithm: UniformDependenceAlgorithm,
    control: RunControl,
    cache: ResultCache | None,
    cache_key: str | None,
    rebuild: Callable[..., SpaceDesign | None],
) -> SpaceOptimizationResult:
    """Short-circuit a design search whose journal holds the decision —
    exactly like a warm cache hit (and warm the cache, if any)."""
    entry = control.resume_entry
    if cache_key is not None:
        cache.put(cache_key, entry)
    result = _space_result_from_entry(algorithm, entry, rebuild=rebuild)
    result.stats.cache_hits = 0
    result.stats.cache_misses = 1 if cache_key is not None else 0
    result.stats.shards_resumed = control.journal.resumed_shards
    return result


def explore_joint(
    algorithm: UniformDependenceAlgorithm,
    *,
    jobs: int | None = None,
    array_dim: int = 1,
    magnitude: int = 1,
    time_weight: float = 1.0,
    space_weight: float = 1.0,
    keep_ranking: int = 10,
    schedule_kwargs: dict | None = None,
    batch: bool = True,
    batch_size: int | None = None,
    cache: ResultCache | None = None,
    resilience: ResiliencePolicy | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    budget: RunBudget | None = None,
    stop=None,
    on_progress: Callable[[dict], None] | None = None,
) -> SpaceOptimizationResult:
    """Problem 6.2 through the engine; equal to ``solve_joint_optimal``.

    ``schedule_kwargs`` containing callbacks (``extra_constraint``)
    forces the in-process fallback, bypasses the cache and is
    incompatible with ``checkpoint``.  ``batch`` / ``batch_size`` set
    the default evaluation strategy of every per-candidate inner
    schedule search (explicit ``schedule_kwargs`` entries win, and only
    those enter the run's identity).  ``checkpoint`` / ``resume`` /
    ``budget`` / ``stop`` / ``on_progress`` behave as in
    :func:`explore_schedule`.
    """
    validate_algorithm(algorithm)
    jobs = resolve_jobs(jobs)
    kwargs = dict(schedule_kwargs or {})
    has_callback = any(callable(v) for v in kwargs.values())
    if checkpoint is not None and has_callback:
        raise ValueError(
            "checkpoint is incompatible with callback schedule_kwargs: a "
            "live callback cannot be canonicalized into the journal's run key"
        )
    tracer = get_tracer()
    root = tracer.span(
        "dse.explore_joint",
        algorithm=algorithm.name,
        jobs=jobs,
        array_dim=array_dim,
        magnitude=magnitude,
    )
    result: SpaceOptimizationResult | None = None
    with root:
        run_params = joint_run_params(
            algorithm, array_dim=array_dim, magnitude=magnitude,
            time_weight=time_weight, space_weight=space_weight,
            keep_ranking=keep_ranking, schedule_kwargs=kwargs,
        )

        def rebuild(space, pi=None):
            # Shares joint_objective with evaluate_joint_candidate, so a
            # warm rebuild can never drift from the cold path's cost model.
            mapping = MappingMatrix(space=space, schedule=pi)
            cost = evaluate_cost(algorithm, mapping)
            objective = joint_objective(cost, time_weight, space_weight)
            return SpaceDesign(mapping=mapping, cost=cost, objective=objective)

        cache_key = None
        if cache is not None and not has_callback:
            cache_key = canonical_key(run_params)
            entry = cache.get(cache_key)
            if entry is not None:
                logger.debug("explore_joint: warm cache hit, skipping search")
                result = _space_result_from_entry(
                    algorithm, entry, rebuild=rebuild
                )

        if result is None:
            control = _run_control(
                run_params, "joint-optimal", checkpoint, resume, budget,
                stop=stop, on_progress=on_progress,
            )
            with control if control is not None else nullcontext():
                if control is not None and control.resume_entry is not None:
                    logger.debug("explore_joint: journal holds a completed run")
                    result = _resumed_design_result(
                        algorithm, control, cache, cache_key, rebuild
                    )
                else:
                    candidates = list(
                        enumerate_space_mappings(algorithm.n, array_dim, magnitude)
                    )
                    root.set(candidates=len(candidates))
                    payload_extra = {
                        "time_weight": time_weight,
                        "space_weight": space_weight,
                        "schedule_kwargs": kwargs,
                        "schedule_batch": batch,
                        "schedule_batch_size": batch_size,
                    }
                    runner = None
                    if has_callback:
                        # Same merge the worker applies: batch preferences
                        # default in without entering the run's identity.
                        exec_kwargs = dict(kwargs)
                        exec_kwargs.setdefault("batch", batch)
                        if batch_size is not None:
                            exec_kwargs.setdefault("batch_size", batch_size)
                        outs = [
                            {
                                "evaluated": [
                                    evaluate_joint_candidate(
                                        algorithm, space, time_weight,
                                        space_weight, exec_kwargs,
                                    )
                                    for space in part
                                ],
                                "wall_time": 0.0,
                            }
                            for part in round_robin(
                                candidates, effective_shards(len(candidates), jobs)
                            )
                        ]
                    else:
                        outs, runner = _fan_out_designs(
                            algorithm, candidates, jobs, _evaluate_joint_shard,
                            payload_extra, resilience,
                            array_dim=array_dim, magnitude=magnitude,
                            control=control, kind="joint",
                        )

                    result = _merge_design_outs(
                        candidates, outs, keep_ranking,
                        cache_misses=1 if cache_key is not None else 0,
                    )
                    if runner is not None:
                        runner.apply_telemetry(result.stats)
                    if control is not None:
                        result.stats.shards_resumed = control.shards_resumed
                        control.record_result(
                            _space_entry_from_result(result, with_pi=True)
                        )
                    if cache_key is not None:
                        cache.put(
                            cache_key, _space_entry_from_result(result, with_pi=True)
                        )
    result.stats.wall_time = root.duration
    return result


def _fan_out_designs(
    algorithm: UniformDependenceAlgorithm,
    candidates: list,
    jobs: int,
    worker: Callable[[dict], dict],
    payload_extra: dict,
    resilience: ResiliencePolicy | None,
    *,
    array_dim: int,
    magnitude: int,
    control: RunControl | None = None,
    kind: str = "space",
) -> tuple[list[dict], ResilientShardRunner]:
    spec = _algorithm_spec(algorithm)
    tracer = get_tracer()
    shards = effective_shards(len(candidates), jobs)
    payloads = [
        {
            "algorithm": spec,
            "array_dim": array_dim,
            "magnitude": magnitude,
            "span": rng,
            "trace": tracer.enabled,
            **payload_extra,
        }
        for rng in ring_ranges(len(candidates), shards)
    ]
    # Never spawn workers that could only idle: the pool is capped at
    # the number of pending shards.
    jobs = resolve_jobs(jobs, max_useful=len(payloads))
    with ResilientShardRunner(jobs, policy=resilience) as runner:
        outs = _run_shards(
            runner, worker, payloads, control,
            kind=kind, ring=0, content_key="span",
            encode=_encode_design_out, decode=_decode_design_out,
        )
    for shard_idx, out in enumerate(outs):
        tracer.absorb(out.get("spans"), shard=shard_idx)
    return outs, runner


def _merge_design_outs(
    candidates: list,
    outs: list[dict],
    keep_ranking: int,
    *,
    cache_misses: int,
) -> SpaceOptimizationResult:
    # stats.wall_time stays 0.0 here: the caller's root span fills it in.
    stats = SearchStats(
        candidates_enumerated=len(candidates),
        shards=max(1, len(outs)),
        cache_misses=cache_misses,
        shard_wall_times=tuple(out["wall_time"] for out in outs),
        batches_evaluated=sum(out.get("batches", 0) for out in outs),
        fastpath_promotions=sum(out.get("promotions", 0) for out in outs),
    )
    designs: list[SpaceDesign] = []
    for out in outs:
        for status, design in out["evaluated"]:
            if status == "rank":
                stats.candidates_pruned += 1
                continue
            stats.candidates_checked += 1
            if status == "conflict":
                stats.conflicts_rejected += 1
            elif status == "routing":
                stats.routing_rejected += 1
            else:
                designs.append(design)
    designs = rank_designs(designs)
    return SpaceOptimizationResult(
        best=designs[0] if designs else None,
        ranking=tuple(designs[:keep_ranking]),
        candidates_examined=stats.candidates_enumerated,
        rejected_conflicts=stats.conflicts_rejected,
        rejected_routing=stats.routing_rejected,
        stats=stats,
    )


def _space_entry_from_result(
    result: SpaceOptimizationResult, *, with_pi: bool = False
) -> dict:
    ranking = []
    for design in result.ranking:
        item = {"space": [list(r) for r in design.mapping.space]}
        if with_pi:
            item["pi"] = list(design.mapping.schedule)
        ranking.append(item)
    return {
        "ranking": ranking,
        "candidates_examined": result.candidates_examined,
        "rejected_conflicts": result.rejected_conflicts,
        "rejected_routing": result.rejected_routing,
        "counters": result.stats.counter_dict(),
    }


def _space_result_from_entry(
    algorithm: UniformDependenceAlgorithm,
    entry: dict,
    *,
    rebuild: Callable[..., SpaceDesign | None],
) -> SpaceOptimizationResult:
    stats = SearchStats.from_dict(entry["counters"])
    stats.cache_hits = 1
    designs: list[SpaceDesign] = []
    for item in entry["ranking"]:
        space = tuple(tuple(int(x) for x in row) for row in item["space"])
        if "pi" in item:
            design = rebuild(space, pi=tuple(item["pi"]))
        else:
            design = rebuild(space)
        if design is None:  # pragma: no cover - cache/codebase version skew
            continue
        designs.append(design)
    return SpaceOptimizationResult(
        best=designs[0] if designs else None,
        ranking=tuple(designs),
        candidates_examined=entry["candidates_examined"],
        rejected_conflicts=entry["rejected_conflicts"],
        rejected_routing=entry["rejected_routing"],
        stats=stats,
    )
