"""Deterministic partitioning of candidate spaces into work shards.

The engine's correctness contract is that a sharded search returns a
result *equal* to the serial one.  Two properties of this module make
that cheap to guarantee downstream:

* **Stable candidate order.**  Candidates are always materialized in the
  serial enumerator's order (sorted schedule rings from
  :func:`repro.core.optimize.enumerate_schedule_vectors`, combination
  order from :func:`repro.core.space_optimize.enumerate_space_mappings`)
  *before* sharding, so the merge step can reconstruct exactly the
  sequence the serial scan would have visited.
* **Round-robin assignment.**  Shard ``r`` receives candidates
  ``r, r + jobs, r + 2*jobs, ...`` of that order.  Schedule rings are
  sorted by execution time first, so round-robin deals the cheap and
  expensive candidates evenly across workers instead of handing one
  worker the whole expensive tail.

Nothing here depends on the executor; the functions are pure and unit
tested in isolation.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import TypeVar

__all__ = ["round_robin", "ring_bounds", "effective_shards"]

T = TypeVar("T")


def round_robin(items: Sequence[T], shards: int) -> list[list[T]]:
    """Deal ``items`` into ``shards`` lists, round-robin, dropping none.

    Empty shards are omitted, so the result has
    ``min(shards, len(items))`` entries (and is ``[]`` for no items).
    Concatenating the shards interleaved (position 0 of each shard,
    position 1 of each shard, ...) reproduces the input order — the
    property the merge step relies on.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    dealt = [list(items[r::shards]) for r in range(shards)]
    return [shard for shard in dealt if shard]


def effective_shards(num_items: int, jobs: int) -> int:
    """How many shards to actually cut for ``num_items`` candidates.

    Never more shards than items, never fewer than one; a handful of
    candidates is not worth the fan-out bookkeeping of many workers.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return max(1, min(jobs, num_items))


def ring_bounds(
    initial_bound: int, alpha: int, max_bound: int
) -> Iterator[tuple[int, int]]:
    """Successive ``(f_min, f_max)`` windows of Procedure 5.1's rings.

    Mirrors the serial loop exactly: the first ring is
    ``[0, initial_bound]``, each following ring covers
    ``[previous_max + 1, previous_max + alpha]``, and every upper bound
    is clamped to ``max_bound``.  The iterator stops once ``max_bound``
    has been covered.
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    x_prev = -1
    x = initial_bound
    while x_prev < max_bound:
        top = min(x, max_bound)
        yield (x_prev + 1, top)
        x_prev = top
        x += alpha
