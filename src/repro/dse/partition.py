"""Deterministic partitioning of candidate spaces into work shards.

The engine's correctness contract is that a sharded search returns a
result *equal* to the serial one.  Two properties of this module make
that cheap to guarantee downstream:

* **Stable candidate order.**  Candidates are always materialized in the
  serial enumerator's order (sorted schedule rings from
  :func:`repro.core.optimize.enumerate_schedule_vectors`, combination
  order from :func:`repro.core.space_optimize.enumerate_space_mappings`)
  *before* sharding, so the merge step can reconstruct exactly the
  sequence the serial scan would have visited.
* **Compact work descriptions.**  Schedule rings ship to workers as
  *ranges* over the canonical sorted ring array
  (:func:`repro.core.optimize.ring_candidate_array`), not as candidate
  lists: a shard payload names ``(ring, start, stop)`` and the worker
  re-derives its contiguous slice locally.  :func:`ring_ranges` cuts
  those balanced ranges; :func:`round_robin` remains for the in-process
  paths that still deal materialized items.

Shard *granularity* is adaptive: :class:`ShardAutotuner` feeds the
``dse.shard`` span wall-times the observability layer already records
back into the fan-out decision, so rings too small to amortize process
overhead stay serial and only genuinely expensive rings fan out.  Its
thresholds come from a one-shot machine-speed measurement
(:func:`calibration_probe` → :func:`thresholds_from_probe`) rather than
constants tuned on one reference box.  Its decisions are a pure
function of the calibration value and the observation history — and
both round-trip the checkpoint journal exactly — so a resumed run
re-derives the same partitioning and hits every journaled shard key.

Nothing here depends on the executor; the functions are pure and unit
tested in isolation.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import TypeVar

__all__ = [
    "DEFAULT_MIN_FANOUT_SECONDS",
    "DEFAULT_TARGET_SHARD_SECONDS",
    "REFERENCE_PROBE_SECONDS",
    "ShardAutotuner",
    "calibration_probe",
    "effective_shards",
    "ring_bounds",
    "ring_ranges",
    "round_robin",
    "thresholds_from_probe",
]

T = TypeVar("T")


def round_robin(items: Sequence[T], shards: int) -> list[list[T]]:
    """Deal ``items`` into ``shards`` lists, round-robin, dropping none.

    Empty shards are omitted, so the result has
    ``min(shards, len(items))`` entries (and is ``[]`` for no items).
    Concatenating the shards interleaved (position 0 of each shard,
    position 1 of each shard, ...) reproduces the input order — the
    property the merge step relies on.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    dealt = [list(items[r::shards]) for r in range(shards)]
    return [shard for shard in dealt if shard]


def effective_shards(num_items: int, jobs: int) -> int:
    """How many shards to actually cut for ``num_items`` candidates.

    Never more shards than items, never fewer than one; a handful of
    candidates is not worth the fan-out bookkeeping of many workers.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return max(1, min(jobs, num_items))


def ring_ranges(total: int, shards: int) -> list[tuple[int, int]]:
    """Cut ``[0, total)`` into ``shards`` balanced contiguous ranges.

    Returns ``(start, stop)`` half-open slices covering the interval in
    order, each of size ``total // shards`` or one more (the remainder
    goes to the leading ranges).  Empty ranges are never produced: the
    result has ``min(shards, total)`` entries, and ``[]`` for an empty
    ring.  Concatenating the slices in order reproduces ``range(total)``
    exactly, which is what lets the merge step reconstruct the serial
    visit order from contiguous shard payloads.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if total == 0:
        return []
    shards = min(shards, total)
    base, extra = divmod(total, shards)
    ranges: list[tuple[int, int]] = []
    start = 0
    for idx in range(shards):
        stop = start + base + (1 if idx < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


#: Fallback thresholds when no calibration measurement is supplied —
#: the values PR 7 tuned on the reference container.
DEFAULT_TARGET_SHARD_SECONDS = 0.05
DEFAULT_MIN_FANOUT_SECONDS = 0.1

#: What :func:`calibration_probe` measures on the machine the default
#: thresholds were tuned on.  The ratio ``probe / reference`` scales the
#: thresholds on faster/slower machines.
REFERENCE_PROBE_SECONDS = 0.01

# Clamp for the calibration scale factor: a wildly slow probe (swapping,
# cold interpreter) must not push the thresholds into never-fan-out
# territory, nor a fast one into fanning out sub-millisecond rings.
_PROBE_SCALE_MIN = 0.25
_PROBE_SCALE_MAX = 8.0

# Fixed integer workload sized to ~REFERENCE_PROBE_SECONDS on the
# reference machine.
_PROBE_ITERATIONS = 120_000


def calibration_probe(iterations: int = _PROBE_ITERATIONS) -> float:
    """Measure this machine's speed on a fixed integer workload.

    Returns the wall-clock seconds one deterministic pure-Python loop
    takes — the same flavor of work (small-int arithmetic) the scalar
    candidate scan does, so the measurement transfers.  The *workload*
    is deterministic; the *measurement* is of course machine- and
    moment-dependent, which is why the executor journals it: autotune
    decisions must be a pure function of recorded history.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    acc = 0
    start = time.perf_counter()
    for i in range(iterations):
        acc += i * i % 97
    elapsed = time.perf_counter() - start
    # A zero measurement (clock granularity) would collapse the scale
    # clamp; floor it at one microsecond.
    return max(elapsed, 1e-6)


def thresholds_from_probe(probe_seconds: float) -> tuple[float, float]:
    """Derive ``(target_shard_seconds, min_fanout_seconds)`` from a probe.

    The PR 7 constants encode "process dispatch costs ~X seconds of
    useful scan work" on the reference machine; on a slower or
    oversubscribed machine dispatch costs proportionally more wall
    time, so both thresholds scale linearly with the probe ratio,
    clamped to one order of magnitude around the reference.
    """
    if probe_seconds <= 0:
        raise ValueError(f"probe_seconds must be > 0, got {probe_seconds}")
    scale = probe_seconds / REFERENCE_PROBE_SECONDS
    scale = min(_PROBE_SCALE_MAX, max(_PROBE_SCALE_MIN, scale))
    return (
        DEFAULT_TARGET_SHARD_SECONDS * scale,
        DEFAULT_MIN_FANOUT_SECONDS * scale,
    )


@dataclass
class ShardAutotuner:
    """Cost-adaptive shard granularity for the ring fan-out.

    The naive policy (``effective_shards``) cuts every ring into
    ``jobs`` shards, which loses badly on small rings: dispatching a
    sub-millisecond scan to a worker process costs orders of magnitude
    more than running it inline.  The tuner instead predicts each ring's
    scan cost from the per-candidate rate observed on *previous* rings
    of the same run and keeps a ring serial unless the predicted cost
    clears ``min_fanout_seconds``; when it does fan out, it sizes shards
    to roughly ``target_shard_seconds`` apiece (capped at ``jobs``).

    Thresholds left at ``None`` are derived from ``calibration`` (a
    :func:`calibration_probe` measurement, normally replayed from the
    checkpoint journal) via :func:`thresholds_from_probe`, falling back
    to the reference-machine defaults when no measurement is supplied.
    Explicit threshold values always win.

    Determinism contract: decisions depend only on ``jobs``, the
    resolved thresholds, and the sequence of :meth:`observe` calls.  The
    executor feeds ``observe`` exclusively from shard-output wall times
    and ``calibration`` from a journaled probe record — both of which
    the checkpoint journal round-trips exactly (JSON float round-trip
    is identity) — so a resumed run replays the same inputs and
    re-derives identical shard ranges, a requirement for journal keys
    to match.
    """

    jobs: int
    target_shard_seconds: float | None = None
    min_fanout_seconds: float | None = None
    calibration: float | None = None
    observed_candidates: int = 0
    observed_seconds: float = 0.0
    autotuned: int = 0

    def __post_init__(self) -> None:
        if self.target_shard_seconds is None or self.min_fanout_seconds is None:
            if self.calibration is not None:
                target, fanout = thresholds_from_probe(self.calibration)
            else:
                target = DEFAULT_TARGET_SHARD_SECONDS
                fanout = DEFAULT_MIN_FANOUT_SECONDS
            if self.target_shard_seconds is None:
                self.target_shard_seconds = target
            if self.min_fanout_seconds is None:
                self.min_fanout_seconds = fanout

    def observe(self, candidates: int, seconds: float) -> None:
        """Record a completed ring: ``candidates`` scanned in ``seconds``."""
        if candidates < 0 or seconds < 0:
            raise ValueError("observations must be non-negative")
        self.observed_candidates += candidates
        self.observed_seconds += seconds

    def shards_for(
        self, num_candidates: int, representatives: int | None = None
    ) -> int:
        """Shard count for the next ring of ``num_candidates``.

        With symmetry collapsing, the engine deals shard *ranges* over
        all ``num_candidates`` enumerated rows (the merge step needs a
        record for every candidate) but only orbit representatives cost
        evaluation work — so the cost prediction uses
        ``representatives`` when given, while the shard-count cap stays
        at ``num_candidates``.  The caller must then feed the same
        measure to :meth:`observe`, keeping the rate's numerator and
        denominator in the same unit.
        """
        work = num_candidates if representatives is None else representatives
        baseline = effective_shards(num_candidates, self.jobs)
        if self.observed_candidates <= 0:
            # No cost data yet: scan the first ring serially as a probe.
            decision = 1
        else:
            rate = self.observed_seconds / self.observed_candidates
            predicted = work * rate
            if predicted < self.min_fanout_seconds:
                decision = 1
            else:
                wanted = -(-predicted // max(self.target_shard_seconds, 1e-9))
                decision = max(1, min(baseline, int(wanted)))
        if decision != baseline:
            self.autotuned += 1
        return decision


def ring_bounds(
    initial_bound: int, alpha: int, max_bound: int
) -> Iterator[tuple[int, int]]:
    """Successive ``(f_min, f_max)`` windows of Procedure 5.1's rings.

    Mirrors the serial loop exactly: the first ring is
    ``[0, initial_bound]``, each following ring covers
    ``[previous_max + 1, previous_max + alpha]``, and every upper bound
    is clamped to ``max_bound``.  The iterator stops once ``max_bound``
    has been covered.
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    x_prev = -1
    x = initial_bound
    while x_prev < max_bound:
        top = min(x, max_bound)
        yield (x_prev + 1, top)
        x_prev = top
        x += alpha
