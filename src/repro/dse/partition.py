"""Deterministic partitioning of candidate spaces into work shards.

The engine's correctness contract is that a sharded search returns a
result *equal* to the serial one.  Two properties of this module make
that cheap to guarantee downstream:

* **Stable candidate order.**  Candidates are always materialized in the
  serial enumerator's order (sorted schedule rings from
  :func:`repro.core.optimize.enumerate_schedule_vectors`, combination
  order from :func:`repro.core.space_optimize.enumerate_space_mappings`)
  *before* sharding, so the merge step can reconstruct exactly the
  sequence the serial scan would have visited.
* **Compact work descriptions.**  Schedule rings ship to workers as
  *ranges* over the canonical sorted ring array
  (:func:`repro.core.optimize.ring_candidate_array`), not as candidate
  lists: a shard payload names ``(ring, start, stop)`` and the worker
  re-derives its contiguous slice locally.  :func:`ring_ranges` cuts
  those balanced ranges; :func:`round_robin` remains for the in-process
  paths that still deal materialized items.

Shard *granularity* is adaptive: :class:`ShardAutotuner` feeds the
``dse.shard`` span wall-times the observability layer already records
back into the fan-out decision, so rings too small to amortize process
overhead stay serial and only genuinely expensive rings fan out.  Its
decisions are a pure function of the observation history — and the
observations themselves round-trip the checkpoint journal exactly — so
a resumed run re-derives the same partitioning and hits every journaled
shard key.

Nothing here depends on the executor; the functions are pure and unit
tested in isolation.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import TypeVar

__all__ = [
    "ShardAutotuner",
    "effective_shards",
    "ring_bounds",
    "ring_ranges",
    "round_robin",
]

T = TypeVar("T")


def round_robin(items: Sequence[T], shards: int) -> list[list[T]]:
    """Deal ``items`` into ``shards`` lists, round-robin, dropping none.

    Empty shards are omitted, so the result has
    ``min(shards, len(items))`` entries (and is ``[]`` for no items).
    Concatenating the shards interleaved (position 0 of each shard,
    position 1 of each shard, ...) reproduces the input order — the
    property the merge step relies on.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    dealt = [list(items[r::shards]) for r in range(shards)]
    return [shard for shard in dealt if shard]


def effective_shards(num_items: int, jobs: int) -> int:
    """How many shards to actually cut for ``num_items`` candidates.

    Never more shards than items, never fewer than one; a handful of
    candidates is not worth the fan-out bookkeeping of many workers.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return max(1, min(jobs, num_items))


def ring_ranges(total: int, shards: int) -> list[tuple[int, int]]:
    """Cut ``[0, total)`` into ``shards`` balanced contiguous ranges.

    Returns ``(start, stop)`` half-open slices covering the interval in
    order, each of size ``total // shards`` or one more (the remainder
    goes to the leading ranges).  Empty ranges are never produced: the
    result has ``min(shards, total)`` entries, and ``[]`` for an empty
    ring.  Concatenating the slices in order reproduces ``range(total)``
    exactly, which is what lets the merge step reconstruct the serial
    visit order from contiguous shard payloads.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if total == 0:
        return []
    shards = min(shards, total)
    base, extra = divmod(total, shards)
    ranges: list[tuple[int, int]] = []
    start = 0
    for idx in range(shards):
        stop = start + base + (1 if idx < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


@dataclass
class ShardAutotuner:
    """Cost-adaptive shard granularity for the ring fan-out.

    The naive policy (``effective_shards``) cuts every ring into
    ``jobs`` shards, which loses badly on small rings: dispatching a
    sub-millisecond scan to a worker process costs orders of magnitude
    more than running it inline.  The tuner instead predicts each ring's
    scan cost from the per-candidate rate observed on *previous* rings
    of the same run and keeps a ring serial unless the predicted cost
    clears ``min_fanout_seconds``; when it does fan out, it sizes shards
    to roughly ``target_shard_seconds`` apiece (capped at ``jobs``).

    Determinism contract: decisions depend only on ``jobs``, the
    thresholds, and the sequence of :meth:`observe` calls.  The executor
    feeds ``observe`` exclusively from shard-output wall times, which
    the checkpoint journal round-trips exactly (JSON float round-trip is
    identity), so a resumed run replays the same observations and
    re-derives identical shard ranges — a requirement for journal keys
    to match.
    """

    jobs: int
    target_shard_seconds: float = 0.05
    min_fanout_seconds: float = 0.1
    observed_candidates: int = 0
    observed_seconds: float = 0.0
    autotuned: int = 0

    def observe(self, candidates: int, seconds: float) -> None:
        """Record a completed ring: ``candidates`` scanned in ``seconds``."""
        if candidates < 0 or seconds < 0:
            raise ValueError("observations must be non-negative")
        self.observed_candidates += candidates
        self.observed_seconds += seconds

    def shards_for(self, num_candidates: int) -> int:
        """Shard count for the next ring of ``num_candidates``."""
        baseline = effective_shards(num_candidates, self.jobs)
        if self.observed_candidates <= 0:
            # No cost data yet: scan the first ring serially as a probe.
            decision = 1
        else:
            rate = self.observed_seconds / self.observed_candidates
            predicted = num_candidates * rate
            if predicted < self.min_fanout_seconds:
                decision = 1
            else:
                wanted = -(-predicted // max(self.target_shard_seconds, 1e-9))
                decision = max(1, min(baseline, int(wanted)))
        if decision != baseline:
            self.autotuned += 1
        return decision


def ring_bounds(
    initial_bound: int, alpha: int, max_bound: int
) -> Iterator[tuple[int, int]]:
    """Successive ``(f_min, f_max)`` windows of Procedure 5.1's rings.

    Mirrors the serial loop exactly: the first ring is
    ``[0, initial_bound]``, each following ring covers
    ``[previous_max + 1, previous_max + alpha]``, and every upper bound
    is clamped to ``max_bound``.  The iterator stops once ``max_bound``
    has been covered.
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    x_prev = -1
    x = initial_bound
    while x_prev < max_bound:
        top = min(x, max_bound)
        yield (x_prev + 1, top)
        x_prev = top
        x += alpha
