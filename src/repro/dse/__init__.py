"""repro.dse — parallel, cached design-space exploration engine.

Public surface:

* :class:`SearchStats` / :func:`format_stats` — uniform search
  telemetry (:mod:`repro.dse.progress`).
* :func:`explore_schedule`, :func:`explore_space`,
  :func:`explore_joint` — the work-queue searches
  (:mod:`repro.dse.executor`), equal to their serial counterparts in
  :mod:`repro.core` for every ``jobs`` value and cache state.
* :class:`ResultCache`, :func:`canonical_key`,
  :func:`default_cache_dir` — the persistent result cache
  (:mod:`repro.dse.cache`).
* :class:`ResiliencePolicy`, :class:`ResilienceError` — fault
  tolerance for the parallel path (:mod:`repro.dse.resilience`):
  shard timeouts, bounded retries, pool replacement and graceful
  degradation, all preserving serial-result equality.
* :class:`CheckpointJournal`, :class:`RunBudget`,
  :class:`RunInterrupted`, :class:`BudgetExceeded`,
  :class:`CheckpointError` — crash-safe checkpoint/resume, graceful
  shutdown and run budgets (:mod:`repro.dse.checkpoint`).
* :func:`round_robin`, :func:`ring_bounds`, :func:`effective_shards` —
  deterministic sharding primitives (:mod:`repro.dse.partition`).

Only :mod:`~repro.dse.progress` is imported eagerly: :mod:`repro.core`
imports it from here, so everything that pulls in :mod:`repro.core`
(as the executor does) must load lazily to keep the import graph
acyclic.
"""

from __future__ import annotations

from .progress import SearchStats, format_stats

__all__ = [
    "SearchStats",
    "format_stats",
    "explore_schedule",
    "explore_space",
    "explore_joint",
    "resolve_jobs",
    "schedule_run_params",
    "space_run_params",
    "joint_run_params",
    "ResultCache",
    "canonical_key",
    "default_cache_dir",
    "ResiliencePolicy",
    "ResilienceError",
    "CheckpointJournal",
    "RunBudget",
    "RunInterrupted",
    "BudgetExceeded",
    "CheckpointError",
    "round_robin",
    "ring_bounds",
    "effective_shards",
]

_LAZY = {
    "explore_schedule": "executor",
    "explore_space": "executor",
    "explore_joint": "executor",
    "resolve_jobs": "executor",
    "schedule_run_params": "executor",
    "space_run_params": "executor",
    "joint_run_params": "executor",
    "ResultCache": "cache",
    "canonical_key": "cache",
    "default_cache_dir": "cache",
    "ResiliencePolicy": "resilience",
    "ResilienceError": "resilience",
    "CheckpointJournal": "checkpoint",
    "RunBudget": "checkpoint",
    "RunInterrupted": "checkpoint",
    "BudgetExceeded": "checkpoint",
    "CheckpointError": "checkpoint",
    "round_robin": "partition",
    "ring_bounds": "partition",
    "effective_shards": "partition",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
