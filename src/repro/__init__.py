"""repro — Time-optimal and conflict-free mappings of uniform dependence
algorithms into lower dimensional processor arrays.

A complete reproduction of Shang & Fortes (ICPP 1990 / Purdue TR-EE
90-29).  The package maps ``n``-dimensional uniform dependence
algorithms (nested loops with constant dependence vectors) onto
``(k-1)``-dimensional processor arrays with ``k < n`` such that no two
computations collide in the same processor at the same time, and such
that total execution time is provably minimal.

Quickstart
----------
>>> from repro import matrix_multiplication, find_time_optimal_mapping
>>> algo = matrix_multiplication(4)            # C = A B, 5x5 matrices
>>> result = find_time_optimal_mapping(algo, space=[[1, 1, -1]])
>>> result.schedule.pi, result.total_time
((1, 4, 1), 25)

Sub-packages
------------
``repro.intlin``
    Exact integer linear algebra (HNF, Smith, kernels, diophantine).
``repro.model``
    Index sets, uniform dependence algorithms, the algorithm zoo, and
    a loop-nest front-end.
``repro.core``
    The mapping theory: conflict vectors, the Section-4 theorems,
    Procedure 5.1, the ILP formulations, baselines, Proposition 8.1.
``repro.ilp``
    Branch-and-bound ILP and exact vertex enumeration.
``repro.systolic``
    Cycle-accurate processor-array simulation and visualization.
"""

from .core import (
    LinearSchedule,
    MappingMatrix,
    MappingResult,
    analyze_conflicts,
    check_conflict_free,
    find_time_optimal_mapping,
    procedure_5_1,
    solve_corank1_optimal,
)
from .model import (
    Access,
    ConstantBoundedIndexSet,
    LoopNest,
    UniformDependenceAlgorithm,
    bit_level_convolution,
    bit_level_matrix_multiplication,
    convolution_1d,
    lu_decomposition,
    matrix_multiplication,
    transitive_closure,
)
from .systolic import plan_interconnection, simulate_mapping

__version__ = "1.0.0"

__all__ = [
    "Access",
    "ConstantBoundedIndexSet",
    "LinearSchedule",
    "LoopNest",
    "MappingMatrix",
    "MappingResult",
    "UniformDependenceAlgorithm",
    "analyze_conflicts",
    "bit_level_convolution",
    "bit_level_matrix_multiplication",
    "check_conflict_free",
    "convolution_1d",
    "find_time_optimal_mapping",
    "lu_decomposition",
    "matrix_multiplication",
    "plan_interconnection",
    "procedure_5_1",
    "simulate_mapping",
    "solve_corank1_optimal",
    "transitive_closure",
    "__version__",
]
