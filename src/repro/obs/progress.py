"""Span → progress-event adapter.

The job server (:mod:`repro.serve`) streams live progress for running
searches.  Rather than inventing a second instrumentation vocabulary,
progress events are *materialized from the same spans the tracer
records*: a closed :class:`~repro.obs.tracer.Span` (a ring of
Procedure 5.1, a shard batch, a search root) is flattened into a small
JSON-safe dict carrying the span's name, duration and attributes.  A
subscriber therefore sees exactly the data a ``--trace`` file would
hold for the same run — one instrumentation source, two consumers.

The adapter is deliberately tolerant: spans may be open (no duration
yet) or tracerless worker-side spans; attributes that are not
JSON-representable are stringified rather than dropped, because a
progress stream must never raise into the search that feeds it.
"""

from __future__ import annotations

__all__ = ["span_progress", "record_progress"]

_SAFE_SCALARS = (str, int, float, bool, type(None))


def _json_safe(value):
    """``value`` coerced to something ``json.dumps`` accepts."""
    if isinstance(value, _SAFE_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def span_progress(span, **extra) -> dict:
    """A progress-event dict materialized from a :class:`Span`.

    The span's name becomes ``phase``, its monotonic duration (when the
    span has closed) becomes ``wall_time``, and its attributes are
    inlined after JSON coercion.  ``extra`` keys are applied last, so a
    caller can annotate (e.g. ``winner=True`` on the ring that ended a
    search).
    """
    event = {"phase": span.name}
    for key, value in span.attrs.items():
        event[str(key)] = _json_safe(value)
    if span.duration is not None:
        event["wall_time"] = span.duration
    for key, value in extra.items():
        event[key] = _json_safe(value)
    return event


def record_progress(record: dict, **extra) -> dict:
    """Like :func:`span_progress`, for an already-serialized span record
    (the ``to_record`` dicts workers ship home in shard outputs)."""
    event = {"phase": record.get("name", "span")}
    for key, value in (record.get("attrs") or {}).items():
        event[str(key)] = _json_safe(value)
    if record.get("duration") is not None:
        event["wall_time"] = record["duration"]
    for key, value in extra.items():
        event[key] = _json_safe(value)
    return event
