"""repro.obs — structured tracing, metrics and logging for the package.

A stdlib-only observability layer threaded through every hot path:

* :class:`Tracer` / :class:`Span` — hierarchical spans with monotonic
  timing, counters, gauges and events (:mod:`repro.obs.tracer`).  The
  process-wide tracer (:func:`get_tracer`) is **disabled by default**
  and the disabled path is a no-op: spans still time themselves (the
  searches derive ``SearchStats.wall_time`` from them — one source of
  truth) but nothing is buffered.
* :func:`configure` / :class:`trace_session` — enable tracing for a
  process or a ``with`` block; :func:`configure_logging` wires the
  ``repro`` logger hierarchy (``--log-level`` on the CLI).
* :mod:`repro.obs.schema` — the JSONL record shapes and a validator
  (:func:`validate_trace_file`, :func:`load_trace`).
* :mod:`repro.obs.report` — ``repro obs report``'s per-phase wall-time
  breakdown (:func:`phase_breakdown`, :func:`format_report`).

Worker processes never write trace files: they return span records in
their shard outputs and the parent merges them with
:meth:`Tracer.absorb`, tagged by shard id — the exported trace is a
single consistent tree.
"""

from __future__ import annotations

from .progress import record_progress, span_progress
from .report import PhaseSummary, format_report, phase_breakdown, report_file
from .schema import load_trace, validate_lines, validate_record, validate_trace_file
from .tracer import (
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    configure,
    configure_logging,
    get_tracer,
    set_tracer,
    trace_session,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "configure",
    "configure_logging",
    "get_tracer",
    "set_tracer",
    "trace_session",
    "load_trace",
    "validate_lines",
    "validate_record",
    "validate_trace_file",
    "PhaseSummary",
    "phase_breakdown",
    "format_report",
    "report_file",
    "span_progress",
    "record_progress",
]
