"""Hierarchical spans, counters and events with a no-op fast path.

The tracer is the package's single timing authority: every search and
simulation phase is timed by a :class:`Span`, and derived telemetry
(``SearchStats.wall_time``, per-shard wall times) is read back from the
span's monotonic duration instead of ad-hoc ``perf_counter`` pairs.

Design constraints, in order:

1. **Unmeasurable when disabled.**  A disabled tracer still *times*
   spans (callers need the durations for ``SearchStats``), but it
   allocates no ids, touches no locks, and records nothing.  The cost
   of a disabled span is two ``perf_counter`` calls and one small
   object — instrumentation sits at ring/shard/phase granularity, never
   per candidate, so the overhead on a search is noise.
2. **Thread-safe.**  Record buffers are guarded by a lock; the active-
   span stack is thread-local, so spans opened on different threads
   nest independently.
3. **Process-safe export.**  Only one process writes a trace file:
   worker processes return their span records inside the shard output
   and the parent :meth:`Tracer.absorb`\\ s them (re-parented under the
   absorbing span, tagged with the shard id).  ``write_jsonl`` appends
   the whole buffer in a single ``write`` on an ``O_APPEND`` handle, so
   even two parents sharing a file interleave on line boundaries.

Span timestamps carry two clocks: ``start_unix`` (wall clock, for
placing a span on a human timeline, comparable across processes) and
``duration`` (monotonic ``perf_counter`` delta, the number every
report and derived statistic uses).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections.abc import Iterable, Mapping

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "configure",
    "configure_logging",
    "trace_session",
    "TRACE_SCHEMA_VERSION",
]

#: Bump when the JSONL record layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

logger = logging.getLogger("repro.obs")


class Span:
    """One timed operation; usable as a context manager.

    A span always measures its duration (monotonic clock).  It reports
    itself to its tracer only when the tracer is enabled; a span with
    ``tracer=None`` (the worker-process case) just times and can be
    serialized with :meth:`to_record` for the parent to absorb.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "start_unix",
        "_t0",
        "duration",
        "_tracer",
        "_recording",
    )

    def __init__(
        self,
        name: str,
        attrs: dict | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.name = name
        self.attrs = attrs or {}
        self._tracer = tracer
        self._recording = tracer is not None and tracer.enabled
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.start_unix: float | None = None
        self.duration: float | None = None
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach or update attributes (cheap; skipped when not recording
        unless the span is tracerless, whose record may still be shipped)."""
        if self._recording or self._tracer is None:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        if self._recording:
            t = self._tracer
            self.span_id = t._next_id()
            self.parent_id = t._current_span_id()
            t._push(self)
            self.start_unix = time.time()
        elif self._tracer is None:
            self.start_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._t0
        if self._recording:
            t = self._tracer
            t._pop(self)
            if exc_type is not None:
                self.attrs.setdefault("error", exc_type.__name__)
            t._record(self.to_record())

    def to_record(self) -> dict:
        """The JSONL object for this (finished) span."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration": self.duration,
            "pid": os.getpid(),
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans, events, counters and gauges for one process.

    Parameters
    ----------
    enabled:
        A disabled tracer is the no-op fast path: spans still time
        themselves (derived statistics need the durations) but nothing
        is buffered and no ids are allocated.
    service:
        Free-form label written into the trace's ``meta`` record.
    """

    def __init__(self, *, enabled: bool = True, service: str = "repro") -> None:
        self.enabled = enabled
        self.service = service
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._id = 0
        self._local = threading.local()
        self.created_unix = time.time()

    # -- span bookkeeping (called by Span) -------------------------------

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _current_span_id(self) -> int | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - mis-nested exit
            stack.remove(span)

    def _record(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    # -- public API ------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """A new span under the current one (context manager)."""
        return Span(name, attrs=attrs or None, tracer=self)

    def event(self, name: str, **attrs) -> None:
        """An instantaneous occurrence (cache hit, shard retry, ...)."""
        if not self.enabled:
            return
        self._record(
            {
                "type": "event",
                "name": name,
                "time_unix": time.time(),
                "span_id": self._current_span_id(),
                "pid": os.getpid(),
                "attrs": attrs,
            }
        )

    def add(self, counter: str, value: float = 1) -> None:
        """Increment a named counter (aggregated, flushed at export)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge to its latest value."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def absorb(self, records: Iterable[Mapping] | None, **attrs) -> None:
        """Merge records produced in another process into this trace.

        Foreign span ids are remapped into this tracer's id space
        (preserving the foreign parent/child structure); root foreign
        spans are re-parented under the currently active span, and every
        absorbed record gains ``attrs`` (typically the shard id).
        """
        if not self.enabled or not records:
            return
        records = list(records)
        id_map: dict[int, int] = {}
        for rec in records:
            old = rec.get("span_id")
            if isinstance(old, int):
                id_map[old] = self._next_id()
        parent_here = self._current_span_id()
        for rec in records:
            out = dict(rec)
            old = out.get("span_id")
            if isinstance(old, int):
                out["span_id"] = id_map[old]
            elif out.get("type") == "span":
                out["span_id"] = self._next_id()
            old_parent = out.get("parent_id")
            if isinstance(old_parent, int) and old_parent in id_map:
                out["parent_id"] = id_map[old_parent]
            else:
                out["parent_id"] = parent_here
            merged = dict(out.get("attrs") or {})
            merged.update(attrs)
            out["attrs"] = merged
            self._record(out)

    # -- export ----------------------------------------------------------

    def records(self) -> list[dict]:
        """Snapshot of all records, counters/gauges rendered last."""
        with self._lock:
            out = list(self._records)
            out.extend(
                {"type": "counter", "name": k, "value": v}
                for k, v in sorted(self._counters.items())
            )
            out.extend(
                {"type": "gauge", "name": k, "value": v}
                for k, v in sorted(self._gauges.items())
            )
        return out

    def meta_record(self) -> dict:
        return {
            "type": "meta",
            "schema": TRACE_SCHEMA_VERSION,
            "service": self.service,
            "pid": os.getpid(),
            "created_unix": self.created_unix,
        }

    def write_jsonl(self, path: str | os.PathLike) -> int:
        """Append the whole trace to ``path`` as JSON lines.

        The buffer is rendered first and written with a single
        ``write`` on an append-mode handle, so concurrent writers to a
        shared file interleave at line granularity, never inside one.
        Returns the number of records written (meta line included).
        """
        records = [self.meta_record(), *self.records()]
        blob = "".join(json.dumps(r, separators=(",", ":")) + "\n" for r in records)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(blob)
        return len(records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._counters.clear()
            self._gauges.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return f"Tracer({self.service!r}, {state}, records={len(self._records)})"


# -- global tracer -----------------------------------------------------------

#: The process-wide tracer.  Disabled by default: library users opt in
#: via :func:`configure` / :func:`trace_session`, the CLI via --trace.
_GLOBAL = Tracer(enabled=False)
_GLOBAL_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled unless configured)."""
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns the old one."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        old, _GLOBAL = _GLOBAL, tracer
    return old


def configure_logging(level: str | int | None) -> None:
    """Configure the ``repro`` logger hierarchy (stderr handler).

    ``None`` leaves logging untouched.  Accepts standard level names
    (``DEBUG`` ... ``CRITICAL``, case-insensitive) or numeric levels.
    """
    if level is None:
        return
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(level)


def configure(
    *, trace: bool = True, log_level: str | int | None = None,
    service: str = "repro",
) -> Tracer:
    """Enable (or disable) tracing process-wide; returns the tracer."""
    configure_logging(log_level)
    tracer = Tracer(enabled=trace, service=service)
    set_tracer(tracer)
    return tracer


class trace_session:
    """Context manager: enable tracing, write JSONL on exit, restore.

    >>> with trace_session("run.jsonl"):            # doctest: +SKIP
    ...     explore_schedule(algo, space, jobs=4)

    ``path=None`` still enables in-memory tracing (records accessible
    via the yielded tracer) without writing a file.
    """

    def __init__(
        self,
        path: str | os.PathLike | None,
        *,
        log_level: str | int | None = None,
        service: str = "repro",
    ) -> None:
        self.path = path
        self.log_level = log_level
        self.service = service
        self.tracer: Tracer | None = None
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        configure_logging(self.log_level)
        self.tracer = Tracer(enabled=True, service=self.service)
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc) -> None:
        assert self.tracer is not None
        set_tracer(self._previous)
        if self.path is not None:
            written = self.tracer.write_jsonl(self.path)
            logger.info("wrote %d trace records to %s", written, self.path)
