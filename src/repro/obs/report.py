"""Render a JSONL trace into a per-phase wall-time breakdown.

``repro obs report trace.jsonl`` answers the question the trace exists
for: *where did the time go?*  Spans are grouped by name into phases;
for each phase the report shows call count, total/mean/max duration,
and the share of the trace's wall time (the duration of the longest
root span — for a search trace that is the search's own
``wall_time``).  Events and counters are summarized below the table.
"""

from __future__ import annotations

import os
from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .schema import load_trace

__all__ = ["PhaseSummary", "phase_breakdown", "format_report", "report_file"]


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregated timing of all spans sharing one name."""

    name: str
    count: int
    total: float
    mean: float
    max: float
    share: float  # of the trace wall time, in [0, 1] (0 when unknown)


def _wall_time(spans: Sequence[dict]) -> float:
    """The trace's wall time: the longest root span's duration.

    Falls back to the longest span of any depth when every span has a
    parent (e.g. a partial trace).
    """
    roots = [s["duration"] for s in spans if s["parent_id"] is None]
    pool = roots or [s["duration"] for s in spans]
    return max(pool, default=0.0)


def phase_breakdown(records: Iterable[dict]) -> list[PhaseSummary]:
    """Per-phase aggregation, sorted by total duration descending."""
    spans = [r for r in records if r.get("type") == "span"]
    wall = _wall_time(spans)
    groups: dict[str, list[float]] = defaultdict(list)
    for s in spans:
        groups[s["name"]].append(s["duration"])
    out = [
        PhaseSummary(
            name=name,
            count=len(durs),
            total=sum(durs),
            mean=sum(durs) / len(durs),
            max=max(durs),
            share=(sum(durs) / wall) if wall > 0 else 0.0,
        )
        for name, durs in groups.items()
    ]
    out.sort(key=lambda p: (-p.total, p.name))
    return out


def format_report(records: Sequence[dict], *, top: int | None = None) -> str:
    """Human-readable report over validated trace records."""
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    counters = [r for r in records if r.get("type") in ("counter", "gauge")]
    metas = [r for r in records if r.get("type") == "meta"]

    lines: list[str] = []
    wall = _wall_time(spans)
    pids = sorted({r.get("pid") for r in records if "pid" in r})
    lines.append(
        f"trace: {len(spans)} spans, {len(events)} events, "
        f"{len(metas)} process(es) exporting, pids seen: {len(pids)}"
    )
    lines.append(f"wall time (longest root span): {wall:.4f}s")
    lines.append("")

    phases = phase_breakdown(records)
    if top is not None:
        phases = phases[:top]
    if phases:
        name_w = max(len(p.name) for p in phases)
        name_w = max(name_w, len("phase"))
        header = (
            f"{'phase':{name_w}}  {'count':>6}  {'total s':>9}  "
            f"{'mean s':>9}  {'max s':>9}  {'share':>6}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for p in phases:
            lines.append(
                f"{p.name:{name_w}}  {p.count:>6}  {p.total:>9.4f}  "
                f"{p.mean:>9.4f}  {p.max:>9.4f}  {p.share:>6.1%}"
            )
    else:
        lines.append("no spans recorded")

    if events:
        lines.append("")
        lines.append("events:")
        counts: dict[str, int] = defaultdict(int)
        for e in events:
            counts[e["name"]] += 1
        for name in sorted(counts, key=lambda n: (-counts[n], n)):
            lines.append(f"  {name}: {counts[name]}")

    if counters:
        lines.append("")
        lines.append("counters/gauges:")
        for c in sorted(counters, key=lambda c: c["name"]):
            value = c["value"]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {c['name']}: {rendered}")

    return "\n".join(lines)


def report_file(path: str | os.PathLike, *, top: int | None = None) -> str:
    """Validate ``path`` and render its report (raises on invalid traces)."""
    return format_report(load_trace(path), top=top)
