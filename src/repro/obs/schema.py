"""JSONL trace schema: record shapes and a stdlib-only validator.

A trace file is a sequence of JSON objects, one per line.  Every record
has a ``type`` discriminator; the shapes are:

``meta``
    ``{"type": "meta", "schema": int, "service": str, "pid": int,
    "created_unix": float}`` — written first by every exporting
    process.  A file holding several appended traces holds several
    meta lines; each introduces a new process's records.
``span``
    ``{"type": "span", "name": str, "span_id": int, "parent_id":
    int | null, "start_unix": float | null, "duration": float,
    "pid": int, "attrs": object}`` — a finished timed operation.
    ``parent_id`` is ``null`` for root spans.
``event``
    ``{"type": "event", "name": str, "time_unix": float, "span_id":
    int | null, "pid": int, "attrs": object}`` — instantaneous.
``counter`` / ``gauge``
    ``{"type": "counter" | "gauge", "name": str, "value": number}``
    — aggregated totals / last-set values, flushed at export.

The validator is deliberately dependency-free (no ``jsonschema``): it
reports *all* problems it finds, each as a human-readable string
prefixed with the 1-based line number.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable

from .tracer import TRACE_SCHEMA_VERSION

__all__ = [
    "validate_record",
    "validate_lines",
    "validate_trace_file",
    "load_trace",
]

_NUMBER = (int, float)

#: field name -> (types, required); ``None`` in types permits JSON null.
_SHAPES: dict[str, dict[str, tuple[tuple, bool]]] = {
    "meta": {
        "schema": ((int,), True),
        "service": ((str,), True),
        "pid": ((int,), True),
        "created_unix": (_NUMBER, True),
    },
    "span": {
        "name": ((str,), True),
        "span_id": ((int,), True),
        "parent_id": ((int, type(None)), True),
        "start_unix": (_NUMBER + (type(None),), True),
        "duration": (_NUMBER, True),
        "pid": ((int,), True),
        "attrs": ((dict,), True),
    },
    "event": {
        "name": ((str,), True),
        "time_unix": (_NUMBER, True),
        "span_id": ((int, type(None)), True),
        "pid": ((int,), True),
        "attrs": ((dict,), True),
    },
    "counter": {
        "name": ((str,), True),
        "value": (_NUMBER, True),
    },
    "gauge": {
        "name": ((str,), True),
        "value": (_NUMBER, True),
    },
}


def validate_record(record: object) -> list[str]:
    """All schema problems of one decoded record (empty when valid)."""
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    rtype = record.get("type")
    if rtype not in _SHAPES:
        return [f"unknown record type {rtype!r}"]
    problems = []
    shape = _SHAPES[rtype]
    for field, (types, required) in shape.items():
        if field not in record:
            if required:
                problems.append(f"{rtype} record missing field {field!r}")
            continue
        value = record[field]
        if not isinstance(value, types):
            # bool is an int subclass; never a valid numeric field.
            problems.append(
                f"{rtype}.{field} is {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
        elif isinstance(value, bool) and bool not in types:
            problems.append(f"{rtype}.{field} is bool, expected number")
    if rtype == "span" and isinstance(record.get("duration"), _NUMBER):
        if not isinstance(record["duration"], bool) and record["duration"] < 0:
            problems.append("span.duration is negative")
    if rtype == "meta" and record.get("schema") != TRACE_SCHEMA_VERSION:
        problems.append(
            f"meta.schema is {record.get('schema')!r}, "
            f"this reader understands {TRACE_SCHEMA_VERSION}"
        )
    return problems


def validate_lines(lines: Iterable[str]) -> tuple[list[dict], list[str]]:
    """Decode and validate JSONL content.

    Returns ``(records, errors)``: every decodable, schema-valid record
    plus a list of human-readable problems.  Cross-record checks: the
    stream must open with a ``meta`` line, and every span's
    ``parent_id`` must reference a span defined in the stream.
    """
    records: list[dict] = []
    errors: list[str] = []
    span_ids: set[int] = set()
    parent_refs: list[tuple[int, int]] = []
    first_type: str | None = None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not JSON ({exc.msg})")
            continue
        problems = validate_record(obj)
        if problems:
            errors.extend(f"line {lineno}: {p}" for p in problems)
            continue
        if first_type is None:
            first_type = obj["type"]
        if obj["type"] == "span":
            span_ids.add(obj["span_id"])
            if obj["parent_id"] is not None:
                parent_refs.append((lineno, obj["parent_id"]))
        records.append(obj)
    if first_type is not None and first_type != "meta":
        errors.append("line 1: trace does not start with a meta record")
    for lineno, parent in parent_refs:
        if parent not in span_ids:
            errors.append(
                f"line {lineno}: span parent_id {parent} "
                "references no span in this trace"
            )
    return records, errors


def validate_trace_file(path: str | os.PathLike) -> tuple[list[dict], list[str]]:
    """:func:`validate_lines` over a file on disk."""
    with open(path, encoding="utf-8") as fh:
        return validate_lines(fh)


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Records of a schema-valid trace file; raises on any problem."""
    records, errors = validate_trace_file(path)
    if errors:
        raise ValueError(
            f"invalid trace {os.fspath(path)!r}: " + "; ".join(errors[:5])
            + (f" (+{len(errors) - 5} more)" if len(errors) > 5 else "")
        )
    return records
