#!/usr/bin/env python3
"""The paper's motivating application: a 5-D bit-level algorithm on a 2-D array.

Section 1 motivates the whole theory with bit-level processor arrays
(GAPP, DAP, MPP, the Connection Machine): "many bit level algorithms
are four or five dimensional ... and most existing bit level processor
arrays are 2-dimensional."  This maps the 5-D bit-level matrix
multiplication onto a 2-D array, i.e. finds a conflict-free
``T in Z^{3 x 5}`` — exactly the shape Theorem 4.7 (co-rank 2) and
Proposition 8.1 address, and the shape of formulation (5.5)-(5.6).

The script:

1. builds the 5-D bit-level matmul ``(J, D)`` with word size ``w``;
2. runs Procedure 5.1 with Theorem 4.7 as the conflict checker to find
   the time-optimal conflict-free schedule for a 2-D space mapping
   normalized per Proposition 8.1;
3. evaluates Proposition 8.1's closed-form multiplier columns for the
   winner and confirms they generate the same conflict lattice as the
   generic Hermite computation;
4. cross-validates Theorem 4.7's verdict against the exact kernel-box
   oracle and simulates the mapped 2-D array.

Run:  python examples/bitlevel_matmul_2d.py [mu] [word_bits]
"""

import sys

from repro import MappingMatrix, bit_level_matrix_multiplication
from repro.core import (
    check_conflict_free,
    conflict_generators,
    is_conflict_free_kernel_box,
    procedure_5_1,
    prop81_columns,
    theorem_4_7,
)
from repro.systolic import plan_interconnection, simulate_mapping

MU = int(sys.argv[1]) if len(sys.argv) > 1 else 2
WORD = int(sys.argv[2]) if len(sys.argv) > 2 else 2

# A 2-D space mapping satisfying Prop 8.1's normalizations
# (s11 = 1, s22 - s21*s12 = 1): word-level row -> array row (plus a bit
# index), word-level column -> array column (plus the other bit index).
SPACE = [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]]


def main() -> None:
    algo = bit_level_matrix_multiplication(MU, WORD)
    print(f"algorithm: {algo.name}  (n={algo.n}, |J|={len(algo.index_set)})")
    print(f"index bounds mu = {algo.mu}")
    print(f"space mapping S = {SPACE}  -> 2-D array, T in Z^(3x5), co-rank 2")

    result = procedure_5_1(algo, SPACE, method="auto")
    assert result.found, "no conflict-free schedule found"
    pi = result.schedule.pi
    print(f"\ntime-optimal schedule Pi° = {list(pi)}")
    print(f"total time t = {result.total_time} cycles "
          f"({result.candidates_examined} candidates examined)")

    mapping = MappingMatrix(space=tuple(map(tuple, SPACE)), schedule=pi)

    # Theorem 4.7's verdict with witnesses.
    verdict = theorem_4_7(mapping, algo.mu)
    print(f"\nTheorem 4.7 verdict: conflict-free = {verdict.holds}")
    print(f"  sign-pattern rows: {verdict.witnesses['sign_patterns']}")

    # Exact oracle agreement.
    exact = is_conflict_free_kernel_box(mapping, algo.mu)
    print(f"exact kernel-box oracle: conflict-free = {exact}")
    assert verdict.holds == exact or exact  # sufficiency always holds

    # Proposition 8.1's closed-form columns vs the generic HNF kernel.
    prop = prop81_columns(SPACE, pi)
    print(f"\nProposition 8.1: u4 = {list(prop.u4)}, u5 = {list(prop.u5)}")
    print(f"  h = {prop.h}, gcds g = {prop.g}")
    hnf_gens = conflict_generators(mapping)
    print(f"generic HNF generators: {hnf_gens}")

    # Behavioral check: 2-D nearest-neighbor array simulation.
    plan = plan_interconnection(algo, mapping)
    report = simulate_mapping(algo, mapping, plan=plan)
    assert report.ok, "simulation found conflicts/collisions!"
    print(f"\nsimulated 2-D array: {report.num_processors} PEs "
          f"(extent {report.array.extent()}), makespan={report.makespan}, "
          f"buffers per channel={plan.buffers}")
    print(f"computational conflicts: {len(report.conflicts)}  "
          f"link collisions: {len(report.link_collisions)}")

    # For contrast: a naive schedule that IS conflicted.
    naive = mapping.with_schedule([1, 1, 1, 1, 1])
    naive_free = check_conflict_free(naive, algo.mu, method="exact")
    print(f"\nnaive Pi = [1,1,1,1,1] conflict-free? {naive_free.holds} "
          "(two bit-computations would share a PE-cycle)")


if __name__ == "__main__":
    main()
