#!/usr/bin/env python3
"""Quickstart: map 3-D matrix multiplication onto a linear systolic array.

Reproduces the paper's Example 5.1 end to end:

1. build the matmul algorithm ``(J, D)`` for 5x5 matrices (``mu = 4``);
2. find the time-optimal conflict-free schedule for the space mapping
   ``S = [1, 1, -1]`` — the paper's ``Pi° = [1, mu, 1]`` with total
   execution time ``t = mu(mu + 2) + 1 = 25`` cycles;
3. plan the interconnection (Figure 2: three data links, three buffers
   on the ``A`` link);
4. simulate the array cycle by cycle, verifying zero conflicts, zero
   link collisions, and a numerically exact product;
5. print the space-time execution table (Figure 3).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    MappingMatrix,
    find_time_optimal_mapping,
    matrix_multiplication,
    plan_interconnection,
    simulate_mapping,
)
from repro.systolic import render_array_diagram, render_space_time, verify_matmul

MU = 4


def main() -> None:
    rng = np.random.default_rng(42)
    a = rng.integers(0, 10, (MU + 1, MU + 1))
    b = rng.integers(0, 10, (MU + 1, MU + 1))
    algo = matrix_multiplication(MU, a=a, b=b)

    print(f"algorithm: {algo.name}  (n={algo.n}, m={algo.m}, |J|={len(algo.index_set)})")
    print(f"dependence vectors: {algo.dependence_vectors()}")

    # --- step 2: the optimal schedule ------------------------------------
    result = find_time_optimal_mapping(algo, space=[[1, 1, -1]])
    print(f"\noptimal schedule Pi° = {list(result.schedule.pi)}")
    print(f"total execution time t = {result.total_time}  "
          f"(closed form mu(mu+2)+1 = {MU * (MU + 2) + 1})")
    print(f"solver: {result.solver}, stats: {result.stats}")
    print(f"conflict generators: {result.analysis.generators}")

    # --- step 3: array design (Figure 2) ----------------------------------
    mapping: MappingMatrix = result.mapping
    plan = plan_interconnection(algo, mapping)
    print("\nFigure 2 — array block diagram:")
    print(render_array_diagram(mapping, plan, channel_names=["B", "A", "C"],
                               num_processors=7))
    print(f"buffers per channel (B, A, C): {plan.buffers}")

    # --- step 4: cycle-accurate simulation --------------------------------
    report = simulate_mapping(algo, mapping)
    assert report.ok, "simulation found conflicts or collisions!"
    print(f"\nsimulation: makespan={report.makespan} cycles on "
          f"{report.num_processors} PEs, utilization={report.utilization:.2%}")
    ok, simulated, reference = verify_matmul(report.values, a, b)
    print(f"C == A @ B exactly: {ok}")

    # --- step 5: the space-time table (Figure 3) ---------------------------
    print("\nFigure 3 — space-time execution table (rows=PE, cols=cycle):")
    print(render_space_time(algo, mapping))


if __name__ == "__main__":
    main()
