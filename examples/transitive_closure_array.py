#!/usr/bin/env python3
"""Example 5.2: time-optimal mapping of the reindexed transitive closure.

The paper's second quantitative result: with space mapping
``S = [0, 0, 1]`` the optimal schedule is ``Pi° = [mu+1, 1, 1]`` giving
total time ``t = mu(mu+3) + 1`` — improving the ``Pi' = [2mu+1, 1, 1]``
schedule of ref [22] (``t' = mu(2mu+3) + 1``) by an asymptotic factor
of 2.

This script derives the optimum by both solution routes (Procedure 5.1
search and the ILP partition), confirms the paper's conflict vector
``gamma = [1, -(mu+1), 0]``, simulates the mapped linear array, and
shows the word-level computation the array performs (Warshall closure)
on a random digraph.

Run:  python examples/transitive_closure_array.py [mu]
"""

import sys

import numpy as np

from repro import MappingMatrix, transitive_closure
from repro.core import (
    conflict_vector_corank1,
    procedure_5_1,
    solve_corank1_optimal,
    transitive_closure_baseline_ref22,
)
from repro.systolic import (
    plan_interconnection,
    reference_transitive_closure,
    simulate_mapping,
)

MU = int(sys.argv[1]) if len(sys.argv) > 1 else 4
SPACE = [[0, 0, 1]]


def main() -> None:
    algo = transitive_closure(MU)
    print(f"algorithm: {algo.name}")
    print("dependence matrix D (Equation 3.6):")
    for row in algo.dependence_matrix:
        print("   ", list(row))

    # Route 1: Procedure 5.1.
    search = procedure_5_1(algo, SPACE)
    print(f"\nProcedure 5.1: Pi° = {list(search.schedule.pi)}, "
          f"t = {search.total_time} "
          f"(examined {search.candidates_examined} candidates)")

    # Route 2: the ILP partition (formulation 5.4 / appendix 8.2).
    ilp = solve_corank1_optimal(algo, SPACE)
    print(f"ILP partition:  Pi° = {list(ilp.schedule.pi)}, t = {ilp.total_time} "
          f"({ilp.subproblems} convex subproblems)")
    assert search.total_time == ilp.total_time

    expected_t = MU * (MU + 3) + 1
    print(f"closed form mu(mu+3)+1 = {expected_t}")

    # The paper's conflict vector for the winning mapping.
    gamma = conflict_vector_corank1(ilp.mapping)
    print(f"conflict vector gamma = {gamma}   (paper: [1, -(mu+1), 0])")

    # Baseline comparison (ref [22]).
    baseline = transitive_closure_baseline_ref22(MU)
    print(f"\nbaseline [22]: Pi' = {list(baseline.mapping.schedule)}, "
          f"t' = {baseline.total_time} (closed form mu(2mu+3)+1 = "
          f"{MU * (2 * MU + 3) + 1})")
    print(f"speedup over [22]: {baseline.total_time / ilp.total_time:.3f}x")

    # Behavioral check on the simulated linear array.
    plan = plan_interconnection(algo, ilp.mapping)
    report = simulate_mapping(algo, ilp.mapping, plan=plan)
    assert report.ok, "simulation found conflicts or collisions!"
    print(f"\nsimulated: makespan={report.makespan} on {report.num_processors} PEs; "
          f"conflicts={len(report.conflicts)}, collisions={len(report.link_collisions)}")
    print(f"interconnection P = S D = "
          f"{[list(c) for c in zip(*plan.primitives)] if plan.primitives else []}; "
          f"buffers = {plan.buffers}")

    # What the array computes at word level: Warshall closure.
    rng = np.random.default_rng(7)
    adj = rng.random((MU + 1, MU + 1)) < 0.3
    np.fill_diagonal(adj, True)
    closure = reference_transitive_closure(adj)
    print(f"\nreference transitive closure of a random {MU + 1}-node digraph:")
    print(closure.astype(int))


if __name__ == "__main__":
    main()
