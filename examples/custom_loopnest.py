#!/usr/bin/env python3
"""From source loop nest to running array: the front-end workflow.

The paper's Definition 2.1 connects uniform dependence algorithms to
single-statement nested loops; the RAB tool it motivates (Section 1)
analyzed C loops automatically.  This example walks that pipeline for a
1-D convolution written as a loop nest:

    for i in 0..samples:
        for k in 0..taps:
            y[i] = y[i] + w[k] * x[i - k]

1. declare the nest and its accesses;
2. extract ``(J, D)`` — the self-dependence on ``y`` plus pipelining
   directions for the input streams ``w`` and ``x`` (uniformization);
3. map onto a linear array with ``S = [1, 0]`` (one PE per output) and
   the time-optimal conflict-free schedule;
4. simulate and verify the filter output numerically.

Run:  python examples/custom_loopnest.py
"""

import numpy as np

from repro import Access, LoopNest, convolution_1d
from repro.core import find_time_optimal_mapping
from repro.systolic import simulate_mapping, verify_convolution

TAPS = 3
SAMPLES = 8


def main() -> None:
    # --- step 1-2: front-end extraction ------------------------------------
    # In the source, y[i] on the right-hand side names the value written
    # by the previous k iteration; after single-assignment expansion the
    # statement reads y[i, k-1] and writes y[i, k] — the standard
    # uniformization preprocessing the paper cites ([14], [24]).
    nest = LoopNest(indices=("i", "k"), bounds=(SAMPLES, TAPS), name="fir")
    algo_structure = nest.uniformize(
        output=Access("y", ("i", "k"), variable_is_output=True),
        reads=(
            Access("y", ("i", "k-1")),
            Access("x", ("i-k",)),
            Access("w", ("k",)),
        ),
        name="fir-extracted",
    )
    print(f"extracted dependence vectors: {algo_structure.dependence_vectors()}")

    # The library constructor produces the same structure plus semantics.
    rng = np.random.default_rng(3)
    w = rng.integers(-5, 6, TAPS + 1)
    x = rng.integers(-5, 6, SAMPLES + TAPS + 1)
    algo = convolution_1d(TAPS, SAMPLES, weights=w, signal=x)
    assert algo.dependence_vectors() == algo_structure.dependence_vectors()
    print("library constructor agrees with the front-end extraction")

    # --- step 3: optimal mapping -------------------------------------------
    result = find_time_optimal_mapping(algo, space=[[1, 0]])
    print(f"\noptimal schedule Pi° = {list(result.schedule.pi)}, "
          f"t = {result.total_time} cycles")
    print(f"conflict generators: {result.analysis.generators}")

    # --- step 4: simulate and verify -----------------------------------------
    report = simulate_mapping(algo, result.mapping)
    assert report.ok
    ok, sim, ref = verify_convolution(report.values, w, x, TAPS, SAMPLES)
    print(f"\nsimulated on {report.num_processors} PEs, makespan={report.makespan}")
    print(f"filter output y = {sim.tolist()}")
    print(f"matches direct evaluation: {ok}")


if __name__ == "__main__":
    main()
