#!/usr/bin/env python3
"""Anatomy of a conflict: Figure 1, Example 2.1 and the Hermite machinery.

A tour of the paper's theory on its own illustrative examples:

* Figure 1 — in a 2-D index set with ``mu = (4, 4)``, the vector
  ``[1, 1]`` connects lattice points (non-feasible: computations would
  collide) while ``[3, 5]`` escapes the box (feasible);
* Example 2.1 / 4.1 — the 4-D mapping ``T = [[1,7,1,1],[1,7,1,0]]``
  has feasible generators yet is NOT conflict-free: the rational
  combination ``1/7 gamma_1 + 1/7 gamma_2 = [1, 0, -1, 0]`` is an
  integral non-feasible conflict vector;
* Example 4.2 — the Hermite normal form fixes this blind spot: the
  multiplier's kernel columns generate *all* conflict vectors with
  integral coefficients only;
* the necessary conditions (Theorems 4.3, 4.4) and the exact oracle on
  the same mapping.

Run:  python examples/conflict_anatomy.py
"""

from repro import ConstantBoundedIndexSet, MappingMatrix
from repro.core import (
    analyze_conflicts,
    conflict_generators,
    find_conflict_witness,
    is_conflict_free_kernel_box,
    is_feasible_conflict_vector,
    theorem_4_3,
    theorem_4_4,
)
from repro.intlin import hnf
from repro.systolic import render_index_set_2d


def figure_1() -> None:
    print("=" * 70)
    print("Figure 1 — feasible vs non-feasible conflict vectors (mu = (4,4))")
    print("=" * 70)
    j = ConstantBoundedIndexSet((4, 4))
    gammas = [(1, 1), (3, 5)]
    print(render_index_set_2d(j, gammas))
    for gamma in gammas:
        feasible = is_feasible_conflict_vector(gamma, j.mu)
        hits = j.admits_translation(gamma)
        print(f"  gamma = {gamma}: feasible={feasible}, "
              f"connects index points={hits}")


def example_2_1() -> None:
    print()
    print("=" * 70)
    print("Examples 2.1 / 4.1 / 4.2 — the 4-D mapping T = [[1,7,1,1],[1,7,1,0]]")
    print("=" * 70)
    t = MappingMatrix.from_rows([[1, 7, 1, 1], [1, 7, 1, 0]])
    j = ConstantBoundedIndexSet((6, 6, 6, 6))

    # The naive independent solutions of Example 4.1.
    gamma1 = (0, 1, -7, 0)
    gamma2 = (7, -1, 0, 0)
    print(f"gamma_1 = {gamma1}: feasible = "
          f"{is_feasible_conflict_vector(gamma1, j.mu)}")
    print(f"gamma_2 = {gamma2}: feasible = "
          f"{is_feasible_conflict_vector(gamma2, j.mu)}")
    combo = tuple((a + b) // 7 for a, b in zip(gamma1, gamma2))
    print(f"but 1/7 gamma_1 + 1/7 gamma_2 = {combo}: feasible = "
          f"{is_feasible_conflict_vector(combo, j.mu)}  <- the trap")

    # Example 4.2: the Hermite normal form closes the gap.
    res = hnf(t.rows())
    print(f"\nHermite normal form H = {res.h}")
    print(f"multiplier U = {res.u}")
    gens = conflict_generators(t)
    print(f"kernel generators (all conflict vectors = integral combos): {gens}")

    print(f"\nTheorem 4.3 (necessary, on V): holds = {theorem_4_3(t).holds}")
    t44 = theorem_4_4(t, j.mu)
    print(f"Theorem 4.4 (necessary, generators feasible): holds = {t44.holds}")
    print(f"exact kernel-box oracle: conflict-free = "
          f"{is_conflict_free_kernel_box(t, j.mu)}")

    witness = find_conflict_witness(t, j)
    print(f"colliding computations: {witness[0]} and {witness[1]}")
    print(f"  tau({witness[0]}) = {t.tau(witness[0])}")
    print(f"  tau({witness[1]}) = {t.tau(witness[1])}")

    analysis = analyze_conflicts(t, j)
    print(f"\nfull analysis: conflict_free={analysis.conflict_free}, "
          f"generator_feasible={analysis.generator_feasible}")


if __name__ == "__main__":
    figure_1()
    example_2_1()
