#!/usr/bin/env python3
"""Design handoff: from mapping theory to implementable artifacts.

Everything a hardware team needs once the mapping is chosen, generated
from one pipeline run:

1. the **Pareto frontier** of (time, PEs, wire, buffers) over the whole
   design space — pick a point, don't argue about weights;
2. the **conflict margin** of the chosen design — how much the problem
   size can grow before the schedule starts double-booking PEs;
3. the **I/O schedule** — which boundary port must receive which datum
   at which cycle (Figure 3's implicit skewing, explicit);
4. the **structural netlist** — PEs, FIFOs, channel wires — exported as
   JSON and Graphviz dot;
5. the **exact LU factorization** run on the resulting array as the
   functional sign-off test.

Run:  python examples/design_handoff.py
"""

import numpy as np

from repro.core import MappingMatrix, conflict_margin, pareto_frontier
from repro.model import lu_decomposition, matrix_multiplication
from repro.systolic import (
    build_netlist,
    derive_io_schedule,
    render_injection_profile,
    simulate_mapping,
    verify_lu,
)

MU = 2


def main() -> None:
    algo = matrix_multiplication(MU)

    # --- 1. the trade-off curve -------------------------------------------
    print("Pareto frontier over (t, PEs, wire, buffers):")
    front = pareto_frontier(algo)
    for d in front:
        c = d.cost
        print(f"  S={[list(r) for r in d.mapping.space]} "
              f"Pi={list(d.mapping.schedule)}  t={c.total_time} "
              f"PEs={c.processors} wire={c.wire_length} buffers={c.buffers}")

    # Choose the fastest point.
    chosen = min(front, key=lambda d: d.cost.total_time)
    mapping: MappingMatrix = chosen.mapping
    print(f"\nchosen design: S={[list(r) for r in mapping.space]}, "
          f"Pi={list(mapping.schedule)}")

    # --- 2. conflict margin --------------------------------------------------
    margin = conflict_margin(mapping, algo.mu)
    print(f"conflict margin: {margin} "
          f"(>1 means conflict-free; problem size can grow ~{float(margin):.2f}x)")

    # --- 3. the I/O schedule ---------------------------------------------------
    io = derive_io_schedule(algo, mapping)
    print(f"\nboundary events: {len(io.injections)} injections, "
          f"{len(io.drains)} drains; port conflicts: {len(io.port_conflicts())}")
    print(render_injection_profile(io, 1))

    # --- 4. the netlist ----------------------------------------------------------
    netlist = build_netlist(algo, mapping)
    pes = len(netlist.cells_of_kind("pe"))
    fifos = len(netlist.cells_of_kind("fifo"))
    print(f"\nnetlist: {pes} PEs, {fifos} FIFOs, {len(netlist.nets)} nets, "
          f"{len(netlist.boundary_ports)} boundary ports")
    dot = netlist.to_dot()
    print(f"graphviz dot: {len(dot.splitlines())} lines "
          f"(write netlist.to_dot() to a file and render with `dot -Tsvg`)")

    # --- 5. functional sign-off: LU on the same array shape -------------------
    rng = np.random.default_rng(1)
    a = rng.integers(-3, 4, (MU + 1, MU + 1)) + np.eye(MU + 1, dtype=int) * 10
    lu_algo = lu_decomposition(MU, a=a)
    report = simulate_mapping(lu_algo, mapping)
    ok, l_mat, u_mat = verify_lu(report.values, a)
    print(f"\nLU factorization on the chosen array: exact = {ok} "
          f"(makespan {report.makespan}, conflicts {len(report.conflicts)})")
    print("U diagonal:", [str(u_mat[i][i]) for i in range(MU + 1)])


if __name__ == "__main__":
    main()
