#!/usr/bin/env python3
"""Problems 6.1 & 6.2: design-space exploration beyond the paper.

Section 6 leaves two problems open; this reproduction implements both
and this example explores them for matrix multiplication:

1. **Problem 6.1** — fix the time-optimal schedule and search over all
   space mappings (entries in {-1, 0, 1}) for the conflict-free design
   minimizing processors + wire length.  Result: the paper's
   ``S = [1, 1, -1]`` (7 PEs at mu = 2) is NOT space-optimal — e.g.
   ``S = [0, 1, -1]`` achieves the same execution time on 5 PEs with
   less wire.
2. **Problem 6.2** — optimize schedule and space mapping jointly under
   a weighted time + area criterion, and show how the winner moves as
   the weights shift.

Run:  python examples/space_optimal_design.py [mu]
"""

import sys

from repro.core import solve_joint_optimal, solve_space_optimal, procedure_5_1
from repro.model import matrix_multiplication

MU = int(sys.argv[1]) if len(sys.argv) > 1 else 2


def problem_6_1() -> None:
    print("=" * 72)
    print(f"Problem 6.1 — space-optimal design for matmul (mu = {MU})")
    print("=" * 72)
    algo = matrix_multiplication(MU)

    # The time-optimal schedule for the paper's space mapping.
    schedule = procedure_5_1(algo, [[1, 1, -1]]).schedule.pi
    print(f"given schedule Pi = {list(schedule)}")

    result = solve_space_optimal(algo, schedule)
    print(f"candidates examined: {result.candidates_examined} "
          f"(conflicted: {result.rejected_conflicts})")
    print("\nranking (objective = processors + wire length):")
    for idx, design in enumerate(result.ranking[:6], start=1):
        c = design.cost
        marker = "  <- paper's S" if design.mapping.space == ((1, 1, -1),) else ""
        print(f"  #{idx}: S = {[list(r) for r in design.mapping.space]}  "
              f"PEs={c.processors:>2d} wire={c.wire_length:>3d} "
              f"buffers={c.buffers} t={c.total_time}  "
              f"obj={design.objective:g}{marker}")

    best = result.best
    paper = next(
        (d for d in result.ranking if d.mapping.space == ((1, 1, -1),)), None
    )
    if paper is not None:
        saved = paper.cost.processors - best.cost.processors
        print(f"\nbest design saves {saved} PEs over the paper's S "
              f"at identical execution time.")


def problem_6_2() -> None:
    print()
    print("=" * 72)
    print(f"Problem 6.2 — joint (S, Pi) optimization for matmul (mu = {MU})")
    print("=" * 72)
    algo = matrix_multiplication(MU)

    for tw, sw, label in ((1.0, 1.0, "balanced"),
                          (10.0, 1.0, "time-heavy"),
                          (1.0, 10.0, "area-heavy")):
        res = solve_joint_optimal(algo, time_weight=tw, space_weight=sw)
        best = res.best
        c = best.cost
        print(f"{label:>11s}: S = {[list(r) for r in best.mapping.space]}  "
              f"Pi = {list(best.mapping.schedule)}  "
              f"t={c.total_time} PEs={c.processors} wire={c.wire_length}")


if __name__ == "__main__":
    problem_6_1()
    problem_6_2()
