"""Unit tests for repro.model.library (the paper's algorithm zoo)."""

import numpy as np
import pytest

from repro.model import (
    bit_level_convolution,
    bit_level_matrix_multiplication,
    convolution_1d,
    example_2_1_algorithm,
    lu_decomposition,
    matrix_multiplication,
    transitive_closure,
)


class TestMatrixMultiplication:
    def test_structure_matches_equation_3_4(self):
        algo = matrix_multiplication(4)
        assert algo.n == 3
        assert algo.mu == (4, 4, 4)
        assert algo.dependence_vectors() == [(1, 0, 0), (0, 1, 0), (0, 0, 1)]

    def test_index_set_size(self):
        assert len(matrix_multiplication(2).index_set) == 27

    def test_no_semantics_without_data(self):
        assert matrix_multiplication(2).compute is None

    def test_semantics_with_data(self):
        a = np.arange(9).reshape(3, 3)
        b = np.arange(9).reshape(3, 3) + 1
        algo = matrix_multiplication(2, a=a, b=b)
        assert algo.compute is not None
        assert algo.inputs is not None

    def test_partial_data_rejected(self):
        with pytest.raises(ValueError, match="both"):
            matrix_multiplication(2, a=np.eye(3))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            matrix_multiplication(2, a=np.eye(4), b=np.eye(4))

    def test_semantics_compute_accumulates(self):
        a = np.full((3, 3), 2)
        b = np.full((3, 3), 3)
        algo = matrix_multiplication(2, a=a, b=b)
        # operands: (B-carrier, A-carrier, C-carrier) triples
        out = algo.compute((1, 1, 1), [(None, 3, None), (2, None, None), (None, None, 10)])
        assert out == (2, 3, 16)

    def test_inputs_boundary_values(self):
        a = np.arange(9).reshape(3, 3)
        b = np.arange(9).reshape(3, 3) * 10
        algo = matrix_multiplication(2, a=a, b=b)
        # d1 boundary at j1=0 injects B[j3, j2]
        assert algo.inputs((0, 1, 2), 0)[1] == b[2, 1]
        # d2 boundary at j2=0 injects A[j1, j3]
        assert algo.inputs((1, 0, 2), 1)[0] == a[1, 2]
        # d3 boundary at j3=0 starts C at 0
        assert algo.inputs((1, 2, 0), 2)[2] == 0


class TestTransitiveClosure:
    def test_structure_matches_equation_3_6(self):
        algo = transitive_closure(4)
        assert algo.n == 3
        assert algo.m == 5
        # D columns exactly as printed in the paper.
        assert algo.dependence_vectors() == [
            (0, 0, 1),
            (0, 1, 0),
            (1, -1, -1),
            (1, -1, 0),
            (1, 0, -1),
        ]

    def test_schedule_constraints_from_paper(self):
        """Example 5.2 derives pi_1 - pi_2 - pi_3 >= 1 etc. from Pi D > 0."""
        algo = transitive_closure(4)
        assert algo.is_acyclic_under((5, 1, 1))  # the optimal schedule
        assert algo.is_acyclic_under((9, 1, 1))  # the [22] baseline
        assert not algo.is_acyclic_under((1, 1, 1))  # violates d3
        assert not algo.is_acyclic_under((2, 1, 1))  # pi1-pi2-pi3 = 0


class TestConvolution:
    def test_structure(self):
        algo = convolution_1d(3, 8)
        assert algo.n == 2
        assert algo.mu == (8, 3)
        assert algo.dependence_vectors() == [(0, 1), (1, 1), (1, 0)]

    def test_semantics_requires_both(self):
        with pytest.raises(ValueError, match="both"):
            convolution_1d(3, 8, weights=np.ones(4))

    def test_weights_length_check(self):
        with pytest.raises(ValueError, match="weights"):
            convolution_1d(3, 8, weights=np.ones(2), signal=np.ones(20))

    def test_signal_length_check(self):
        with pytest.raises(ValueError, match="signal"):
            convolution_1d(3, 8, weights=np.ones(4), signal=np.ones(5))

    def test_compute_step(self):
        w = np.array([1, 2, 3, 4])
        x = np.arange(12)
        algo = convolution_1d(3, 8, weights=w, signal=x)
        out = algo.compute((1, 1), [(10, None, None), (None, 5, None), (None, None, 2)])
        assert out == (20, 5, 2)


class TestLU:
    def test_structure(self):
        algo = lu_decomposition(3)
        assert algo.n == 3
        assert algo.dependence_vectors() == [(1, 0, 0), (0, 1, 0), (0, 0, 1)]


class TestBitLevel:
    def test_bit_matmul_is_5d(self):
        algo = bit_level_matrix_multiplication(2, 3)
        assert algo.n == 5
        assert algo.m == 5
        assert algo.mu == (2, 2, 2, 3, 3)

    def test_bit_matmul_unit_dependences(self):
        algo = bit_level_matrix_multiplication(2, 2)
        deps = algo.dependence_vectors()
        assert len(deps) == 5
        for i, d in enumerate(deps):
            assert d[i] == 1 and sum(abs(x) for x in d) == 1

    def test_bit_matmul_word_bits_validated(self):
        with pytest.raises(ValueError):
            bit_level_matrix_multiplication(2, 0)

    def test_bit_convolution_is_4d(self):
        algo = bit_level_convolution(3, 8, 2)
        assert algo.n == 4
        assert algo.m == 4
        assert algo.mu == (8, 3, 2, 2)

    def test_bit_convolution_word_bits_validated(self):
        with pytest.raises(ValueError):
            bit_level_convolution(3, 8, 0)


class TestExample21:
    def test_matches_paper(self):
        algo = example_2_1_algorithm()
        assert algo.n == 4
        assert algo.mu == (6, 6, 6, 6)

    def test_custom_mu(self):
        assert example_2_1_algorithm(3).mu == (3, 3, 3, 3)


class TestConvolution2D:
    def test_structure(self):
        from repro.model import convolution_2d

        algo = convolution_2d(4, 4, 2, 2)
        assert algo.n == 4
        assert algo.m == 5
        assert algo.mu == (4, 4, 2, 2)

    def test_x_reuse_diagonals_annihilate_access(self):
        """d3, d4 must be invariant directions of x[i1-k1, i2-k2]."""
        from repro.model import convolution_2d

        algo = convolution_2d(4, 4, 2, 2)
        deps = algo.dependence_vectors()
        access = [[1, 0, -1, 0], [0, 1, 0, -1]]  # rows of the x access map
        invariant = [
            d for d in deps
            if all(sum(a * x for a, x in zip(row, d)) == 0 for row in access)
        ]
        assert (1, 0, 1, 0) in invariant
        assert (0, 1, 0, 1) in invariant

    def test_valid_schedule_exists(self):
        from repro.model import convolution_2d

        algo = convolution_2d(3, 3, 1, 1)
        assert algo.is_acyclic_under((1, 1, 1, 1))


class TestBitLevelLU:
    def test_structure(self):
        from repro.model import bit_level_lu_decomposition

        algo = bit_level_lu_decomposition(2, 2)
        assert algo.n == 5
        assert algo.m == 5
        assert algo.mu == (2, 2, 2, 2, 2)

    def test_word_bits_validated(self):
        from repro.model import bit_level_lu_decomposition

        import pytest as _pytest

        with _pytest.raises(ValueError):
            bit_level_lu_decomposition(2, 0)

    def test_mappable_to_2d(self):
        """The Section-4 claim: Theorem 4.7 handles bit-level LU."""
        from repro.core import procedure_5_1
        from repro.model import bit_level_lu_decomposition

        algo = bit_level_lu_decomposition(1, 1)
        res = procedure_5_1(algo, [[1, 0, 1, 0, 0], [0, 1, 0, 1, 0]])
        assert res.found
