"""Typed validation of untrusted algorithm/mapping specs.

Every rejection must be a :class:`SpecError` subclass with an
actionable message — never a bare crash three layers down — and every
legitimate spec in the library zoo must pass unchanged.
"""

import pytest

from repro.model import (
    SpecBoundsError,
    SpecDimensionError,
    SpecError,
    SpecLimits,
    SpecShapeError,
    SpecSizeError,
    matrix_multiplication,
    validate_algorithm,
    validate_algorithm_spec,
    validate_dependence_matrix,
    validate_mu,
    validate_space,
    validate_vector,
)


class TestMu:
    def test_valid_mu_round_trips_as_tuple(self):
        assert validate_mu([4, 4, 4]) == (4, 4, 4)
        assert validate_mu((6,)) == (6,)

    def test_empty_mu_is_dimension_error(self):
        with pytest.raises(SpecDimensionError):
            validate_mu(())

    def test_non_sequence_mu_is_shape_error(self):
        with pytest.raises(SpecShapeError):
            validate_mu(4)
        with pytest.raises(SpecShapeError):
            validate_mu("4,4,4")

    def test_non_positive_mu_is_bounds_error(self):
        with pytest.raises(SpecBoundsError, match="Assumption 2.1"):
            validate_mu([4, 0, 4])
        with pytest.raises(SpecBoundsError):
            validate_mu([-1])

    def test_bool_is_not_an_integer(self):
        # True == 1 numerically; a hardened front door rejects the
        # type confusion anyway.
        with pytest.raises(SpecShapeError, match="bool"):
            validate_mu([True, 2, 3])

    def test_oversized_mu_is_size_error(self):
        with pytest.raises(SpecSizeError, match="max_mu"):
            validate_mu([10**7])

    def test_index_set_cardinality_cap(self):
        # Each bound is legal but the product explodes.
        with pytest.raises(SpecSizeError, match="max_points"):
            validate_mu([10**5] * 3)

    def test_too_many_dimensions(self):
        with pytest.raises(SpecSizeError, match="max_dimensions"):
            validate_mu([2] * 17)

    def test_custom_limits_widen_the_caps(self):
        wide = SpecLimits(max_dimensions=32, max_points=10**15)
        assert len(validate_mu([1] * 20, wide)) == 20

    def test_limits_reject_nonpositive_caps(self):
        with pytest.raises(ValueError):
            SpecLimits(max_mu=0)


class TestDependenceMatrix:
    def test_identity_matrix_passes(self):
        d = [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        assert validate_dependence_matrix(d, 3) == ((1, 0, 0), (0, 1, 0), (0, 0, 1))

    def test_no_dependences_is_legal(self):
        assert validate_dependence_matrix([], 3) == ()

    def test_wrong_row_count_is_dimension_error(self):
        with pytest.raises(SpecDimensionError, match="one row per dimension"):
            validate_dependence_matrix([[1, 0], [0, 1]], 3)

    def test_ragged_matrix_is_shape_error(self):
        with pytest.raises(SpecShapeError, match="ragged"):
            validate_dependence_matrix([[1, 0], [0]], 2)

    def test_zero_dependence_column_is_shape_error(self):
        with pytest.raises(SpecShapeError, match="zero vector"):
            validate_dependence_matrix([[1, 0], [1, 0]], 2)

    def test_non_integer_entry_is_shape_error(self):
        with pytest.raises(SpecShapeError, match="integer"):
            validate_dependence_matrix([[1.5], [1]], 2)

    def test_huge_entry_is_size_error(self):
        with pytest.raises(SpecSizeError, match="max_abs_entry"):
            validate_dependence_matrix([[10**10], [1]], 2)

    def test_too_many_columns(self):
        wide = [[1] * 257, [1] * 257]
        with pytest.raises(SpecSizeError, match="max_dependences"):
            validate_dependence_matrix(wide, 2)


class TestVectorAndSpace:
    def test_vector_arity(self):
        assert validate_vector([1, 2, 2], 3, "pi") == (1, 2, 2)
        with pytest.raises(SpecDimensionError, match="n=3"):
            validate_vector([1, 2], 3, "pi")

    def test_vector_entry_cap(self):
        with pytest.raises(SpecSizeError):
            validate_vector([10**10, 0, 0], 3, "pi")

    def test_space_row_count_bounds(self):
        assert validate_space([[1, 1, -1]], 3) == ((1, 1, -1),)
        with pytest.raises(SpecDimensionError, match="no rows"):
            validate_space([], 3)
        with pytest.raises(SpecDimensionError, match="at most n-1"):
            validate_space([[1, 0, 0], [0, 1, 0], [0, 0, 1]], 3)

    def test_space_row_width_checked(self):
        with pytest.raises(SpecDimensionError, match="space row 1"):
            validate_space([[1, 0, 0], [0, 1]], 3)


class TestAlgorithmValidation:
    def test_library_algorithm_passes_and_returns_itself(self):
        algo = matrix_multiplication(4)
        assert validate_algorithm(algo) is algo

    def test_spec_dict_round_trips(self):
        spec = {"mu": [4, 4, 4],
                "dependence": [[1, 0, 0], [0, 1, 0], [0, 0, 1]],
                "name": "matmul"}
        assert validate_algorithm_spec(spec) is spec

    def test_spec_must_be_a_dict(self):
        with pytest.raises(SpecShapeError, match="dict"):
            validate_algorithm_spec([1, 2, 3])

    def test_spec_missing_keys(self):
        with pytest.raises(SpecShapeError, match="missing"):
            validate_algorithm_spec({"mu": [4]})

    def test_spec_name_must_be_string(self):
        with pytest.raises(SpecShapeError, match="name"):
            validate_algorithm_spec(
                {"mu": [4], "dependence": [[1]], "name": 7}
            )

    def test_spec_dependence_width_follows_mu(self):
        with pytest.raises(SpecDimensionError):
            validate_algorithm_spec(
                {"mu": [4, 4], "dependence": [[1], [0], [0]]}
            )

    def test_all_spec_errors_are_value_errors(self):
        # Callers that only catch ValueError keep working.
        for exc in (SpecDimensionError, SpecShapeError,
                    SpecBoundsError, SpecSizeError):
            assert issubclass(exc, SpecError)
            assert issubclass(exc, ValueError)


class TestFrontDoors:
    """The validators are wired into the public entry points."""

    def test_pipeline_rejects_bad_space_before_searching(self):
        from repro.core import find_time_optimal_mapping

        algo = matrix_multiplication(3)
        with pytest.raises(SpecDimensionError):
            find_time_optimal_mapping(algo, [[1, 1]])

    def test_explore_schedule_rejects_oversized_entries(self):
        from repro.dse import explore_schedule

        algo = matrix_multiplication(3)
        with pytest.raises(SpecSizeError):
            explore_schedule(algo, [[10**10, 1, -1]], jobs=1)

    def test_explore_space_rejects_bad_pi(self):
        from repro.dse import explore_space

        algo = matrix_multiplication(3)
        with pytest.raises(SpecDimensionError):
            explore_space(algo, [1, 2], jobs=1)

    def test_worker_payload_decoding_validates(self):
        from repro.dse.executor import _algorithm_from_spec

        with pytest.raises(SpecShapeError):
            _algorithm_from_spec({"mu": "not-a-sequence", "dependence": []})
