"""Unit tests for repro.model.loopnest (the (J, D) front-end)."""

import pytest

from repro.model import Access, LoopNest, SubscriptError, parse_affine
from repro.model.algorithm import DependenceError


class TestParseAffine:
    IDX = ("i", "j", "k")

    def test_single_index(self):
        assert parse_affine("i", self.IDX) == ({"i": 1}, 0)

    def test_index_minus_index(self):
        assert parse_affine("i - k", self.IDX) == ({"i": 1, "k": -1}, 0)

    def test_coefficient(self):
        assert parse_affine("2*i + j", self.IDX) == ({"i": 2, "j": 1}, 0)

    def test_constant_only(self):
        assert parse_affine("3", self.IDX) == ({}, 3)

    def test_mixed(self):
        assert parse_affine("i - k + 2", self.IDX) == ({"i": 1, "k": -1}, 2)

    def test_leading_minus(self):
        assert parse_affine("-i + j", self.IDX) == ({"i": -1, "j": 1}, 0)

    def test_repeated_index_accumulates(self):
        assert parse_affine("i + i", self.IDX) == ({"i": 2}, 0)

    def test_unknown_index_rejected(self):
        with pytest.raises(SubscriptError, match="unknown"):
            parse_affine("z", self.IDX)

    def test_garbage_rejected(self):
        with pytest.raises(SubscriptError):
            parse_affine("i *", self.IDX)

    def test_empty_rejected(self):
        with pytest.raises(SubscriptError):
            parse_affine("  ", self.IDX)


class TestAccessParsing:
    def test_simple(self):
        a = Access("v", ("i", "j-1", "k+2"))
        assert a.parsed() == [("i", 0), ("j", -1), ("k", 2)]

    def test_rejects_affine_in_strict_mode(self):
        a = Access("v", ("i-k",))
        with pytest.raises(SubscriptError):
            a.parsed()


class TestLoopNest:
    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            LoopNest(indices=("i", "i"), bounds=(2, 2))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LoopNest(indices=("i", "j"), bounds=(2,))

    def test_index_position(self):
        nest = LoopNest(indices=("i", "j"), bounds=(2, 2))
        assert nest.index_position("j") == 1
        with pytest.raises(SubscriptError):
            nest.index_position("z")


class TestSelfDependence:
    NEST = LoopNest(indices=("i", "j", "k"), bounds=(4, 4, 4))

    def test_basic(self):
        d = self.NEST.self_dependence(
            Access("v", ("i", "j", "k")), Access("v", ("i-1", "j", "k"))
        )
        assert d == (1, 0, 0)

    def test_multiple_offsets(self):
        d = self.NEST.self_dependence(
            Access("v", ("i", "j", "k")), Access("v", ("i-1", "j+2", "k"))
        )
        assert d == (1, -2, 0)

    def test_offset_on_write_side(self):
        d = self.NEST.self_dependence(
            Access("v", ("i+1", "j", "k")), Access("v", ("i", "j", "k-1"))
        )
        assert d == (1, 0, 1)

    def test_zero_vector_rejected(self):
        with pytest.raises(DependenceError, match="zero"):
            self.NEST.self_dependence(
                Access("v", ("i", "j", "k")), Access("v", ("i", "j", "k"))
            )

    def test_different_variables_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            self.NEST.self_dependence(
                Access("v", ("i", "j", "k")), Access("w", ("i-1", "j", "k"))
            )

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SubscriptError, match="rank"):
            self.NEST.self_dependence(
                Access("v", ("i", "j", "k")), Access("v", ("i", "j"))
            )

    def test_non_uniform_rejected(self):
        with pytest.raises(SubscriptError, match="non-uniform"):
            self.NEST.self_dependence(
                Access("v", ("i", "j", "k")), Access("v", ("j", "i", "k"))
            )

    def test_index_used_twice_rejected(self):
        with pytest.raises(SubscriptError, match="twice"):
            self.NEST.self_dependence(
                Access("v", ("i", "i", "k")), Access("v", ("i-1", "i", "k"))
            )


class TestInputStreams:
    NEST = LoopNest(indices=("j1", "j2", "j3"), bounds=(4, 4, 4))

    def test_matmul_a(self):
        # a[j1, j3] is invariant along j2.
        assert self.NEST.input_stream_direction(Access("a", ("j1", "j3"))) == (0, 1, 0)

    def test_matmul_b(self):
        assert self.NEST.input_stream_direction(Access("b", ("j3", "j2"))) == (1, 0, 0)

    def test_diagonal_reuse(self):
        nest = LoopNest(indices=("i", "k"), bounds=(4, 4))
        d = nest.input_stream_direction(Access("x", ("i-k",)))
        assert d in ((1, 1), (-1, -1))

    def test_injective_access_rejected(self):
        with pytest.raises(DependenceError, match="injective"):
            self.NEST.input_stream_direction(Access("a", ("j1", "j2", "j3")))

    def test_ambiguous_reuse_rejected(self):
        with pytest.raises(DependenceError, match="reuse space"):
            self.NEST.input_stream_direction(Access("a", ("j1",)))

    def test_scalar_rejected(self):
        with pytest.raises(SubscriptError, match="subscripts"):
            self.NEST.input_stream_direction(Access("a", ()))

    def test_duplicated_subscript_rows(self):
        # a[i, i] has dependent access rows; reuse space along (0, ..)?
        nest = LoopNest(indices=("i", "j"), bounds=(4, 4))
        d = nest.input_stream_direction(Access("a", ("i", "i")))
        assert d in ((0, 1), (0, -1))


class TestUniformize:
    def test_matmul_pipeline(self):
        nest = LoopNest(indices=("j1", "j2", "j3"), bounds=(4, 4, 4))
        algo = nest.uniformize(
            output=Access("c", ("j1", "j2", "j3"), variable_is_output=True),
            reads=(
                Access("c", ("j1", "j2", "j3-1")),
                Access("a", ("j1", "j3")),
                Access("b", ("j3", "j2")),
            ),
        )
        assert algo.dependence_vectors() == [(0, 0, 1), (0, 1, 0), (1, 0, 0)]
        assert algo.mu == (4, 4, 4)

    def test_output_offset_contributes(self):
        nest = LoopNest(indices=("j1", "j2", "j3"), bounds=(4, 4, 4))
        algo = nest.uniformize(
            output=Access("c", ("j1", "j2", "j3-1"), variable_is_output=True),
            reads=(Access("a", ("j1", "j3")), Access("b", ("j3", "j2"))),
        )
        assert (0, 0, 1) in algo.dependence_vectors()

    def test_convolution_matches_library(self):
        from repro.model import convolution_1d

        nest = LoopNest(indices=("i", "k"), bounds=(8, 3))
        algo = nest.uniformize(
            output=Access("y", ("i", "k"), variable_is_output=True),
            reads=(
                Access("y", ("i", "k-1")),
                Access("x", ("i-k",)),
                Access("w", ("k",)),
            ),
        )
        assert algo.dependence_vectors() == convolution_1d(3, 8).dependence_vectors()

    def test_no_dependences_rejected(self):
        nest = LoopNest(indices=("i", "j"), bounds=(2, 2))
        with pytest.raises(DependenceError, match="no dependence"):
            nest.uniformize(
                output=Access("v", ("i", "j"), variable_is_output=True),
                reads=(),
            )

    def test_named_result(self):
        nest = LoopNest(indices=("i", "j"), bounds=(2, 2))
        algo = nest.uniformize(
            output=Access("v", ("i", "j"), variable_is_output=True),
            reads=(Access("v", ("i-1", "j")),),
            name="custom",
        )
        assert algo.name == "custom"
