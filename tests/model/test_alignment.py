"""Unit tests for repro.model.alignment (multi-statement preprocessing)."""

import pytest

from repro.model import StatementDependence, align_statements
from repro.model.algorithm import DependenceError


class TestBasicAlignment:
    def test_zero_distance_dependence_fixed_by_offset(self):
        """S0 -> S1 at distance 0 needs an offset to become legal."""
        res = align_statements(
            2, 2, (4, 4),
            [
                StatementDependence(0, 1, (0, 0)),
                StatementDependence(1, 0, (1, 0)),
            ],
        )
        assert res.offsets[0] == (0, 0)
        for d in res.aligned_distances:
            # lexicographically positive
            first = next((x for x in d if x != 0), 0)
            assert first > 0

    def test_single_statement_passthrough(self):
        res = align_statements(
            1, 2, (3, 3), [StatementDependence(0, 0, (1, 0))]
        )
        assert res.offsets == ((0, 0),)
        assert res.aligned_distances == ((1, 0),)

    def test_already_legal_stays_put(self):
        """Legal dependences with zero offsets should keep offsets at 0
        (the minimal-length solution)."""
        res = align_statements(
            2, 2, (3, 3),
            [
                StatementDependence(0, 1, (1, 0)),
                StatementDependence(1, 0, (0, 1)),
            ],
        )
        assert res.offsets == ((0, 0), (0, 0))

    def test_minimizes_total_length(self):
        """Among legal offset choices the shortest distances win."""
        res = align_statements(
            2, 1, (5,),
            [
                StatementDependence(0, 1, (0,)),
                StatementDependence(1, 0, (2,)),
            ],
        )
        total = sum(sum(abs(x) for x in d) for d in res.aligned_distances)
        # distances (0 + o1, 2 - o1): o1 = 1 gives (1, 1), total 2.
        assert total == 2

    def test_fused_algorithm_usable_by_mapper(self):
        from repro.core import procedure_5_1

        res = align_statements(
            2, 3, (2, 2, 2),
            [
                StatementDependence(0, 1, (0, 0, 0)),
                StatementDependence(1, 0, (1, 0, 0)),
                StatementDependence(0, 0, (0, 1, 0)),
                StatementDependence(1, 1, (0, 0, 1)),
            ],
        )
        search = procedure_5_1(res.algorithm, [[1, 1, -1]])
        assert search.found

    def test_deduplication(self):
        res = align_statements(
            2, 2, (3, 3),
            [
                StatementDependence(0, 0, (1, 0)),
                StatementDependence(1, 1, (1, 0)),
            ],
        )
        assert res.algorithm.m == 1  # identical aligned distances merge
        assert len(res.aligned_distances) == 2


class TestValidation:
    def test_statement_index_range(self):
        with pytest.raises(ValueError, match="out of range"):
            align_statements(2, 2, (3, 3), [StatementDependence(0, 5, (1, 0))])

    def test_distance_arity(self):
        with pytest.raises(ValueError, match="arity"):
            align_statements(2, 2, (3, 3), [StatementDependence(0, 1, (1,))])

    def test_no_statements(self):
        with pytest.raises(ValueError, match="at least one"):
            align_statements(0, 2, (3, 3), [])

    def test_unalignable_cycle(self):
        """A zero-distance mutual dependence can never be aligned:
        o1 - o0 > 0 and o0 - o1 > 0 are contradictory."""
        with pytest.raises(DependenceError, match="no alignment"):
            align_statements(
                2, 1, (3,),
                [
                    StatementDependence(0, 1, (0,)),
                    StatementDependence(1, 0, (0,)),
                ],
            )

    def test_offset_bound_respected(self):
        """A dependence needing offset 11 fails within bound 4 but
        succeeds with a larger box.  (The cycle sum -10 + 12 = 2 leaves
        exactly the two-unit slack both directions need.)"""
        deps = [
            StatementDependence(0, 1, (-10,)),
            StatementDependence(1, 0, (12,)),
        ]
        with pytest.raises(DependenceError):
            align_statements(2, 1, (3,), deps)
        res = align_statements(2, 1, (3,), deps, offset_bound=12)
        assert res.offsets[1][0] == 11

    def test_cycle_sum_invariance_blocks_alignment(self):
        """Offsets cancel around a cycle: a cycle whose distance sum is
        too small can never be aligned no matter the bound."""
        deps = [
            StatementDependence(0, 1, (-10,)),
            StatementDependence(1, 0, (0,)),
        ]
        with pytest.raises(DependenceError):
            align_statements(2, 1, (3,), deps, offset_bound=20)
