"""Unit tests for repro.model.generators (fuzzing infrastructure)."""

import random

import pytest

from repro.model import random_algorithm, random_schedulable_algorithm


class TestRandomAlgorithm:
    def test_structure(self):
        rng = random.Random(1)
        algo = random_algorithm(rng, n=3, m=4)
        assert algo.n == 3
        assert algo.m == 4
        assert all(any(d) for d in algo.dependence_vectors())

    def test_deterministic(self):
        a = random_algorithm(random.Random(7))
        b = random_algorithm(random.Random(7))
        assert a.dependence_matrix == b.dependence_matrix
        assert a.mu == b.mu

    def test_distinct_columns(self):
        rng = random.Random(2)
        algo = random_algorithm(rng, n=2, m=5, magnitude=2)
        deps = algo.dependence_vectors()
        assert len(set(deps)) == len(deps)

    def test_magnitude_respected(self):
        rng = random.Random(3)
        algo = random_algorithm(rng, n=4, m=3, magnitude=1)
        for d in algo.dependence_vectors():
            assert all(abs(x) <= 1 for x in d)

    def test_mu_bound(self):
        rng = random.Random(4)
        algo = random_algorithm(rng, mu_max=2)
        assert all(1 <= m <= 2 for m in algo.mu)

    def test_impossible_request_raises(self):
        # More distinct columns than the entry box can hold.
        rng = random.Random(5)
        with pytest.raises(RuntimeError):
            random_algorithm(rng, n=1, m=10, magnitude=1)


class TestRandomSchedulable:
    def test_always_schedulable(self):
        from repro.core import optimal_free_schedule

        for seed in range(20):
            algo = random_schedulable_algorithm(random.Random(seed))
            res = optimal_free_schedule(algo)
            assert res.schedule.respects(algo)

    def test_deterministic(self):
        a = random_schedulable_algorithm(random.Random(9))
        b = random_schedulable_algorithm(random.Random(9))
        assert a.dependence_matrix == b.dependence_matrix

    def test_usable_in_full_pipeline(self):
        from repro.core import procedure_5_1

        algo = random_schedulable_algorithm(
            random.Random(11), n=3, m=3, mu_max=2
        )
        res = procedure_5_1(algo, [[1, 0, -1]], max_bound=80)
        # A mapping may or may not exist for this space row, but the
        # machinery must run cleanly either way.
        if res.found:
            assert res.mapping.respects_dependences(algo)

    def test_mixed_sign_columns_possible(self):
        found_negative = False
        for seed in range(30):
            algo = random_schedulable_algorithm(random.Random(seed), magnitude=2)
            if any(
                any(x < 0 for x in d) for d in algo.dependence_vectors()
            ):
                found_negative = True
                break
        assert found_negative  # not restricted to the positive orthant
