"""Unit tests for repro.model.algorithm (Definition 2.1)."""

import numpy as np
import pytest

from repro.model import (
    ConstantBoundedIndexSet,
    DependenceError,
    UniformDependenceAlgorithm,
)


def make(mu=(2, 2), deps=((1, 0), (0, 1))):
    """Helper: algorithm with D columns given as tuples."""
    dep_matrix = tuple(
        tuple(deps[c][r] for c in range(len(deps))) for r in range(len(mu))
    )
    return UniformDependenceAlgorithm(
        index_set=ConstantBoundedIndexSet(mu), dependence_matrix=dep_matrix
    )


class TestConstruction:
    def test_basic(self):
        algo = make()
        assert algo.n == 2
        assert algo.m == 2
        assert algo.mu == (2, 2)

    def test_dependence_vectors_roundtrip(self):
        algo = make(deps=((1, 0), (0, 1), (1, -1)))
        assert algo.dependence_vectors() == [(1, 0), (0, 1), (1, -1)]

    def test_dependence_array_shape(self):
        algo = make(deps=((1, 0), (0, 1), (1, -1)))
        arr = algo.dependence_array()
        assert arr.shape == (2, 3)
        assert arr[:, 2].tolist() == [1, -1]

    def test_no_dependences_allowed(self):
        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((2, 2)), dependence_matrix=()
        )
        assert algo.m == 0
        assert algo.dependence_vectors() == []
        assert algo.dependence_array().shape == (2, 0)

    def test_zero_dependence_rejected(self):
        with pytest.raises(DependenceError, match="zero vector"):
            make(deps=((1, 0), (0, 0)))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DependenceError, match="rows"):
            UniformDependenceAlgorithm(
                index_set=ConstantBoundedIndexSet((2, 2)),
                dependence_matrix=((1,), (0,), (0,)),
            )

    def test_non_integral_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            UniformDependenceAlgorithm(
                index_set=ConstantBoundedIndexSet((2, 2)),
                dependence_matrix=((0.5, 0), (0, 1)),
            )

    def test_numpy_input_normalized(self):
        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((2, 2)),
            dependence_matrix=np.array([[1, 0], [0, 1]]),
        )
        assert algo.dependence_matrix == ((1, 0), (0, 1))

    def test_validate_idempotent(self):
        algo = make()
        algo.validate()  # must not raise


class TestDependenceQueries:
    def test_predecessors_interior(self):
        algo = make(mu=(3, 3))
        preds = dict(algo.predecessors((2, 2)))
        assert preds == {0: (1, 2), 1: (2, 1)}

    def test_predecessors_boundary(self):
        algo = make(mu=(3, 3))
        assert dict(algo.predecessors((0, 0))) == {}

    def test_predecessors_partial_boundary(self):
        algo = make(mu=(3, 3))
        assert dict(algo.predecessors((0, 1))) == {1: (0, 0)}

    def test_is_acyclic_under_valid(self):
        algo = make()
        assert algo.is_acyclic_under((1, 1))

    def test_is_acyclic_under_invalid(self):
        algo = make()
        assert not algo.is_acyclic_under((1, 0))  # Pi d2 = 0 violates > 0
        assert not algo.is_acyclic_under((1, -1))

    def test_is_acyclic_under_mixed_deps(self):
        algo = make(deps=((1, -1), (0, 1)))
        assert algo.is_acyclic_under((2, 1))
        assert not algo.is_acyclic_under((1, 1))  # (1,1).(1,-1) = 0

    def test_acyclic_trivial_with_no_deps(self):
        algo = UniformDependenceAlgorithm(
            index_set=ConstantBoundedIndexSet((2, 2)), dependence_matrix=()
        )
        assert algo.is_acyclic_under((0, 0))


class TestSemanticsAttachment:
    def test_compute_attached_but_ignored_in_equality(self):
        a1 = make()
        a2 = UniformDependenceAlgorithm(
            index_set=a1.index_set,
            dependence_matrix=a1.dependence_matrix,
            compute=lambda j, ops: 0,
        )
        assert a1 == a2  # compute/inputs excluded from comparison

    def test_repr_is_informative(self):
        algo = make()
        assert "n=2" in repr(algo)
        assert "m=2" in repr(algo)
