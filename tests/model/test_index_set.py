"""Unit tests for repro.model.index_set (Equation 2.5)."""

import numpy as np
import pytest

from repro.model import ConstantBoundedIndexSet


class TestConstruction:
    def test_basic(self):
        j = ConstantBoundedIndexSet((4, 4))
        assert j.mu == (4, 4)
        assert j.dimension == 2

    def test_coerces_to_int(self):
        j = ConstantBoundedIndexSet((np.int64(3), 2))
        assert j.mu == (3, 2)
        assert all(isinstance(m, int) for m in j.mu)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConstantBoundedIndexSet(())

    def test_rejects_zero_bound(self):
        with pytest.raises(ValueError):
            ConstantBoundedIndexSet((4, 0))

    def test_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            ConstantBoundedIndexSet((-1,))

    def test_hashable_and_equal(self):
        assert ConstantBoundedIndexSet((2, 2)) == ConstantBoundedIndexSet((2, 2))
        assert hash(ConstantBoundedIndexSet((2, 2))) == hash(
            ConstantBoundedIndexSet((2, 2))
        )


class TestGeometry:
    def test_cardinality(self):
        assert len(ConstantBoundedIndexSet((4, 4))) == 25
        assert len(ConstantBoundedIndexSet((1, 2, 3))) == 2 * 3 * 4

    def test_membership(self):
        j = ConstantBoundedIndexSet((4, 4))
        assert (0, 0) in j
        assert (4, 4) in j
        assert (5, 0) not in j
        assert (0, -1) not in j

    def test_membership_wrong_arity(self):
        j = ConstantBoundedIndexSet((4, 4))
        assert (1, 2, 3) not in j

    def test_membership_nonint(self):
        j = ConstantBoundedIndexSet((4, 4))
        assert (0.5, 1) not in j

    def test_iteration_covers_all(self):
        j = ConstantBoundedIndexSet((2, 3))
        points = list(j)
        assert len(points) == len(set(points)) == len(j)
        assert all(p in j for p in points)

    def test_iteration_lexicographic(self):
        j = ConstantBoundedIndexSet((1, 1))
        assert list(j) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_points_array_matches_iteration(self):
        j = ConstantBoundedIndexSet((2, 2, 1))
        arr = j.points_array()
        assert arr.shape == (len(j), 3)
        assert set(map(tuple, arr.tolist())) == set(j)

    def test_contains_all_vectorized(self):
        j = ConstantBoundedIndexSet((3, 3))
        pts = np.array([[0, 0], [3, 3], [4, 0], [-1, 2]])
        assert j.contains_all(pts).tolist() == [True, True, False, False]

    def test_contains_all_shape_check(self):
        j = ConstantBoundedIndexSet((3, 3))
        with pytest.raises(ValueError):
            j.contains_all(np.array([[1, 2, 3]]))

    def test_corners(self):
        j = ConstantBoundedIndexSet((2, 5))
        assert set(j.corners()) == {(0, 0), (0, 5), (2, 0), (2, 5)}


class TestPaperHelpers:
    """Theorem 2.2's geometric content."""

    def test_figure1_nonfeasible_vector(self):
        j = ConstantBoundedIndexSet((4, 4))
        # gamma = [1, 1] connects (0,0) to (1,1): a witness exists.
        w = j.translate_witness((1, 1))
        assert w is not None
        assert w in j
        assert tuple(a + g for a, g in zip(w, (1, 1))) in j

    def test_figure1_feasible_vector(self):
        j = ConstantBoundedIndexSet((4, 4))
        # gamma = [3, 5]: |5| > 4 so no witness anywhere.
        assert j.translate_witness((3, 5)) is None
        assert not j.admits_translation((3, 5))

    def test_witness_negative_components(self):
        j = ConstantBoundedIndexSet((4, 4))
        w = j.translate_witness((-2, 3))
        assert w == (2, 0)
        assert tuple(a + g for a, g in zip(w, (-2, 3))) in j

    def test_witness_boundary_exact(self):
        j = ConstantBoundedIndexSet((4, 4))
        # |gamma_i| == mu_i is still inside (Theorem 2.2 is strict >).
        assert j.admits_translation((4, -4))
        assert not j.admits_translation((5, 0))

    def test_witness_arity_check(self):
        j = ConstantBoundedIndexSet((4, 4))
        with pytest.raises(ValueError):
            j.translate_witness((1, 2, 3))

    def test_exhaustive_equivalence_small(self):
        """admits_translation(gamma) iff brute force finds j, j+gamma in J."""
        j = ConstantBoundedIndexSet((2, 3))
        for g1 in range(-4, 5):
            for g2 in range(-5, 6):
                gamma = (g1, g2)
                brute = any(
                    tuple(a + g for a, g in zip(p, gamma)) in j for p in j
                )
                assert j.admits_translation(gamma) == brute

    def test_diameter_along(self):
        j = ConstantBoundedIndexSet((4, 4, 4))
        # Equation 2.6: sum |pi_i| mu_i.
        assert j.diameter_along((1, 4, 1)) == 24
        assert j.diameter_along((-1, 4, -1)) == 24
        assert j.diameter_along((0, 0, 0)) == 0

    def test_diameter_matches_bruteforce(self):
        j = ConstantBoundedIndexSet((2, 3))
        pi = (-2, 3)
        brute = max(
            sum(p * (a - b) for p, a, b in zip(pi, j1, j2))
            for j1 in j
            for j2 in j
        )
        assert j.diameter_along(pi) == brute

    def test_diameter_arity_check(self):
        with pytest.raises(ValueError):
            ConstantBoundedIndexSet((2, 2)).diameter_along((1,))
