"""Unit tests for repro.intlin.hermite (column HNF, Theorem 4.1)."""

import random

import pytest

from repro.intlin import (
    hnf,
    identity,
    kernel_basis,
    matmul,
    matvec,
    random_full_rank,
    verify_hermite,
)


class TestHnfBasics:
    def test_paper_equation_2_8(self):
        """The worked HNF of Example 4.2."""
        t = [[1, 7, 1, 1], [1, 7, 1, 0]]
        res = hnf(t)
        assert verify_hermite(t, res)
        assert res.rank == 2
        # H = [L | 0] with L lower triangular nonsingular.
        assert res.h[0][1:] == [0, 0, 0]
        assert res.h[1][2:] == [0, 0]
        assert res.h[0][0] != 0 and res.h[1][1] != 0

    def test_identity_input(self):
        res = hnf(identity(3))
        assert res.h == identity(3)
        assert res.u == identity(3)
        assert res.v == identity(3)

    def test_single_row(self):
        res = hnf([[6, 10, 15]])
        assert verify_hermite([[6, 10, 15]], res)
        assert res.h[0][0] == 1  # gcd(6,10,15) = 1
        assert res.h[0][1:] == [0, 0]

    def test_single_row_with_common_factor(self):
        res = hnf([[4, 6]])
        assert res.h[0] == [2, 0]

    def test_negative_entries(self):
        t = [[-3, 5, -7], [2, -4, 6]]
        res = hnf(t)
        assert verify_hermite(t, res)

    def test_pivot_positive(self):
        res = hnf([[-5, 0, 0]])
        assert res.h[0][0] > 0

    def test_rank_deficient_raises(self):
        with pytest.raises(ValueError, match="full row rank"):
            hnf([[1, 2, 3], [2, 4, 6]])

    def test_zero_row_raises(self):
        with pytest.raises(ValueError):
            hnf([[0, 0], [1, 2]])

    def test_k_greater_than_n_raises(self):
        with pytest.raises(ValueError, match="k <= n"):
            hnf([[1], [2]])

    def test_square_unimodular_tracks_inverse(self):
        t = [[2, 3], [1, 2]]  # det 1
        res = hnf(t)
        assert matmul(res.u, res.v) == identity(2)
        assert matmul(t, res.u) == res.h


class TestHnfInvariants:
    def test_random_matrices(self, rng):
        for _ in range(40):
            k = rng.randint(1, 4)
            n = rng.randint(k, 6)
            t = random_full_rank(k, n, rng=rng)
            res = hnf(t)
            assert verify_hermite(t, res)

    def test_multiplier_unimodular(self, rng):
        from repro.intlin import det_bareiss

        for _ in range(20):
            k = rng.randint(1, 3)
            n = rng.randint(k, 5)
            t = random_full_rank(k, n, rng=rng)
            res = hnf(t)
            assert det_bareiss(res.u) in (1, -1)

    def test_lower_block_property(self):
        t = [[3, 1, 4, 1], [5, 9, 2, 6]]
        res = hnf(t)
        low = res.lower_block
        assert len(low) == 2 and len(low[0]) == 2
        assert low[0][1] == 0  # strictly lower triangular above diagonal


class TestCanonical:
    def test_canonical_diagonal_positive(self, rng):
        for _ in range(20):
            k = rng.randint(1, 3)
            n = rng.randint(k, 5)
            t = random_full_rank(k, n, rng=rng)
            res = hnf(t, canonical=True)
            assert verify_hermite(t, res)
            for i in range(k):
                assert res.h[i][i] > 0

    def test_canonical_offdiagonal_reduced(self, rng):
        for _ in range(20):
            k = rng.randint(2, 4)
            n = rng.randint(k, 6)
            t = random_full_rank(k, n, rng=rng)
            res = hnf(t, canonical=True)
            for i in range(k):
                for j in range(i):
                    assert 0 <= res.h[i][j] < res.h[i][i]

    def test_canonical_is_unique(self, rng):
        """Canonical HNF is invariant under right-multiplying T by a
        unimodular matrix that fixes the row space... here we check the
        weaker, directly-testable property: recomputing from a column-
        permuted U-image gives the same canonical H."""
        from repro.intlin import random_unimodular

        for seed in range(8):
            local = random.Random(seed)
            t = random_full_rank(2, 4, rng=local)
            h1 = hnf(t, canonical=True).h
            u = random_unimodular(4, rng=local)
            t2 = matmul(t, u)
            h2 = hnf(t2, canonical=True).h
            assert h1 == h2


class TestKernelBasis:
    def test_kernel_annihilates(self, rng):
        for _ in range(30):
            k = rng.randint(1, 3)
            n = rng.randint(k + 1, 6)
            t = random_full_rank(k, n, rng=rng)
            basis = kernel_basis(t)
            assert len(basis) == n - k
            for vec in basis:
                assert all(x == 0 for x in matvec(t, vec))

    def test_kernel_columns_primitive(self, rng):
        from repro.intlin import gcd_list

        for _ in range(20):
            t = random_full_rank(2, 4, rng=rng)
            for vec in kernel_basis(t):
                assert gcd_list(vec) == 1

    def test_square_full_rank_trivial_kernel(self):
        assert kernel_basis([[1, 2], [3, 4]]) == []

    def test_saturation_example_4_1(self):
        """The paper's trap: [1,0,-1,0] must be an *integral* combination
        of the HNF generators (the naive basis required coefficients 1/7)."""
        from repro.intlin import solve_diophantine

        t = [[1, 7, 1, 1], [1, 7, 1, 0]]
        basis = kernel_basis(t)
        gen_matrix = [[col[i] for col in basis] for i in range(4)]
        sol = solve_diophantine(gen_matrix, [1, 0, -1, 0])
        assert sol is not None  # integral coefficients exist
