"""Unit tests for the IntMat/IntVec exact integer kernel.

Covers construction and validation, the value-type contract (equality,
hashing, immutability, pickling), and the checked int64 fast path with
automatic promotion to exact Python-int arithmetic.
"""

import pickle

import numpy as np
import pytest

from repro.intlin import INT64_MAX, IntMat, IntVec, as_intmat, as_intvec


class TestIntVecConstruction:
    def test_from_list_tuple_ndarray(self):
        assert IntVec([1, 2, 3]) == (1, 2, 3)
        assert IntVec((1, 2, 3)) == (1, 2, 3)
        assert IntVec(np.array([1, 2, 3])) == (1, 2, 3)

    def test_identity_passthrough(self):
        v = IntVec([1, 2])
        assert IntVec(v) is v
        assert as_intvec(v) is v

    def test_integral_floats_ok_nonintegral_rejected(self):
        assert IntVec([1.0, -2.0]) == (1, -2)
        with pytest.raises(ValueError):
            IntVec([1.5])

    def test_scalar_rejected(self):
        with pytest.raises(TypeError):
            IntVec(3)

    def test_nested_rejected(self):
        with pytest.raises(ValueError):
            IntVec([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            IntVec(np.eye(2, dtype=np.int64))

    def test_empty(self):
        assert IntVec(()) == ()
        assert len(IntVec([])) == 0


class TestIntVecValueType:
    def test_equals_tuple_list_ndarray(self):
        v = IntVec([1, -2, 3])
        assert v == (1, -2, 3)
        assert v == [1, -2, 3]
        assert v == np.array([1, -2, 3])
        assert v != (1, -2, 4)
        assert v != [1, -2]

    def test_hash_matches_tuple(self):
        v = IntVec([5, 7])
        assert hash(v) == hash((5, 7))
        assert v in {(5, 7)}

    def test_slicing_stays_intvec(self):
        v = IntVec([1, 2, 3, 4])
        assert isinstance(v[1:3], IntVec)
        assert v[1:3] == (2, 3)
        assert v[0] == 1  # scalar indexing stays a plain int

    def test_pickle_roundtrip(self):
        v = IntVec([1, 2**70, -3])
        w = pickle.loads(pickle.dumps(v))
        assert isinstance(w, IntVec)
        assert w == v and hash(w) == hash(v)

    def test_dot_and_max_abs(self):
        v = IntVec([2, -3])
        assert v.dot([4, 5]) == -7
        assert v.max_abs() == 3

    def test_to_int64_overflow(self):
        IntVec([INT64_MAX]).to_int64()  # fits
        with pytest.raises(OverflowError):
            IntVec([INT64_MAX + 1]).to_int64()


class TestIntMatConstruction:
    def test_from_rows_and_ndarray(self):
        m = IntMat([[1, 2], [3, 4]])
        assert m.shape == (2, 2)
        assert m == IntMat(np.array([[1, 2], [3, 4]]))

    def test_identity_passthrough(self):
        m = IntMat([[1, 2]])
        assert IntMat(m) is m
        assert as_intmat(m) is m

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            IntMat([[1, 2], [3]])

    def test_rejects_flat_sequence(self):
        with pytest.raises(ValueError):
            IntMat([1, 2, 3])

    def test_rejects_scalar(self):
        with pytest.raises((TypeError, ValueError)):
            IntMat(7)

    def test_empty(self):
        m = IntMat(())
        assert m.nrows == 0 and m.ncols == 0
        assert m.rows() == []

    def test_identity_and_zeros(self):
        assert IntMat.identity(2) == [[1, 0], [0, 1]]
        assert IntMat.zeros(2, 3) == [[0, 0, 0], [0, 0, 0]]


class TestIntMatValueType:
    def test_equality_and_hash(self):
        a = IntMat([[1, 2], [3, 4]])
        b = IntMat([[1, 2], [3, 4]])
        assert a == b and hash(a) == hash(b)
        assert hash(a) == hash(((1, 2), (3, 4)))
        assert a != IntMat([[1, 2], [3, 5]])

    def test_backend_flag_never_affects_equality(self):
        fast = IntMat([[1, 2], [3, 4]])
        exact = IntMat([[1, 2], [3, 4]], exact=True)
        assert fast == exact and hash(fast) == hash(exact)

    def test_usable_as_dict_key(self):
        d = {IntMat([[1, 0], [0, 1]]): "id"}
        assert d[IntMat.identity(2)] == "id"

    def test_immutable(self):
        m = IntMat([[1, 2], [3, 4]])
        with pytest.raises(TypeError):
            m[0][0] = 9
        assert m.arr is not None and not m.arr.flags.writeable

    def test_rows_returns_fresh_mutable_copies(self):
        m = IntMat([[1, 2], [3, 4]])
        rows = m.rows()
        rows[0][0] = 99
        assert m == [[1, 2], [3, 4]]

    def test_pickle_roundtrip(self):
        m = IntMat([[1, 2**70], [3, 4]])
        n = pickle.loads(pickle.dumps(m))
        assert isinstance(n, IntMat)
        assert n == m and hash(n) == hash(m)

    def test_digest_depends_on_shape_and_entries(self):
        flat = IntMat([[1, 2, 3, 4]])
        square = IntMat([[1, 2], [3, 4]])
        assert flat.digest() != square.digest()
        assert square.digest() == IntMat([[1, 2], [3, 4]]).digest()
        assert square.digest() != IntMat([[1, 2], [3, 5]]).digest()

    def test_repr_names_backend(self):
        assert "auto" in repr(IntMat([[1]]))
        assert "exact" in repr(IntMat([[1]], exact=True))


class TestBackends:
    def test_small_matrix_is_fast(self):
        assert IntMat([[1, 2], [3, 4]]).is_fast

    def test_huge_entries_force_exact(self):
        m = IntMat([[INT64_MAX + 1, 0], [0, 1]])
        assert not m.is_fast and m.arr is None
        with pytest.raises(OverflowError):
            m.to_int64()

    def test_exact_flag_disables_fast_path(self):
        m = IntMat([[1, 2], [3, 4]], exact=True)
        assert not m.is_fast and m.arr is None
        assert m.to_exact() is m

    def test_to_exact_preserves_value(self):
        m = IntMat([[1, 2], [3, 4]])
        assert m.to_exact() == m


class TestArithmetic:
    def test_mul_small(self):
        a = IntMat([[1, 2], [3, 4]])
        b = IntMat([[0, 1], [1, 0]])
        assert a.mul(b) == [[2, 1], [4, 3]]
        assert a @ b == a.mul(b)

    def test_mul_promotes_on_overflow(self):
        big = 2**40
        a = IntMat([[big, big], [big, -big]])
        expected = [
            [2 * big * big, 0],
            [0, 2 * big * big],
        ]
        assert a.mul(a).rows() == expected
        assert a.mul(a) == IntMat(a, exact=True).mul(IntMat(a, exact=True))

    def test_matvec(self):
        m = IntMat([[1, 2], [3, 4]])
        v = m.matvec([1, 1])
        assert isinstance(v, IntVec)
        assert v == (3, 7)
        assert m @ (1, 1) == (3, 7)

    def test_det_known_values(self):
        assert IntMat([[1, 2], [3, 4]]).det() == -2
        assert IntMat.identity(3).det() == 1
        assert IntMat([[0, 1], [1, 0]]).det() == -1
        assert IntMat(()).det() == 1

    def test_det_fast_equals_exact(self):
        rows = [[7, -3, 2], [4, 0, 5], [-6, 1, 8]]
        assert IntMat(rows).det() == IntMat(rows, exact=True).det()

    def test_det_huge_entries(self):
        big = 2**62
        m = IntMat([[big, 1], [1, 1]])
        assert m.det() == big - 1

    def test_adjugate_identity_property(self):
        rows = [[2, -1, 0], [3, 4, 1], [0, 5, -2]]
        m = IntMat(rows)
        d = m.det()
        assert m.mul(m.adjugate()) == [
            [d, 0, 0],
            [0, d, 0],
            [0, 0, d],
        ]
        assert m.adjugate() == IntMat(rows, exact=True).adjugate()

    def test_rank(self):
        assert IntMat([[1, 2], [2, 4]]).rank() == 1
        assert IntMat.identity(3).rank() == 3

    def test_minor_cofactor(self):
        m = IntMat([[1, 2], [3, 4]])
        assert m.minor(0, 0) == 4
        assert m.cofactor(0, 1) == -3

    def test_submatrix_drop_transpose(self):
        m = IntMat([[1, 2, 3], [4, 5, 6]])
        assert m.submatrix([1], [0, 2]) == [[4, 6]]
        assert m.drop(0, 1) == [[4, 6]]
        assert m.T == [[1, 4], [2, 5], [3, 6]]
        assert m.column(2) == (3, 6)


class TestImageOfPoints:
    def test_small_uses_int64(self):
        m = IntMat([[1, 0], [1, 1]])
        pts = np.array([[0, 0], [1, 2]])
        images = m.image_of_points(pts)
        assert images.dtype == np.int64
        assert images.tolist() == [[0, 0], [1, 3]]

    def test_huge_entries_promote_and_stay_exact(self):
        big = 2**62
        m = IntMat([[big, 0], [0, 1]])
        pts = np.array([[4, 0], [0, 0]])
        images = m.image_of_points(pts)
        assert images.dtype == object
        # int64 arithmetic would wrap 4 * 2**62 to 0, merging the rows.
        assert images[0][0] == 4 * big
        assert tuple(images[0]) != tuple(images[1])
