"""Unit tests for the batched candidate-stack operations.

The contract under test: every batch product is bit-identical to the
row-by-row exact computation, and only the rows (or columns) whose
int64 overflow bound cannot be certified are promoted to the exact
Python-int path — promotion counts are part of the API.
"""

import numpy as np
import pytest

from repro.intlin import (
    INT64_MAX,
    as_intmat,
    batch_dependence_mask,
    batch_matmul,
    batch_nonzero_mask,
    batch_point_images,
    batch_rows,
)

BIG = INT64_MAX // 2  # overflows any product bound, still fits int64


def exact_matmul(rows, mat):
    cols = as_intmat(mat).columns()
    return [
        [sum(int(a) * int(b) for a, b in zip(row, col)) for col in cols]
        for row in rows
    ]


class TestBatchRows:
    def test_lists_become_int64(self):
        arr = batch_rows([[1, 2], [3, 4]])
        assert arr.dtype == np.int64
        assert arr.shape == (2, 2)

    def test_oversized_entries_become_object(self):
        arr = batch_rows([[1, 2], [INT64_MAX + 1, 0]])
        assert arr.dtype == object
        assert arr[1][0] == INT64_MAX + 1

    def test_empty_stack(self):
        assert batch_rows([]).shape == (0, 0)

    def test_passes_integer_ndarray_through(self):
        a = np.array([[1, 2]], dtype=np.int64)
        assert batch_rows(a) is a

    def test_rejects_float_dtype(self):
        with pytest.raises(ValueError):
            batch_rows(np.array([[1.5]]))

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            batch_rows([[1, 2], [3]])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            batch_rows(np.array([1, 2, 3]))


class TestBatchMatmul:
    MAT = [[1, 2, 0], [0, -1, 3], [2, 0, 1]]

    def test_fast_path_matches_exact(self):
        rows = [[1, 2, 3], [-4, 0, 5], [0, 0, 0]]
        out, promoted = batch_matmul(rows, self.MAT)
        assert promoted == 0
        assert out.dtype == np.int64
        assert out.tolist() == exact_matmul(rows, self.MAT)

    def test_only_overflowing_rows_promote(self):
        rows = [[1, 2, 3], [BIG, BIG, BIG], [4, 5, 6]]
        out, promoted = batch_matmul(rows, self.MAT)
        assert promoted == 1
        assert out.dtype == object
        assert [list(r) for r in out] == exact_matmul(rows, self.MAT)

    def test_object_input_promotes_every_row(self):
        rows = [[INT64_MAX + 1, 0, 0], [1, 1, 1]]
        out, promoted = batch_matmul(rows, self.MAT)
        assert promoted == 2
        assert [list(r) for r in out] == exact_matmul(rows, self.MAT)

    def test_promotion_boundary_is_sharp(self):
        # Largest certified magnitude vs one past it: same exact values,
        # different backends; the results must agree bit-for-bit.
        mat = as_intmat(self.MAT)
        thr = INT64_MAX // (mat.max_abs() * mat.nrows)
        rows = [[thr, 0, 0], [thr + 1, 0, 0]]
        out, promoted = batch_matmul(rows, self.MAT)
        assert promoted == 1
        assert [list(r) for r in out] == exact_matmul(rows, self.MAT)

    def test_empty_stack(self):
        # An empty list normalizes to shape (0, 0), which cannot name a
        # width; an explicit (0, n) ndarray keeps it.
        out, promoted = batch_matmul(
            np.empty((0, 3), dtype=np.int64), self.MAT
        )
        assert out.shape == (0, 3) and promoted == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            batch_matmul([[1, 2]], self.MAT)


class TestBatchMasks:
    D = [[1, 0], [0, 1], [1, 1]]  # columns are dependence vectors

    def test_dependence_mask_matches_scalar_rule(self):
        pis = [[1, 1, 1], [1, -1, 0], [0, 0, 0]]
        mask, promoted = batch_dependence_mask(pis, self.D)
        # Pi D > 0 componentwise: [1,1,1] -> (1,1)+... strictly positive.
        expected = [
            all(s > 0 for s in row) for row in exact_matmul(pis, self.D)
        ]
        assert mask.tolist() == expected
        assert promoted == 0

    def test_dependence_mask_vacuous_without_columns(self):
        mask, _ = batch_dependence_mask(
            [[1, 2]], np.empty((2, 0), dtype=np.int64)
        )
        assert mask.tolist() == [True]

    def test_nonzero_mask(self):
        kernel = [[1], [0], [-1]]
        mask, _ = batch_nonzero_mask([[1, 5, 1], [2, 0, 1], [0, 7, 0]], kernel)
        assert mask.tolist() == [False, True, False]

    def test_nonzero_mask_empty_matrix_is_all_false(self):
        mask, _ = batch_nonzero_mask(
            [[1, 2]], np.empty((2, 0), dtype=np.int64)
        )
        assert mask.tolist() == [False]


class TestBatchPointImages:
    PTS = np.array([[0, 0], [1, 2], [3, 1]], dtype=np.int64)

    def test_matches_exact_images(self):
        vecs = [[1, 1], [2, -1]]
        images, promoted = batch_point_images(self.PTS, vecs)
        assert promoted == 0
        expected = [
            [sum(int(p) * v for p, v in zip(pt, vec)) for vec in vecs]
            for pt in self.PTS
        ]
        assert images.tolist() == expected

    def test_per_column_promotion(self):
        vecs = [[1, 1], [BIG, BIG]]
        images, promoted = batch_point_images(self.PTS, vecs)
        assert promoted == 1
        assert images.dtype == object
        assert images[1][1] == BIG + 2 * BIG  # exact, no wraparound
        assert images[1][0] == 3

    def test_object_points_promote_everything(self):
        pts = np.empty((1, 2), dtype=object)
        pts[0] = [INT64_MAX + 1, 0]
        images, promoted = batch_point_images(pts, [[1, 0]])
        assert promoted == 1
        assert images[0][0] == INT64_MAX + 1

    def test_empty_vector_stack(self):
        images, promoted = batch_point_images(
            self.PTS, np.empty((0, 2), dtype=np.int64)
        )
        assert images.shape == (3, 0) and promoted == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            batch_point_images(self.PTS, [[1, 2, 3]])
