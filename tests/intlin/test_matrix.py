"""Unit tests for repro.intlin.matrix (exact integer matrix ops)."""

import numpy as np
import pytest

from repro.intlin import (
    adjugate,
    as_int_matrix,
    as_int_vector,
    cofactor,
    det_bareiss,
    identity,
    inverse_unimodular,
    is_integer_matrix,
    matmul,
    matvec,
    minor,
    rank,
    to_array,
    transpose,
)


class TestConversion:
    def test_from_lists(self):
        assert as_int_matrix([[1, 2], [3, 4]]) == [[1, 2], [3, 4]]

    def test_from_numpy_int(self):
        m = as_int_matrix(np.array([[1, 2], [3, 4]], dtype=np.int32))
        assert m == [[1, 2], [3, 4]]
        assert all(isinstance(x, int) for row in m for x in row)

    def test_from_integral_floats(self):
        assert as_int_matrix([[2.0, -3.0]]) == [[2, -3]]

    def test_rejects_nonintegral_floats(self):
        with pytest.raises(ValueError):
            as_int_matrix([[1.5]])

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            as_int_matrix([[True, False]])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            as_int_matrix([1, 2, 3])

    def test_vector_conversion(self):
        assert as_int_vector(np.array([1, -2, 3])) == [1, -2, 3]

    def test_vector_rejects_2d(self):
        with pytest.raises(ValueError):
            as_int_vector([[1, 2]])

    def test_is_integer_matrix_predicate(self):
        assert is_integer_matrix([[1, 2]])
        assert not is_integer_matrix([[0.5]])
        assert not is_integer_matrix("nope")

    def test_to_array_roundtrip(self):
        arr = to_array([[1, -2], [3, 4]])
        assert arr.dtype == np.int64
        assert arr.tolist() == [[1, -2], [3, 4]]


class TestArithmetic:
    def test_identity(self):
        assert identity(3) == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_matmul(self):
        assert matmul([[1, 2], [3, 4]], [[5, 6], [7, 8]]) == [[19, 22], [43, 50]]

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            matmul([[1, 2]], [[1, 2]])

    def test_matmul_rectangular(self):
        assert matmul([[1, 0, 2]], [[1], [1], [1]]) == [[3]]

    def test_matvec(self):
        assert matvec([[1, 2], [3, 4]], [1, -1]) == [-1, -1]

    def test_matvec_shape_mismatch(self):
        with pytest.raises(ValueError):
            matvec([[1, 2]], [1, 2, 3])

    def test_transpose(self):
        assert transpose([[1, 2, 3], [4, 5, 6]]) == [[1, 4], [2, 5], [3, 6]]

    def test_transpose_empty(self):
        assert transpose([]) == []

    def test_huge_entries_exact(self):
        big = 10**30
        assert matmul([[big]], [[big]]) == [[big * big]]


class TestDeterminant:
    def test_2x2(self):
        assert det_bareiss([[1, 2], [3, 4]]) == -2

    def test_3x3(self):
        assert det_bareiss([[2, 0, 1], [1, 1, 0], [0, 3, 1]]) == 5

    def test_singular(self):
        assert det_bareiss([[1, 2], [2, 4]]) == 0

    def test_identity(self):
        assert det_bareiss(identity(5)) == 1

    def test_empty_is_one(self):
        assert det_bareiss([]) == 1

    def test_needs_square(self):
        with pytest.raises(ValueError):
            det_bareiss([[1, 2, 3], [4, 5, 6]])

    def test_pivot_swap_path(self):
        # Leading zero forces the row-swap branch.
        assert det_bareiss([[0, 1], [1, 0]]) == -1

    def test_zero_column_early_exit(self):
        assert det_bareiss([[0, 1, 2], [0, 3, 4], [0, 5, 6]]) == 0

    def test_matches_numpy_on_random(self, rng):
        for _ in range(25):
            n = rng.randint(1, 5)
            m = [[rng.randint(-6, 6) for _ in range(n)] for _ in range(n)]
            expected = round(np.linalg.det(np.array(m, dtype=float)))
            assert det_bareiss(m) == expected

    def test_large_exact_vs_float_overflow(self):
        # A matrix whose determinant would lose precision in float64.
        n = 9
        m = [[(i * 37 + j * 61 + 13) % 101 - 50 for j in range(n)] for i in range(n)]
        d = det_bareiss(m)
        # Validate via expansion consistency: det(2M) = 2^n det(M).
        m2 = [[2 * x for x in row] for row in m]
        assert det_bareiss(m2) == (2**n) * d


class TestRank:
    def test_full_rank(self):
        assert rank([[1, 0], [0, 1]]) == 2

    def test_deficient(self):
        assert rank([[1, 2], [2, 4]]) == 1

    def test_zero_matrix(self):
        assert rank([[0, 0], [0, 0]]) == 0

    def test_wide(self):
        assert rank([[1, 1, -1], [1, 4, 1]]) == 2

    def test_tall(self):
        assert rank([[1], [2], [3]]) == 1

    def test_matches_numpy_on_random(self, rng):
        for _ in range(25):
            rows = rng.randint(1, 5)
            cols = rng.randint(1, 5)
            m = [[rng.randint(-4, 4) for _ in range(cols)] for _ in range(rows)]
            assert rank(m) == np.linalg.matrix_rank(np.array(m, dtype=float))


class TestAdjugate:
    def test_2x2(self):
        assert adjugate([[1, 2], [3, 4]]) == [[4, -2], [-3, 1]]

    def test_defining_identity(self, rng):
        for _ in range(15):
            n = rng.randint(1, 4)
            m = [[rng.randint(-5, 5) for _ in range(n)] for _ in range(n)]
            d = det_bareiss(m)
            prod = matmul(m, adjugate(m))
            expected = [[d if i == j else 0 for j in range(n)] for i in range(n)]
            assert prod == expected

    def test_1x1(self):
        assert adjugate([[7]]) == [[1]]

    def test_empty(self):
        assert adjugate([]) == []

    def test_needs_square(self):
        with pytest.raises(ValueError):
            adjugate([[1, 2, 3]])

    def test_minor_and_cofactor(self):
        m = [[1, 2, 3], [4, 5, 6], [7, 8, 10]]
        assert minor(m, 0, 0) == 5 * 10 - 6 * 8
        assert cofactor(m, 0, 1) == -(4 * 10 - 6 * 7)


class TestInverseUnimodular:
    def test_simple(self):
        u = [[1, 1], [0, 1]]
        assert inverse_unimodular(u) == [[1, -1], [0, 1]]

    def test_det_minus_one(self):
        u = [[0, 1], [1, 0]]
        inv = inverse_unimodular(u)
        assert matmul(u, inv) == identity(2)

    def test_rejects_non_unimodular(self):
        with pytest.raises(ValueError):
            inverse_unimodular([[2, 0], [0, 1]])

    def test_random_unimodular_roundtrip(self, rng):
        from repro.intlin import random_unimodular

        for seed in range(10):
            import random as _random

            u = random_unimodular(4, rng=_random.Random(seed))
            assert matmul(u, inverse_unimodular(u)) == identity(4)
