"""Unit tests for repro.intlin.smith (Smith normal form)."""


from repro.intlin import (
    det_bareiss,
    matmul,
    smith_normal_form,
    verify_smith,
)
from repro.intlin.smith import SmithResult


class TestSmithBasics:
    def test_diagonal_already(self):
        res = smith_normal_form([[2, 0], [0, 6]])
        assert verify_smith([[2, 0], [0, 6]], res)
        assert res.invariants == (2, 6)

    def test_needs_divisibility_fix(self):
        # diag(2, 3) is not in Smith form; invariants must become (1, 6).
        res = smith_normal_form([[2, 0], [0, 3]])
        assert verify_smith([[2, 0], [0, 3]], res)
        assert res.invariants == (1, 6)

    def test_rectangular_wide(self):
        a = [[2, 4, 4]]
        res = smith_normal_form(a)
        assert verify_smith(a, res)
        assert res.invariants == (2,)

    def test_rectangular_tall(self):
        a = [[2], [4], [6]]
        res = smith_normal_form(a)
        assert verify_smith(a, res)
        assert res.invariants == (2,)

    def test_zero_matrix(self):
        a = [[0, 0], [0, 0]]
        res = smith_normal_form(a)
        assert verify_smith(a, res)
        assert res.invariants == ()
        assert res.rank == 0

    def test_classic_example(self):
        a = [[2, 4, 4], [-6, 6, 12], [10, 4, 16]]
        res = smith_normal_form(a)
        assert verify_smith(a, res)
        # |det| must equal the product of invariants.
        prod = 1
        for s in res.invariants:
            prod *= s
        assert prod == abs(det_bareiss(a))

    def test_invariants_positive(self, rng):
        for _ in range(20):
            rows = rng.randint(1, 4)
            cols = rng.randint(1, 4)
            a = [[rng.randint(-6, 6) for _ in range(cols)] for _ in range(rows)]
            res = smith_normal_form(a)
            assert all(s > 0 for s in res.invariants)

    def test_multipliers_unimodular(self, rng):
        for _ in range(20):
            rows = rng.randint(1, 4)
            cols = rng.randint(1, 4)
            a = [[rng.randint(-6, 6) for _ in range(cols)] for _ in range(rows)]
            res = smith_normal_form(a)
            assert det_bareiss(res.p) in (1, -1)
            assert det_bareiss(res.q) in (1, -1)

    def test_random_verify(self, rng):
        for _ in range(40):
            rows = rng.randint(1, 5)
            cols = rng.randint(1, 5)
            a = [[rng.randint(-9, 9) for _ in range(cols)] for _ in range(rows)]
            assert verify_smith(a, smith_normal_form(a))


class TestSmithStructure:
    def test_rank_matches_integer_rank(self, rng):
        from repro.intlin import rank

        for _ in range(25):
            rows = rng.randint(1, 4)
            cols = rng.randint(1, 5)
            a = [[rng.randint(-4, 4) for _ in range(cols)] for _ in range(rows)]
            assert smith_normal_form(a).rank == rank(a)

    def test_unimodular_input_all_ones(self):
        from repro.intlin import random_unimodular
        import random

        u = random_unimodular(4, rng=random.Random(5))
        res = smith_normal_form(u)
        assert res.invariants == (1, 1, 1, 1)

    def test_result_reconstructs_input(self, rng):
        from repro.intlin import inverse_unimodular

        a = [[rng.randint(-5, 5) for _ in range(3)] for _ in range(3)]
        res = smith_normal_form(a)
        p_inv = inverse_unimodular(res.p)
        q_inv = inverse_unimodular(res.q)
        assert matmul(matmul(p_inv, res.d), q_inv) == a

    def test_verify_rejects_tampered(self):
        a = [[2, 0], [0, 6]]
        res = smith_normal_form(a)
        bad = SmithResult(
            d=[[2, 1], [0, 6]], p=res.p, q=res.q, invariants=res.invariants
        )
        assert not verify_smith(a, bad)


class TestSmithKernelAgreement:
    def test_kernel_lattice_matches_hermite(self, rng):
        """The last columns of Q span the same kernel lattice as the HNF
        generators — each basis expresses the other integrally."""
        from repro.intlin import kernel_basis, random_full_rank, solve_diophantine

        for _ in range(10):
            k = rng.randint(1, 2)
            n = rng.randint(k + 1, 5)
            t = random_full_rank(k, n, rng=rng)
            hermite_gens = kernel_basis(t)
            snf = smith_normal_form(t)
            smith_gens = [
                [snf.q[i][j] for i in range(n)] for j in range(snf.rank, n)
            ]
            assert len(smith_gens) == len(hermite_gens)
            h_mat = [[col[i] for col in hermite_gens] for i in range(n)]
            s_mat = [[col[i] for col in smith_gens] for i in range(n)]
            for col in smith_gens:
                assert solve_diophantine(h_mat, col) is not None
            for col in hermite_gens:
                assert solve_diophantine(s_mat, col) is not None
