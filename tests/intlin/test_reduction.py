"""Unit tests for repro.intlin.reduction (exact LLL)."""

from fractions import Fraction

import pytest

from repro.intlin import lll_reduce, shortest_vector
from repro.intlin.lattice import Lattice


def as_lattice_cols(rows):
    """Row vectors -> Lattice (columns are generators)."""
    n = len(rows[0])
    return Lattice(basis=tuple(tuple(r[i] for r in rows) for i in range(n)))


class TestLLL:
    def test_classic_2d(self):
        reduced = lll_reduce([[201, 37], [1648, 297]])
        # The classic example reduces to short vectors.
        norms = sorted(sum(x * x for x in v) for v in reduced)
        assert norms[0] <= 1 + 32 * 32

    def test_same_lattice(self, rng):
        for _ in range(15):
            rows = [
                [rng.randint(-8, 8) for _ in range(3)] for _ in range(2)
            ]
            from repro.intlin import rank

            if rank(rows) != 2:
                continue
            reduced = lll_reduce(rows)
            assert as_lattice_cols(rows) == as_lattice_cols(reduced)

    def test_identity_stays(self):
        assert lll_reduce([[1, 0], [0, 1]]) == [[1, 0], [0, 1]]

    def test_empty(self):
        assert lll_reduce([]) == []

    def test_single_vector(self):
        assert lll_reduce([[3, 6, 9]]) == [[3, 6, 9]]

    def test_reduction_never_lengthens_shortest(self, rng):
        for _ in range(10):
            rows = [
                [rng.randint(-9, 9) for _ in range(3)] for _ in range(3)
            ]
            from repro.intlin import rank

            if rank(rows) != 3:
                continue
            reduced = lll_reduce(rows)
            orig_min = min(sum(x * x for x in v) for v in rows)
            red_min = min(sum(x * x for x in v) for v in reduced)
            assert red_min <= orig_min

    def test_custom_delta(self):
        reduced = lll_reduce([[201, 37], [1648, 297]], delta=Fraction(99, 100))
        assert len(reduced) == 2


class TestShortestVector:
    def test_obvious_case(self):
        v = shortest_vector([[1, 0], [0, 5]])
        assert sorted(abs(x) for x in v) == [0, 1]

    def test_hidden_short_vector(self):
        # Basis vectors are long, difference is short.
        v = shortest_vector([[7, 8], [8, 9]])  # difference (1, 1)
        assert sum(x * x for x in v) <= 2

    def test_norm_options(self):
        basis = [[3, 0], [1, 2]]
        for norm in ("l2", "l1", "linf"):
            v = shortest_vector(basis, norm=norm)
            assert any(v)

    def test_unknown_norm(self):
        with pytest.raises(ValueError):
            shortest_vector([[1, 0]], norm="l3")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            shortest_vector([])

    def test_result_in_lattice(self, rng):
        for _ in range(10):
            rows = [
                [rng.randint(-6, 6) for _ in range(3)] for _ in range(2)
            ]
            from repro.intlin import rank

            if rank(rows) != 2:
                continue
            v = shortest_vector(rows)
            assert as_lattice_cols(rows).contains(v)

    def test_exhaustive_cross_check_small(self, rng):
        """Against direct enumeration inside a generous box."""
        import itertools

        for _ in range(8):
            rows = [[rng.randint(-4, 4) for _ in range(2)] for _ in range(2)]
            from repro.intlin import rank

            if rank(rows) != 2:
                continue
            v = shortest_vector(rows)
            v_norm = sum(x * x for x in v)
            for z in itertools.product(range(-6, 7), repeat=2):
                if not any(z):
                    continue
                w = [
                    z[0] * rows[0][i] + z[1] * rows[1][i] for i in range(2)
                ]
                assert sum(x * x for x in w) >= v_norm


class TestConflictMargin:
    def test_example_5_1_margin(self):
        from repro.core import MappingMatrix, conflict_margin

        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        assert conflict_margin(t, (4, 4, 4)) == Fraction(5, 4)

    def test_margin_iff_conflict_free(self, rng):
        from repro.core import (
            MappingMatrix,
            conflict_margin,
            is_conflict_free_kernel_box,
        )
        from repro.intlin import random_full_rank

        mu = (3, 3, 3)
        for _ in range(25):
            rows = random_full_rank(2, 3, rng=rng, magnitude=4)
            t = MappingMatrix.from_rows(rows)
            margin = conflict_margin(t, mu)
            free = is_conflict_free_kernel_box(t, mu)
            assert (margin > 1) == free

    def test_margin_scales_with_mu(self):
        """Doubling mu halves the margin of the same mapping."""
        from repro.core import MappingMatrix, conflict_margin

        t = MappingMatrix(space=((1, 1, -1),), schedule=(1, 4, 1))
        m1 = conflict_margin(t, (4, 4, 4))
        m2 = conflict_margin(t, (8, 8, 8))
        assert m2 == m1 / 2

    def test_square_mapping_rejected(self):
        from repro.core import MappingMatrix, conflict_margin

        t = MappingMatrix(space=((1, 0),), schedule=(0, 1))
        with pytest.raises(ValueError):
            conflict_margin(t, (3, 3))
