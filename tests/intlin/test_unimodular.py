"""Unit tests for repro.intlin.unimodular."""

import random

import pytest

from repro.intlin import (
    det_bareiss,
    is_unimodular,
    random_full_rank,
    random_unimodular,
    rank,
)


class TestIsUnimodular:
    def test_identity(self):
        assert is_unimodular([[1, 0], [0, 1]])

    def test_swap(self):
        assert is_unimodular([[0, 1], [1, 0]])

    def test_shear(self):
        assert is_unimodular([[1, 5], [0, 1]])

    def test_det_two_rejected(self):
        assert not is_unimodular([[2, 0], [0, 1]])

    def test_non_square_rejected(self):
        assert not is_unimodular([[1, 0, 0], [0, 1, 0]])

    def test_non_integral_rejected(self):
        assert not is_unimodular([[0.5, 0], [0, 2]])

    def test_garbage_rejected(self):
        assert not is_unimodular("matrix")

    def test_empty_rejected(self):
        assert not is_unimodular([])


class TestRandomUnimodular:
    def test_always_unimodular(self):
        for seed in range(20):
            m = random_unimodular(4, rng=random.Random(seed))
            assert det_bareiss(m) in (1, -1)

    def test_deterministic_given_seed(self):
        a = random_unimodular(3, rng=random.Random(9))
        b = random_unimodular(3, rng=random.Random(9))
        assert a == b

    def test_various_sizes(self):
        for n in (1, 2, 5, 8):
            assert is_unimodular(random_unimodular(n, rng=random.Random(1)))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_unimodular(0)

    def test_steps_zero_gives_identity(self):
        from repro.intlin import identity

        assert random_unimodular(3, rng=random.Random(0), steps=0) == identity(3)

    def test_nontrivial_by_default(self):
        # With the default number of steps the result should (for this
        # seed) not be a signed permutation — i.e. mixing happened.
        m = random_unimodular(4, rng=random.Random(123))
        flat = [abs(x) for row in m for x in row]
        assert any(x > 1 for x in flat)


class TestRandomFullRank:
    def test_has_full_rank(self):
        for seed in range(15):
            local = random.Random(seed)
            k = local.randint(1, 3)
            n = local.randint(k, 6)
            m = random_full_rank(k, n, rng=local)
            assert rank(m) == k

    def test_shape(self):
        m = random_full_rank(2, 5, rng=random.Random(0))
        assert len(m) == 2 and len(m[0]) == 5

    def test_k_greater_than_n_rejected(self):
        with pytest.raises(ValueError):
            random_full_rank(3, 2)

    def test_magnitude_respected(self):
        m = random_full_rank(2, 4, rng=random.Random(0), magnitude=2)
        assert all(abs(x) <= 2 for row in m for x in row)
