"""Unit tests for repro.intlin.lattice."""

import pytest

from repro.intlin import kernel_basis
from repro.intlin.lattice import Lattice


def lat(*columns):
    """Lattice from column tuples."""
    n = len(columns[0])
    return Lattice(basis=tuple(tuple(c[i] for c in columns) for i in range(n)))


class TestConstruction:
    def test_basic(self):
        l = lat((1, 0), (0, 2))
        assert l.ambient_dimension == 2
        assert l.lattice_rank == 2

    def test_dependent_columns_rejected(self):
        with pytest.raises(ValueError, match="independent"):
            lat((1, 2), (2, 4))

    def test_from_generators_drops_dependent(self):
        l = Lattice.from_generators([(1, 2), (2, 4), (0, 1)])
        assert l.lattice_rank == 2

    def test_from_generators_empty_rejected(self):
        with pytest.raises(ValueError):
            Lattice.from_generators([])

    def test_kernel_of_mapping(self):
        l = Lattice.kernel_of([[1, 7, 1, 1], [1, 7, 1, 0]])
        assert l.ambient_dimension == 4
        assert l.lattice_rank == 2

    def test_kernel_of_square_rejected(self):
        with pytest.raises(ValueError, match="trivial"):
            Lattice.kernel_of([[1, 0], [0, 1]])


class TestMembership:
    L = lat((2, 0), (1, 3))

    def test_contains_generator(self):
        assert self.L.contains((2, 0))
        assert self.L.contains((1, 3))

    def test_contains_combination(self):
        assert self.L.contains((3, 3))  # sum of generators
        assert self.L.contains((0, 0))

    def test_not_contains(self):
        assert not self.L.contains((1, 0))
        assert not self.L.contains((0, 1))

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            self.L.contains((1, 2, 3))

    def test_saturated_kernel_contains_trap_vector(self):
        """Example 4.1's trap: [1,0,-1,0] IS in the kernel lattice."""
        l = Lattice.kernel_of([[1, 7, 1, 1], [1, 7, 1, 0]])
        assert l.contains((1, 0, -1, 0))


class TestEquality:
    def test_same_lattice_different_bases(self):
        a = lat((1, 0), (0, 1))
        b = lat((1, 1), (0, 1))  # unimodular transform of a
        assert a == b

    def test_different_lattices(self):
        a = lat((1, 0), (0, 1))
        b = lat((2, 0), (0, 1))
        assert a != b

    def test_kernel_vs_paper_generators(self):
        """Our HNF kernel equals the paper's Example 4.2 lattice."""
        ours = Lattice.kernel_of([[1, 7, 1, 1], [1, 7, 1, 0]])
        paper = Lattice.from_generators([(-1, 0, 1, 0), (-7, 1, 0, 0)])
        assert ours == paper

    def test_sublattice_not_equal(self):
        full = lat((1, 0), (0, 1))
        sub = lat((2, 0), (0, 2))
        assert full != sub
        assert full.contains_lattice(sub)
        assert not sub.contains_lattice(full)


class TestDeterminant:
    def test_full_rank(self):
        assert lat((2, 0), (0, 3)).determinant() == 6

    def test_unimodular_invariance(self):
        a = lat((2, 0), (1, 3))
        b = lat((2, 0), (3, 3))  # col2 += col1
        assert a == b
        assert a.determinant() == b.determinant()

    def test_index_full_rank(self):
        full = lat((1, 0), (0, 1))
        sub = lat((2, 0), (0, 3))
        assert sub.index_in(full) == 6

    def test_index_non_full_rank(self):
        line = lat((2, 4))
        double = lat((4, 8))
        assert double.index_in(line) == 2

    def test_index_requires_containment(self):
        a = lat((2, 0), (0, 1))
        b = lat((3, 0), (0, 1))
        with pytest.raises(ValueError, match="sublattice"):
            a.index_in(b)

    def test_index_requires_equal_rank(self):
        with pytest.raises(ValueError, match="rank"):
            lat((1, 0)).index_in(lat((1, 0), (0, 1)))


class TestBoxGeometry:
    def test_points_in_box_line(self):
        l = lat((2, 1))
        pts = set(l.points_in_box((4, 4)))
        assert pts == {(-4, -2), (-2, -1), (0, 0), (2, 1), (4, 2)}

    def test_meets_box_nontrivially(self):
        l = lat((3, 5))
        assert not l.meets_box_nontrivially((2, 4))
        assert l.meets_box_nontrivially((3, 5))

    def test_conflict_free_equivalence(self):
        """Lattice-meets-box == NOT conflict-free, both paper examples."""
        from repro.core import MappingMatrix, is_conflict_free_kernel_box

        cases = [
            ([[1, 1, -1], [1, 4, 1]], (4, 4, 4)),       # free
            ([[1, 1, -1], [1, 1, 4]], (4, 4, 4)),       # conflicted
            ([[1, 7, 1, 1], [1, 7, 1, 0]], (6, 6, 6, 6)),  # conflicted
        ]
        for rows, mu in cases:
            l = Lattice.kernel_of(rows)
            t = MappingMatrix.from_rows(rows)
            assert l.meets_box_nontrivially(mu) == (
                not is_conflict_free_kernel_box(t, mu)
            )

    def test_shortest_nonzero(self):
        l = lat((2, 1), (0, 5))
        shortest = l.shortest_nonzero_in_box((6, 6))
        assert shortest is not None
        assert l.contains(shortest)
        assert sum(abs(x) for x in shortest) == 3  # (2, 1)

    def test_shortest_none_when_escaping(self):
        l = lat((3, 5))
        assert l.shortest_nonzero_in_box((2, 4)) is None

    def test_box_dimension_check(self):
        with pytest.raises(ValueError):
            list(lat((1, 0)).points_in_box((1, 1, 1)))

    def test_origin_always_included(self):
        l = lat((7, 11))
        assert (0, 0) in set(l.points_in_box((1, 1)))


class TestCrossValidation:
    def test_kernel_lattices_agree_with_kernel_basis(self, rng):
        from repro.intlin import random_full_rank

        for _ in range(15):
            t = random_full_rank(2, 4, rng=rng, magnitude=4)
            l = Lattice.kernel_of(t)
            basis = kernel_basis(t)
            for col in basis:
                assert l.contains(col)
