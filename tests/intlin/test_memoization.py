"""Cached == uncached for the memoized normal-form kernels.

The design-space searches call the Hermite and Smith routines on the
same handful of matrices thousands of times; ``hnf_cached`` /
``smith_normal_form_cached`` memoize them keyed directly on the
hashable :class:`IntMat` value.  These tests pin the contracts that
make that safe: identical results on arbitrary inputs, key
equivalence across input spellings (lists, tuples, arrays, IntMat),
and immutability of the shared result objects.
"""

import warnings

import pytest

import repro.intlin as intlin
from repro.intlin import (
    IntMat,
    as_intmat,
    hnf,
    hnf_cached,
    random_full_rank,
    smith_normal_form,
    smith_normal_form_cached,
    verify_hermite,
    verify_smith,
)
from repro.intlin.hermite import _hnf_memo
from repro.intlin.smith import _smith_memo


def _random_matrices(rng, count=25):
    for _ in range(count):
        k = rng.randint(1, 4)
        n = rng.randint(k, 5)
        yield random_full_rank(k, n, rng=rng, magnitude=7)


class TestDeprecatedFreezeSurface:
    def test_freeze_matrix_warns_and_returns_intmat(self):
        with pytest.warns(DeprecationWarning, match="freeze_matrix"):
            frozen = intlin.freeze_matrix([[1, 2], [3, 4]])
        assert isinstance(frozen, IntMat)
        assert frozen == ((1, 2), (3, 4))
        assert hash(frozen) == hash(((1, 2), (3, 4)))

    def test_frozen_int_matrix_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="FrozenIntMatrix"):
            alias = intlin.FrozenIntMatrix
        assert alias is IntMat

    def test_no_other_deprecated_attributes(self):
        with pytest.raises(AttributeError):
            intlin.no_such_symbol


class TestHnfCached:
    def test_equals_uncached_on_random_matrices(self, rng):
        for a in _random_matrices(rng):
            cold = hnf(a)
            cached = hnf_cached(a)
            assert cached == cold
            assert verify_hermite(a, cached)

    def test_canonical_variant_matches(self, rng):
        for a in _random_matrices(rng, count=10):
            assert hnf_cached(a, canonical=True) == hnf(a, canonical=True)

    def test_repeated_calls_hit_the_cache(self):
        _hnf_memo.cache_clear()
        a = [[1, 7, 1, 1], [1, 7, 1, 0]]
        first = hnf_cached(a)
        second = hnf_cached(a)
        assert first == second
        info = _hnf_memo.cache_info()
        assert info.hits >= 1 and info.misses >= 1

    def test_cache_hits_share_the_result_object(self):
        a = [[2, 4], [6, 9]]
        assert hnf_cached(a) is hnf_cached([(2, 4), (6, 9)])
        assert hnf_cached(a) is hnf_cached(as_intmat(a))

    def test_results_are_immutable(self):
        res = hnf_cached([[2, 4], [6, 9]])
        with pytest.raises(TypeError):
            res.h[0][0] = 999
        with pytest.raises(TypeError):
            res.u[0] = (0, 0)


class TestSmithCached:
    def test_equals_uncached_on_random_matrices(self, rng):
        for a in _random_matrices(rng):
            cold = smith_normal_form(a)
            cached = smith_normal_form_cached(a)
            assert cached == cold
            assert verify_smith(a, cached)

    def test_repeated_calls_hit_the_cache(self):
        _smith_memo.cache_clear()
        a = [[2, 0], [0, 6]]
        first = smith_normal_form_cached(a)
        second = smith_normal_form_cached(a)
        assert first == second
        info = _smith_memo.cache_info()
        assert info.hits >= 1 and info.misses >= 1

    def test_cache_hits_share_the_result_object(self):
        a = [[4, 6], [10, 15]]
        assert smith_normal_form_cached(a) is smith_normal_form_cached(
            as_intmat(a)
        )

    def test_results_are_immutable(self):
        res = smith_normal_form_cached([[4, 6], [10, 15]])
        with pytest.raises(TypeError):
            res.d[0][0] = 999
        with pytest.raises(TypeError):
            res.p[0] = (0, 0)


class TestNoWarningsOnModernSurface:
    def test_plain_import_surface_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            as_intmat([[1, 2], [3, 4]])
            hnf_cached([[1, 0], [0, 1]])
            smith_normal_form_cached([[1, 0], [0, 1]])
