"""Cached == uncached for the memoized normal-form kernels.

The design-space searches call the Hermite and Smith routines on the
same handful of matrices thousands of times; ``hnf_cached`` /
``smith_normal_form_cached`` memoize them behind a hashable-matrix
adapter.  These tests pin the two contracts that make that safe:
identical results on arbitrary inputs, and immunity to caller mutation
of returned structures.
"""

from repro.intlin import (
    freeze_matrix,
    hnf,
    hnf_cached,
    random_full_rank,
    smith_normal_form,
    smith_normal_form_cached,
    verify_hermite,
    verify_smith,
)
from repro.intlin.hermite import _hnf_frozen
from repro.intlin.smith import _smith_frozen


def _random_matrices(rng, count=25):
    for _ in range(count):
        k = rng.randint(1, 4)
        n = rng.randint(k, 5)
        yield random_full_rank(k, n, rng=rng, magnitude=7)


class TestFreezeMatrix:
    def test_hashable_and_faithful(self):
        frozen = freeze_matrix([[1, 2], [3, 4]])
        assert frozen == ((1, 2), (3, 4))
        assert hash(frozen) == hash(((1, 2), (3, 4)))

    def test_accepts_mixed_sequence_types(self):
        assert freeze_matrix(((1, 2),)) == freeze_matrix([[1, 2]])


class TestHnfCached:
    def test_equals_uncached_on_random_matrices(self, rng):
        for a in _random_matrices(rng):
            cold = hnf(a)
            cached = hnf_cached(a)
            assert cached == cold
            assert verify_hermite(a, cached)

    def test_canonical_variant_matches(self, rng):
        for a in _random_matrices(rng, count=10):
            assert hnf_cached(a, canonical=True) == hnf(a, canonical=True)

    def test_repeated_calls_hit_the_cache(self):
        _hnf_frozen.cache_clear()
        a = [[1, 7, 1, 1], [1, 7, 1, 0]]
        first = hnf_cached(a)
        second = hnf_cached(a)
        assert first == second
        info = _hnf_frozen.cache_info()
        assert info.hits >= 1 and info.misses >= 1

    def test_caller_mutation_cannot_poison_the_cache(self):
        a = [[2, 4], [6, 9]]
        res = hnf_cached(a)
        res.h[0][0] = 999
        res.u[0][0] = 999
        fresh = hnf_cached(a)
        assert fresh.h[0][0] != 999
        assert fresh == hnf(a)


class TestSmithCached:
    def test_equals_uncached_on_random_matrices(self, rng):
        for a in _random_matrices(rng):
            cold = smith_normal_form(a)
            cached = smith_normal_form_cached(a)
            assert cached == cold
            assert verify_smith(a, cached)

    def test_repeated_calls_hit_the_cache(self):
        _smith_frozen.cache_clear()
        a = [[2, 0], [0, 6]]
        first = smith_normal_form_cached(a)
        second = smith_normal_form_cached(a)
        assert first == second
        info = _smith_frozen.cache_info()
        assert info.hits >= 1 and info.misses >= 1

    def test_caller_mutation_cannot_poison_the_cache(self):
        a = [[4, 6], [10, 15]]
        res = smith_normal_form_cached(a)
        res.d[0][0] = 999
        res.p[0][0] = 999
        fresh = smith_normal_form_cached(a)
        assert fresh.d[0][0] != 999
        assert fresh == smith_normal_form(a)
