"""Unit tests for repro.intlin.diophantine."""

import pytest

from repro.intlin import matvec, solve_diophantine


class TestSolvable:
    def test_single_equation(self):
        sol = solve_diophantine([[2, 3]], [1])
        assert sol is not None
        assert 2 * sol.particular[0] + 3 * sol.particular[1] == 1
        assert len(sol.kernel) == 1

    def test_square_unique(self):
        sol = solve_diophantine([[2, 3], [0, 5]], [1, 5])
        assert sol is not None
        assert sol.particular == [-1, 1]
        assert sol.kernel == ()

    def test_particular_satisfies_system(self, rng):
        for _ in range(25):
            rows = rng.randint(1, 3)
            cols = rng.randint(1, 4)
            a = [[rng.randint(-4, 4) for _ in range(cols)] for _ in range(rows)]
            x = [rng.randint(-3, 3) for _ in range(cols)]
            b = matvec(a, x)  # guaranteed solvable
            sol = solve_diophantine(a, b)
            assert sol is not None
            assert matvec(a, sol.particular) == b

    def test_kernel_vectors_annihilate(self, rng):
        for _ in range(15):
            a = [[rng.randint(-4, 4) for _ in range(4)] for _ in range(2)]
            x = [rng.randint(-3, 3) for _ in range(4)]
            b = matvec(a, x)
            sol = solve_diophantine(a, b)
            for col in sol.kernel:
                assert all(v == 0 for v in matvec(a, list(col)))

    def test_sample_combines(self):
        sol = solve_diophantine([[1, 1, 1]], [3])
        pt = sol.sample([2, -1])
        assert sum(pt) == 3

    def test_sample_wrong_len_raises(self):
        sol = solve_diophantine([[1, 1, 1]], [3])
        with pytest.raises(ValueError):
            sol.sample([1])

    def test_homogeneous(self):
        sol = solve_diophantine([[1, -1]], [0])
        assert sol is not None
        assert matvec([[1, -1]], sol.particular) == [0]

    def test_zero_matrix_zero_rhs(self):
        sol = solve_diophantine([[0, 0]], [0])
        assert sol is not None
        assert len(sol.kernel) == 2


class TestUnsolvable:
    def test_parity_obstruction(self):
        assert solve_diophantine([[2, 4]], [1]) is None

    def test_gcd_obstruction(self):
        assert solve_diophantine([[6, 9]], [2]) is None

    def test_inconsistent_rows(self):
        # x + y = 1 and 2x + 2y = 3 cannot both hold.
        assert solve_diophantine([[1, 1], [2, 2]], [1, 3]) is None

    def test_zero_matrix_nonzero_rhs(self):
        assert solve_diophantine([[0, 0]], [5]) is None

    def test_overdetermined_inconsistent(self):
        assert solve_diophantine([[1, 0], [0, 1], [1, 1]], [1, 1, 3]) is None


class TestShapes:
    def test_rhs_length_mismatch(self):
        with pytest.raises(ValueError):
            solve_diophantine([[1, 2]], [1, 2])

    def test_overdetermined_consistent(self):
        sol = solve_diophantine([[1, 0], [0, 1], [1, 1]], [2, 3, 5])
        assert sol is not None
        assert sol.particular == [2, 3]
        assert sol.kernel == ()
