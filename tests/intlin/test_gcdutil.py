"""Unit tests for repro.intlin.gcdutil."""

import math

import pytest

from repro.intlin import (
    bezout_row,
    extended_gcd,
    gcd_list,
    is_primitive,
    lcm_list,
    normalize_primitive,
    primitive_part,
)


class TestExtendedGcd:
    def test_classic_pair(self):
        g, x, y = extended_gcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_coprime(self):
        g, x, y = extended_gcd(17, 13)
        assert g == 1
        assert 17 * x + 13 * y == 1

    def test_zero_left(self):
        assert extended_gcd(0, 5) == (5, 0, 1)

    def test_zero_right(self):
        assert extended_gcd(7, 0) == (7, 1, 0)

    def test_both_zero(self):
        g, x, y = extended_gcd(0, 0)
        assert g == 0
        assert 0 * x + 0 * y == 0

    def test_negative_inputs(self):
        for a, b in [(-12, 18), (12, -18), (-12, -18)]:
            g, x, y = extended_gcd(a, b)
            assert g == 6
            assert a * x + b * y == 6

    def test_gcd_always_nonnegative(self):
        for a in range(-8, 9):
            for b in range(-8, 9):
                g, x, y = extended_gcd(a, b)
                assert g >= 0
                assert g == math.gcd(a, b)
                assert a * x + b * y == g

    def test_equal_values(self):
        g, x, y = extended_gcd(10, 10)
        assert g == 10
        assert 10 * x + 10 * y == 10


class TestGcdList:
    def test_basic(self):
        assert gcd_list([12, -18, 30]) == 6

    def test_empty_is_zero(self):
        assert gcd_list([]) == 0

    def test_all_zero(self):
        assert gcd_list([0, 0, 0]) == 0

    def test_single(self):
        assert gcd_list([-9]) == 9

    def test_early_exit_on_one(self):
        assert gcd_list([3, 5, 999999]) == 1

    def test_with_zero_entries(self):
        assert gcd_list([0, 4, 0, 6]) == 2


class TestLcmList:
    def test_basic(self):
        assert lcm_list([4, 6]) == 12

    def test_empty_is_one(self):
        assert lcm_list([]) == 1

    def test_with_zero(self):
        assert lcm_list([3, 0]) == 0

    def test_negatives(self):
        assert lcm_list([-4, 6]) == 12


class TestPrimitive:
    def test_is_primitive_true(self):
        assert is_primitive([3, 5, 7])

    def test_is_primitive_false(self):
        assert not is_primitive([2, 4, 6])

    def test_zero_vector_not_primitive(self):
        assert not is_primitive([0, 0])

    def test_empty_not_primitive(self):
        assert not is_primitive([])

    def test_primitive_part(self):
        assert primitive_part([4, -6, 8]) == [2, -3, 4]

    def test_primitive_part_already_primitive(self):
        assert primitive_part([3, 5]) == [3, 5]

    def test_primitive_part_zero_raises(self):
        with pytest.raises(ValueError):
            primitive_part([0, 0, 0])

    def test_normalize_sign_flip(self):
        assert normalize_primitive([-2, 4, -6]) == [1, -2, 3]

    def test_normalize_leading_zeros(self):
        assert normalize_primitive([0, -3, 6]) == [0, 1, -2]

    def test_normalize_positive_untouched(self):
        assert normalize_primitive([5, -10]) == [1, -2]


class TestBezoutRow:
    def test_two_entries(self):
        g, c = bezout_row([240, 46])
        assert g == 2
        assert 240 * c[0] + 46 * c[1] == 2

    def test_three_entries(self):
        vals = [6, 10, 15]
        g, c = bezout_row(vals)
        assert g == 1
        assert sum(v * ci for v, ci in zip(vals, c)) == 1

    def test_zero_vector(self):
        g, c = bezout_row([0, 0])
        assert g == 0
        assert len(c) == 2

    def test_empty(self):
        assert bezout_row([]) == (0, [])

    def test_negative_entries(self):
        vals = [-4, 6, -9]
        g, c = bezout_row(vals)
        assert g == 1
        assert sum(v * ci for v, ci in zip(vals, c)) == 1

    def test_single_entry(self):
        g, c = bezout_row([-7])
        assert g == 7
        assert -7 * c[0] == 7
