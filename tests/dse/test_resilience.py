"""Fault-injection tests for the DSE engine's resilience layer.

These exercise the real recovery paths — a worker killed mid-ring, a
shard hung past its deadline, a corrupted shard output, a truncated
cache entry — via the deterministic ``$REPRO_DSE_FAULT`` hook, which
fires *inside the worker process*.  Nothing is mocked.  The invariant
under test is the engine's contract: a recovered search result compares
equal to the serial (``jobs=1``, no-cache) one, with the recovery
visible only in the ``SearchStats`` failure telemetry.
"""

import json

import pytest

from repro.core.optimize import procedure_5_1
from repro.core.pipeline import find_time_optimal_mapping
from repro.core.space_optimize import solve_joint_optimal, solve_space_optimal
from repro.dse.cache import ResultCache
from repro.dse.executor import explore_joint, explore_schedule, explore_space
from repro.dse.resilience import (
    FAULT_ENV_VAR,
    FAULT_HANG_ENV_VAR,
    ResilienceError,
    ResiliencePolicy,
    ResilientShardRunner,
    _parse_fault_spec,
)

SPACE = [[1, 1, -1]]

# No backoff sleeps in tests; recovery behavior is unaffected.
FAST = ResiliencePolicy(backoff_base=0.0)


class TestResiliencePolicy:
    def test_defaults_are_valid(self):
        p = ResiliencePolicy()
        assert p.shard_timeout is None
        assert p.max_retries == 2
        assert p.degrade is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shard_timeout": 0.0},
            {"shard_timeout": -1.0},
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"max_pool_restarts": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)

    def test_backoff_progression(self):
        p = ResiliencePolicy(backoff_base=0.1, backoff_factor=2.0)
        assert p.backoff_delay(1) == pytest.approx(0.1)
        assert p.backoff_delay(2) == pytest.approx(0.2)
        assert p.backoff_delay(3) == pytest.approx(0.4)


class TestFaultSpec:
    def test_parses_once_and_always(self):
        assert _parse_fault_spec("crash:2") == ("crash", 2, False)
        assert _parse_fault_spec("hang:0:always") == ("hang", 0, True)
        assert _parse_fault_spec(None) is None
        assert _parse_fault_spec("") is None

    @pytest.mark.parametrize("raw", ["explode:1", "crash", "crash:1:2:3"])
    def test_rejects_malformed_specs(self, raw):
        with pytest.raises(ValueError):
            _parse_fault_spec(raw)


class TestCrashRecovery:
    def test_shard_killed_mid_ring_recovers(self, matmul4, monkeypatch):
        serial = procedure_5_1(matmul4, SPACE)
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:0")
        recovered = explore_schedule(matmul4, SPACE, jobs=2, adaptive=False, resilience=FAST)
        assert recovered == serial
        assert recovered.schedule.pi == serial.schedule.pi
        # The recovery is visible in the failure telemetry.
        assert recovered.stats.shard_retries >= 1
        assert recovered.stats.pool_restarts == 1
        assert recovered.stats.shard_timeouts == 0
        assert not recovered.stats.degraded

    def test_space_search_recovers_from_crash(self, matmul4, monkeypatch):
        serial = solve_space_optimal(matmul4, (1, 2, 3))
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:1")
        recovered = explore_space(matmul4, (1, 2, 3), jobs=2, resilience=FAST)
        assert recovered == serial
        assert recovered.stats.pool_restarts == 1

    def test_joint_search_recovers_from_crash(self, matmul4, monkeypatch):
        serial = solve_joint_optimal(matmul4)
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:0")
        recovered = explore_joint(matmul4, jobs=2, resilience=FAST)
        assert recovered == serial
        assert recovered.stats.shard_retries >= 1


class TestTimeoutRecovery:
    def test_hung_shard_is_reaped_and_retried(self, matmul4, monkeypatch):
        serial = procedure_5_1(matmul4, SPACE)
        monkeypatch.setenv(FAULT_ENV_VAR, "hang:0")
        monkeypatch.setenv(FAULT_HANG_ENV_VAR, "30")
        policy = ResiliencePolicy(shard_timeout=1.0, backoff_base=0.0)
        recovered = explore_schedule(matmul4, SPACE, jobs=2, adaptive=False, resilience=policy)
        assert recovered == serial
        assert recovered.stats.shard_timeouts >= 1
        assert recovered.stats.pool_restarts >= 1
        assert not recovered.stats.degraded


class TestCorruptOutputRecovery:
    def test_corrupted_shard_output_is_retried(self, matmul4, monkeypatch):
        serial = procedure_5_1(matmul4, SPACE)
        monkeypatch.setenv(FAULT_ENV_VAR, "corrupt:0")
        recovered = explore_schedule(matmul4, SPACE, jobs=2, adaptive=False, resilience=FAST)
        assert recovered == serial
        assert recovered.stats.shard_retries == 1
        # The pool itself survives a garbage result.
        assert recovered.stats.pool_restarts == 0


class TestDegradation:
    def test_persistent_crash_degrades_in_process(self, matmul4, monkeypatch):
        serial = procedure_5_1(matmul4, SPACE)
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:0:always")
        policy = ResiliencePolicy(
            max_retries=1, backoff_base=0.0, max_pool_restarts=100
        )
        recovered = explore_schedule(matmul4, SPACE, jobs=2, adaptive=False, resilience=policy)
        assert recovered == serial
        assert recovered.stats.degraded
        assert recovered.stats.shard_retries >= 1

    def test_pool_restart_budget_degrades_globally(self, matmul4, monkeypatch):
        serial = procedure_5_1(matmul4, SPACE)
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:0:always")
        policy = ResiliencePolicy(
            max_retries=5, backoff_base=0.0, max_pool_restarts=0
        )
        recovered = explore_schedule(matmul4, SPACE, jobs=2, adaptive=False, resilience=policy)
        assert recovered == serial
        assert recovered.stats.degraded
        assert recovered.stats.pool_restarts == 1

    def test_no_degrade_raises_instead(self, matmul4, monkeypatch):
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:0:always")
        policy = ResiliencePolicy(
            max_retries=1, backoff_base=0.0, degrade=False, max_pool_restarts=100
        )
        with pytest.raises(ResilienceError):
            explore_schedule(matmul4, SPACE, jobs=2, adaptive=False, resilience=policy)

    def test_jobs_1_never_touches_a_pool(self, matmul4, monkeypatch):
        # The in-process path is the degradation target; faults only fire
        # inside pool workers, so jobs=1 is immune by construction.
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:0:always")
        serial = procedure_5_1(matmul4, SPACE)
        assert explore_schedule(matmul4, SPACE, jobs=1, resilience=FAST) == serial


class TestCorruptCacheRecovery:
    def _entry_files(self, tmp_path):
        return [p for p in tmp_path.glob("*.json") if not p.name.startswith(".")]

    def test_truncated_entry_recovers_and_quarantines(self, matmul4, tmp_path):
        serial = procedure_5_1(matmul4, SPACE)
        cache = ResultCache(tmp_path)
        explore_schedule(matmul4, SPACE, jobs=2, cache=cache, resilience=FAST)
        (entry,) = self._entry_files(tmp_path)
        entry.write_text(entry.read_text()[: len(entry.read_text()) // 2])
        recovered = explore_schedule(
            matmul4, SPACE, jobs=2, cache=cache, resilience=FAST
        )
        assert recovered == serial
        assert recovered.stats.cache_hits == 0
        assert recovered.stats.cache_misses == 1
        assert cache.quarantined == 1
        assert list(tmp_path.glob("*.json.corrupt"))
        # The re-search rewrote a good entry: the next replay hits.
        warm = explore_schedule(matmul4, SPACE, jobs=2, cache=cache, resilience=FAST)
        assert warm == serial
        assert warm.stats.cache_hits == 1

    def test_entry_without_value_is_a_miss_not_a_crash(self, matmul4, tmp_path):
        from repro.dse.cache import CACHE_SCHEMA_VERSION

        serial = procedure_5_1(matmul4, SPACE)
        cache = ResultCache(tmp_path)
        explore_schedule(matmul4, SPACE, jobs=1, cache=cache)
        (entry,) = self._entry_files(tmp_path)
        entry.write_text(json.dumps({"schema": CACHE_SCHEMA_VERSION}))
        recovered = explore_schedule(matmul4, SPACE, jobs=1, cache=cache)
        assert recovered == serial
        assert cache.quarantined == 1


class TestRunnerUnit:
    def test_single_payload_stays_in_process(self):
        runner = ResilientShardRunner(4, policy=FAST)
        out = runner.run(lambda p: {"wall_time": 0.0, "records": [p["x"]]},
                         [{"x": 1}])
        assert out == [{"wall_time": 0.0, "records": [1]}]
        assert runner.pool_restarts == 0

    def test_telemetry_application(self):
        from repro.dse.progress import SearchStats

        runner = ResilientShardRunner(2, policy=FAST)
        runner.shard_retries = 3
        runner.shard_timeouts = 1
        runner.pool_restarts = 2
        runner.degraded = True
        stats = SearchStats()
        runner.apply_telemetry(stats)
        assert stats.shard_retries == 3
        assert stats.shard_timeouts == 1
        assert stats.pool_restarts == 2
        assert stats.degraded is True
        # Telemetry never participates in equality.
        assert stats == SearchStats()


class TestPipelineAndStats:
    def test_pipeline_threads_resilience_policy(self, matmul4, monkeypatch):
        baseline = find_time_optimal_mapping(
            matmul4, SPACE, solver="procedure-5.1"
        )
        monkeypatch.setenv(FAULT_ENV_VAR, "crash:0")
        engine = find_time_optimal_mapping(
            matmul4, SPACE, solver="procedure-5.1", jobs=2, adaptive=False, resilience=FAST
        )
        assert engine.schedule == baseline.schedule
        assert engine.mapping == baseline.mapping
        assert engine.stats == baseline.stats

    def test_failure_counters_round_trip_and_format(self):
        from repro.dse.progress import SearchStats, format_stats

        stats = SearchStats(
            shard_retries=2, shard_timeouts=1, pool_restarts=1, degraded=True
        )
        data = stats.to_dict()
        assert data["shard_retries"] == 2
        assert data["pool_restarts"] == 1
        assert data["degraded"] is True
        rebuilt = SearchStats.from_dict(data)
        assert rebuilt.shard_timeouts == 1
        text = format_stats(stats)
        assert "resilience" in text and "degraded" in text


class TestCLIFlags:
    def test_explore_accepts_resilience_flags(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "explore", "-a", "matmul", "--mu", "3", "-s", "1,1,-1",
            "--jobs", "2", "--cache-dir", str(tmp_path),
            "--shard-timeout", "30", "--max-retries", "1", "--no-degrade",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal Pi" in out

    def test_bad_shard_timeout_is_a_clean_exit(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "explore", "-a", "matmul", "--mu", "3", "-s", "1,1,-1",
                "--cache-dir", str(tmp_path), "--shard-timeout", "-1",
            ])
