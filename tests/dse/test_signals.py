"""Kill-and-resume integration tests for checkpointed explorations.

These run the real CLI in a subprocess, interrupt it mid-exploration
(graceful ``SIGTERM`` and hard ``SIGKILL``), and verify the journal's
crash-safety contract end to end: every surviving line checksums, the
graceful stop exits with the distinct resumable code, and resuming the
interrupted run reproduces the uninterrupted serial result *exactly* —
with zero journaled shards recomputed.  The ``$REPRO_DSE_SLOW``
per-shard delay is what makes "mid-exploration" deterministic enough
to hit from the outside.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import EXIT_INTERRUPTED
from repro.dse.checkpoint import CheckpointJournal, _parse_line
from repro.dse.executor import explore_schedule
from repro.model import matrix_multiplication

REPO_ROOT = Path(__file__).resolve().parents[2]
SPACE = ((1, 1, -1),)

#: Per-shard sleep injected into the subprocess.  Long enough that a
#: signal sent after the first journaled shard always lands while later
#: shards are still pending, short enough to keep the suite quick.
SLOW = "0.4"


def launch_explore(checkpoint: Path, jobs: int) -> subprocess.Popen:
    env = {
        **os.environ,
        "PYTHONPATH": str(REPO_ROOT / "src"),
        "REPRO_DSE_SLOW": SLOW,
    }
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "explore",
            "--algorithm", "matmul", "--mu", "4", "--space", "1,1,-1",
            "--jobs", str(jobs), "--no-cache",
            "--checkpoint", str(checkpoint),
        ],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def wait_for_journal_lines(path: Path, minimum: int, timeout: float = 60.0) -> None:
    """Block until the journal holds ``minimum`` complete lines."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and path.read_bytes().count(b"\n") >= minimum:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"journal never reached {minimum} lines within {timeout}s"
    )


def journal_shard_count(path: Path) -> int:
    j = CheckpointJournal(path)
    j.open(run_key_of(path), resume=True)
    try:
        return len(j.shards)
    finally:
        j.close()


def run_key_of(path: Path) -> str:
    head = _parse_line(path.read_bytes().splitlines()[0].decode() + "\n")
    assert head is not None and head["kind"] in ("run", "snapshot")
    return head["run"]


def resume_and_compare(checkpoint: Path, jobs: int = 1) -> None:
    """Resume the interrupted journal and demand exact serial equality.

    Shard identity includes the shard's content, so the resume must use
    the same ``jobs`` value to hit the journal (a different partition
    recomputes, by design); the result is compared against the
    uninterrupted *serial* run either way — the engine's equality
    contract makes them the same thing.
    """
    algo = matrix_multiplication(4)
    uninterrupted = explore_schedule(algo, SPACE, jobs=1)
    saved = journal_shard_count(checkpoint)
    resumed = explore_schedule(
        algo, SPACE, jobs=jobs, checkpoint=checkpoint, resume=True
    )
    assert resumed == uninterrupted
    # zero replayed completed shards: everything the journal held was
    # served from it, not recomputed
    assert resumed.stats.shards_resumed == saved


class TestGracefulSigterm:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_sigterm_leaves_valid_journal_and_resumes_exactly(
        self, tmp_path, jobs
    ):
        ckpt = tmp_path / "run.ckpt"
        proc = launch_explore(ckpt, jobs)
        try:
            # header + at least one durable shard, so the interrupt
            # provably lands mid-exploration with work left to do
            wait_for_journal_lines(ckpt, 2)
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=120)
        finally:
            proc.kill()
        assert proc.returncode == EXIT_INTERRUPTED, stderr.decode()
        assert b"resumable" in stderr
        # a graceful stop flushes everything: every line verifies
        lines = ckpt.read_bytes().splitlines()
        assert lines and all(
            _parse_line(raw.decode() + "\n") is not None for raw in lines
        )
        assert journal_shard_count(ckpt) >= 1
        resume_and_compare(ckpt, jobs=jobs)


class TestHardKill:
    def test_sigkill_mid_run_is_resumable(self, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        proc = launch_explore(ckpt, jobs=1)
        try:
            wait_for_journal_lines(ckpt, 2)
            proc.send_signal(signal.SIGKILL)
            proc.communicate(timeout=120)
        finally:
            proc.kill()
        assert proc.returncode == -signal.SIGKILL
        # fsync-per-append means a hard kill can tear at most the line
        # being written; replay drops the tail and trusts the rest
        resume_and_compare(ckpt)

    def test_torn_tail_after_kill_is_tolerated(self, tmp_path):
        ckpt = tmp_path / "run.ckpt"
        proc = launch_explore(ckpt, jobs=1)
        try:
            wait_for_journal_lines(ckpt, 2)
            proc.send_signal(signal.SIGKILL)
            proc.communicate(timeout=120)
        finally:
            proc.kill()
        # simulate the worst allowed damage on top: a half-written line
        with open(ckpt, "ab") as fh:
            fh.write(b'{"crc":"00ab,partial')
        resume_and_compare(ckpt)
