"""Unit tests for the write-ahead checkpoint journal and run budgets."""

import json

import pytest

from repro.dse.checkpoint import (
    JOURNAL_SCHEMA_VERSION,
    BudgetExceeded,
    CheckpointError,
    CheckpointJournal,
    RunBudget,
    RunControl,
    RunInterrupted,
    _record_line,
)


def make_journal(path, run_key="run-a", shards=(), result=None, **kwargs):
    j = CheckpointJournal(path, **kwargs)
    j.open(run_key, task="test")
    for key, out in shards:
        j.record_shard(key, out)
    if result is not None:
        j.record_result(result)
    j.close()
    return j


class TestJournalRoundTrip:
    def test_resume_replays_recorded_shards(self, tmp_path):
        path = tmp_path / "run.ckpt"
        make_journal(path, shards=[("s0", {"a": 1}), ("s1", {"b": [2, 3]})])
        j = CheckpointJournal(path)
        j.open("run-a", resume=True)
        assert j.lookup("s0") == {"a": 1}
        assert j.lookup("s1") == {"b": [2, 3]}
        assert j.lookup("s2") is None
        assert j.resumed_shards == 2
        assert j.dropped_records == 0
        j.close()

    def test_result_record_round_trips(self, tmp_path):
        path = tmp_path / "run.ckpt"
        make_journal(path, shards=[("s0", {"a": 1})],
                     result={"found": True, "pi": [1, 2, 2]})
        j = CheckpointJournal(path)
        j.open("run-a", resume=True)
        assert j.result_entry == {"found": True, "pi": [1, 2, 2]}
        j.close()

    def test_record_shard_is_idempotent(self, tmp_path):
        path = tmp_path / "run.ckpt"
        j = CheckpointJournal(path)
        j.open("run-a")
        j.record_shard("s0", {"a": 1})
        j.record_shard("s0", {"a": 999})  # second write is a no-op
        j.close()
        assert j.lookup("s0") == {"a": 1}
        # exactly two lines on disk: header + one shard
        assert len(path.read_bytes().splitlines()) == 2

    def test_open_without_resume_discards_old_state(self, tmp_path):
        path = tmp_path / "run.ckpt"
        make_journal(path, shards=[("s0", {"a": 1})])
        j = CheckpointJournal(path)
        j.open("run-a", resume=False)
        assert j.lookup("s0") is None
        j.close()

    def test_resume_of_missing_file_starts_fresh(self, tmp_path):
        j = CheckpointJournal(tmp_path / "absent.ckpt")
        j.open("run-a", resume=True)
        assert j.resumed_shards == 0
        j.close()
        assert (tmp_path / "absent.ckpt").exists()


class TestTornTail:
    def test_partial_last_line_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "run.ckpt"
        make_journal(path, shards=[("s0", {"a": 1}), ("s1", {"b": 2})])
        good = path.read_bytes()
        # simulate a crash mid-append: half a record, no newline
        path.write_bytes(good + b'{"crc":"dead', )
        j = CheckpointJournal(path)
        j.open("run-a", resume=True)
        assert j.resumed_shards == 2
        assert j.dropped_records == 1
        j.record_shard("s2", {"c": 3})  # append after truncation
        j.close()
        # the torn bytes are gone; every surviving line verifies
        for raw in path.read_bytes().splitlines():
            assert json.loads(raw)["crc"]

    def test_checksum_mismatch_stops_replay(self, tmp_path):
        path = tmp_path / "run.ckpt"
        make_journal(path, shards=[("s0", {"a": 1})])
        # a whole, parseable line whose body was bit-flipped after the
        # checksum was computed
        line = _record_line({"kind": "shard", "key": "s1", "out": {"b": 2}})
        obj = json.loads(line)
        obj["rec"]["out"]["b"] = 999
        with open(path, "ab") as fh:
            fh.write((json.dumps(obj) + "\n").encode())
        j = CheckpointJournal(path)
        j.open("run-a", resume=True)
        assert j.lookup("s0") == {"a": 1}
        assert j.lookup("s1") is None
        assert j.dropped_records == 1
        j.close()

    def test_fully_torn_file_is_treated_as_fresh(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_bytes(b"garbage that is not a journal\n")
        j = CheckpointJournal(path)
        j.open("run-a", resume=True)
        assert j.resumed_shards == 0
        j.close()


class TestMismatches:
    def test_run_key_mismatch_is_hard_error(self, tmp_path):
        path = tmp_path / "run.ckpt"
        make_journal(path, run_key="run-a", shards=[("s0", {"a": 1})])
        j = CheckpointJournal(path)
        with pytest.raises(CheckpointError, match="different run"):
            j.open("run-b", resume=True)

    def test_schema_mismatch_is_hard_error(self, tmp_path):
        path = tmp_path / "run.ckpt"
        line = _record_line({
            "kind": "run", "schema": JOURNAL_SCHEMA_VERSION + 1,
            "run": "run-a", "task": "t",
        })
        path.write_text(line)
        j = CheckpointJournal(path)
        with pytest.raises(CheckpointError, match="schema"):
            j.open("run-a", resume=True)

    def test_shards_without_header_are_refused(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text(
            _record_line({"kind": "shard", "key": "s0", "out": {"a": 1}})
        )
        j = CheckpointJournal(path)
        with pytest.raises(CheckpointError, match="no valid run header"):
            j.open("run-a", resume=True)

    def test_double_open_is_refused(self, tmp_path):
        j = CheckpointJournal(tmp_path / "run.ckpt")
        j.open("run-a")
        with pytest.raises(CheckpointError, match="already open"):
            j.open("run-a")
        j.close()


class TestCompaction:
    def test_compaction_preserves_every_shard(self, tmp_path):
        path = tmp_path / "run.ckpt"
        j = CheckpointJournal(path, compact_every=4)
        j.open("run-a")
        for i in range(10):
            j.record_shard(f"s{i}", {"i": i})
        j.close()
        # 10 appends with compact_every=4: the file holds snapshots,
        # not 11 lines
        assert len(path.read_bytes().splitlines()) < 11
        k = CheckpointJournal(path)
        k.open("run-a", resume=True)
        assert k.resumed_shards == 10
        assert all(k.lookup(f"s{i}") == {"i": i} for i in range(10))
        k.close()

    def test_compaction_keeps_result_entry(self, tmp_path):
        path = tmp_path / "run.ckpt"
        j = CheckpointJournal(path, compact_every=2)
        j.open("run-a")
        j.record_shard("s0", {"a": 1})
        j.record_result({"found": False})
        j.compact()
        j.close()
        k = CheckpointJournal(path)
        k.open("run-a", resume=True)
        assert k.result_entry == {"found": False}
        k.close()

    def test_bad_compact_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointJournal(tmp_path / "x", compact_every=0)


class TestRunBudget:
    def test_validation(self):
        RunBudget(max_seconds=1.5, max_shards=10, max_bits=64)  # fine
        with pytest.raises(ValueError):
            RunBudget(max_seconds=0)
        with pytest.raises(ValueError):
            RunBudget(max_shards=0)
        with pytest.raises(ValueError):
            RunBudget(max_bits=0)

    def test_shard_budget_counts_only_dispatched(self):
        with RunControl(budget=RunBudget(max_shards=3)) as control:
            control.before_dispatch(2)
            control.before_dispatch(1)
            with pytest.raises(BudgetExceeded):
                control.before_dispatch(1)
            assert control.shards_dispatched == 3

    def test_bit_budget_checks_ring_bound(self):
        with RunControl(budget=RunBudget(max_bits=4)) as control:
            control.check_ring(15)  # 4 bits: fine
            with pytest.raises(BudgetExceeded, match="max_bits"):
                control.check_ring(16)  # 5 bits

    def test_time_budget_raises_after_deadline(self, monkeypatch):
        import repro.dse.checkpoint as ckpt

        # init/enter read the clock too; advance 100s per observation
        ticks = iter(range(0, 10**6, 100))
        monkeypatch.setattr(ckpt.time, "monotonic",
                            lambda: float(next(ticks)))
        with RunControl(budget=RunBudget(max_seconds=5.0)) as control:
            with pytest.raises(BudgetExceeded, match="wall-clock"):
                control.poll()

    def test_budget_exceeded_is_a_run_interrupted(self):
        assert issubclass(BudgetExceeded, RunInterrupted)


class TestRunControl:
    def test_shard_key_depends_on_every_component(self, tmp_path):
        j = CheckpointJournal(tmp_path / "run.ckpt")
        j.open("run-a")
        control = RunControl(journal=j)
        base = control.shard_key("schedule", 1, 0, [[1, 2], [3, 4]])
        assert control.shard_key("schedule", 1, 0, [[1, 2], [3, 4]]) == base
        assert control.shard_key("space", 1, 0, [[1, 2], [3, 4]]) != base
        assert control.shard_key("schedule", 2, 0, [[1, 2], [3, 4]]) != base
        assert control.shard_key("schedule", 1, 1, [[1, 2], [3, 4]]) != base
        assert control.shard_key("schedule", 1, 0, [[1, 2], [3, 5]]) != base
        j.close()

    def test_control_without_journal_has_no_guard_or_lookup(self):
        with RunControl(budget=RunBudget(max_shards=5)) as control:
            assert control.lookup("anything") is None
            control.record_shard("k", {"x": 1})  # no-op, no crash
            control.record_result({"x": 1})
            assert control.resume_entry is None
            control.poll()  # nothing to trip

    def test_exit_closes_journal(self, tmp_path):
        j = CheckpointJournal(tmp_path / "run.ckpt")
        j.open("run-a")
        with RunControl(journal=j):
            pass
        assert j._fh is None
