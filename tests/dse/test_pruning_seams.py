"""Correctness sweep of the cache/stats seams the pruning layer exposes.

Two seams matter.  First, the result cache and checkpoint journal key a
search by its canonical run parameters — those must now include the
pruning switches, so an entry produced under one pruning configuration
can never answer a query made under another.  Second, the adaptive
autotuner serial-probes the first ring and then feeds representative
counts into its cost model — none of which may perturb the
deterministic counters or double-count the probed span.
"""

import json

from repro import matrix_multiplication
from repro.core.optimize import procedure_5_1
from repro.dse.cache import CACHE_SCHEMA_VERSION, ResultCache, canonical_key
from repro.dse.executor import explore_schedule, schedule_run_params

ALGO = matrix_multiplication(4)
SPACE = ((1, 1, -1),)


class TestCacheKeysEncodePruning:
    def test_run_params_carry_the_switches(self):
        params = schedule_run_params(ALGO, SPACE)
        assert params["symmetry"] is True
        assert params["ring_bound"] is True

    def test_every_pruning_configuration_keys_differently(self):
        keys = {
            canonical_key(
                schedule_run_params(
                    ALGO, SPACE, symmetry=sym, ring_bound=bound
                )
            )
            for sym in (True, False)
            for bound in (True, False)
        }
        assert len(keys) == 4

    def test_pruned_entry_never_answers_unpruned_query(self, tmp_path):
        """The cross-contamination regression: same algorithm, same
        space, different pruning — four cold searches, zero hits."""
        cache = ResultCache(tmp_path)
        pruned = explore_schedule(ALGO, SPACE, jobs=1, cache=cache)
        assert cache.hits == 0 and cache.misses == 1
        unpruned = explore_schedule(
            ALGO, SPACE, jobs=1, cache=cache, symmetry=False, ring_bound=False
        )
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 2  # two distinct entries on disk
        assert pruned == unpruned

    def test_same_configuration_still_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = explore_schedule(ALGO, SPACE, jobs=1, cache=cache)
        warm = explore_schedule(ALGO, SPACE, jobs=1, cache=cache)
        assert cache.hits == 1
        assert warm == cold

    def test_v3_schema_entry_still_readable(self, tmp_path):
        """Read-compat: a pre-bump entry reachable under a v4 key (same
        value layout, older schema stamp) must serve, not miss."""
        cache = ResultCache(tmp_path)
        key = canonical_key(schedule_run_params(ALGO, SPACE))
        cold = explore_schedule(ALGO, SPACE, jobs=1, cache=cache)
        path = tmp_path / f"{key}.json"
        entry = json.loads(path.read_text())
        assert entry["schema"] == CACHE_SCHEMA_VERSION == 4
        entry["schema"] = 3
        path.write_text(json.dumps(entry))
        warm = explore_schedule(ALGO, SPACE, jobs=1, cache=cache)
        assert cache.hits == 1
        assert warm == cold

    def test_journal_keys_encode_pruning(self, tmp_path):
        """A checkpoint written with pruning on cannot be resumed by a
        run with pruning off: the run keys differ."""
        import pytest

        from repro.dse.checkpoint import CheckpointError

        journal = tmp_path / "run.jsonl"
        explore_schedule(ALGO, SPACE, jobs=1, checkpoint=journal)
        with pytest.raises(CheckpointError):
            explore_schedule(
                ALGO, SPACE, jobs=1, checkpoint=journal, resume=True,
                symmetry=False, ring_bound=False,
            )


class TestAutotunerAccounting:
    """The serial-probe ring must be counted exactly once."""

    def test_adaptive_counts_equal_serial(self):
        serial = procedure_5_1(ALGO, SPACE, symmetry=False, ring_bound=False)
        for jobs in (1, 2):
            adaptive = explore_schedule(ALGO, SPACE, jobs=jobs, adaptive=True)
            assert adaptive == serial
            assert (
                adaptive.stats.counter_dict() == serial.stats.counter_dict()
            )
            assert (
                adaptive.stats.candidates_enumerated
                == serial.stats.candidates_enumerated
            )

    def test_probed_ring_wall_time_counted_once(self):
        """One wall-time sample per dispatched shard — the probe ring
        contributes exactly one, never a probe + re-deal pair."""
        result = explore_schedule(ALGO, SPACE, jobs=2, adaptive=True)
        # Each expanded ring (plus the winning one) dispatched >= 1
        # shard; with the first ring probed serially the total sample
        # count is bounded by shards-per-ring sums, and the first ring
        # contributes exactly one sample.
        rings_scanned = result.stats.rings_expanded + 1
        assert len(result.stats.shard_wall_times) >= rings_scanned
        assert (
            len(result.stats.shard_wall_times)
            <= rings_scanned * result.stats.shards
        )

    def test_adaptive_with_pruning_off_also_matches(self):
        serial = procedure_5_1(ALGO, SPACE, symmetry=False, ring_bound=False)
        adaptive = explore_schedule(
            ALGO, SPACE, jobs=2, adaptive=True,
            symmetry=False, ring_bound=False,
        )
        assert adaptive == serial
        assert adaptive.stats.counter_dict() == serial.stats.counter_dict()
