"""Parallel/serial/cached equivalence of the exploration engine.

The engine's contract is that execution strategy is invisible in the
result: for the paper's worked examples (5.1, 5.2, the 4-D Example 2.1
algorithm) the sharded searches with ``jobs in {1, 2, 4}`` and warm
cache replays must return results that compare equal to the serial
solvers' — winners, verdicts and deterministic stats included.
"""

import pytest

from repro.core.optimize import procedure_5_1
from repro.core.pipeline import find_time_optimal_mapping
from repro.core.space_optimize import solve_joint_optimal, solve_space_optimal
from repro.dse.cache import ResultCache
from repro.dse.executor import (
    explore_joint,
    explore_schedule,
    explore_space,
    resolve_jobs,
)
from repro.model import example_2_1_algorithm

JOBS = [1, 2, 4]


@pytest.fixture
def e21_small():
    """The 4-D Example 2.1 algorithm at a test-friendly size."""
    return example_2_1_algorithm(2)


S_4D = ((1, 0, 0, 0), (0, 1, 0, 0), (0, 0, 1, 0))


class TestScheduleEquivalence:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_example_5_1(self, matmul4, jobs):
        serial = procedure_5_1(matmul4, [[1, 1, -1]])
        parallel = explore_schedule(matmul4, [[1, 1, -1]], jobs=jobs)
        assert parallel == serial
        assert parallel.schedule.pi == (1, 2, 3)

    @pytest.mark.parametrize("jobs", JOBS)
    def test_example_5_2(self, tc4, jobs):
        serial = procedure_5_1(tc4, [[0, 0, 1]])
        parallel = explore_schedule(tc4, [[0, 0, 1]], jobs=jobs)
        assert parallel == serial

    @pytest.mark.parametrize("jobs", JOBS)
    def test_example_2_1_4d(self, e21_small, jobs):
        serial = procedure_5_1(e21_small, S_4D)
        parallel = explore_schedule(e21_small, S_4D, jobs=jobs)
        assert parallel == serial

    def test_exhausted_bound_equivalence(self, matmul4):
        # A bound too small for any conflict-free winner: the engine must
        # report the same not-found result and counters as the serial scan.
        kwargs = dict(initial_bound=3, max_bound=5)
        serial = procedure_5_1(matmul4, [[1, 1, -1]], **kwargs)
        assert not serial.found
        for jobs in JOBS:
            assert explore_schedule(matmul4, [[1, 1, -1]], jobs=jobs, **kwargs) == serial

    def test_extra_constraint_forces_in_process_but_matches(self, matmul4):
        constraint = lambda t: t.schedule[0] != 1  # noqa: E731
        serial = procedure_5_1(matmul4, [[1, 1, -1]], extra_constraint=constraint)
        parallel = explore_schedule(
            matmul4, [[1, 1, -1]], jobs=4, extra_constraint=constraint
        )
        assert parallel == serial
        assert parallel.schedule.pi[0] != 1

    def test_explicit_bounds_respected(self, matmul4):
        kwargs = dict(alpha=2, initial_bound=8, max_bound=40)
        serial = procedure_5_1(matmul4, [[1, 1, -1]], **kwargs)
        assert explore_schedule(matmul4, [[1, 1, -1]], jobs=2, **kwargs) == serial

    def test_telemetry_reports_shards(self, matmul4):
        # Fixed sharding: every ring is cut jobs ways.
        parallel = explore_schedule(
            matmul4, [[1, 1, -1]], jobs=2, adaptive=False
        )
        assert parallel.stats.shards == 2
        assert len(parallel.stats.shard_wall_times) >= 2
        assert parallel.stats.shards_autotuned == 0

    def test_adaptive_keeps_cheap_rings_serial(self, matmul4):
        # These rings scan in well under the fan-out threshold, so the
        # autotuner keeps every one serial — same result, no pool churn.
        fixed = explore_schedule(matmul4, [[1, 1, -1]], jobs=2, adaptive=False)
        adaptive = explore_schedule(matmul4, [[1, 1, -1]], jobs=2)
        assert adaptive == fixed
        assert adaptive.stats.shards == 1
        assert adaptive.stats.shards_autotuned > 0

    def test_batch_flag_matches_scalar_engine(self, matmul4):
        batched = explore_schedule(matmul4, [[1, 1, -1]], jobs=2)
        scalar = explore_schedule(matmul4, [[1, 1, -1]], jobs=2, batch=False)
        assert batched == scalar
        assert batched.stats.batches_evaluated > 0
        assert scalar.stats.batches_evaluated == 0


class TestScheduleCache:
    def test_warm_equals_cold_equals_serial(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path)
        serial = procedure_5_1(matmul4, [[1, 1, -1]])
        cold = explore_schedule(matmul4, [[1, 1, -1]], jobs=2, cache=cache)
        warm = explore_schedule(matmul4, [[1, 1, -1]], jobs=2, cache=cache)
        assert cold == serial == warm
        assert cold.stats.cache_misses == 1 and cold.stats.cache_hits == 0
        assert warm.stats.cache_hits == 1 and warm.stats.cache_misses == 0
        assert len(cache) == 1

    def test_not_found_is_cached_too(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = dict(initial_bound=3, max_bound=5, cache=cache)
        cold = explore_schedule(matmul4, [[1, 1, -1]], jobs=1, **kwargs)
        warm = explore_schedule(matmul4, [[1, 1, -1]], jobs=1, **kwargs)
        assert not cold.found and cold == warm
        assert warm.stats.cache_hits == 1

    def test_different_bounds_do_not_collide(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path)
        explore_schedule(matmul4, [[1, 1, -1]], jobs=1, cache=cache)
        explore_schedule(matmul4, [[1, 1, -1]], jobs=1, cache=cache, alpha=2)
        assert len(cache) == 2

    def test_extra_constraint_bypasses_cache(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path)
        explore_schedule(
            matmul4, [[1, 1, -1]], jobs=1, cache=cache,
            extra_constraint=lambda t: True,
        )
        assert len(cache) == 0


class TestSpaceEquivalence:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_problem_6_1(self, matmul4, jobs):
        serial = solve_space_optimal(matmul4, (1, 2, 3))
        parallel = explore_space(matmul4, (1, 2, 3), jobs=jobs)
        assert parallel == serial

    def test_rejects_dependence_violating_pi(self, matmul4):
        with pytest.raises(ValueError):
            explore_space(matmul4, (0, 0, -1))

    def test_custom_objective_in_process(self, matmul4):
        objective = lambda cost: float(cost.processors)  # noqa: E731
        serial = solve_space_optimal(matmul4, (1, 2, 3), objective=objective)
        parallel = explore_space(matmul4, (1, 2, 3), jobs=4, objective=objective)
        assert parallel == serial

    def test_cache_round_trip(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path)
        serial = solve_space_optimal(matmul4, (1, 2, 3))
        cold = explore_space(matmul4, (1, 2, 3), jobs=2, cache=cache)
        warm = explore_space(matmul4, (1, 2, 3), jobs=2, cache=cache)
        assert cold == serial == warm
        assert warm.stats.cache_hits == 1

    def test_custom_objective_bypasses_cache(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path)
        explore_space(
            matmul4, (1, 2, 3), cache=cache, objective=lambda c: 0.0
        )
        assert len(cache) == 0


class TestJointEquivalence:
    @pytest.mark.parametrize("jobs", JOBS)
    def test_problem_6_2(self, matmul4, jobs):
        serial = solve_joint_optimal(matmul4)
        parallel = explore_joint(matmul4, jobs=jobs)
        assert parallel == serial

    def test_weights_flow_through(self, matmul4):
        serial = solve_joint_optimal(matmul4, time_weight=2.0, space_weight=0.5)
        parallel = explore_joint(matmul4, jobs=2, time_weight=2.0, space_weight=0.5)
        assert parallel == serial

    def test_cache_round_trip(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path)
        serial = solve_joint_optimal(matmul4)
        cold = explore_joint(matmul4, jobs=2, cache=cache)
        warm = explore_joint(matmul4, jobs=2, cache=cache)
        assert cold == serial == warm
        assert warm.stats.cache_hits == 1

    def test_warm_rebuild_shares_cost_model_with_cold(self, matmul4, tmp_path):
        # Regression: the warm-cache rebuild used to re-implement the
        # joint objective inline; with non-default weights a formula
        # drift would surface as warm != cold.  Both paths now call
        # repro.core.space_optimize.joint_objective.
        cache = ResultCache(tmp_path)
        weights = dict(time_weight=2.0, space_weight=0.5)
        cold = explore_joint(matmul4, jobs=1, cache=cache, **weights)
        warm = explore_joint(matmul4, jobs=1, cache=cache, **weights)
        assert warm == cold
        assert warm.stats.cache_hits == 1
        assert [d.objective for d in warm.ranking] == [
            d.objective for d in cold.ranking
        ]
        from repro.core import joint_objective

        for design in warm.ranking:
            assert design.objective == joint_objective(design.cost, **weights)

    def test_callback_schedule_kwargs_bypass_cache(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = {"extra_constraint": lambda t: True}
        serial = solve_joint_optimal(matmul4, schedule_kwargs=kwargs)
        parallel = explore_joint(
            matmul4, jobs=4, schedule_kwargs=kwargs, cache=cache
        )
        assert parallel == serial
        assert len(cache) == 0


class TestPipelineIntegration:
    def test_jobs_routes_through_engine(self, matmul4):
        baseline = find_time_optimal_mapping(
            matmul4, [[1, 1, -1]], solver="procedure-5.1"
        )
        engine = find_time_optimal_mapping(
            matmul4, [[1, 1, -1]], solver="procedure-5.1", jobs=2
        )
        assert engine.schedule == baseline.schedule
        assert engine.mapping == baseline.mapping
        assert engine.stats == baseline.stats

    def test_cache_routes_through_engine(self, matmul4, tmp_path):
        cache = ResultCache(tmp_path)
        first = find_time_optimal_mapping(
            matmul4, [[1, 1, -1]], solver="procedure-5.1", cache=cache
        )
        second = find_time_optimal_mapping(
            matmul4, [[1, 1, -1]], solver="procedure-5.1", cache=cache
        )
        assert first.schedule == second.schedule
        assert first.stats == second.stats
        assert cache.hits == 1


class TestResolveJobs:
    def test_none_means_available_cpus(self):
        assert resolve_jobs(None) >= 1

    def test_none_prefers_affinity_mask(self, monkeypatch):
        # A cgroup/affinity-limited runner must get workers for the CPUs
        # it may actually use, not one per physical core of the host.
        import os

        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False
        )
        assert resolve_jobs(None) == 3

    def test_none_falls_back_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert resolve_jobs(None) == 5

    def test_explicit_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_max_useful_caps_resolved_jobs(self):
        # 32 workers for 3 pending shards resolves to 3 — never spawn
        # processes that could only idle.
        assert resolve_jobs(32, max_useful=3) == 3
        assert resolve_jobs(2, max_useful=3) == 2

    def test_max_useful_caps_env_and_detection(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "16")
        assert resolve_jobs(None, max_useful=4) == 4

    def test_max_useful_never_drops_below_one(self):
        assert resolve_jobs(8, max_useful=0) == 1

    def test_env_beats_cpu_detection(self, monkeypatch):
        import os

        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 1, 2, 3}, raising=False
        )
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert resolve_jobs(None) == 2

    def test_empty_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "")
        assert resolve_jobs(None) >= 1

    @pytest.mark.parametrize("value", ["bogus", "0", "-2", "1.5"])
    def test_bad_env_is_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)
